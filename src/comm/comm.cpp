#include "comm/comm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <map>
#include <thread>
#include <tuple>

#include "common/errors.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pf15::comm {

namespace detail {

/// Shared state of one Cluster: mailboxes, barrier states, split
/// negotiation tables. All addressing is by *world* rank; communicators
/// translate their local ranks before touching the context.
class Context {
 public:
  explicit Context(int world_size) : world_size_(world_size) {
    mailboxes_ = std::make_unique<Mailbox[]>(
        static_cast<std::size_t>(world_size));
    io_ = std::make_unique<RankIo[]>(static_cast<std::size_t>(world_size));
  }

  /// Wire accounting, charged to the world rank doing the send/recv.
  void count_sent(int world_rank, std::size_t bytes) {
    RankIo& io = io_[static_cast<std::size_t>(world_rank)];
    io.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    io.messages_sent.fetch_add(1, std::memory_order_relaxed);
  }

  void count_recv(int world_rank, std::size_t bytes) {
    RankIo& io = io_[static_cast<std::size_t>(world_rank)];
    io.bytes_recv.fetch_add(bytes, std::memory_order_relaxed);
    io.messages_recv.fetch_add(1, std::memory_order_relaxed);
  }

  IoStats io_stats(int world_rank) const {
    const RankIo& io = io_[static_cast<std::size_t>(world_rank)];
    IoStats out;
    out.bytes_sent = io.bytes_sent.load(std::memory_order_relaxed);
    out.bytes_recv = io.bytes_recv.load(std::memory_order_relaxed);
    out.messages_sent = io.messages_sent.load(std::memory_order_relaxed);
    out.messages_recv = io.messages_recv.load(std::memory_order_relaxed);
    return out;
  }

  int world_size() const { return world_size_; }

  std::uint64_t new_comm_id() {
    return next_comm_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void post(int dst_world, std::uint64_t comm_id, int src_comm_rank,
            int tag, std::vector<float> payload) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dst_world)];
    {
      MutexLock lock(box.mutex);
      box.queues[{comm_id, src_comm_rank, tag}].push_back(
          std::move(payload));
    }
    box.cv.notify_all();
  }

  std::vector<float> take(int dst_world, std::uint64_t comm_id,
                          int src_comm_rank, int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dst_world)];
    UniqueLock lock(box.mutex);
    const Key key{comm_id, src_comm_rank, tag};
    for (;;) {
      if (aborted()) break;
      auto ready = box.queues.find(key);
      if (ready != box.queues.end() && !ready->second.empty()) break;
      box.cv.wait(lock);
    }
    auto it = box.queues.find(key);
    if (it == box.queues.end() || it->second.empty()) {
      throw AbortedError("recv interrupted: cluster aborted by a peer");
    }
    auto& q = box.queues[key];
    std::vector<float> payload = std::move(q.front());
    q.pop_front();
    return payload;
  }

  bool peek(int dst_world, std::uint64_t comm_id, int src_comm_rank,
            int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dst_world)];
    MutexLock lock(box.mutex);
    auto it = box.queues.find({comm_id, src_comm_rank, tag});
    return it != box.queues.end() && !it->second.empty();
  }

  /// Sense-reversing barrier keyed by communicator.
  void barrier(std::uint64_t comm_id, int comm_size) {
    UniqueLock lock(barrier_mutex_);
    BarrierState& b = barriers_[comm_id];
    const std::uint64_t my_generation = b.generation;
    if (++b.arrived == comm_size) {
      b.arrived = 0;
      ++b.generation;
      barrier_cv_.notify_all();
    } else {
      while (!aborted() && b.generation == my_generation) {
        barrier_cv_.wait(lock);
      }
      if (b.generation == my_generation) {
        throw AbortedError("barrier interrupted: cluster aborted by a peer");
      }
    }
  }

  /// Collective split negotiation. Each member posts (color, key); the
  /// last arrival computes the grouping and fresh comm ids; everyone
  /// retrieves its assignment.
  struct SplitResult {
    std::uint64_t comm_id;
    int rank;
    std::vector<int> members;  // world ranks in comm-rank order
  };

  SplitResult split(std::uint64_t parent_comm, std::uint64_t sequence,
                    int parent_size, int world_rank, int color, int key) {
    UniqueLock lock(split_mutex_);
    SplitTable& table = splits_[{parent_comm, sequence}];
    table.entries.push_back({world_rank, color, key});
    if (static_cast<int>(table.entries.size()) == parent_size) {
      // Deterministic grouping: sort by (color, key, world_rank); assign
      // one fresh comm id per color in ascending color order.
      auto entries = table.entries;
      std::sort(entries.begin(), entries.end(),
                [](const SplitEntry& a, const SplitEntry& b) {
                  return std::tie(a.color, a.key, a.world_rank) <
                         std::tie(b.color, b.key, b.world_rank);
                });
      std::uint64_t current_id = 0;
      int current_color = 0;
      bool first = true;
      std::vector<int> current_members;
      auto flush = [&] {
        for (std::size_t i = 0; i < current_members.size(); ++i) {
          table.results[current_members[i]] = {
              current_id, static_cast<int>(i), current_members};
        }
      };
      for (const auto& e : entries) {
        if (first || e.color != current_color) {
          if (!first) flush();
          current_id = new_comm_id();
          current_color = e.color;
          current_members.clear();
          first = false;
        }
        current_members.push_back(e.world_rank);
      }
      flush();
      table.ready = true;
      split_cv_.notify_all();
    } else {
      while (!aborted() && !table.ready) split_cv_.wait(lock);
      if (!table.ready) {
        throw AbortedError("split interrupted: cluster aborted by a peer");
      }
    }
    SplitResult result = table.results.at(world_rank);
    if (++table.retrieved == parent_size) {
      splits_.erase({parent_comm, sequence});
    }
    return result;
  }

  /// Job-abort semantics (MPI_Abort stand-in): wakes every blocked wait
  /// so rank threads unwind instead of deadlocking when a peer dies.
  void abort_job() {
    aborted_.store(true, std::memory_order_release);
    for (int i = 0; i < world_size_; ++i) {
      MutexLock lock(mailboxes_[i].mutex);
      mailboxes_[i].cv.notify_all();
    }
    {
      MutexLock lock(barrier_mutex_);
      barrier_cv_.notify_all();
    }
    {
      MutexLock lock(split_mutex_);
      split_cv_.notify_all();
    }
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// The n-th split() call this rank makes on a given communicator gets
  /// sequence n. split() is collective, so every member's n-th call lands
  /// in the same (comm, n) negotiation table; a shared counter would hand
  /// concurrent callers distinct sequences and deadlock the negotiation.
  std::uint64_t next_split_sequence(std::uint64_t comm_id, int world_rank) {
    MutexLock lock(split_mutex_);
    return split_sequences_[{comm_id, world_rank}]++;
  }

 private:
  using Key = std::tuple<std::uint64_t, int, int>;  // comm, src, tag

  struct Mailbox {
    Mutex mutex;
    CondVar cv;
    std::map<Key, std::deque<std::vector<float>>> queues
        PF15_GUARDED_BY(mutex);
  };

  struct RankIo {
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_recv{0};
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_recv{0};
  };

  struct BarrierState {
    int arrived = 0;
    std::uint64_t generation = 0;
  };

  struct SplitEntry {
    int world_rank;
    int color;
    int key;
  };

  struct SplitTable {
    std::vector<SplitEntry> entries;
    std::map<int, SplitResult> results;  // by world rank
    bool ready = false;
    int retrieved = 0;
  };

  int world_size_;
  std::unique_ptr<Mailbox[]> mailboxes_;
  std::unique_ptr<RankIo[]> io_;
  std::atomic<std::uint64_t> next_comm_id_{1};  // 0 = world

  std::atomic<bool> aborted_{false};

  Mutex barrier_mutex_;
  CondVar barrier_cv_;
  std::map<std::uint64_t, BarrierState> barriers_
      PF15_GUARDED_BY(barrier_mutex_);

  Mutex split_mutex_;
  CondVar split_cv_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, SplitTable> splits_
      PF15_GUARDED_BY(split_mutex_);
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> split_sequences_
      PF15_GUARDED_BY(split_mutex_);
};

}  // namespace detail

Communicator::Communicator(std::shared_ptr<detail::Context> ctx,
                           std::uint64_t comm_id, int rank,
                           std::vector<int> members)
    : ctx_(std::move(ctx)),
      comm_id_(comm_id),
      rank_(rank),
      members_(std::move(members)) {}

namespace {

/// Registry mirrors of the per-rank wire counters. Hoisted statics: the
/// registry lookup is a mutex + map walk, the adds are sharded atomics.
void mirror_sent(std::size_t bytes) {
  using obs::MetricsRegistry;
  static obs::Counter& bytes_total = MetricsRegistry::global().counter(
      "pf15_comm_bytes_sent_total", "Payload bytes sent through comm");
  static obs::Counter& msgs_total = MetricsRegistry::global().counter(
      "pf15_comm_messages_total", "Point-to-point messages sent");
  static obs::Histogram& sizes = MetricsRegistry::global().histogram(
      "pf15_comm_message_bytes",
      obs::Histogram::exponential_bounds(64.0, 4.0, 10),
      "Message size distribution (payload bytes)");
  bytes_total.add(bytes);
  msgs_total.add(1);
  sizes.observe(static_cast<double>(bytes));
}

void mirror_recv(std::size_t bytes) {
  static obs::Counter& bytes_total =
      obs::MetricsRegistry::global().counter(
          "pf15_comm_bytes_recv_total",
          "Payload bytes received through comm");
  bytes_total.add(bytes);
}

}  // namespace

void Communicator::send(int dst, int tag, std::span<const float> data) {
  PF15_CHECK_MSG(dst >= 0 && dst < size(), "send: bad dst " << dst);
  const std::size_t bytes = data.size() * sizeof(float);
  ctx_->post(members_[static_cast<std::size_t>(dst)], comm_id_, rank_, tag,
             std::vector<float>(data.begin(), data.end()));
  ctx_->count_sent(world_rank(), bytes);
  mirror_sent(bytes);
}

std::vector<float> Communicator::recv(int src, int tag) {
  PF15_CHECK_MSG(src >= 0 && src < size(), "recv: bad src " << src);
  obs::TraceSpan span("comm_recv", "comm");
  std::vector<float> payload = ctx_->take(
      members_[static_cast<std::size_t>(rank_)], comm_id_, src, tag);
  const std::size_t bytes = payload.size() * sizeof(float);
  ctx_->count_recv(world_rank(), bytes);
  mirror_recv(bytes);
  return payload;
}

bool Communicator::probe(int src, int tag) {
  PF15_CHECK(src >= 0 && src < size());
  return ctx_->peek(members_[static_cast<std::size_t>(rank_)], comm_id_,
                    src, tag);
}

void Communicator::barrier() { ctx_->barrier(comm_id_, size()); }

namespace {
// Internal tags for collectives live in a high range; user tags collide
// with neither these nor each other.
constexpr int kTagAllReduce = 1 << 24;
constexpr int kTagBroadcast = 2 << 24;
constexpr int kTagReduce = 3 << 24;
constexpr int kTagGather = 4 << 24;

void add_into(std::span<float> dst, const std::vector<float>& src) {
  PF15_CHECK(dst.size() == src.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
}
}  // namespace

void Communicator::allreduce_sum(std::span<float> data, AllReduceAlgo algo) {
  const int g = size();
  if (g == 1) return;
  obs::TraceSpan trace("comm_allreduce", "comm");
  const int r = rank_;

  switch (algo) {
    case AllReduceAlgo::kRing: {
      // Bandwidth-optimal ring: g-1 scatter-reduce steps followed by g-1
      // all-gather steps over g contiguous chunks.
      const std::size_t n = data.size();
      auto chunk_begin = [&](int c) {
        return (n * static_cast<std::size_t>(c)) /
               static_cast<std::size_t>(g);
      };
      auto chunk = [&](int c) -> std::span<float> {
        c = ((c % g) + g) % g;
        return data.subspan(chunk_begin(c),
                            chunk_begin(c + 1) - chunk_begin(c));
      };
      const int next = (r + 1) % g;
      const int prev = (r - 1 + g) % g;
      for (int step = 0; step < g - 1; ++step) {
        auto out = chunk(r - step);
        send(next, kTagAllReduce + step,
             std::span<const float>(out.data(), out.size()));
        auto in = chunk(r - step - 1);
        add_into(in, recv(prev, kTagAllReduce + step));
      }
      for (int step = 0; step < g - 1; ++step) {
        auto out = chunk(r - step + 1);
        send(next, kTagAllReduce + g + step,
             std::span<const float>(out.data(), out.size()));
        auto in = chunk(r - step);
        const std::vector<float> incoming =
            recv(prev, kTagAllReduce + g + step);
        PF15_CHECK(incoming.size() == in.size());
        std::copy(incoming.begin(), incoming.end(), in.begin());
      }
      return;
    }

    case AllReduceAlgo::kRecursiveDoubling: {
      // Handle non-powers-of-two by folding the `rem` extra ranks into
      // their lower partners first, then unfolding at the end.
      int p2 = 1;
      while (p2 * 2 <= g) p2 *= 2;
      const int rem = g - p2;
      int my_id = -1;  // id within the power-of-two core, -1 = folded out
      if (r < 2 * rem) {
        if (r % 2 == 0) {
          send(r + 1, kTagAllReduce, std::span<const float>(data));
        } else {
          add_into(data, recv(r - 1, kTagAllReduce));
          my_id = r / 2;
        }
      } else {
        my_id = r - rem;
      }
      if (my_id >= 0) {
        auto core_to_rank = [&](int id) {
          return id < rem ? 2 * id + 1 : id + rem;
        };
        for (int mask = 1; mask < p2; mask <<= 1) {
          const int partner = core_to_rank(my_id ^ mask);
          send(partner, kTagAllReduce + mask,
               std::span<const float>(data));
          add_into(data, recv(partner, kTagAllReduce + mask));
        }
      }
      // Important subtlety: after the exchange rounds every core rank
      // holds 2^k * the chunk sums — but since each exchange *adds* the
      // partner's current buffer, the result is already the full sum.
      if (r < 2 * rem) {
        if (r % 2 == 1) {
          send(r - 1, kTagAllReduce + (p2 << 1),
               std::span<const float>(data));
        } else {
          const std::vector<float> final_data =
              recv(r + 1, kTagAllReduce + (p2 << 1));
          std::copy(final_data.begin(), final_data.end(), data.begin());
        }
      }
      return;
    }

    case AllReduceAlgo::kTree: {
      reduce_sum(data, 0);
      broadcast(data, 0);
      return;
    }
  }
}

void Communicator::broadcast(std::span<float> data, int root) {
  const int g = size();
  if (g == 1) return;
  obs::TraceSpan trace("comm_broadcast", "comm");
  // Binomial tree rooted at `root`, via rank rotation.
  const int vrank = (rank_ - root + g) % g;
  int mask = 1;
  while (mask < g) {
    if (vrank < mask) {
      const int child = vrank + mask;
      if (child < g) {
        send((child + root) % g, kTagBroadcast + mask,
             std::span<const float>(data));
      }
    } else if (vrank < 2 * mask) {
      const int parent = vrank - mask;
      const std::vector<float> incoming =
          recv((parent + root) % g, kTagBroadcast + mask);
      PF15_CHECK(incoming.size() == data.size());
      std::copy(incoming.begin(), incoming.end(), data.begin());
    }
    mask <<= 1;
  }
}

void Communicator::reduce_sum(std::span<float> data, int root) {
  const int g = size();
  if (g == 1) return;
  obs::TraceSpan trace("comm_reduce", "comm");
  const int vrank = (rank_ - root + g) % g;
  // Binomial reduction: mirror of broadcast, children send up.
  int mask = 1;
  while (mask < g) mask <<= 1;
  for (mask >>= 1; mask >= 1; mask >>= 1) {
    if (vrank < mask) {
      const int child = vrank + mask;
      if (child < g) {
        add_into(data, recv((child + root) % g, kTagReduce + mask));
      }
    } else if (vrank < 2 * mask) {
      const int parent = vrank - mask;
      send((parent + root) % g, kTagReduce + mask,
           std::span<const float>(data));
      break;  // once sent, this rank is done
    }
  }
}

std::vector<float> Communicator::gather(std::span<const float> data,
                                        int root) {
  obs::TraceSpan trace("comm_gather", "comm");
  if (rank_ != root) {
    send(root, kTagGather, data);
    return {};
  }
  std::vector<float> out;
  out.reserve(data.size() * static_cast<std::size_t>(size()));
  for (int src = 0; src < size(); ++src) {
    if (src == root) {
      out.insert(out.end(), data.begin(), data.end());
    } else {
      const std::vector<float> part = recv(src, kTagGather);
      PF15_CHECK_MSG(part.size() == data.size(),
                     "gather: ragged contribution from rank " << src);
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  return out;
}

IoStats Communicator::io_stats() const { return ctx_->io_stats(world_rank()); }

double Communicator::clock_offset_us(int root, int rounds) {
  PF15_CHECK_MSG(root >= 0 && root < size(),
                 "clock_offset_us: bad root " << root);
  PF15_CHECK_MSG(rounds >= 1, "clock_offset_us: rounds must be >= 1");
  // Mailboxes carry floats (24-bit mantissa) but trace timestamps need
  // sub-µs precision over a process lifetime, so the root's sample rides
  // as (hi, lo): hi = floor(t / 2^16) and a remainder < 2^16 that a float
  // holds to ~4 ns. Exact until the process is ~2^40 µs (~12 days) old.
  std::vector<double> offsets;
  offsets.reserve(static_cast<std::size_t>(rounds));
  for (int round = 0; round < rounds; ++round) {
    barrier();
    // Both sides sample immediately after barrier release: the skew
    // between the samples is what this handshake measures.
    const double local_us = obs::trace_now_us();
    float packed[2] = {0.0f, 0.0f};
    if (rank_ == root) {
      const double hi = std::floor(local_us / 65536.0);
      packed[0] = static_cast<float>(hi);
      packed[1] = static_cast<float>(local_us - hi * 65536.0);
    }
    broadcast(std::span<float>(packed, 2), root);
    const double root_us = static_cast<double>(packed[0]) * 65536.0 +
                           static_cast<double>(packed[1]);
    offsets.push_back(root_us - local_us);
  }
  if (rank_ == root) return 0.0;  // by definition, regardless of noise
  const std::size_t mid = offsets.size() / 2;
  std::nth_element(offsets.begin(), offsets.begin() + mid, offsets.end());
  return offsets[mid];
}

Communicator Communicator::split(int color, int key) {
  const std::uint64_t seq = ctx_->next_split_sequence(
      comm_id_, members_[static_cast<std::size_t>(rank_)]);
  const auto result =
      ctx_->split(comm_id_, seq, size(),
                  members_[static_cast<std::size_t>(rank_)], color, key);
  return Communicator(ctx_, result.comm_id, result.rank, result.members);
}

Cluster::Cluster(int world_size)
    : world_size_(world_size),
      ctx_(std::make_shared<detail::Context>(world_size)) {
  PF15_CHECK(world_size >= 1);
}

Cluster::~Cluster() = default;

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size_));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world_size_));
  std::vector<int> world_members(static_cast<std::size_t>(world_size_));
  for (int i = 0; i < world_size_; ++i) world_members[i] = i;
  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([&, r] {
      try {
        Communicator comm(ctx_, /*comm_id=*/0, r, world_members);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake every peer blocked in recv/barrier/split; a hung job is
        // strictly worse than a loudly failed one.
        ctx_->abort_job();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause: a rank's own exception, not the secondary
  // "aborted by a peer" unwinds it triggered elsewhere.
  std::exception_ptr secondary;
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const AbortedError&) {
      if (!secondary) secondary = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (secondary) std::rethrow_exception(secondary);
}

}  // namespace pf15::comm
