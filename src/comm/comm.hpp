// In-process message-passing runtime — the repo's substitute for MPI+MLSL.
//
// A Cluster hosts `world_size` ranks, each executing the same function on
// its own thread (SPMD, the MPI programming model). Ranks exchange typed
// float payloads through per-destination mailboxes; every collective
// (barrier, broadcast, reduce, all-reduce in three algorithms) is built
// from point-to-point sends exactly as a distributed implementation would
// be, so the communication *patterns* of the paper's system — group
// all-reduce, root-to-parameter-server exchange (§III-D/E) — are exercised
// with real concurrency and real data movement.
//
// Communicator::split() mirrors our MLSL extension for "node placement
// into disjoint communication groups" (§III-E(b)): compute groups and
// parameter servers are sub-communicators of the world.
//
// The runtime is instrumented for the distributed observability layer:
// every send/recv bumps per-world-rank byte/message counters (read back
// via io_stats()) and the pf15_comm_* registry metrics, collectives wrap
// themselves in "comm"-category trace spans, and clock_offset_us() runs
// the barrier-based offset handshake whose result obs::merge_traces()
// uses to align per-rank trace files onto one timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace pf15::comm {

enum class AllReduceAlgo {
  kRing,               // bandwidth-optimal, large payloads
  kRecursiveDoubling,  // latency-optimal, power-of-two friendly
  kTree,               // binomial reduce + broadcast
};

namespace detail {
class Context;
}

/// Wire traffic of one rank, totalled across every communicator it is a
/// member of (world + splits). Bytes are payload bytes (floats × 4).
struct IoStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_recv = 0;
};

/// Per-rank communicator handle. Cheap to copy; all copies refer to the
/// same group. Methods must be called from the owning rank's thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }

  /// Asynchronous (buffered) send to `dst` (rank within this
  /// communicator). Never blocks.
  void send(int dst, int tag, std::span<const float> data);

  /// Blocking receive of the next message from (src, tag), in send order.
  std::vector<float> recv(int src, int tag);

  /// True if a message from (src, tag) is already waiting.
  bool probe(int src, int tag);

  void barrier();

  /// In-place sum all-reduce over every rank of this communicator.
  void allreduce_sum(std::span<float> data,
                     AllReduceAlgo algo = AllReduceAlgo::kRing);

  /// In-place broadcast from `root`.
  void broadcast(std::span<float> data, int root);

  /// In-place sum reduction; result valid only on `root`.
  void reduce_sum(std::span<float> data, int root);

  /// Gathers each rank's `data` to root; on root, returns size() blocks
  /// concatenated in rank order (empty elsewhere).
  std::vector<float> gather(std::span<const float> data, int root);

  /// Collective: partitions ranks by `color`; within a color, ranks are
  /// ordered by (key, old rank). Returns the sub-communicator this rank
  /// belongs to.
  Communicator split(int color, int key);

  /// This rank's cumulative wire traffic (across all communicators of
  /// the cluster, not just this one).
  IoStats io_stats() const;

  /// This rank's world rank (stable across splits; the identity used for
  /// trace lanes and flight records).
  int world_rank() const { return members_[static_cast<std::size_t>(rank_)]; }

  /// Collective clock-offset handshake against `root`'s clock: `rounds`
  /// iterations of (barrier; sample local trace_now_us(); root broadcasts
  /// its sample), taking the median offset. Returns the microseconds to
  /// ADD to this rank's trace timestamps to land on root's clock domain —
  /// exactly 0 on root. In-process ranks share one steady_clock, so the
  /// measured offsets are honestly tiny (scheduling skew); the handshake
  /// exists so the merge workflow runs the same protocol a one-process-
  /// per-rank deployment needs.
  double clock_offset_us(int root = 0, int rounds = 8);

 private:
  friend class Cluster;
  friend class detail::Context;

  Communicator(std::shared_ptr<detail::Context> ctx, std::uint64_t comm_id,
               int rank, std::vector<int> members);

  std::shared_ptr<detail::Context> ctx_;
  std::uint64_t comm_id_ = 0;
  int rank_ = 0;                // rank within this communicator
  std::vector<int> members_;    // world rank of each member, by comm rank
};

/// Spawns `world_size` rank threads and runs `fn(comm)` on each. Joins all
/// threads; the first exception thrown by any rank is rethrown on the
/// caller after all ranks finish or abort.
class Cluster {
 public:
  explicit Cluster(int world_size);
  ~Cluster();

  int world_size() const { return world_size_; }

  void run(const std::function<void(Communicator&)>& fn);

 private:
  int world_size_;
  std::shared_ptr<detail::Context> ctx_;
};

}  // namespace pf15::comm
