#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pf15 {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[pf15 %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace pf15
