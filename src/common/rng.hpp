// Deterministic, splittable random number generation.
//
// Distributed training and the discrete-event simulator both need streams
// that are (a) reproducible across runs, (b) independent per rank / per
// entity without coordination. We use SplitMix64 for seeding and a
// xoshiro256** engine per stream; streams are derived by hashing
// (seed, stream_id), which is the counter-based construction Philox
// popularised, adapted to a conventional engine.
#pragma once

#include <cstdint>
#include <cmath>

namespace pf15 {

/// SplitMix64: used to expand a user seed into engine state. Passes BigCrush.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with distribution helpers. Not thread-safe; create
/// one per thread/rank via the (seed, stream) constructor.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eedULL, std::uint64_t stream = 0) {
    // Mix the stream id in so that (seed, 0), (seed, 1), ... are
    // statistically independent streams.
    std::uint64_t sm = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (caches the second variate).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept {
    double u = 0.0;
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / lambda;
  }

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Poisson via inversion for small means, normal approximation otherwise.
  std::uint64_t poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double prod = uniform();
      std::uint64_t n = 0;
      while (prod > limit) {
        prod *= uniform();
        ++n;
      }
      return n;
    }
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace pf15
