// ThreadPool: compatibility shim over the work-stealing TaskScheduler.
//
// The original flat pool forbade nested waits — a task on a pool worker
// could never block on the same pool's work, which forced the
// `parallel_ok=false` serial switch through the conv backends and the
// compiled executor whenever code might already be inside a pool task.
// The scheduler (task_scheduler.hpp) makes nesting legal by construction:
// waiting *executes* pending work instead of parking, so parallel_for may
// nest to any depth, from worker and external threads alike.
//
// This class keeps the old task-and-range API (submit -> future,
// parallel_for, current_thread_in_pool) for existing call sites and
// tests. ThreadPool::global() shares TaskScheduler::global(); a locally
// constructed ThreadPool owns a private scheduler (useful for tests that
// want a fixed width). New code should use TaskScheduler directly.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>

#include "common/task_scheduler.hpp"

namespace pf15 {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return scheduler_->size(); }

  /// Enqueue a task; returns a future for its completion. Exceptions
  /// propagate through the future. Blocking on the future from a worker
  /// parks that worker (std::future does not help-wait) — prefer
  /// TaskScheduler::spawn + wait for compute tasks.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the scheduler, blocking
  /// until all iterations complete (the caller participates). Nestable
  /// to any depth — the wait underneath executes pending work instead of
  /// parking, so calling this from a worker task is legal.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's scheduler
  /// workers. Informational (utilization probes, tests) — nested waits
  /// are legal now, so this no longer gates anything.
  bool current_thread_in_pool() const;

  /// Process-wide pool over TaskScheduler::global(). Kernels that want
  /// internal parallelism share this instance.
  static ThreadPool& global();

  /// The scheduler underneath, for code migrating off the shim.
  TaskScheduler& scheduler() { return *scheduler_; }

 private:
  struct SharedTag {};
  ThreadPool(SharedTag, TaskScheduler& shared);

  std::unique_ptr<TaskScheduler> owned_;
  TaskScheduler* scheduler_;
};

}  // namespace pf15
