// Fixed-size thread pool with a parallel_for helper.
//
// The pool backs the GEMM driver and the background data loader. Following
// the Core Guidelines concurrency advice we expose *tasks* (closures and
// index ranges), never raw threads, and joins are automatic via RAII.
//
// Wait discipline (the `parallel_ok` contract): the pool does NOT support
// nested waits. A task running on a pool thread must never block on work
// submitted to the *same* pool — parallel_for from inside a pool task of
// this pool can deadlock once every worker is parked in the outer wait.
// This is why the conv backends and the compiled executor thread
// `parallel_ok` through every layer: inside a pool task it is false and
// all work stays serial. The discipline is machine-checked two ways:
// statically via the -Wthread-safety annotations below, and at runtime by
// current_thread_in_pool() — parallel_for() checks it and fails loudly
// (PF15_CHECK) instead of deadlocking, giving the ROADMAP's work-stealing
// replacement a regression oracle.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace pf15 {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion. Waiting on that
  /// future from a worker of this same pool violates the wait discipline
  /// (see header) — submit() itself never blocks and is always safe.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations complete. Iterations are chunked to limit scheduling
  /// overhead. Safe to call with begin == end (no-op). Calling this from
  /// a worker thread of this same pool is a checked error (nested wait).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers — i.e.
  /// when blocking on this pool's work would be a nested wait. Kernels
  /// asserting their `parallel_ok` contract use this.
  bool current_thread_in_pool() const;

  /// Process-wide pool sized to the machine. Kernels that want internal
  /// parallelism share this instance.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ PF15_GUARDED_BY(mutex_);
  bool stop_ PF15_GUARDED_BY(mutex_) = false;
};

}  // namespace pf15
