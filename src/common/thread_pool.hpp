// Fixed-size thread pool with a parallel_for helper.
//
// The pool backs the GEMM driver and the background data loader. Following
// the Core Guidelines concurrency advice we expose *tasks* (closures and
// index ranges), never raw threads, and joins are automatic via RAII.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pf15 {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations complete. Iterations are chunked to limit scheduling
  /// overhead. Safe to call with begin == end (no-op).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized to the machine. Kernels that want internal
  /// parallelism share this instance.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pf15
