#include "common/task_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pf15 {

namespace detail {

struct TaskNode {
  std::function<void()> fn;
  TaskSync* sync = nullptr;  // null: detached
};

/// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05; memory orders
/// after Lê et al., PPoPP'13, with the thread fence replaced by seq_cst
/// operations on top_/bottom_ — std::atomic_thread_fence is invisible to
/// TSan, plain atomics are not). Owner calls push()/pop() at the bottom;
/// any thread calls steal() at the top. Indices grow monotonically (no
/// ABA); grown buffers are retired, not freed, until destruction, so a
/// thief holding a stale buffer pointer still reads valid memory and its
/// CAS on top_ rejects the stale element.
class WorkDeque {
 public:
  explicit WorkDeque(std::size_t initial_capacity = 256) {
    buffers_.push_back(std::make_unique<Buffer>(initial_capacity));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner only.
  void push(TaskNode* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(task, std::memory_order_relaxed);
    // seq_cst store: orders the slot write before any thief's top_/
    // bottom_ reads (the release half) and participates in the Dekker
    // handshake with pop()/steal().
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Null when empty.
  TaskNode* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    TaskNode* task = nullptr;
    if (t <= b) {
      task = buf->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race a concurrent thief for it via the CAS on
        // top_ — exactly one side wins.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;  // thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
    }
    return task;
  }

  /// Any thread. Null when empty or when the CAS lost a race (the caller
  /// treats both as "try elsewhere / try again").
  TaskNode* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    TaskNode* task = buf->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to the owner's pop or another thief
    }
    return task;
  }

  /// Racy emptiness hint for steal sweeps (exact only when quiescent).
  bool maybe_nonempty() const {
    return bottom_.load(std::memory_order_relaxed) >
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap),
          slots(std::make_unique<std::atomic<TaskNode*>[]>(cap)) {}
    std::atomic<TaskNode*>& slot(std::int64_t i) {
      return slots[static_cast<std::size_t>(i) & (capacity - 1)];
    }
    const std::size_t capacity;  // power of two
    const std::unique_ptr<std::atomic<TaskNode*>[]> slots;
  };

  /// Owner only, from push(): doubles the buffer, copying the live range
  /// [t, b). The old buffer stays allocated (buffers_) so in-flight
  /// thieves dereference valid memory; their CAS rejects stale elements.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    buffers_.push_back(std::make_unique<Buffer>(old->capacity * 2));
    Buffer* bigger = buffers_.back().get();
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  /// Every buffer ever allocated, current one last. Owner-only (push),
  /// destroyed with the deque.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace detail

namespace {

/// Scheduler-wide instruments: task and steal totals, and how many tasks
/// are queued but not yet running across every scheduler in the process.
struct SchedMetrics {
  obs::Counter& executed = obs::MetricsRegistry::global().counter(
      "pf15_sched_tasks_total", "scheduler tasks executed");
  obs::Counter& stolen = obs::MetricsRegistry::global().counter(
      "pf15_sched_steals_total", "tasks executed by a worker other than "
                                 "the one that pushed them");
  obs::Gauge& queued = obs::MetricsRegistry::global().gauge(
      "pf15_sched_queue_depth", "tasks spawned but not yet executing");
};

SchedMetrics& sched_metrics() {
  static SchedMetrics m;
  return m;
}

/// The scheduler whose worker_loop the calling thread runs, if any, and
/// its worker index there. A worker thread belongs to exactly one
/// scheduler for its whole lifetime.
thread_local const TaskScheduler* t_worker_of = nullptr;
thread_local std::size_t t_worker_index = 0;

/// Cheap per-thread xorshift for steal-victim selection: no shared
/// state, no modulo bias worth caring about.
std::size_t next_victim_seed() {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return static_cast<std::size_t>(state >> 32);
}

}  // namespace

// ---------------------------------------------------------------------------
// TaskSync

TaskSync::~TaskSync() {
  // Reaching here with tasks in flight means a spawn was never waited
  // for — those tasks would write through a dangling pointer. Fail fast.
  PF15_CHECK_MSG(pending_.load(std::memory_order_acquire) == 0,
                 "TaskSync destroyed with tasks still pending — every "
                 "spawn must be covered by a wait()");
}

void TaskSync::record_error(std::exception_ptr e) {
  MutexLock lock(error_mutex_);
  if (!error_) {
    error_ = std::move(e);
    has_error_.store(true, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// TaskScheduler

struct TaskScheduler::Worker {
  detail::WorkDeque deque;
  std::thread thread;
};

TaskScheduler::TaskScheduler(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Deques exist before any thread starts: a fast first spawn may be
  // stolen by worker 0 while worker N-1 is still being constructed.
  for (std::size_t i = 0; i < threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  stop_.store(true, std::memory_order_release);
  {
    MutexLock lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
}

TaskScheduler& TaskScheduler::global() {
  static TaskScheduler scheduler;
  return scheduler;
}

bool TaskScheduler::current_thread_in_scheduler() const {
  return t_worker_of == this;
}

void TaskScheduler::enqueue(detail::TaskNode* task) {
  spawned_.fetch_add(1, std::memory_order_relaxed);
  sched_metrics().queued.add(1.0);
  if (t_worker_of == this) {
    workers_[t_worker_index]->deque.push(task);
  } else {
    MutexLock lock(inject_mutex_);
    injected_.push_back(task);
  }
  // Publish-then-wake: a sleeper that re-checks the epoch under the
  // mutex after this bump cannot park past this task.
  work_epoch_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    MutexLock lock(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

void TaskScheduler::spawn(TaskSync& sync, std::function<void()> fn) {
  sync.pending_.fetch_add(1, std::memory_order_relaxed);
  enqueue(new detail::TaskNode{std::move(fn), &sync});
}

void TaskScheduler::spawn_detached(std::function<void()> fn) {
  enqueue(new detail::TaskNode{std::move(fn), nullptr});
}

void TaskScheduler::on_complete(TaskSync& when, TaskSync& track,
                                std::function<void()> fn) {
  PF15_CHECK_MSG(&when != &track,
                 "a TaskSync continuation cannot track itself (its own "
                 "pending count would never drain)");
  track.pending_.fetch_add(1, std::memory_order_relaxed);
  auto* node = new detail::TaskNode{std::move(fn), &track};
  void* prev = when.continuation_.exchange(node, std::memory_order_acq_rel);
  PF15_CHECK_MSG(prev == nullptr,
                 "TaskSync supports one continuation at a time");
  // If the group drained before (or while) we registered, no completer
  // is left to claim the continuation — claim it ourselves. The
  // exchange-to-null is the exactly-once handoff either way.
  if (when.pending_.load(std::memory_order_acquire) == 0) {
    auto* claimed = static_cast<detail::TaskNode*>(
        when.continuation_.exchange(nullptr, std::memory_order_acq_rel));
    if (claimed != nullptr) enqueue(claimed);
  }
}

void TaskScheduler::complete(TaskSync& sync) {
  // Lifetime guard: raised before the decrement that can release a
  // waiter, dropped after this function's last access to `sync`. wait()
  // spins the guard down to zero before returning, so the continuation
  // claim below never races the sync's destruction (parallel_for keeps
  // its TaskSync on the stack).
  sync.completers_.fetch_add(1, std::memory_order_acq_rel);
  if (sync.pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task out claims the continuation, if one is registered. The
    // exchange races only with on_complete's drained-before-registered
    // claim; whoever exchanges non-null schedules it.
    auto* continuation = static_cast<detail::TaskNode*>(
        sync.continuation_.exchange(nullptr, std::memory_order_acq_rel));
    sync.completers_.fetch_sub(1, std::memory_order_release);
    if (continuation != nullptr) enqueue(continuation);
  } else {
    sync.completers_.fetch_sub(1, std::memory_order_release);
  }
}

void TaskScheduler::execute(detail::TaskNode* task) {
  SchedMetrics& metrics = sched_metrics();
  metrics.queued.add(-1.0);
  metrics.executed.add(1);
  executed_.fetch_add(1, std::memory_order_relaxed);
  {
    // One span per task: gaps between spans on a worker track are idle
    // or steal-search time.
    obs::TraceSpan span("sched_task", "sched");
    if (task->sync != nullptr) {
      try {
        task->fn();
      } catch (...) {
        task->sync->record_error(std::current_exception());
      }
    } else {
      // Detached: nobody waits, so nobody can rethrow. Swallow loudly.
      try {
        task->fn();
      } catch (const std::exception& e) {
        PF15_WARN("detached scheduler task threw: " << e.what());
      } catch (...) {
        PF15_WARN("detached scheduler task threw a non-std exception");
      }
    }
  }
  if (task->sync != nullptr) complete(*task->sync);
  delete task;
}

detail::TaskNode* TaskScheduler::pop_injected() {
  MutexLock lock(inject_mutex_);
  if (injected_.empty()) return nullptr;
  detail::TaskNode* task = injected_.front();
  injected_.pop_front();
  return task;
}

detail::TaskNode* TaskScheduler::find_task(std::size_t self) {
  if (self != kNotWorker) {
    if (detail::TaskNode* task = workers_[self]->deque.pop()) return task;
  }
  if (detail::TaskNode* task = pop_injected()) return task;
  const std::size_t n = workers_.size();
  if (n == 0) return nullptr;
  // Two sweeps from a random start: the second retries CAS-aborted
  // steals without turning rare contention into a missed task.
  const std::size_t start = next_victim_seed();
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t victim = (start + k) % n;
      if (victim == self) continue;
      if (detail::TaskNode* task = workers_[victim]->deque.steal()) {
        stolen_.fetch_add(1, std::memory_order_relaxed);
        sched_metrics().stolen.add(1);
        return task;
      }
    }
  }
  return nullptr;
}

void TaskScheduler::idle_wait(std::uint64_t seen_epoch) {
  UniqueLock lock(sleep_mutex_);
  if (work_epoch_.load(std::memory_order_acquire) != seen_epoch ||
      stop_.load(std::memory_order_acquire)) {
    return;
  }
  sleepers_.fetch_add(1, std::memory_order_release);
  // Timeout backstop: a wakeup lost to a race costs one millisecond of
  // latency, never a hang. No predicate loop — the caller re-runs
  // find_task() and comes back if there is still nothing.
  sleep_cv_.wait_for(lock, std::chrono::milliseconds(1));
  sleepers_.fetch_sub(1, std::memory_order_release);
}

void TaskScheduler::worker_loop(std::size_t index) {
  t_worker_of = this;
  t_worker_index = index;
  for (;;) {
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    if (detail::TaskNode* task = find_task(index)) {
      execute(task);
      continue;
    }
    // Nothing anywhere. A worker's own deque is empty here (its pop just
    // failed and only this thread pushes to it), and the injection queue
    // was empty under its mutex — so on stop, exiting cannot strand
    // work this worker could have run.
    if (stop_.load(std::memory_order_acquire)) return;
    idle_wait(epoch);
  }
}

void TaskScheduler::wait(TaskSync& sync) {
  const std::size_t self =
      t_worker_of == this ? t_worker_index : kNotWorker;
  std::size_t fruitless = 0;
  while (sync.pending_.load(std::memory_order_acquire) != 0) {
    if (detail::TaskNode* task = find_task(self)) {
      execute(task);
      fruitless = 0;
      continue;
    }
    // Nothing runnable anywhere: the remaining tasks of this group are
    // executing on other threads right now. Yield, escalating to short
    // sleeps so a long-running remote task does not burn a core.
    if (++fruitless < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // The counter is drained, but the completer that dropped it to zero
  // may still be inside complete() (claiming the continuation cell).
  // Spin it out before returning: the caller is free to destroy the
  // sync the moment wait() returns.
  while (sync.completers_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (sync.has_error_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      MutexLock lock(sync.error_mutex_);
      err = std::move(sync.error_);
      sync.error_ = nullptr;
      sync.has_error_.store(false, std::memory_order_release);
    }
    if (err) std::rethrow_exception(err);
  }
}

void TaskScheduler::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Workers plus the participating caller, 4 chunks each to absorb
  // imbalance (same chunking policy as the old pool).
  const std::size_t width = workers_.size() + 1;
  const std::size_t chunks = std::min(n, width * 4);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  TaskSync sync;
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    spawn(sync, [lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  // The caller runs chunk 0 inline, then helps until the rest are done.
  // fn is captured by reference in the spawned chunks, so an inline
  // exception must still wait for them before propagating.
  std::exception_ptr inline_error;
  try {
    const std::size_t hi = std::min(end, begin + chunk_size);
    for (std::size_t i = begin; i < hi; ++i) fn(i);
  } catch (...) {
    inline_error = std::current_exception();
  }
  try {
    wait(sync);
  } catch (...) {
    if (!inline_error) inline_error = std::current_exception();
  }
  if (inline_error) std::rethrow_exception(inline_error);
}

TaskScheduler::Stats TaskScheduler::stats() const {
  Stats s;
  s.spawned = spawned_.load(std::memory_order_acquire);
  s.executed = executed_.load(std::memory_order_acquire);
  s.stolen = stolen_.load(std::memory_order_acquire);
  return s;
}

}  // namespace pf15
