// Work-stealing task scheduler: the process-wide compute substrate.
//
// Replaces the flat ThreadPool (which forbade nested waits, forcing the
// `parallel_ok=false` serial switch through every layer under a parallel
// level) with a scheduler on which nesting is legal *by construction*:
//
//   - Each worker owns a Chase–Lev deque: the owner pushes and pops at
//     the bottom (LIFO, cache-hot child tasks first), thieves steal from
//     the top (FIFO, the oldest — typically largest — task). The deque
//     is lock-free; only the pop/steal race on the last element takes a
//     compare-exchange. The implementation uses plain atomic operations
//     (seq_cst where the Dekker-style pop/steal handshake needs it) and
//     no std::atomic_thread_fence, which TSan cannot model.
//   - Completion is tracked by TaskSync: an atomic pending counter plus
//     an optional continuation task that is handed off exactly once when
//     the counter drains — task-graph continuations instead of blocking
//     joins.
//   - wait(sync) is *help-first*: while the counter is nonzero the
//     waiting thread executes pending work (its own deque, the injection
//     queue, then stealing) instead of blocking. A task may therefore
//     spawn-and-wait freely at any depth — the executor fans out over
//     nodes, each node over its batch, each conv backend over its
//     transform-domain GEMMs, all on the same scheduler.
//
// External (non-worker) threads spawn through a mutex-guarded injection
// queue and help the same way while waiting, so e.g. a serving replica
// thread blocked on a compiled plan contributes compute instead of
// sleeping. Sleeping workers are woken through an epoch counter + a
// condition variable with a 1ms timeout backstop (a lost wakeup costs a
// millisecond, never a hang).
//
// ThreadPool (thread_pool.hpp) survives as a compatibility shim over
// this class; new code should use TaskScheduler directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace pf15 {

class TaskScheduler;
namespace detail {
struct TaskNode;
class WorkDeque;
}  // namespace detail

/// Completion tracker for a group of spawned tasks. Stack-allocate one,
/// spawn against it, then wait() — it must outlive every task spawned
/// against it (wait() guarantees this). A TaskSync is reusable after
/// wait() returns. Not copyable, not movable (tasks hold its address).
class TaskSync {
 public:
  TaskSync() = default;
  TaskSync(const TaskSync&) = delete;
  TaskSync& operator=(const TaskSync&) = delete;
  ~TaskSync();

  /// Tasks spawned but not yet completed (racy snapshot; exact only when
  /// quiescent).
  std::size_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class TaskScheduler;

  /// First exception thrown by a task of this group (first writer wins);
  /// rethrown — and cleared — by wait().
  void record_error(std::exception_ptr e);

  std::atomic<std::size_t> pending_{0};
  /// Completers currently inside TaskScheduler::complete() for this sync.
  /// Raised *before* the pending_ decrement, dropped after the last
  /// access to this object — wait() returns (and the sync may be
  /// destroyed, e.g. parallel_for's stack TaskSync) only once this is
  /// zero, so a completer between "decrement to zero" and "claim the
  /// continuation cell" never touches a dead sync.
  std::atomic<std::size_t> completers_{0};
  /// Continuation handoff cell (a detail::TaskNode*). Written once by
  /// on_complete(), claimed (exchanged to null) exactly once by whichever
  /// side observes the drained counter last.
  std::atomic<void*> continuation_{nullptr};
  Mutex error_mutex_;
  std::exception_ptr error_ PF15_GUARDED_BY(error_mutex_);
  std::atomic<bool> has_error_{false};
};

class TaskScheduler {
 public:
  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit TaskScheduler(std::size_t threads = 0);
  /// Drains every queued task, then joins the workers. Tasks tracked by a
  /// TaskSync must already be waited for (their sync's wait() returned).
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Number of worker threads. An external caller inside wait() or
  /// parallel_for() helps too, so peak concurrency is size() + 1.
  std::size_t size() const { return workers_.size(); }

  /// Process-wide scheduler sized to the machine. All kernel-internal
  /// parallelism (GEMM, conv backends, the compiled executor) shares it.
  static TaskScheduler& global();

  /// True when the calling thread is one of this scheduler's workers.
  /// Informational only — unlike the old pool, waiting from a worker is
  /// legal (the wait helps instead of blocking).
  bool current_thread_in_scheduler() const;

  /// Schedules fn on the scheduler, tracked by `sync`. Never blocks.
  /// From a worker thread the task goes to the worker's own deque (LIFO
  /// — children run before the parent's siblings are stolen); from any
  /// other thread it goes through the injection queue.
  void spawn(TaskSync& sync, std::function<void()> fn);

  /// Schedules fn untracked; any exception it throws is logged and
  /// dropped (there is no one to rethrow to). Prefer spawn() + wait().
  void spawn_detached(std::function<void()> fn);

  /// Continuation: when `when` drains to zero pending tasks, fn is
  /// scheduled as a task tracked by `track` (whose pending count is
  /// raised immediately, so a wait(track) already covers the
  /// continuation before it is runnable). One continuation per TaskSync
  /// at a time; `when` and `track` must differ. If `when` is already
  /// drained, fn is scheduled immediately.
  void on_complete(TaskSync& when, TaskSync& track,
                   std::function<void()> fn);

  /// Blocks until every task tracked by `sync` has completed — by
  /// *executing* pending work (own deque, injection queue, steals), so
  /// calling this from inside a task is legal and productive. Rethrows
  /// the first exception recorded by a task of the group (and clears it,
  /// leaving the sync reusable).
  void wait(TaskSync& sync);

  /// Runs fn(i) for i in [begin, end), fanned across the scheduler with
  /// the caller participating; returns when all iterations are done.
  /// Iterations are chunked to bound scheduling overhead. Nestable to
  /// any depth, from worker and external threads alike.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Monotonic lifetime totals, for tests and diagnostics. spawned ==
  /// executed once the scheduler is quiescent; stolen counts the tasks
  /// that ran on a different worker than they were pushed on.
  struct Stats {
    std::uint64_t spawned = 0;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
  };
  Stats stats() const;

 private:
  struct Worker;
  static constexpr std::size_t kNotWorker = static_cast<std::size_t>(-1);

  void worker_loop(std::size_t index);
  /// One round of work discovery for the thread with worker index `self`
  /// (kNotWorker for external threads): local pop, injection queue,
  /// then a steal sweep. Null when nothing was found.
  detail::TaskNode* find_task(std::size_t self);
  detail::TaskNode* pop_injected();
  /// Runs the task, records errors into its sync, completes the sync
  /// (scheduling its continuation when the count drains), deletes it.
  void execute(detail::TaskNode* task);
  void complete(TaskSync& sync);
  void enqueue(detail::TaskNode* task);
  /// Parks the calling worker until the work epoch moves, with a 1ms
  /// timeout backstop against lost wakeups.
  void idle_wait(std::uint64_t seen_epoch);

  std::vector<std::unique_ptr<Worker>> workers_;

  /// Spawns from threads that are not workers of this scheduler.
  Mutex inject_mutex_;
  std::deque<detail::TaskNode*> injected_ PF15_GUARDED_BY(inject_mutex_);

  /// Sleep protocol: every enqueue bumps the epoch then wakes a sleeper
  /// if there is one. Sleepers re-check the epoch under the mutex before
  /// parking, so a wakeup between "found nothing" and "park" is never
  /// lost.
  Mutex sleep_mutex_;
  CondVar sleep_cv_;
  /// Workers currently parked (or committing to park). Incremented and
  /// decremented under sleep_mutex_; read lock-free by the wake fast
  /// path, hence atomic rather than PF15_GUARDED_BY.
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
};

}  // namespace pf15
