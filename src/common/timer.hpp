// Wall-clock timing used for per-layer profiles (Fig 5) and flop-rate
// measurement (§V): peak rate from the fastest iteration, sustained rate
// from the best contiguous window average.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

#include "common/errors.hpp"

namespace pf15 {

/// Monotonic wall timer with double-precision seconds.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Collects per-iteration durations and reports peak / sustained statistics
/// exactly as defined in §V of the paper.
class IterationTimeline {
 public:
  void record(double seconds) { times_.push_back(seconds); }

  std::size_t size() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

  /// Fastest single iteration (the paper's "peak" basis).
  double min_time() const {
    PF15_CHECK(!times_.empty());
    return *std::min_element(times_.begin(), times_.end());
  }

  double mean_time() const {
    PF15_CHECK(!times_.empty());
    double sum = 0.0;
    for (double t : times_) sum += t;
    return sum / static_cast<double>(times_.size());
  }

  /// Best (smallest) average over any contiguous window of `window`
  /// iterations — the paper's "sustained" basis.
  double best_window_mean(std::size_t window) const {
    PF15_CHECK(window > 0);
    PF15_CHECK_MSG(times_.size() >= window,
                   "need " << window << " iterations, have " << times_.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < window; ++i) sum += times_[i];
    double best = sum;
    for (std::size_t i = window; i < times_.size(); ++i) {
      sum += times_[i] - times_[i - window];
      best = std::min(best, sum);
    }
    return best / static_cast<double>(window);
  }

 private:
  std::vector<double> times_;
};

}  // namespace pf15
