// Clang -Wthread-safety annotations + annotated locking primitives.
//
// The concurrency tier (ThreadPool, DynamicBatcher, ServingEngine,
// ConvPlanCache, MetricsRegistry, the comm mailboxes) protects shared
// state with mutexes whose discipline lived only in comments. These
// macros make the discipline machine-checked: members annotated
// PF15_GUARDED_BY(mutex_) may only be touched with the mutex held,
// functions annotated PF15_REQUIRES(mutex_) may only be called with it
// held, and a clang build with -Wthread-safety -Werror (scripts/
// verify.sh --wthread-safety lane) turns every violation into a compile
// error. On compilers without the attribute (gcc) everything expands to
// nothing — zero cost, zero behaviour change.
//
// Clang's analysis does not see through libstdc++'s std::mutex /
// std::lock_guard (they carry no capability attributes), so the
// annotated code uses the wrappers below instead:
//
//   Mutex       — std::mutex as an annotated capability
//   MutexLock   — std::lock_guard, acquisition visible to the analysis
//   UniqueLock  — std::unique_lock, for condition-variable waits
//   CondVar     — std::condition_variable over UniqueLock
//
// Two idioms keep the analysis sound where it cannot follow the code:
// condition-variable waits are written as explicit while loops (a
// predicate lambda would be a separate function that the analysis sees
// reading guarded state lock-free), and destructors that intentionally
// read without locking (quiescence-by-contract, e.g. ~DynamicBatcher)
// say so with PF15_NO_THREAD_SAFETY_ANALYSIS plus a comment.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define PF15_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PF15_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define PF15_CAPABILITY(x) PF15_THREAD_ANNOTATION(capability(x))
#define PF15_SCOPED_CAPABILITY PF15_THREAD_ANNOTATION(scoped_lockable)
#define PF15_GUARDED_BY(x) PF15_THREAD_ANNOTATION(guarded_by(x))
#define PF15_PT_GUARDED_BY(x) PF15_THREAD_ANNOTATION(pt_guarded_by(x))
#define PF15_REQUIRES(...) \
  PF15_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PF15_ACQUIRE(...) \
  PF15_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PF15_RELEASE(...) \
  PF15_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PF15_TRY_ACQUIRE(...) \
  PF15_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PF15_EXCLUDES(...) PF15_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PF15_RETURN_CAPABILITY(x) PF15_THREAD_ANNOTATION(lock_returned(x))
#define PF15_NO_THREAD_SAFETY_ANALYSIS \
  PF15_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pf15 {

/// std::mutex as a clang capability. Same cost, same semantics; the
/// annotation is the only addition.
class PF15_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PF15_ACQUIRE() { m_.lock(); }
  void unlock() PF15_RELEASE() { m_.unlock(); }
  bool try_lock() PF15_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for UniqueLock/CondVar plumbing only. Callers
  /// locking through this bypass the analysis — don't.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard with the acquisition visible to the analysis.
class PF15_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) PF15_ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~MutexLock() PF15_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock for condition-variable waits. Locks on construction;
/// the destructor releases if still held (manual unlock() is allowed, as
/// std::unique_lock permits — the analysis tracks it).
class PF15_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) PF15_ACQUIRE(m) : lock_(m.native()) {}
  ~UniqueLock() PF15_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() PF15_ACQUIRE() { lock_.lock(); }
  void unlock() PF15_RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

  /// For CondVar only: the wait releases and reacquires internally, which
  /// the analysis (correctly) treats as "held before, held after".
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over UniqueLock. Waits take no predicate on
/// purpose: annotated call sites loop explicitly —
///
///   while (!ready_) cv_.wait(lock);   // ready_ read with the lock held
///
/// — because a predicate lambda is a separate function in which the
/// analysis cannot see the capability.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.native(), d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pf15
