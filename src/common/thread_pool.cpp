#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/errors.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pf15 {

namespace {

/// Pool-wide instruments: tasks executed, and how many workers are busy
/// right now across every ThreadPool in the process (the utilization
/// gauge the scheduler ROADMAP item will argue from).
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::global().counter(
      "pf15_pool_tasks_total", "thread pool tasks executed");
  obs::Gauge& busy = obs::MetricsRegistry::global().gauge(
      "pf15_pool_busy_threads", "pool workers currently running a task");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

/// The pool whose worker_loop the calling thread runs, if any. A worker
/// thread belongs to exactly one pool for its whole lifetime, so a plain
/// set-once thread_local is enough to answer "would blocking on pool P
/// here be a nested wait?".
thread_local const ThreadPool* t_worker_of = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  {
    MutexLock lock(mutex_);
    PF15_CHECK(!stop_);
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return result;
}

bool ThreadPool::current_thread_in_pool() const {
  return t_worker_of == this;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  // The wait-discipline oracle: blocking on this pool's own work from one
  // of its workers deadlocks once the pool saturates (the outer waits
  // consume every worker). Failing loudly here — instead of deadlocking
  // rarely under load — is what keeps the `parallel_ok` plumbing honest.
  PF15_CHECK_MSG(!current_thread_in_pool(),
                 "ThreadPool::parallel_for called from a worker of the same "
                 "pool (nested wait): the caller must run serially here — "
                 "pass parallel_ok=false down this code path");
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size() * 4);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // The calling thread participates too: it drains the shared chunk counter
  // alongside the workers so a 1-thread pool still makes progress.
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  auto run_chunks = [counter, chunks, chunk_size, begin, end, &fn] {
    for (;;) {
      const std::size_t c = counter->fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = begin + c * chunk_size;
      const std::size_t hi = std::min(end, lo + chunk_size);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
  };
  std::vector<std::future<void>> futures;
  const std::size_t helpers = std::min(size(), chunks - 1);
  futures.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) {
    futures.push_back(submit(run_chunks));
  }
  run_chunks();
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  PoolMetrics& metrics = pool_metrics();
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    metrics.busy.add(1.0);
    metrics.tasks.add(1);
    {
      // One span per submitted task (parallel_for chunks share their
      // task's span): gaps between spans on a worker track are idle time.
      obs::TraceSpan span("pool_task", "pool");
      task();
    }
    metrics.busy.add(-1.0);
  }
}

}  // namespace pf15
