#include "common/thread_pool.hpp"

#include <utility>

namespace pf15 {

ThreadPool::ThreadPool(std::size_t threads)
    : owned_(std::make_unique<TaskScheduler>(threads)),
      scheduler_(owned_.get()) {}

ThreadPool::ThreadPool(SharedTag, TaskScheduler& shared)
    : scheduler_(&shared) {}

ThreadPool::~ThreadPool() = default;

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  // packaged_task captures any exception into the future, so the
  // detached task itself never throws.
  scheduler_->spawn_detached([packaged] { (*packaged)(); });
  return result;
}

bool ThreadPool::current_thread_in_pool() const {
  return scheduler_->current_thread_in_scheduler();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  scheduler_->parallel_for(begin, end, fn);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(SharedTag{}, TaskScheduler::global());
  return pool;
}

}  // namespace pf15
