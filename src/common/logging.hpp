// Minimal leveled logger. Thread-safe (single global mutex around the
// write); hot paths never log, so contention is irrelevant.
#pragma once

#include <sstream>
#include <string>

namespace pf15 {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global minimum level (default kInfo). Messages below it are
/// discarded before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace pf15

#define PF15_LOG(level, stream_expr)                                \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::pf15::log_level())) {                    \
      std::ostringstream pf15_log_oss_;                             \
      pf15_log_oss_ << stream_expr;                                 \
      ::pf15::detail::log_emit(level, pf15_log_oss_.str());         \
    }                                                               \
  } while (false)

#define PF15_DEBUG(s) PF15_LOG(::pf15::LogLevel::kDebug, s)
#define PF15_INFO(s) PF15_LOG(::pf15::LogLevel::kInfo, s)
#define PF15_WARN(s) PF15_LOG(::pf15::LogLevel::kWarn, s)
#define PF15_ERROR(s) PF15_LOG(::pf15::LogLevel::kError, s)
