// Error handling primitives for pf15.
//
// We follow the C++ Core Guidelines: programming errors (violated
// preconditions) terminate loudly via PF15_CHECK; recoverable environment
// errors (missing files, bad configs) throw pf15::Error so callers can
// react. No error state is ever silently swallowed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pf15 {

/// Base class for all recoverable pf15 errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an I/O operation (shard read/write, checkpoint) fails.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a user-supplied configuration is inconsistent
/// (e.g. group count does not divide node count).
/// Thrown by communication waits interrupted because another rank of the
/// same in-process cluster failed (our MPI_Abort equivalent). Secondary by
/// construction: the root cause is the other rank's exception.
class AbortedError : public Error {
 public:
  explicit AbortedError(const std::string& what) : Error(what) {}
};

class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace pf15

/// Precondition / invariant check. Active in all build types: the cost is
/// negligible next to the kernels and silent corruption in a distributed
/// trainer is far worse than a branch.
#define PF15_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::pf15::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
    }                                                                    \
  } while (false)

/// Like PF15_CHECK but with a streamed message:
///   PF15_CHECK_MSG(a == b, "shape mismatch: " << a << " vs " << b);
#define PF15_CHECK_MSG(expr, stream_expr)                                \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      std::ostringstream pf15_check_oss_;                                \
      pf15_check_oss_ << stream_expr;                                    \
      ::pf15::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                   pf15_check_oss_.str());               \
    }                                                                    \
  } while (false)
