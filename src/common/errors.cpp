#include "common/errors.hpp"

#include <cstdio>
#include <sstream>

namespace pf15::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "PF15_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  // Log before throwing: if the exception escapes a rank thread or a
  // noexcept boundary the message still reaches the operator.
  std::fprintf(stderr, "%s\n", oss.str().c_str());
  std::fflush(stderr);
  throw Error(oss.str());
}

}  // namespace pf15::detail
