// Cache-line / SIMD aligned buffer. The GEMM microkernels and the tensor
// storage both require 64-byte alignment so that vector loads never split
// cache lines.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/errors.hpp"

namespace pf15 {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Allocate `n` objects of type T aligned to 64 bytes. Returned memory is
/// uninitialised; use only with trivially-constructible T.
template <typename T>
T* aligned_alloc_array(std::size_t n) {
  static_assert(std::is_trivially_destructible_v<T>,
                "aligned buffers hold trivial types only");
  if (n == 0) return nullptr;
  const std::size_t bytes =
      ((n * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
      kCacheLineBytes;
  void* p = std::aligned_alloc(kCacheLineBytes, bytes);
  if (p == nullptr) throw std::bad_alloc{};
  return static_cast<T*>(p);
}

struct FreeDeleter {
  void operator()(void* p) const noexcept { std::free(p); }
};

/// Owning, movable, 64-byte-aligned array of trivially-destructible T.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n)
      : data_(aligned_alloc_array<T>(n)), size_(n) {}

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  T* data() noexcept { return data_.get(); }
  const T* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_.get()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_.get()[i]; }

 private:
  std::unique_ptr<T[], FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace pf15
