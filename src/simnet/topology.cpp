#include "simnet/topology.hpp"

#include <algorithm>
#include <numeric>

namespace pf15::simnet {

Dragonfly::Dragonfly(const DragonflyConfig& cfg) : cfg_(cfg) {
  PF15_CHECK(cfg.electrical_groups >= 1);
  PF15_CHECK(cfg.routers_per_group >= 1);
  PF15_CHECK(cfg.nodes_per_router >= 1);
}

int Dragonfly::group_of(int node) const {
  PF15_CHECK(node >= 0 && node < cfg_.nodes());
  return node / (cfg_.routers_per_group * cfg_.nodes_per_router);
}

int Dragonfly::router_of(int node) const {
  PF15_CHECK(node >= 0 && node < cfg_.nodes());
  return node / cfg_.nodes_per_router;
}

Dragonfly::Route Dragonfly::route(int src, int dst) const {
  Route r;
  if (src == dst) return r;
  const int src_router = router_of(src);
  const int dst_router = router_of(dst);
  if (src_router == dst_router) {
    r.routers = 1;  // through the shared router
    return r;
  }
  const int src_group = group_of(src);
  const int dst_group = group_of(dst);
  if (src_group == dst_group) {
    // Routers within an electrical group are all-to-all: one local link.
    r.routers = 2;
    r.local_links = 1;
    return r;
  }
  // Minimal dragonfly route: source router -> gateway (local), gateway ->
  // remote gateway (global), remote gateway -> destination router (local).
  r.routers = 4;
  r.local_links = 2;
  r.global_links = 1;
  return r;
}

double Dragonfly::latency(int src, int dst, const HopCosts& costs) const {
  const Route r = route(src, dst);
  return r.routers * costs.router + r.local_links * costs.local +
         r.global_links * costs.global;
}

Placement place_job(const Dragonfly& machine, int groups,
                    int workers_per_group, int ps_nodes,
                    PlacementPolicy policy, std::uint64_t seed) {
  PF15_CHECK(groups >= 1 && workers_per_group >= 1 && ps_nodes >= 0);
  const int total = groups * workers_per_group + ps_nodes;
  PF15_CHECK_MSG(total <= machine.config().nodes(),
                 "job of " << total << " ranks exceeds machine of "
                           << machine.config().nodes() << " nodes");

  Placement p;
  p.workers = groups * workers_per_group;
  p.groups = groups;
  p.ps_nodes = ps_nodes;
  p.node_of_rank.resize(static_cast<std::size_t>(total));

  switch (policy) {
    case PlacementPolicy::kLinear: {
      std::iota(p.node_of_rank.begin(), p.node_of_rank.end(), 0);
      return p;
    }
    case PlacementPolicy::kRandom: {
      std::vector<int> nodes(static_cast<std::size_t>(
          machine.config().nodes()));
      std::iota(nodes.begin(), nodes.end(), 0);
      Rng rng(seed);
      // Fisher-Yates over the prefix we need.
      for (int i = 0; i < total; ++i) {
        const auto j = i + static_cast<int>(rng.uniform_int(
                               static_cast<std::uint64_t>(
                                   machine.config().nodes() - i)));
        std::swap(nodes[static_cast<std::size_t>(i)],
                  nodes[static_cast<std::size_t>(j)]);
        p.node_of_rank[static_cast<std::size_t>(i)] =
            nodes[static_cast<std::size_t>(i)];
      }
      return p;
    }
    case PlacementPolicy::kIdeal: {
      // Pack each compute group into electrical groups, starting each
      // compute group at a fresh electrical group when it fits entirely
      // inside one (Fig 3); PS nodes fill in after the workers.
      const int eg_capacity = machine.config().routers_per_group *
                              machine.config().nodes_per_router;
      int next_node = 0;
      int rank = 0;
      for (int g = 0; g < groups; ++g) {
        if (workers_per_group <= eg_capacity) {
          const int used_in_eg = next_node % eg_capacity;
          if (used_in_eg + workers_per_group > eg_capacity) {
            next_node += eg_capacity - used_in_eg;  // advance to a fresh EG
          }
        }
        for (int w = 0; w < workers_per_group; ++w) {
          p.node_of_rank[static_cast<std::size_t>(rank++)] = next_node++;
        }
      }
      for (int s = 0; s < ps_nodes; ++s) {
        p.node_of_rank[static_cast<std::size_t>(rank++)] = next_node++;
      }
      PF15_CHECK(next_node <= machine.config().nodes());
      return p;
    }
  }
  PF15_CHECK(false);
  return p;
}

double mean_group_latency(const Dragonfly& machine, const Placement& p,
                          int group, int workers_per_group,
                          const HopCosts& costs) {
  PF15_CHECK(group >= 0 && group < p.groups);
  const int base = group * workers_per_group;
  if (workers_per_group <= 1) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (int a = 0; a < workers_per_group; ++a) {
    for (int b = a + 1; b < workers_per_group; ++b) {
      total += machine.latency(
          p.node_of_rank[static_cast<std::size_t>(base + a)],
          p.node_of_rank[static_cast<std::size_t>(base + b)], costs);
      ++pairs;
    }
  }
  return total / pairs;
}

double mean_root_ps_latency(const Dragonfly& machine, const Placement& p,
                            int workers_per_group, const HopCosts& costs) {
  if (p.ps_nodes == 0) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (int g = 0; g < p.groups; ++g) {
    const int root_node =
        p.node_of_rank[static_cast<std::size_t>(g * workers_per_group)];
    for (int s = 0; s < p.ps_nodes; ++s) {
      const int ps_node =
          p.node_of_rank[static_cast<std::size_t>(p.workers + s)];
      total += machine.latency(root_node, ps_node, costs);
      ++pairs;
    }
  }
  return total / pairs;
}

double containment_fraction(const Dragonfly& machine, const Placement& p,
                            int workers_per_group) {
  int contained = 0;
  for (int g = 0; g < p.groups; ++g) {
    const int base = g * workers_per_group;
    const int eg = machine.group_of(
        p.node_of_rank[static_cast<std::size_t>(base)]);
    bool all_same = true;
    for (int w = 1; w < workers_per_group; ++w) {
      if (machine.group_of(p.node_of_rank[static_cast<std::size_t>(
              base + w)]) != eg) {
        all_same = false;
        break;
      }
    }
    if (all_same) ++contained;
  }
  return static_cast<double>(contained) / p.groups;
}

}  // namespace pf15::simnet
