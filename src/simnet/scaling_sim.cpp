#include "simnet/scaling_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/timer.hpp"
#include "nn/climate_net.hpp"
#include "nn/hep_model.hpp"
#include "simnet/event_engine.hpp"

namespace pf15::simnet {

double SimResult::min_iteration_time() const {
  PF15_CHECK(!iteration_times.empty());
  return *std::min_element(iteration_times.begin(), iteration_times.end());
}

double SimResult::mean_iteration_time() const {
  PF15_CHECK(!iteration_times.empty());
  double s = 0.0;
  for (double t : iteration_times) s += t;
  return s / static_cast<double>(iteration_times.size());
}

double SimResult::best_window_mean(std::size_t window) const {
  IterationTimeline timeline;
  for (double t : iteration_times) timeline.record(t);
  return timeline.best_window_mean(window);
}

namespace {

/// The simulation state machine. Groups run compute -> all-reduce ->
/// (PS exchange ->) broadcast -> next iteration; parameter servers are
/// FIFO queues shared by all groups.
class Sim {
 public:
  Sim(const CoriConfig& machine, const WorkloadProfile& workload,
      const ScalingConfig& scaling)
      : machine_(machine),
        workload_(workload),
        scaling_(scaling),
        rng_(machine.seed) {
    PF15_CHECK(scaling_.nodes >= 1);
    PF15_CHECK(scaling_.groups >= 1);
    PF15_CHECK_MSG(scaling_.nodes % scaling_.groups == 0,
                   "nodes must divide into groups");
    group_size_ = scaling_.nodes / scaling_.groups;
    if (scaling_.batch_per_group > 0) {
      group_batch_ = static_cast<double>(scaling_.batch_per_group);
    } else {
      PF15_CHECK_MSG(scaling_.batch_per_node > 0,
                     "set batch_per_group or batch_per_node");
      group_batch_ = static_cast<double>(scaling_.batch_per_node) *
                     static_cast<double>(group_size_);
    }
    local_batch_ = group_batch_ / static_cast<double>(group_size_);
    PF15_CHECK_MSG(local_batch_ >= 1.0,
                   "fewer than one sample per node: batch too small for "
                       << scaling_.nodes << " nodes");

    const std::size_t shards = workload_.shard_bytes.size();
    PF15_CHECK(shards >= 1);
    if (scaling_.groups > 1) {
      std::size_t ps_count =
          scaling_.single_ps
              ? 1
              : (shards + static_cast<std::size_t>(scaling_.ps_per_layer) -
                 1) /
                    static_cast<std::size_t>(scaling_.ps_per_layer);
      ps_busy_until_.assign(ps_count, 0.0);
      shard_to_ps_.resize(shards);
      for (std::size_t i = 0; i < shards; ++i) {
        shard_to_ps_[i] = i % ps_count;
      }
    }
    groups_.resize(static_cast<std::size_t>(scaling_.groups));
    for (int g = 0; g < scaling_.groups; ++g) {
      groups_[static_cast<std::size_t>(g)].first_node = g * group_size_;
    }
  }

  SimResult run() {
    for (int g = 0; g < scaling_.groups; ++g) {
      begin_iteration(g);
    }
    engine_.run();
    SimResult result;
    result.duration = last_completion_;
    result.iteration_times = std::move(iteration_times_);
    result.images_processed = images_processed_;
    result.events = engine_.events_processed();
    for (const auto& g : groups_) {
      result.groups.push_back({g.iterations_done, g.halted});
    }
    return result;
  }

 private:
  struct Group {
    int first_node = 0;
    std::size_t iterations_done = 0;
    double iter_start = 0.0;
    std::size_t pending_replies = 0;
    bool halted = false;
  };

  void begin_iteration(int gid) {
    Group& g = groups_[static_cast<std::size_t>(gid)];
    g.iter_start = engine_.now();

    // Per-member compute time: kernels + synchronous I/O. The group's
    // synchronous phase ends at the *max* over members — the straggler
    // effect (§II-B1b).
    const double flops =
        static_cast<double>(workload_.flops_per_sample) * local_batch_;
    const double io = workload_.io_seconds_per_sample * local_batch_;
    double max_comp = 0.0;
    for (int m = 0; m < group_size_; ++m) {
      const int node = g.first_node + m;
      const double comp =
          machine_.node.compute_seconds(flops, local_batch_, rng_) + io;
      if (node == scaling_.fail_node && scaling_.fail_time >= 0.0 &&
          scaling_.fail_time <= engine_.now() + comp) {
        // A dead node never reaches the barrier: the group stalls forever
        // (§VIII-A: "even a single node failure can cause complete failure
        // of synchronous runs; hybrid runs are much more resilient").
        g.halted = true;
        return;
      }
      max_comp = std::max(max_comp, comp);
    }
    const double allreduce = machine_.network.allreduce_seconds(
        group_size_, workload_.model_bytes(), rng_,
        workload_.shard_bytes.size());
    const double ready = engine_.now() + max_comp + allreduce;

    if (scaling_.groups == 1) {
      // Fully synchronous: local solver update, no PS tier.
      engine_.schedule_at(ready + workload_.update_seconds,
                          [this, gid] { complete_iteration(gid); });
      return;
    }

    // Hybrid: the group root pushes one update per shard to that shard's
    // PS; uploads serialize through the root's NIC, service queues at each
    // PS, replies return asynchronously (§III-E, Fig 4).
    g.pending_replies = workload_.shard_bytes.size();
    double send_done = ready;
    for (std::size_t shard = 0; shard < workload_.shard_bytes.size();
         ++shard) {
      const std::size_t bytes = workload_.shard_bytes[shard];
      send_done += static_cast<double>(bytes) / machine_.network.bandwidth;
      const double arrival = send_done + machine_.network.latency;
      engine_.schedule_at(arrival, [this, gid, shard, bytes] {
        const std::size_t ps = shard_to_ps_[shard];
        const double start =
            std::max(engine_.now(), ps_busy_until_[ps]);
        const double service =
            machine_.ps.service_base +
            static_cast<double>(bytes) * machine_.ps.service_per_byte;
        ps_busy_until_[ps] = start + service;
        const double reply_at =
            ps_busy_until_[ps] +
            machine_.network.xfer_seconds(bytes, rng_) +
            machine_.ps.stall_seconds(rng_);
        engine_.schedule_at(reply_at, [this, gid] { on_reply(gid); });
      });
    }
  }

  void on_reply(int gid) {
    Group& g = groups_[static_cast<std::size_t>(gid)];
    PF15_CHECK(g.pending_replies > 0);
    if (--g.pending_replies > 0) return;
    // Fresh model in hand: broadcast to the group, then next iteration.
    const double bcast = machine_.network.broadcast_seconds(
        group_size_, workload_.model_bytes(), rng_);
    engine_.schedule_in(bcast, [this, gid] { complete_iteration(gid); });
  }

  void complete_iteration(int gid) {
    Group& g = groups_[static_cast<std::size_t>(gid)];
    double finish = engine_.now();
    ++g.iterations_done;
    // Checkpoint overhead lands on the iteration that snapshots (the
    // climate sustained measurement in §VI-B3 includes this).
    if (machine_.checkpoint_every > 0 &&
        g.iterations_done % machine_.checkpoint_every == 0) {
      finish += machine_.checkpoint_seconds;
    }
    iteration_times_.push_back(finish - g.iter_start);
    images_processed_ += static_cast<std::uint64_t>(group_batch_);
    last_completion_ = std::max(last_completion_, finish);
    if (g.iterations_done < scaling_.iterations) {
      engine_.schedule_at(finish, [this, gid] { begin_iteration(gid); });
    }
  }

  const CoriConfig& machine_;
  const WorkloadProfile& workload_;
  const ScalingConfig& scaling_;
  Rng rng_;
  EventEngine engine_;

  int group_size_ = 1;
  double group_batch_ = 0.0;
  double local_batch_ = 0.0;
  std::vector<Group> groups_;
  std::vector<double> ps_busy_until_;
  std::vector<std::size_t> shard_to_ps_;
  std::vector<double> iteration_times_;
  std::uint64_t images_processed_ = 0;
  double last_completion_ = 0.0;
};

}  // namespace

SimResult simulate_training(const CoriConfig& machine,
                            const WorkloadProfile& workload,
                            const ScalingConfig& scaling) {
  return Sim(machine, workload, scaling).run();
}

double speedup_vs_single_node(const CoriConfig& machine,
                              const WorkloadProfile& workload,
                              const ScalingConfig& scaling) {
  ScalingConfig base = scaling;
  base.nodes = 1;
  base.groups = 1;
  base.fail_node = -1;
  if (scaling.batch_per_group == 0) {
    // Weak scaling: the single node keeps the same per-node batch.
    base.batch_per_node = scaling.batch_per_node;
  }
  // Keep baseline runs short: per-iteration time is stationary.
  base.iterations = std::min<std::size_t>(scaling.iterations, 20);
  const SimResult base_result =
      simulate_training(machine, workload, base);
  const SimResult result = simulate_training(machine, workload, scaling);
  PF15_CHECK(base_result.throughput() > 0.0);
  return result.throughput() / base_result.throughput();
}

WorkloadProfile hep_workload() {
  nn::HepConfig cfg;  // paper-size 224x224x3, 5 units, 128 filters
  nn::Sequential net = nn::build_hep_network(cfg);
  WorkloadProfile w;
  for (const auto& p : net.params()) {
    w.shard_bytes.push_back(p.value->numel() * sizeof(float));
  }
  const Shape in{1, cfg.channels, cfg.image, cfg.image};
  w.flops_per_sample = net.forward_flops(in) + net.backward_flops(in);
  // §VI-A: solver update ~12.5% of the batch-8 iteration (~66 ms), I/O
  // ~2%: low-resolution 3-channel data.
  w.update_seconds = 8.0e-3;
  w.io_seconds_per_sample = 0.17e-3;
  return w;
}

WorkloadProfile climate_workload() {
  nn::ClimateConfig cfg;  // paper-size 768x768x16
  nn::ClimateNet net(cfg);
  WorkloadProfile w;
  for (auto& p : net.params()) {
    w.shard_bytes.push_back(p.value->numel() * sizeof(float));
  }
  const Shape in{1, cfg.channels, cfg.image, cfg.image};
  w.flops_per_sample = net.forward_flops(in) + net.backward_flops(in);
  // §VI-A: solver update < 2% of the iteration, I/O ~13% (high-resolution
  // 16-channel inputs through a single-threaded reader).
  w.update_seconds = 30.0e-3;
  w.io_seconds_per_sample = 55.0e-3;
  return w;
}

}  // namespace pf15::simnet
