// Discrete-event simulation of synchronous and hybrid distributed training
// at Cori scale. This is the substrate behind Figures 6 and 7 and the
// overall-PFLOP/s numbers of §VI-B3: the mechanisms the paper identifies —
// straggler max() effects in synchronous groups, per-node minibatch
// efficiency loss under strong scaling, per-layer PS queueing, checkpoint
// overhead, node failure — are all represented explicitly.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/cori_model.hpp"

namespace pf15::simnet {

struct ScalingConfig {
  int nodes = 64;           // worker nodes (PS nodes are extra)
  int groups = 1;           // 1 = fully synchronous
  /// Per-update batch. Strong scaling: each synchronous group processes
  /// `batch_per_group` images per update, split across its members.
  /// Weak scaling: set batch_per_node instead and leave this 0.
  std::size_t batch_per_group = 0;
  std::size_t batch_per_node = 0;  // used when batch_per_group == 0
  std::size_t iterations = 60;     // per group
  int ps_per_layer = 1;  // >=1: PS count = shards/ps_per_layer rounding up
  bool single_ps = false;  // ablation: one monolithic PS
  /// Simulated node failure: this node dies at the given time (<0: none).
  int fail_node = -1;
  double fail_time = -1.0;
};

struct SimGroupStats {
  std::size_t iterations_completed = 0;
  bool halted = false;  // stopped by a node failure
};

struct SimResult {
  double duration = 0.0;             // simulated seconds until finish
  std::vector<double> iteration_times;  // every group iteration duration
  std::vector<SimGroupStats> groups;
  std::uint64_t images_processed = 0;
  std::uint64_t events = 0;

  double throughput() const {  // images per simulated second
    return duration > 0.0
               ? static_cast<double>(images_processed) / duration
               : 0.0;
  }
  /// Sustained FLOP rate given per-sample work.
  double flops_rate(std::uint64_t flops_per_sample) const {
    return throughput() * static_cast<double>(flops_per_sample);
  }
  double min_iteration_time() const;
  double mean_iteration_time() const;
  /// Best contiguous-window mean (the §V "sustained" basis).
  double best_window_mean(std::size_t window) const;
};

/// Runs one simulated training job.
SimResult simulate_training(const CoriConfig& machine,
                            const WorkloadProfile& workload,
                            const ScalingConfig& scaling);

/// Speedup of configuration `scaling` over the single-node, single-group
/// baseline with the same per-update workload accounting as the paper:
/// images/second relative to one node.
double speedup_vs_single_node(const CoriConfig& machine,
                              const WorkloadProfile& workload,
                              const ScalingConfig& scaling);

/// Workload profiles for the two paper networks, derived from the real
/// pf15::nn models' analytic FLOP counts and parameter sizes. `scale`
/// optionally shrinks the architecture (tests); 1.0 = paper-size.
WorkloadProfile hep_workload();
WorkloadProfile climate_workload();

}  // namespace pf15::simnet
