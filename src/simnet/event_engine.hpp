// Minimal discrete-event simulation engine.
//
// Deterministic: events at equal timestamps fire in schedule order (a
// monotonic sequence number breaks ties), so every simulated experiment is
// exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/errors.hpp"

namespace pf15::simnet {

class EventEngine {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute simulated time `when` (>= now()).
  void schedule_at(double when, Callback fn) {
    PF15_CHECK_MSG(when >= now_, "cannot schedule in the past: "
                                     << when << " < " << now_);
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a delay (>= 0) from now.
  void schedule_in(double delay, Callback fn) {
    PF15_CHECK(delay >= 0.0);
    schedule_at(now_ + delay, std::move(fn));
  }

  double now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Runs until the queue drains or `until` is passed (whichever first).
  void run(double until = std::numeric_limits<double>::infinity()) {
    while (!queue_.empty()) {
      // top() is const; copy the (cheap) header then pop before firing so
      // callbacks may schedule freely.
      const Event& top = queue_.top();
      if (top.when > until) break;
      now_ = top.when;
      Callback fn = std::move(const_cast<Event&>(top).fn);
      queue_.pop();
      ++processed_;
      fn();
    }
    if (queue_.empty() && until <
        std::numeric_limits<double>::infinity()) {
      now_ = std::max(now_, until);
    }
  }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace pf15::simnet
