// Dragonfly topology and job placement (§IV, Fig 3).
//
// Cori's Aries interconnect is a dragonfly: nodes attach to routers,
// routers form all-to-all-connected "electrical groups", and groups are
// joined by optical links. Minimal routing crosses at most one optical
// hop (local -> global -> local), so the hop count between two nodes is a
// small function of their placement. Figure 3 shows the paper's *ideal*
// placement — each compute group contained in one electrical group, so
// all-reduce traffic stays on cheap local links and only the root <-> PS
// exchange crosses the optical fabric. The scheduler rarely grants that;
// the placement ablation quantifies what random placement costs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace pf15::simnet {

struct DragonflyConfig {
  int electrical_groups = 24;   // Cori-scale: ~24 Aries groups
  int routers_per_group = 96;   // 2-cabinet group, 96 Aries routers
  int nodes_per_router = 4;     // 4 KNL nodes per Aries router

  int nodes() const {
    return electrical_groups * routers_per_group * nodes_per_router;
  }
};

/// Hop-level cost weights of one traversal, in seconds. Local (intra-
/// group) links are short electrical; global links are optical with
/// higher serialization latency.
struct HopCosts {
  double router = 0.3e-6;  // per-router pipeline latency
  double local = 0.5e-6;   // electrical group-internal link
  double global = 1.2e-6;  // optical inter-group link
};

class Dragonfly {
 public:
  explicit Dragonfly(const DragonflyConfig& cfg);

  const DragonflyConfig& config() const { return cfg_; }

  int group_of(int node) const;
  int router_of(int node) const;

  /// Hops of a minimally-routed packet: 0 for same node, 1 router hop for
  /// same router, local hops within a group, local-global-local across
  /// groups.
  struct Route {
    int routers = 0;
    int local_links = 0;
    int global_links = 0;
  };
  Route route(int src, int dst) const;

  /// Wire latency of one traversal under `costs`.
  double latency(int src, int dst, const HopCosts& costs) const;

 private:
  DragonflyConfig cfg_;
};

enum class PlacementPolicy {
  /// Fig 3: compute groups packed into electrical groups, PS nodes in the
  /// fewest extra groups.
  kIdeal,
  /// Consecutive node ids — what a batch scheduler gives an undemanding
  /// job; compute groups straddle electrical-group boundaries.
  kLinear,
  /// Uniform random — a fragmented machine.
  kRandom,
};

/// Maps job ranks (0..total_ranks) to machine node ids. Workers come
/// first (grouped: `groups` compute groups of `workers_per_group`), then
/// `ps_nodes` parameter servers.
struct Placement {
  std::vector<int> node_of_rank;
  int workers = 0;
  int groups = 1;
  int ps_nodes = 0;
};

Placement place_job(const Dragonfly& machine, int groups,
                    int workers_per_group, int ps_nodes,
                    PlacementPolicy policy, std::uint64_t seed = 1);

/// Mean pairwise latency among a compute group's members — the per-step
/// latency term an all-reduce over those nodes pays per round.
double mean_group_latency(const Dragonfly& machine, const Placement& p,
                          int group, int workers_per_group,
                          const HopCosts& costs);

/// Mean latency from each group root to the PS nodes (the Fig 4 exchange
/// path).
double mean_root_ps_latency(const Dragonfly& machine, const Placement& p,
                            int workers_per_group, const HopCosts& costs);

/// Fraction of a placement's compute groups fully contained in one
/// electrical group (1.0 for kIdeal when capacity allows).
double containment_fraction(const Dragonfly& machine, const Placement& p,
                            int workers_per_group);

}  // namespace pf15::simnet
