// Timing model of the Cori Phase II machine (§IV) and of the deep-learning
// workload running on it. Constants are calibrated against the paper's own
// measurements where available:
//   * KNL single-precision peak: 68 cores x 1.4 GHz x 64 FLOP/cycle
//     = 6.09 TFLOP/s per node.
//   * Measured HEP throughput of 1.90 TFLOP/s at minibatch 8 = 31% of
//     peak, consistent with the DeepBench observation (§II-A) that small
//     minibatches run at 20-30% efficiency while large ones reach 75-80%.
//     We encode that as a saturating efficiency curve eff(b).
//   * Run-to-run variability "as high as 30%" at scale (§VIII-A) becomes a
//     lognormal compute jitter plus a heavy-tailed straggler term.
//   * Aries interconnect: microsecond-class latency, multi-GB/s injection
//     bandwidth per node.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace pf15::simnet {

/// Saturating efficiency-vs-minibatch curve, DeepBench-shaped, with a
/// floor:
///   eff(b) = eff_floor + (eff_max - eff_floor) * b / (b + b_half).
/// Calibration pins three paper-derived points: eff(8) = 0.31 (Fig 5a:
/// 1.90 TFLOP/s of the 6.09 TFLOP/s node peak at minibatch 8), the
/// DeepBench plateau eff_max ~= 0.8 (§II-A, 75-80% for large batches),
/// and eff(1) ~= 0.19 implied by the §VI-B3 full-system HEP run (11.73
/// PFLOP/s over 9594 nodes at ~1 image per node per update). The floor is
/// what lets one curve satisfy all three.
struct EfficiencyCurve {
  double eff_max = 0.80;
  double eff_floor = 0.17;
  double b_half = 28.0;

  double at(double batch) const {
    PF15_CHECK(batch > 0.0);
    return eff_floor + (eff_max - eff_floor) * batch / (batch + b_half);
  }
};

struct NodeModel {
  double peak_flops = 6.09e12;  // KNL single-precision peak (§IV)
  EfficiencyCurve efficiency;
  /// Activation memory bounds the on-node micro-batch: a local batch B is
  /// processed in chunks of at most `micro_batch` samples, so kernel
  /// efficiency is eff(min(B, micro_batch)). This is why strong scaling
  /// only loses kernel efficiency once the per-node batch drops *below*
  /// the micro-batch (§VI-B1: "single node performance drop from reduced
  /// minibatch sizes at scale").
  double micro_batch = 8.0;
  /// Lognormal sigma of per-iteration compute jitter (OS noise etc.).
  double jitter_sigma = 0.05;
  /// Per-node, per-iteration probability of a straggler event ...
  double straggler_prob = 0.008;
  /// ... which multiplies compute time by U[min,max] *and* adds an
  /// absolute service delay (exponential with the mean below): OS noise,
  /// page-cache misses and network service interruptions do not shrink
  /// when the per-node work does. The expected *maximum* delay across a
  /// synchronous group grows with the group size, which is what makes
  /// sync strong scaling saturate (§II-B1b, §VIII-A: variability "as high
  /// as 30%" and worse with scale) even after kernels stop losing
  /// efficiency.
  double straggler_min = 1.1;
  double straggler_max = 1.3;
  double straggler_delay_mean = 0.005;  // seconds

  /// Compute seconds for `flops` of work at per-node local batch `batch`.
  double compute_seconds(double flops, double batch, Rng& rng) const {
    const double eff_batch = std::min(batch, micro_batch);
    const double base = flops / (peak_flops * efficiency.at(eff_batch));
    double t = base * rng.lognormal(0.0, jitter_sigma);
    if (rng.bernoulli(straggler_prob)) {
      t *= straggler_min + rng.uniform() * (straggler_max - straggler_min);
      t += rng.exponential(1.0 / straggler_delay_mean);
    }
    return t;
  }
};

struct NetworkModel {
  double latency = 1.5e-6;        // per-hop software+wire latency [s]
  double bandwidth = 8.0e9;       // per-node injection bandwidth [B/s]
  double comm_jitter_sigma = 0.10;
  /// Software cost per collective round per reduction (MLSL endpoint
  /// scheduling, progress-thread wakeups). The paper's layers reduce
  /// *separately* (~590 KB each for HEP, §VI-B2), so a network of L
  /// trainable layers pays ~2·log2(n)·L of these per iteration — the
  /// term that makes synchronous strong scaling saturate once per-node
  /// compute shrinks below it.
  double software_overhead = 100e-6;

  double xfer_seconds(std::size_t bytes, Rng& rng) const {
    return (latency + static_cast<double>(bytes) / bandwidth) *
           rng.lognormal(0.0, comm_jitter_sigma);
  }

  /// All-reduce over `n` nodes of `bytes` split into `reductions`
  /// per-layer collectives: recursive-halving latency+software rounds per
  /// reduction plus one ring bandwidth term for the full volume (what a
  /// tuned library achieves).
  double allreduce_seconds(int n, std::size_t bytes, Rng& rng,
                           std::size_t reductions = 1) const {
    if (n <= 1) return 0.0;
    PF15_CHECK(reductions >= 1);
    const double log2n = std::log2(static_cast<double>(n));
    const double lat = 2.0 * log2n * (latency + software_overhead) *
                       static_cast<double>(reductions);
    const double bw = 2.0 * static_cast<double>(bytes) / bandwidth *
                      (static_cast<double>(n - 1) / static_cast<double>(n));
    return (lat + bw) * rng.lognormal(0.0, comm_jitter_sigma);
  }

  /// Broadcast of `bytes` to `n` nodes (binomial tree, pipelined).
  double broadcast_seconds(int n, std::size_t bytes, Rng& rng) const {
    if (n <= 1) return 0.0;
    const double log2n = std::log2(static_cast<double>(n));
    return (log2n * latency + static_cast<double>(bytes) / bandwidth) *
           rng.lognormal(0.0, comm_jitter_sigma);
  }
};

struct PsModel {
  /// PS-side service: fixed handling cost plus per-byte apply+copy cost.
  double service_base = 20e-6;
  double service_per_byte = 1.0 / 6.0e9;  // memory-bandwidth bound update
  /// Heavy-tail stall on a shard exchange (endpoint contention, proxy
  /// scheduling): §VI-B2 blames the "two additional communication steps
  /// (to and from the PS)" for hybrid's weak-scaling disadvantage on the
  /// jitter-sensitive HEP network — these events are that mechanism.
  double stall_prob = 0.08;
  double stall_mean = 0.025;  // seconds, exponential

  double stall_seconds(Rng& rng) const {
    return rng.bernoulli(stall_prob)
               ? rng.exponential(1.0 / stall_mean)
               : 0.0;
  }
};

/// What one training iteration of the target network costs — extracted
/// from the real pf15::nn models (see workload_from_* helpers in
/// scaling_sim.hpp).
struct WorkloadProfile {
  /// Bytes of each trainable parameter tensor (per-layer PS traffic).
  std::vector<std::size_t> shard_bytes;
  /// Forward+backward FLOPs for ONE sample.
  std::uint64_t flops_per_sample = 0;
  /// Seconds of solver/update work per iteration per node (the §VI-A
  /// "solver update" overhead: ~12.5% for HEP, <2% for climate).
  double update_seconds = 0.0;
  /// Per-sample I/O seconds on a worker (HDF5-style synchronous read).
  double io_seconds_per_sample = 0.0;

  std::size_t model_bytes() const {
    std::size_t total = 0;
    for (auto b : shard_bytes) total += b;
    return total;
  }
};

struct CoriConfig {
  NodeModel node;
  NetworkModel network;
  PsModel ps;
  /// Seconds to write one model snapshot (checkpoint).
  double checkpoint_seconds = 2.0;
  /// Checkpoint every k iterations (0 = never). The climate sustained
  /// number in §VI-B3 includes a snapshot every 10 iterations.
  std::size_t checkpoint_every = 0;
  std::uint64_t seed = 42;
};

}  // namespace pf15::simnet
