#include "ps/sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/errors.hpp"

namespace pf15::ps {

SparseUpdate topk_select(std::span<const float> data, std::size_t k) {
  SparseUpdate update;
  const std::size_t n = data.size();
  if (k >= n) {
    update.indices.resize(n);
    std::iota(update.indices.begin(), update.indices.end(), 0u);
    update.values.assign(data.begin(), data.end());
    return update;
  }
  if (k == 0) return update;

  // Partial-select the k largest-|x| positions, then restore index order
  // so the result is deterministic and cache-friendly to apply.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k) - 1,
                   order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const float fa = std::fabs(data[a]);
                     const float fb = std::fabs(data[b]);
                     return fa != fb ? fa > fb : a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());

  update.indices = std::move(order);
  update.values.reserve(k);
  for (std::uint32_t idx : update.indices) {
    update.values.push_back(data[idx]);
  }
  return update;
}

std::vector<float> topk_densify(const SparseUpdate& update, std::size_t n) {
  std::vector<float> dense(n, 0.0f);
  PF15_CHECK(update.indices.size() == update.values.size());
  for (std::size_t i = 0; i < update.indices.size(); ++i) {
    PF15_CHECK_MSG(update.indices[i] < n,
                   "sparse index " << update.indices[i] << " out of " << n);
    dense[update.indices[i]] = update.values[i];
  }
  return dense;
}

std::vector<float> topk_pack(const SparseUpdate& update) {
  PF15_CHECK(update.indices.size() == update.values.size());
  std::vector<float> payload;
  payload.reserve(1 + 2 * update.size());
  payload.push_back(static_cast<float>(update.size()));
  for (std::uint32_t idx : update.indices) {
    payload.push_back(static_cast<float>(idx));
  }
  payload.insert(payload.end(), update.values.begin(), update.values.end());
  return payload;
}

SparseUpdate topk_unpack(std::span<const float> payload) {
  PF15_CHECK(!payload.empty());
  const auto count = static_cast<std::size_t>(payload[0]);
  PF15_CHECK_MSG(payload.size() == 1 + 2 * count,
                 "sparse payload size mismatch: " << payload.size()
                                                  << " for count " << count);
  SparseUpdate update;
  update.indices.reserve(count);
  update.values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    update.indices.push_back(static_cast<std::uint32_t>(payload[1 + i]));
  }
  update.values.assign(payload.begin() + 1 + static_cast<long>(count),
                       payload.end());
  return update;
}

ErrorFeedback::ErrorFeedback(std::size_t dim) : residual_(dim, 0.0f) {
  PF15_CHECK(dim > 0);
}

SparseUpdate ErrorFeedback::compress(std::span<const float> grad,
                                     std::size_t k) {
  PF15_CHECK_MSG(grad.size() == residual_.size(),
                 "gradient length " << grad.size() << " != "
                                    << residual_.size());
  for (std::size_t i = 0; i < residual_.size(); ++i) {
    residual_[i] += grad[i];
  }
  SparseUpdate sent = topk_select(residual_, k);
  for (std::size_t i = 0; i < sent.indices.size(); ++i) {
    residual_[sent.indices[i]] -= sent.values[i];
  }
  return sent;
}

double ErrorFeedback::residual_norm() const {
  double s = 0.0;
  for (float r : residual_) s += static_cast<double>(r) * r;
  return std::sqrt(s);
}

void ErrorFeedback::reset() {
  std::fill(residual_.begin(), residual_.end(), 0.0f);
}

}  // namespace pf15::ps
