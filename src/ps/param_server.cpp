#include "ps/param_server.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/errors.hpp"

namespace pf15::ps {

std::vector<ShardSpec> shard_specs(const std::vector<nn::Param>& params) {
  std::vector<ShardSpec> specs;
  specs.reserve(params.size());
  for (const auto& p : params) {
    specs.push_back({p.name, p.value->shape()});
  }
  return specs;
}

std::vector<int> shard_assignment(std::size_t num_shards,
                                  const std::vector<int>& ps_world_ranks) {
  PF15_CHECK(!ps_world_ranks.empty());
  std::vector<int> assignment(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    assignment[i] = ps_world_ranks[i % ps_world_ranks.size()];
  }
  return assignment;
}

PsServer::PsServer(comm::Communicator& world,
                   const std::vector<ShardSpec>& all_shards,
                   const std::vector<int>& assignment,
                   const std::map<std::size_t, Tensor>& initial,
                   const ShardSolverFactory& solver_factory, int num_groups,
                   Codec codec)
    : world_(world),
      num_groups_(num_groups),
      codec_(codec),
      rng_(0x95eedULL, static_cast<std::uint64_t>(world.rank())) {
  PF15_CHECK(all_shards.size() == assignment.size());
  const int my_rank = world.rank();
  std::size_t owned = 0;
  for (std::size_t id = 0; id < all_shards.size(); ++id) {
    if (assignment[id] == my_rank) ++owned;
  }
  // The per-shard solver holds pointers into the stored Shard's tensors,
  // so the Shard must reach its final address before the solver is built:
  // reserve up front (no reallocation moves) and wire the solver last.
  shards_.reserve(owned);
  for (std::size_t id = 0; id < all_shards.size(); ++id) {
    if (assignment[id] != my_rank) continue;
    Shard shard;
    shard.id = id;
    shard.value = Tensor(all_shards[id].shape);
    shard.grad = Tensor(all_shards[id].shape);
    const auto it = initial.find(id);
    PF15_CHECK_MSG(it != initial.end(),
                   "PS missing initial value for shard " << id);
    shard.value.copy_from(it->second);
    local_index_[id] = shards_.size();
    shards_.push_back(std::move(shard));
    Shard& placed = shards_.back();
    std::vector<nn::Param> params{
        {all_shards[id].name, &placed.value, &placed.grad}};
    placed.solver = solver_factory(std::move(params));
  }
}

void PsServer::serve() {
  int stops = 0;
  while (stops < num_groups_) {
    // Poll all sources: group roots send from any world rank, so we scan
    // for a ready message. Busy-wait with a yield keeps the logic simple
    // and the servers are dedicated ranks (as on the real system).
    bool handled = false;
    for (int src = 0; src < world_.size(); ++src) {
      if (world_.probe(src, kStopTag)) {
        world_.recv(src, kStopTag);
        ++stops;
        handled = true;
        continue;
      }
      for (auto& shard : shards_) {
        const int tag = kUpdateTag + static_cast<int>(shard.id);
        if (!world_.probe(src, tag)) continue;
        const std::vector<float> msg = world_.recv(src, tag);
        const auto version_seen = static_cast<std::uint64_t>(msg[1]);
        PF15_CHECK(shard.version >= version_seen);
        stats_.record(shard.version - version_seen);
        if (codec_ == Codec::kFp32) {
          PF15_CHECK_MSG(msg.size() == 2 + shard.value.numel(),
                         "PS: bad update size for shard " << shard.id);
          std::memcpy(shard.grad.data(), msg.data() + 2,
                      shard.value.numel() * sizeof(float));
        } else {
          const auto bytes = unpack_floats_as_bytes(
              std::span<const float>(msg).subspan(2));
          const std::vector<float> grad =
              decode(codec_, bytes, shard.value.numel());
          std::memcpy(shard.grad.data(), grad.data(),
                      grad.size() * sizeof(float));
        }
        shard.solver->apply({&shard.grad});
        ++shard.version;
        // Reply with the fresh model, through the same codec.
        std::vector<float> reply{static_cast<float>(shard.version)};
        if (codec_ == Codec::kFp32) {
          reply.resize(1 + shard.value.numel());
          std::memcpy(reply.data() + 1, shard.value.data(),
                      shard.value.numel() * sizeof(float));
        } else {
          const auto bytes = encode(codec_, shard.value.span(), rng_);
          const auto packed = pack_bytes_as_floats(bytes);
          reply.insert(reply.end(), packed.begin(), packed.end());
        }
        world_.send(src, kModelTag + static_cast<int>(shard.id), reply);
        handled = true;
      }
    }
    if (!handled) std::this_thread::yield();
  }
}

PsClient::PsClient(comm::Communicator& world,
                   const std::vector<ShardSpec>& shards,
                   const std::vector<int>& assignment, int group_id,
                   Codec codec)
    : world_(world),
      shards_(shards),
      assignment_(assignment),
      group_id_(group_id),
      codec_(codec),
      rng_(0xc11e27ULL, static_cast<std::uint64_t>(world.rank())),
      versions_seen_(shards.size(), 0) {
  PF15_CHECK(shards_.size() == assignment_.size());
}

std::vector<std::uint64_t> PsClient::exchange(
    const std::vector<const Tensor*>& grads,
    const std::vector<Tensor*>& values) {
  PF15_CHECK(grads.size() == shards_.size());
  PF15_CHECK(values.size() == shards_.size());
  // Phase 1: push every shard's update — all PSs work concurrently.
  for (std::size_t id = 0; id < shards_.size(); ++id) {
    PF15_CHECK(grads[id]->shape() == shards_[id].shape);
    std::vector<float> msg{static_cast<float>(group_id_),
                           static_cast<float>(versions_seen_[id])};
    wire_stats_.payload_bytes += grads[id]->numel() * sizeof(float);
    if (codec_ == Codec::kFp32) {
      msg.resize(2 + grads[id]->numel());
      std::memcpy(msg.data() + 2, grads[id]->data(),
                  grads[id]->numel() * sizeof(float));
      wire_stats_.wire_bytes += grads[id]->numel() * sizeof(float);
    } else {
      const auto bytes = encode(codec_, grads[id]->span(), rng_);
      wire_stats_.wire_bytes += bytes.size();
      const auto packed = pack_bytes_as_floats(bytes);
      msg.insert(msg.end(), packed.begin(), packed.end());
    }
    world_.send(assignment_[id], kUpdateTag + static_cast<int>(id), msg);
  }
  // Phase 2: collect the refreshed models.
  std::vector<std::uint64_t> staleness(shards_.size(), 0);
  for (std::size_t id = 0; id < shards_.size(); ++id) {
    const std::vector<float> reply =
        world_.recv(assignment_[id], kModelTag + static_cast<int>(id));
    const auto version_now = static_cast<std::uint64_t>(reply[0]);
    // The update we just pushed bumped the version by one; anything more
    // came from other groups while we were computing.
    PF15_CHECK(version_now >= versions_seen_[id] + 1);
    staleness[id] = version_now - versions_seen_[id] - 1;
    versions_seen_[id] = version_now;
    wire_stats_.payload_bytes += values[id]->numel() * sizeof(float);
    if (codec_ == Codec::kFp32) {
      PF15_CHECK(reply.size() == 1 + values[id]->numel());
      std::memcpy(values[id]->data(), reply.data() + 1,
                  values[id]->numel() * sizeof(float));
      wire_stats_.wire_bytes += values[id]->numel() * sizeof(float);
    } else {
      const auto bytes = unpack_floats_as_bytes(
          std::span<const float>(reply).subspan(1));
      wire_stats_.wire_bytes += bytes.size();
      const std::vector<float> model =
          decode(codec_, bytes, values[id]->numel());
      std::memcpy(values[id]->data(), model.data(),
                  model.size() * sizeof(float));
    }
  }
  ++wire_stats_.exchanges;
  return staleness;
}

void PsClient::stop() {
  // One stop per PS rank (deduplicated), sent from this group.
  std::vector<int> ps_ranks = assignment_;
  std::sort(ps_ranks.begin(), ps_ranks.end());
  ps_ranks.erase(std::unique(ps_ranks.begin(), ps_ranks.end()),
                 ps_ranks.end());
  for (int r : ps_ranks) {
    world_.send(r, kStopTag, std::span<const float>{});
  }
}

}  // namespace pf15::ps
