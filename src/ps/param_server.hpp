// Asynchronous parameter servers (§III-E, Fig 4).
//
// The paper dedicates one parameter server to each trainable layer so no
// single PS saturates under updates from many compute groups. We reproduce
// that: every parameter tensor ("shard") is assigned to a PS rank
// (shard i -> server i mod num_ps); with num_ps equal to the number of
// shards this is exactly the per-layer-PS design, and with num_ps = 1 it
// degenerates to the monolithic PS we ablate against.
//
// Protocol (all payloads are float vectors on the world communicator):
//   root -> PS   tag kUpdateTag+shard : [group, version_seen, grad...]
//   PS -> root   tag kModelTag+shard  : [version_now, params...]
//   root -> PS   tag kStopTag         : [] (once per group at shutdown)
//
// The PS applies updates in arrival order — the asynchronous semantics
// whose staleness/statistical-efficiency trade-off the paper discusses in
// §II-B2 — and tracks staleness = version_now - version_seen per update.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "ps/compression.hpp"
#include "solver/solver.hpp"
#include "tensor/tensor.hpp"

namespace pf15::ps {

inline constexpr int kUpdateTag = 5 << 20;
inline constexpr int kModelTag = 6 << 20;
inline constexpr int kStopTag = 7 << 20;

/// Description of one parameter tensor served by the PS tier.
struct ShardSpec {
  std::string name;
  Shape shape;
};

/// Extracts shard specs from a parameter list (order defines shard ids).
std::vector<ShardSpec> shard_specs(const std::vector<nn::Param>& params);

/// shard id -> world rank of the serving PS.
std::vector<int> shard_assignment(std::size_t num_shards,
                                  const std::vector<int>& ps_world_ranks);

/// Factory for the per-shard solver the PS applies updates with.
using ShardSolverFactory =
    std::function<std::unique_ptr<solver::Solver>(std::vector<nn::Param>)>;

/// Staleness bookkeeping for one PS rank.
struct StalenessStats {
  std::uint64_t updates = 0;
  std::uint64_t total_staleness = 0;
  std::uint64_t max_staleness = 0;
  std::map<std::uint64_t, std::uint64_t> histogram;

  double mean() const {
    return updates == 0 ? 0.0
                        : static_cast<double>(total_staleness) /
                              static_cast<double>(updates);
  }
  void record(std::uint64_t staleness) {
    ++updates;
    total_staleness += staleness;
    max_staleness = std::max(max_staleness, staleness);
    ++histogram[staleness];
  }
};

/// Runs the server loop on a PS rank. `initial` supplies starting values
/// for the shards this rank owns (indexed by global shard id).
class PsServer {
 public:
  /// `codec` compresses the gradient upload and the model download
  /// (§VIII-A low-precision communication); both sides must agree.
  PsServer(comm::Communicator& world,
           const std::vector<ShardSpec>& all_shards,
           const std::vector<int>& assignment,
           const std::map<std::size_t, Tensor>& initial,
           const ShardSolverFactory& solver_factory, int num_groups,
           Codec codec = Codec::kFp32);

  /// Serves until every group has sent a stop message.
  void serve();

  const StalenessStats& stats() const { return stats_; }

 private:
  struct Shard {
    std::size_t id;
    Tensor value;
    Tensor grad;  // scratch: incoming update
    std::unique_ptr<solver::Solver> solver;
    std::uint64_t version = 0;
  };

  comm::Communicator& world_;
  std::vector<Shard> shards_;           // shards owned by this rank
  std::map<std::size_t, std::size_t> local_index_;  // global id -> index
  int num_groups_;
  Codec codec_;
  Rng rng_;  // stochastic-rounding stream (per-rank)
  StalenessStats stats_;
};

/// Cumulative wire effect of a client's PS exchanges, both directions.
/// payload = logical fp32 bytes moved; wire = post-codec bytes that
/// actually crossed (equal under kFp32, smaller under a k-bit codec).
struct PsWireStats {
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t exchanges = 0;

  double ratio() const {
    return payload_bytes > 0 ? static_cast<double>(wire_bytes) /
                                   static_cast<double>(payload_bytes)
                             : 1.0;
  }
};

/// Group-root view of the PS tier. Exchange semantics: push one gradient
/// per shard, receive the post-update model for each, all shards in
/// flight concurrently (the "overlaying" of §III-E(b)).
class PsClient {
 public:
  PsClient(comm::Communicator& world, const std::vector<ShardSpec>& shards,
           const std::vector<int>& assignment, int group_id,
           Codec codec = Codec::kFp32);

  /// Sends `grads` (one tensor per shard, shard order), waits for updated
  /// models, and writes them into `values`. Returns per-shard staleness.
  std::vector<std::uint64_t> exchange(
      const std::vector<const Tensor*>& grads,
      const std::vector<Tensor*>& values);

  /// Wire accounting across every exchange() so far (the flight recorder
  /// diffs consecutive snapshots for per-iteration bytes).
  const PsWireStats& wire_stats() const { return wire_stats_; }

  /// Tells every PS rank this group is done (send exactly once).
  void stop();

 private:
  comm::Communicator& world_;
  std::vector<ShardSpec> shards_;
  std::vector<int> assignment_;
  int group_id_;
  Codec codec_;
  Rng rng_;
  std::vector<std::uint64_t> versions_seen_;
  PsWireStats wire_stats_;
};

}  // namespace pf15::ps
