// Sparsified gradient communication: top-k selection with error feedback.
//
// §VIII-B flags "more aggressive optimizations involving ... communicating
// high-order bits of weight updates" as poorly understood for scientific
// data. The canonical mechanism is top-k sparsification: send only the k
// largest-magnitude gradient entries, and *accumulate the residual
// locally* (error feedback) so every coordinate is eventually applied.
// Without error feedback the compressor is biased and small-magnitude
// coordinates are silently dropped forever; the ablation bench measures
// exactly that difference on a real training loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace pf15::ps {

/// A sparse gradient: parallel arrays of coordinate indices and values.
struct SparseUpdate {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;

  std::size_t size() const { return indices.size(); }
  /// Bytes on the wire (index + value per kept entry).
  std::size_t wire_bytes() const {
    return size() * (sizeof(std::uint32_t) + sizeof(float));
  }
};

/// Selects the `k` largest-|x| entries of `data` (all of them when
/// k >= data.size()). Deterministic: ties broken by lower index.
SparseUpdate topk_select(std::span<const float> data, std::size_t k);

/// Scatters `update` into a dense length-`n` vector of zeros.
std::vector<float> topk_densify(const SparseUpdate& update, std::size_t n);

/// Packs/unpacks a SparseUpdate into a float vector (for transports that
/// carry float payloads, e.g. our comm mailboxes): [count, idx..., val...].
std::vector<float> topk_pack(const SparseUpdate& update);
SparseUpdate topk_unpack(std::span<const float> payload);

/// Error-feedback compressor state for one parameter tensor.
///
/// compress() adds the stored residual to the incoming gradient, selects
/// top-k of the corrected vector, and retains what was not sent:
///   corrected = grad + residual
///   sent      = topk(corrected)
///   residual  = corrected - densify(sent)
/// The sum of everything ever sent converges to the sum of everything
/// ever observed — the unbiasedness-over-time property that makes EF-SGD
/// converge where plain top-k stalls.
class ErrorFeedback {
 public:
  explicit ErrorFeedback(std::size_t dim);

  SparseUpdate compress(std::span<const float> grad, std::size_t k);

  const std::vector<float>& residual() const { return residual_; }
  /// L2 norm of the stored residual (diagnostic: how much is in flight).
  double residual_norm() const;
  void reset();

 private:
  std::vector<float> residual_;
};

}  // namespace pf15::ps
