#include "ps/compression.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/errors.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pf15::ps {

namespace {

/// Registry mirrors of the codec's wire effect: logical fp32 bytes in,
/// encoded bytes out, and the resulting ratio (< 1.0 for a k-bit codec).
void mirror_encode(std::size_t raw_bytes, std::size_t encoded) {
  using obs::MetricsRegistry;
  static obs::Counter& raw_total = MetricsRegistry::global().counter(
      "pf15_ps_encode_raw_bytes_total",
      "Logical fp32 bytes fed to the PS wire codec");
  static obs::Counter& wire_total = MetricsRegistry::global().counter(
      "pf15_ps_encode_wire_bytes_total",
      "Encoded bytes produced by the PS wire codec");
  static obs::Gauge& ratio = MetricsRegistry::global().gauge(
      "pf15_ps_compression_ratio",
      "Encoded/raw byte ratio of the last PS encode");
  raw_total.add(raw_bytes);
  wire_total.add(encoded);
  if (raw_bytes > 0) {
    ratio.set(static_cast<double>(encoded) /
              static_cast<double>(raw_bytes));
  }
}

void mirror_decode(std::size_t encoded) {
  static obs::Counter& wire_total =
      obs::MetricsRegistry::global().counter(
          "pf15_ps_decode_wire_bytes_total",
          "Encoded bytes consumed by the PS wire codec");
  wire_total.add(encoded);
}

}  // namespace

std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xffu) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7fffffu;

  if (exponent >= 31) {
    // Overflow -> inf; NaN keeps a mantissa bit.
    const bool is_nan = ((bits >> 23) & 0xffu) == 0xffu && mantissa != 0;
    return static_cast<std::uint16_t>(sign | 0x7c00u |
                                      (is_nan ? 0x200u : 0u));
  }
  if (exponent <= 0) {
    if (exponent < -10) return static_cast<std::uint16_t>(sign);  // -> 0
    // Subnormal: shift the implicit leading 1 into the mantissa.
    mantissa |= 0x800000u;
    const int shift = 14 - exponent;
    std::uint32_t half_mantissa = mantissa >> shift;
    // Round to nearest even on the dropped bits.
    const std::uint32_t rest = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rest > halfway || (rest == halfway && (half_mantissa & 1u))) {
      ++half_mantissa;
    }
    return static_cast<std::uint16_t>(sign | half_mantissa);
  }
  // Normal: round mantissa from 23 to 10 bits, nearest even.
  std::uint32_t half_mantissa = mantissa >> 13;
  const std::uint32_t rest = mantissa & 0x1fffu;
  if (rest > 0x1000u || (rest == 0x1000u && (half_mantissa & 1u))) {
    ++half_mantissa;
    if (half_mantissa == 0x400u) {  // mantissa overflow -> bump exponent
      half_mantissa = 0;
      if (exponent + 1 >= 31) {
        return static_cast<std::uint16_t>(sign | 0x7c00u);
      }
      return static_cast<std::uint16_t>(
          sign | (static_cast<std::uint32_t>(exponent + 1) << 10));
    }
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exponent) << 10) | half_mantissa);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u)
                             << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1fu;
  const std::uint32_t mantissa = half & 0x3ffu;
  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalize.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign |
             (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3ffu) << 13);
    }
  } else if (exponent == 31) {
    bits = sign | 0x7f800000u | (mantissa << 13);  // inf / nan
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::size_t encoded_bytes(Codec codec, std::size_t n) {
  switch (codec) {
    case Codec::kFp32:
      return n * 4;
    case Codec::kFp16:
      return n * 2;
    case Codec::kInt8:
    case Codec::kInt8Stochastic:
      return 4 + n;  // scale header + one byte per element
  }
  PF15_CHECK(false);
  return 0;
}

std::vector<std::uint8_t> encode(Codec codec, std::span<const float> data,
                                 Rng& rng) {
  // The paper's wire-compression cost, visible per gradient tensor when
  // tracing: the "compress" phase of a hybrid training iteration.
  obs::TraceSpan span("ps_encode", "hybrid");
  std::vector<std::uint8_t> out(encoded_bytes(codec, data.size()));
  mirror_encode(data.size() * 4, out.size());
  switch (codec) {
    case Codec::kFp32:
      std::memcpy(out.data(), data.data(), data.size() * 4);
      return out;
    case Codec::kFp16: {
      auto* dst = reinterpret_cast<std::uint16_t*>(out.data());
      for (std::size_t i = 0; i < data.size(); ++i) {
        dst[i] = float_to_half(data[i]);
      }
      return out;
    }
    case Codec::kInt8:
    case Codec::kInt8Stochastic: {
      float max_abs = 0.0f;
      for (float v : data) max_abs = std::max(max_abs, std::abs(v));
      const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
      std::memcpy(out.data(), &scale, 4);
      for (std::size_t i = 0; i < data.size(); ++i) {
        const float x = data[i] / scale;
        float q;
        if (codec == Codec::kInt8Stochastic) {
          // Round up with probability equal to the fractional part:
          // E[q] = x, the unbiasedness property of [46].
          const float lo = std::floor(x);
          q = lo + (rng.uniform() < static_cast<double>(x - lo) ? 1.0f
                                                                : 0.0f);
        } else {
          q = std::nearbyint(x);
        }
        q = std::clamp(q, -127.0f, 127.0f);
        out[4 + i] = static_cast<std::uint8_t>(
            static_cast<std::int8_t>(q));
      }
      return out;
    }
  }
  PF15_CHECK(false);
  return out;
}

std::vector<float> decode(Codec codec,
                          std::span<const std::uint8_t> payload,
                          std::size_t n) {
  obs::TraceSpan span("ps_decode", "hybrid");
  PF15_CHECK_MSG(payload.size() == encoded_bytes(codec, n),
                 "decode: payload size mismatch");
  mirror_decode(payload.size());
  std::vector<float> out(n);
  switch (codec) {
    case Codec::kFp32:
      std::memcpy(out.data(), payload.data(), n * 4);
      return out;
    case Codec::kFp16: {
      const auto* src =
          reinterpret_cast<const std::uint16_t*>(payload.data());
      for (std::size_t i = 0; i < n; ++i) out[i] = half_to_float(src[i]);
      return out;
    }
    case Codec::kInt8:
    case Codec::kInt8Stochastic: {
      float scale;
      std::memcpy(&scale, payload.data(), 4);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(
                     static_cast<std::int8_t>(payload[4 + i])) *
                 scale;
      }
      return out;
    }
  }
  PF15_CHECK(false);
  return out;
}


std::vector<float> pack_bytes_as_floats(std::span<const std::uint8_t> bytes) {
  const std::size_t words = (bytes.size() + 3) / 4;
  std::vector<float> out(1 + words, 0.0f);
  out[0] = static_cast<float>(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(out.data() + 1, bytes.data(), bytes.size());
  }
  return out;
}

std::vector<std::uint8_t> unpack_floats_as_bytes(
    std::span<const float> data) {
  PF15_CHECK(!data.empty());
  const auto n = static_cast<std::size_t>(data[0]);
  PF15_CHECK_MSG(data.size() == 1 + (n + 3) / 4,
                 "packed payload length mismatch: " << data.size()
                                                    << " floats for " << n
                                                    << " bytes");
  std::vector<std::uint8_t> bytes(n);
  if (n > 0) {
    std::memcpy(bytes.data(), data.data() + 1, n);
  }
  return bytes;
}

}  // namespace pf15::ps
