// Low-precision communication for parameter-server traffic.
//
// §VIII-A: "There has been a lot of discussion surrounding training with
// quantized weights and activations [44], [45]. The statistical
// implications of low precision training are still being explored [46],
// [47], with various forms of stochastic rounding being of critical
// importance in convergence." The paper flags "communicating high-order
// bits of weight updates" as poorly understood for scientific data — this
// module implements the mechanisms so the ablation bench can measure them:
//
//  * fp16 (IEEE binary16) pack/unpack — 2x traffic reduction;
//  * int8 linear quantization over a per-tensor scale, with optional
//    stochastic rounding — 4x reduction; stochastic rounding makes the
//    quantizer unbiased (E[decode(encode(x))] = x), the property [46]
//    identifies as critical for convergence.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace pf15::ps {

enum class Codec {
  kFp32,            // identity (baseline)
  kFp16,            // half precision, round-to-nearest-even
  kInt8,            // linear int8, round-to-nearest
  kInt8Stochastic,  // linear int8, stochastic rounding (unbiased)
};

/// Bytes on the wire for `n` floats under a codec (excluding the small
/// per-tensor header).
std::size_t encoded_bytes(Codec codec, std::size_t n);

/// Encodes `data` into a byte payload. For int8 codecs the first 4 bytes
/// carry the per-tensor scale. `rng` is used only by kInt8Stochastic.
std::vector<std::uint8_t> encode(Codec codec, std::span<const float> data,
                                 Rng& rng);

/// Inverse of encode; `n` is the original element count.
std::vector<float> decode(Codec codec,
                          std::span<const std::uint8_t> payload,
                          std::size_t n);

// Scalar fp16 helpers (exposed for tests).
std::uint16_t float_to_half(float value);
float half_to_float(std::uint16_t half);

/// Bit-packs an encoded byte payload into a float vector so it can ride
/// transports that carry floats (our comm mailboxes, i.e. an MPI float
/// datatype). Layout: [byte_count, ceil(n/4) floats of raw bytes].
std::vector<float> pack_bytes_as_floats(std::span<const std::uint8_t> bytes);
/// Inverse of pack_bytes_as_floats.
std::vector<std::uint8_t> unpack_floats_as_bytes(std::span<const float> data);

}  // namespace pf15::ps
