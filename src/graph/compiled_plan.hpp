// Compiled inference plan: compile once, execute many.
//
// CompiledPlan is the executable product of the graph compiler. Its
// constructor runs the optimization passes (strip eval no-ops, fold
// BatchNorm into conv/dense weights, fuse activation epilogues — now
// *inside* residual sub-graphs too, including the skip-add's trailing
// ReLU fusing into the join), plans the activation arena (arena.hpp),
// and — the "born warm" property — pre-tunes every convolution geometry
// through the process-wide gemm::ConvPlanCache for every batch bucket
// the plan will serve, so the first real request already dispatches to
// measured backend winners and the tuned plans persist across processes
// via $PF15_CONV_PLAN_CACHE and plan-carrying checkpoints
// (serve/checkpoint.hpp).
//
// run() is the execute-many side: every intermediate activation lives at
// a fixed offset in one shared arena (per-sample offsets scale linearly
// with the batch), convolution epilogues apply fused bias/activation
// while the output image is cache-hot, and weight-only transforms
// (Winograd's forward U and backward-data rotated bank) are hoisted out
// of the batch loop via ConvBackend::prepare_forward /
// prepare_backward_data. Execution is *level-scheduled*: nodes are
// grouped by DAG level (graph.hpp's levels()), levels run in order with
// a barrier between them (a TaskSync continuation barrier — the waiting
// thread helps execute), and when a level holds several independent
// nodes (the climate head fan-out, a residual branch next to its
// projection) they fan out as tasks on common::task_scheduler. Nesting
// is legal on the scheduler, so node×batch product parallelism falls
// out: each node task fans its batch across per-image child tasks, and
// each conv backend may fan out further beneath (Winograd
// transform-domain GEMMs, parallel im2col) — parallel_ok=true all the
// way down. Per-level barriers keep the schedule deterministic: every
// node reads fully-written buffers regardless of how its level was
// scheduled, and every node runs arithmetic identical to the serial
// schedule (bit-exact outputs either way).
//
// A CompiledPlan is stateful (arena, output tensors) and therefore not
// re-entrant: one plan per serving replica, exactly like the eager
// nn::Sequential it replaces. Plans with opaque nodes (unknown
// extensions) borrow the source network's layers and are only valid
// while that network lives; an opaque node joins a wide level only when
// its layer opts in via Layer::parallel_ok() (the layer's forward must
// tolerate running inside a scheduler task alongside other nodes).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "graph/arena.hpp"
#include "graph/graph.hpp"
#include "graph/passes.hpp"

namespace pf15 {
class TaskScheduler;
}

namespace pf15::graph {

struct CompileOptions {
  bool strip_noops = true;
  bool fold_batchnorm = true;
  bool fuse_activations = true;
  /// Run same-level independent nodes concurrently on the task scheduler
  /// (false: strictly serial topological execution — the reference
  /// schedule the bench compares against; per-node batch fan-out still
  /// parallelizes either way).
  bool parallel_levels = true;
  /// Scheduler the plan executes on. Null means
  /// TaskScheduler::global(); the threads-sweep bench passes local
  /// schedulers of fixed width. The scheduler must outlive the plan.
  TaskScheduler* scheduler = nullptr;
  /// Pre-tune every conv geometry through gemm::ConvPlanCache::global()
  /// at construction (for batch buckets 1 .. bucket(max_batch)).
  bool pretune = true;
  /// Largest batch the plan will be asked to run — the serving engine
  /// passes its batcher's max_batch. Larger batches still execute
  /// correctly; they just may pay a first-sight tune.
  std::size_t max_batch = 1;
};

struct CompileReport {
  PassStats passes;
  std::size_t captured_ops = 0;  // nodes before optimization
  std::size_t compiled_ops = 0;  // nodes after
  /// Level schedule shape: number of levels and the widest level (work
  /// nodes only — splits schedule nothing). max_level_width > 1 is where
  /// the parallel executor has concurrency to exploit.
  std::size_t levels = 0;
  std::size_t max_level_width = 0;
  /// Nodes scheduled inside wide (>1 node) levels — the node-level
  /// concurrency the parallel executor actually exploits. Opaque nodes
  /// count only when their layer opts in via Layer::parallel_ok().
  std::size_t wide_level_nodes = 0;
  /// Arena extent vs what eager execution keeps resident (per sample,
  /// floats). arena < eager is the planner's reuse win.
  std::size_t arena_floats_per_sample = 0;
  std::size_t eager_floats_per_sample = 0;
  /// Plan-cache queries issued by pre-tuning, and how many of them had to
  /// tune from scratch (0 = the plan was born fully warm).
  std::size_t pretuned_plans = 0;
  std::size_t pretune_misses = 0;
  /// Wall time of compilation, and of the pretune stage within it. These
  /// also feed the pf15_graph_* registry metrics, so a serving process's
  /// metrics snapshot shows what compilation cost without holding the
  /// report.
  double compile_seconds = 0.0;
  double pretune_seconds = 0.0;
};

class CompiledPlan {
 public:
  /// Compiles an already-captured graph. Prefer the compile() helpers.
  CompiledPlan(Graph graph, const CompileOptions& opt);

  CompiledPlan(CompiledPlan&&) noexcept = default;
  CompiledPlan& operator=(CompiledPlan&&) noexcept = default;

  const Graph& graph() const { return graph_; }
  const CompileReport& report() const { return report_; }
  const ArenaAssignment& arena_plan() const { return arena_plan_; }

  /// Arena footprint for a batch of `batch` samples.
  std::size_t arena_bytes(std::size_t batch) const {
    return arena_plan_.total_floats * batch * sizeof(float);
  }
  /// What eager execution holds for the same batch (sum of every node
  /// output, no reuse).
  std::size_t eager_activation_bytes(std::size_t batch) const {
    return arena_plan_.eager_floats * batch * sizeof(float);
  }

  /// Executes the plan on a batched input (leading dimension = batch).
  /// Returns one tensor per graph output, in graph output order, owned by
  /// the plan and valid until the next run.
  const std::vector<Tensor>& run_all(const Tensor& input);

  /// Single-output convenience (Sequential-shaped graphs).
  const Tensor& run(const Tensor& input);

 private:
  /// Frozen dispatch state of one conv/deconv node. A compiled plan's
  /// weights never change, so the backend choice per batch bucket and
  /// the backend's prepared weight transform (Winograd's U, forward or
  /// backward-data) are resolved once and reused — run() never touches
  /// the plan-cache mutex or recomputes a filter transform after first
  /// sight. Nested waits are legal on the scheduler, so every plan is
  /// resolved with parallel_ok=true (no serial execution mode exists
  /// any more); the bucket is the whole key.
  struct ConvDispatch {
    std::map<std::size_t, gemm::ConvBackendKind> kind_by_bucket;
    std::map<gemm::ConvBackendKind, std::unique_ptr<gemm::ConvPrep>> prep;
  };

  void build_schedule(bool parallel_levels);
  void pretune_convs(std::size_t max_batch);
  /// The scheduler the plan executes on (CompileOptions::scheduler, or
  /// the global one).
  TaskScheduler& sched() const;
  /// Executes node `id`: conv/deconv fan the batch across per-image
  /// child tasks, dense runs the parallel GEMM — safe at any nesting
  /// depth, including inside a wide-level node task.
  void execute_node(std::size_t id, const Tensor& input,
                    std::size_t batch);
  /// The (backend, prep) pair node `id` dispatches to at `batch`,
  /// memoized in dispatch_[id].
  std::pair<const gemm::ConvBackend*, const gemm::ConvPrep*>
  conv_dispatch(std::size_t id, gemm::ConvPhase phase, std::size_t batch);
  /// Read pointer for edge `e` (resolving split aliases; kGraphInput
  /// reads the run input).
  const float* edge_data(int e, const Tensor& input, std::size_t batch);

  Graph graph_;
  ArenaAssignment arena_plan_;
  CompileReport report_;
  std::vector<float> arena_;
  std::vector<Tensor> outputs_;
  /// Result-tensor index an external node produces into; -1 otherwise.
  std::vector<int> output_slot_;
  /// Level schedule: per level, the work nodes that may run concurrently
  /// as scheduler tasks and those that must run serially (opaque nodes
  /// whose layer did not opt in via Layer::parallel_ok()). Splits are
  /// not scheduled at all.
  struct Level {
    std::vector<std::size_t> parallel;
    std::vector<std::size_t> serial;
  };
  std::vector<Level> schedule_;
  /// Per-level span names ("level0", ...), precomputed so the traced
  /// executor never concatenates strings per run.
  std::vector<std::string> level_names_;
  bool parallel_levels_ = true;
  TaskScheduler* scheduler_ = nullptr;
  /// Per-node frozen conv dispatch (empty entries for non-conv nodes).
  std::vector<ConvDispatch> dispatch_;
  // Boxed staging tensors for opaque nodes (Layer::forward needs owned
  // Tensors, not arena slices); indexed by node id, allocated lazily.
  std::vector<Tensor> opaque_in_;
  std::vector<Tensor> opaque_out_;
};

/// Captures and compiles `net` (must be in inference mode; throws
/// pf15::ConfigError otherwise — a training-mode net must never be
/// silently folded into an eval plan).
CompiledPlan compile(nn::Sequential& net, const Shape& sample_shape,
                     const CompileOptions& opt = {});

/// ClimateNet: outputs ordered (conf, cls, xy, wh, recon).
CompiledPlan compile(nn::ClimateNet& net, const CompileOptions& opt = {});

}  // namespace pf15::graph
