// Static activation memory planner.
//
// Eager execution owns one activation tensor per layer for the lifetime
// of the network. The compiled plan instead assigns every node output a
// fixed offset in one shared arena, reusing the bytes of buffers whose
// last consumer has already run — the standard liveness-interval
// assignment of serving-stack memory planners. Liveness is computed over
// the DAG's explicit edges in *level* units (graph.hpp's levels()): a
// value is live from its defining level through the level of its last
// consumer in topological order, resolved through kSplit aliases, so a
// residual branch output dies at the add join and its slot is free for
// the next block. Level granularity (rather than node order) is what
// keeps the plan valid under the level-scheduled parallel executor:
// nodes of one level run concurrently, so buffers may only share bytes
// when their level intervals are disjoint. Offsets are in *per-sample*
// floats: activation extents scale linearly with the batch dimension,
// and uniform scaling preserves disjointness, so one plan serves every
// batch size (offset × N, size × N).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace pf15::graph {

struct ArenaAssignment {
  /// Per-node offset of the node's output buffer, in per-sample floats.
  /// Meaningless for external buffers (below) and for kSplit aliases
  /// (which own no buffer — read through Graph::resolve_alias).
  std::vector<std::size_t> offsets;
  /// True for nodes whose result leaves the graph unread by any other
  /// node: the executor writes those directly into the caller-visible
  /// result tensors (which eager execution materialises too), so they
  /// take no arena slot and cost no copy-out.
  std::vector<bool> external;
  /// Arena extent in per-sample floats (intermediates only); bytes for
  /// batch N are total_floats * N * sizeof(float).
  std::size_t total_floats = 0;
  /// What the eager container keeps resident: the sum of every real node
  /// output (no reuse; splits own no buffer). The compiled-vs-eager
  /// footprint comparison.
  std::size_t eager_floats = 0;
};

/// Plans the arena for `g`. A value's interval is [def level, last
/// consumer's level] (graph outputs: past the last level, they are read
/// back after the run). Within a level, producer-of and consumer-at
/// buffers coexist — kernels read inputs while writing outputs — which
/// the closed intervals encode. Buffers are placed largest-first at the
/// lowest offset that does not collide with any already-placed buffer
/// whose interval overlaps.
ArenaAssignment plan_arena(const Graph& g);

}  // namespace pf15::graph
