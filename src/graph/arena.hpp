// Static activation memory planner.
//
// Eager execution owns one activation tensor per layer for the lifetime
// of the network. The compiled plan instead assigns every node output a
// fixed offset in one shared arena, reusing the bytes of buffers whose
// last consumer has already run — the standard liveness-interval
// assignment of serving-stack memory planners. Offsets are computed in
// *per-sample* floats: activation extents scale linearly with the batch
// dimension, and uniform scaling preserves disjointness, so one plan
// serves every batch size (offset × N, size × N).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace pf15::graph {

struct ArenaAssignment {
  /// Per-node offset of the node's output buffer, in per-sample floats.
  /// Meaningless for external buffers (below).
  std::vector<std::size_t> offsets;
  /// True for nodes whose result leaves the graph unread by any other
  /// node: the executor writes those directly into the caller-visible
  /// result tensors (which eager execution materialises too), so they
  /// take no arena slot and cost no copy-out.
  std::vector<bool> external;
  /// Arena extent in per-sample floats (intermediates only); bytes for
  /// batch N are total_floats * N * sizeof(float).
  std::size_t total_floats = 0;
  /// What the eager container keeps resident: the sum of every node
  /// output (no reuse). The compiled-vs-eager footprint comparison.
  std::size_t eager_floats = 0;
};

/// Plans the arena for `g`. A node's buffer is live from its defining
/// step through its last consumer (graph outputs: through the end of the
/// run, they are read back after the last step). Within a step the input
/// and output buffers coexist — kernels read the input while writing the
/// output — which the closed live intervals encode. Buffers are placed
/// largest-first at the lowest offset that does not collide with any
/// already-placed buffer whose interval overlaps.
ArenaAssignment plan_arena(const Graph& g);

}  // namespace pf15::graph
