#include "graph/passes.hpp"

#include "graph/validate.hpp"

namespace pf15::graph {

namespace {

/// Rewires every consumer of node `id` (including graph outputs) to
/// `target` — the removal step for a shape-preserving single-input node.
void rewire_consumers(Graph& g, int id, int target) {
  for (OpNode& node : g.nodes) {
    for (int& in : node.inputs) {
      if (in == id) in = target;
    }
  }
  for (int& out : g.outputs) {
    if (out == id) out = target;
  }
}

/// Compacts the node vector, dropping `dead` entries and remapping ids.
/// Dead nodes must have been rewired away first.
void erase_dead(Graph& g, const std::vector<bool>& dead) {
  std::vector<int> remap(g.nodes.size(), OpNode::kGraphInput);
  std::vector<OpNode> kept;
  kept.reserve(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (dead[i]) continue;
    remap[i] = static_cast<int>(kept.size());
    kept.push_back(std::move(g.nodes[i]));
  }
  for (OpNode& node : kept) {
    for (int& in : node.inputs) {
      if (in >= 0) {
        PF15_CHECK(!dead[static_cast<std::size_t>(in)]);
        in = remap[static_cast<std::size_t>(in)];
      }
    }
  }
  for (int& out : g.outputs) {
    if (out >= 0) {
      PF15_CHECK(!dead[static_cast<std::size_t>(out)]);
      out = remap[static_cast<std::size_t>(out)];
    }
  }
  g.nodes = std::move(kept);
}

/// Output-channel count of a weight-carrying node (what a following
/// BatchNorm normalises over).
std::size_t out_channels_of(const OpNode& node) {
  switch (node.kind) {
    case OpKind::kConv:
      return node.problem.out_c;
    case OpKind::kDeconv:
      return node.problem.geom.in_c;  // the underlying conv's input
    case OpKind::kDense:
      return node.out_features;
    default:
      return 0;
  }
}

/// Scales the per-output-channel weight blocks of `node` by `scale`.
void scale_weights(OpNode& node, const Tensor& scale) {
  Tensor& w = node.weight;
  if (node.kind == OpKind::kDeconv) {
    // Deconv weights are (IC, OC, KH, KW): the output channel is the
    // second axis.
    const std::size_t ic = w.shape()[0];
    const std::size_t oc = w.shape()[1];
    const std::size_t taps = w.shape()[2] * w.shape()[3];
    for (std::size_t i = 0; i < ic; ++i) {
      for (std::size_t o = 0; o < oc; ++o) {
        float* block = w.data() + (i * oc + o) * taps;
        const float s = scale.at(o);
        for (std::size_t t = 0; t < taps; ++t) block[t] *= s;
      }
    }
    return;
  }
  // Conv (OC, IC, KH, KW) and Dense (OF, IF): output channel is the
  // leading axis.
  const std::size_t oc = w.shape()[0];
  const std::size_t block_n = w.numel() / oc;
  for (std::size_t o = 0; o < oc; ++o) {
    float* block = w.data() + o * block_n;
    const float s = scale.at(o);
    for (std::size_t t = 0; t < block_n; ++t) block[t] *= s;
  }
}

}  // namespace

std::size_t strip_noops(Graph& g) {
  std::vector<bool> dead(g.nodes.size(), false);
  std::size_t stripped = 0;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].kind != OpKind::kDropout) continue;
    rewire_consumers(g, static_cast<int>(i), g.nodes[i].input0());
    dead[i] = true;
    ++stripped;
  }
  if (stripped > 0) erase_dead(g, dead);
  return stripped;
}

std::size_t fold_batchnorm(Graph& g, PassStats* stats) {
  std::vector<bool> dead(g.nodes.size(), false);
  std::size_t folded = 0;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    OpNode& bn = g.nodes[i];
    if (bn.kind != OpKind::kBatchNorm || bn.input0() < 0) continue;
    OpNode& producer = g.nodes[static_cast<std::size_t>(bn.input0())];
    const std::size_t oc = out_channels_of(producer);
    // Foldable only when the producer's full output feeds this BN alone
    // and nothing (an epilogue activation) sits between them. A producer
    // we cannot see into (opaque) never folds, and a fanned-out producer
    // (a kSplit consumer counts) keeps its pre-BN value visible.
    if (oc == 0 || oc != bn.bn_scale.numel() ||
        producer.epilogue != Epilogue::kNone ||
        g.consumer_count(bn.input0()) != 1) {
      continue;
    }
    scale_weights(producer, bn.bn_scale);
    if (!producer.bias.defined()) {
      producer.bias = Tensor(Shape{oc});  // zero-initialised
    }
    for (std::size_t o = 0; o < oc; ++o) {
      producer.bias.at(o) =
          bn.bn_scale.at(o) * producer.bias.at(o) + bn.bn_shift.at(o);
    }
    rewire_consumers(g, static_cast<int>(i), bn.input0());
    dead[i] = true;
    ++folded;
    if (stats != nullptr && bn.in_residual) {
      ++stats->residual_folded_batchnorms;
    }
  }
  if (folded > 0) erase_dead(g, dead);
  return folded;
}

std::size_t fuse_activations(Graph& g, PassStats* stats) {
  std::vector<bool> dead(g.nodes.size(), false);
  std::size_t fused = 0;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    OpNode& act = g.nodes[i];
    Epilogue e = Epilogue::kNone;
    switch (act.kind) {
      case OpKind::kRelu:
        e = Epilogue::kRelu;
        break;
      case OpKind::kSigmoid:
        e = Epilogue::kSigmoid;
        break;
      case OpKind::kTanh:
        e = Epilogue::kTanh;
        break;
      default:
        continue;
    }
    if (act.input0() < 0) continue;
    OpNode& producer = g.nodes[static_cast<std::size_t>(act.input0())];
    const bool fusable = producer.kind == OpKind::kConv ||
                         producer.kind == OpKind::kDeconv ||
                         producer.kind == OpKind::kDense ||
                         producer.kind == OpKind::kBatchNorm ||
                         producer.kind == OpKind::kAdd;
    // Single consumer only: with fan-out, other consumers need the
    // pre-activation value (a kSplit consumer counts, so fusion never
    // crosses a branch point). Opaque producers are not fusable at all.
    if (!fusable || producer.epilogue != Epilogue::kNone ||
        g.consumer_count(act.input0()) != 1) {
      continue;
    }
    producer.epilogue = e;
    rewire_consumers(g, static_cast<int>(i), act.input0());
    dead[i] = true;
    ++fused;
    if (stats != nullptr) {
      if (act.in_residual) ++stats->residual_fused_activations;
      if (producer.kind == OpKind::kAdd) ++stats->fused_joins;
    }
  }
  if (fused > 0) erase_dead(g, dead);
  return fused;
}

PassStats optimize(Graph& g) {
  PassStats stats;
  stats.stripped_noops = strip_noops(g);
#ifndef NDEBUG
  check_valid(g, "strip_noops");
#endif
  stats.folded_batchnorms = fold_batchnorm(g, &stats);
#ifndef NDEBUG
  check_valid(g, "fold_batchnorm");
#endif
  stats.fused_activations = fuse_activations(g, &stats);
#ifndef NDEBUG
  check_valid(g, "fuse_activations");
#endif
  return stats;
}

}  // namespace pf15::graph
