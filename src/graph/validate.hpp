// Static verifier for the graph-compiler IR.
//
// The invariants the compiler relies on — topological order, kSplit
// nodes as pure zero-cost aliases, two-input shape-agreeing kAdd joins,
// epilogues only on kinds that can execute them, and an arena plan whose
// buffers never share bytes while concurrently live — were established
// by the capture/pass/planner code but, until now, only *asserted by
// construction*. validate() re-derives every one of them from the graph
// alone, without executing it and independently of the planner's own
// bookkeeping, and returns a structured diagnostic list instead of
// crashing: a corrupted graph (a buggy new pass, a mis-merged capture
// path) is reported with the node, the invariant, and a human-readable
// message.
//
// It runs in three places:
//   - after every optimization pass in debug builds (passes.cpp wraps
//     optimize() stages; a non-empty diagnostic list is a PF15_CHECK
//     failure naming the pass),
//   - at the end of CompiledPlan construction (debug builds), with the
//     arena plan included,
//   - explicitly via bench_graph_compile --validate (any build type),
//     which scripts/verify.sh gates on with its own exit code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/arena.hpp"
#include "graph/graph.hpp"

namespace pf15::graph {

/// What went wrong. Codes are stable: tests key on them, and the bench
/// prints them by name.
enum class DiagCode {
  kBadOutput,         // graph output id out of range
  kBadArity,          // kAdd needs exactly 2 inputs, every other kind 1
  kBadEdge,           // input edge out of [-1, nodes)
  kNotTopological,    // edge to self or a higher index — the only way an
                      // index-edged graph can encode a cycle
  kDanglingAlias,     // split chain never reaches a buffer-owning node
  kShapeMismatch,     // consumer in_sample != producer out_sample, or a
                      // kAdd whose operands/output disagree
  kIllegalEpilogue,   // fused epilogue on a kind that cannot execute one
                      // (e.g. planted on a kSplit: fusion crossed fan-out)
  kSplitNotAlias,     // kSplit owning weights/bias/layer — not a pure alias
  kMissingLayer,      // kOpaque with no live layer to execute through
  kBadWeights,        // weight/bias/bn tensor extent disagrees with the
                      // node's declared geometry
  kArenaOutOfBounds,  // buffer extends past the arena extent
  kConcurrentWriteOverlap,  // two same-level buffers share bytes (the
                            // parallel executor may write both at once)
  kLiveRangeOverlap,  // two buffers live at a common level share bytes
  kExternalConsumed,  // external (direct-to-output) buffer read by a node
};

/// Stable lower-snake name ("bad_output", "live_range_overlap", ...).
const char* to_string(DiagCode code);

struct Diagnostic {
  DiagCode code;
  int node = -1;   // primary node id; -1 = graph-level finding
  int other = -1;  // secondary node for pairwise findings (overlaps)
  std::string message;
};

struct ValidateOptions {
  /// When set, the arena checks run too: liveness is re-derived from the
  /// graph (independently of plan_arena's internals) and checked against
  /// this assignment's offsets.
  const ArenaAssignment* arena = nullptr;
  /// Stop after this many findings — a badly corrupted graph would
  /// otherwise drown the first (root-cause) diagnostic in follow-ons.
  std::size_t max_diagnostics = 64;
};

/// Checks every structural invariant of `g` (and of `opt.arena` when
/// given) without executing the graph. Empty result = valid. Order is
/// deterministic: node-local findings by node id, pairwise arena
/// findings by (first, second) id.
std::vector<Diagnostic> validate(const Graph& g,
                                 const ValidateOptions& opt = {});

/// One line per diagnostic: "code @node7 (vs @node9): message".
std::string render(const std::vector<Diagnostic>& diags);

/// PF15_CHECK wrapper used by the debug-build hooks: dies with the
/// rendered diagnostics prefixed by `where` when validation fails.
void check_valid(const Graph& g, const char* where,
                 const ArenaAssignment* arena = nullptr);

}  // namespace pf15::graph
