#include "graph/graph.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/deconv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/pool.hpp"

namespace pf15::graph {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kConv:
      return "conv";
    case OpKind::kDeconv:
      return "deconv";
    case OpKind::kDense:
      return "dense";
    case OpKind::kMaxPool:
      return "maxpool";
    case OpKind::kGlobalPool:
      return "globalpool";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kSigmoid:
      return "sigmoid";
    case OpKind::kTanh:
      return "tanh";
    case OpKind::kBatchNorm:
      return "batchnorm";
    case OpKind::kDropout:
      return "dropout";
    case OpKind::kOpaque:
      return "opaque";
  }
  return "unknown";
}

const char* to_string(Epilogue e) {
  switch (e) {
    case Epilogue::kNone:
      return "none";
    case Epilogue::kRelu:
      return "relu";
    case Epilogue::kSigmoid:
      return "sigmoid";
    case Epilogue::kTanh:
      return "tanh";
  }
  return "unknown";
}

std::size_t Graph::consumer_count(int id) const {
  std::size_t n = 0;
  for (const OpNode& node : nodes) {
    if (node.input == id) ++n;
  }
  for (int out : outputs) {
    if (out == id) ++n;
  }
  return n;
}

namespace {

/// Lifts one layer into a node; `sample` is the per-sample input shape.
OpNode capture_layer(nn::Layer& layer, const Shape& sample) {
  OpNode node;
  node.name = layer.name();
  node.in_sample = sample;
  node.out_sample = strip_batch(layer.output_shape(with_batch(sample, 1)));

  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    const nn::Conv2dConfig& cfg = conv->config();
    node.kind = OpKind::kConv;
    gemm::ConvGeom& g = node.problem.geom;
    g.in_c = cfg.in_channels;
    g.in_h = sample[1];
    g.in_w = sample[2];
    g.kernel_h = g.kernel_w = cfg.kernel;
    g.stride_h = g.stride_w = cfg.stride;
    g.pad_h = g.pad_w = cfg.pad;
    node.problem.out_c = cfg.out_channels;
    node.algo = cfg.algo;
    node.weight = conv->weight().clone();
    if (cfg.bias) node.bias = conv->bias().clone();
  } else if (auto* deconv = dynamic_cast<nn::Deconv2d*>(&layer)) {
    const nn::Deconv2dConfig& cfg = deconv->config();
    node.kind = OpKind::kDeconv;
    // The underlying convolution's geometry: its input is this node's
    // output (see nn::Deconv2d::geom).
    gemm::ConvGeom& g = node.problem.geom;
    g.in_c = cfg.out_channels;
    g.in_h = node.out_sample[1];
    g.in_w = node.out_sample[2];
    g.kernel_h = g.kernel_w = cfg.kernel;
    g.stride_h = g.stride_w = cfg.stride;
    g.pad_h = g.pad_w = cfg.pad;
    node.problem.out_c = cfg.in_channels;
    node.algo = cfg.algo;
    auto params = deconv->params();
    node.weight = params[0].value->clone();
    if (cfg.bias) node.bias = params[1].value->clone();
  } else if (auto* fc = dynamic_cast<nn::Dense*>(&layer)) {
    node.kind = OpKind::kDense;
    node.in_features = fc->in_features();
    node.out_features = fc->out_features();
    node.weight = fc->weight().clone();
    node.bias = fc->bias().clone();
  } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
    node.kind = OpKind::kMaxPool;
    node.pool_kernel = pool->kernel();
    node.pool_stride = pool->stride();
  } else if (dynamic_cast<nn::GlobalAvgPool*>(&layer) != nullptr) {
    node.kind = OpKind::kGlobalPool;
  } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
    node.kind = OpKind::kRelu;
  } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr) {
    node.kind = OpKind::kSigmoid;
  } else if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
    node.kind = OpKind::kTanh;
  } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
    // Captured directly as the inference-mode per-channel affine — the
    // exact math BatchNorm2d::forward runs in eval mode. fold_batchnorm
    // later pushes scale/shift into the producer's weights when it can.
    node.kind = OpKind::kBatchNorm;
    const std::size_t c = bn->config().channels;
    node.bn_scale = Tensor(Shape{c});
    node.bn_shift = Tensor(Shape{c});
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float inv_std = 1.0f / std::sqrt(bn->running_var().at(ch) +
                                             bn->config().epsilon);
      const float scale = bn->gamma().at(ch) * inv_std;
      node.bn_scale.at(ch) = scale;
      node.bn_shift.at(ch) =
          bn->beta().at(ch) - bn->running_mean().at(ch) * scale;
    }
  } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
    node.kind = OpKind::kDropout;  // identity in eval mode
  } else {
    // Composite or unknown layer (ResidualBlock, extensions): execute it
    // through the live layer; passes treat it as a black box.
    node.kind = OpKind::kOpaque;
    node.layer = &layer;
  }
  return node;
}

/// Appends `net`'s layers as a chain hanging off `producer`; returns the
/// last node's id.
int capture_chain(nn::Sequential& net, int producer, Shape sample,
                  std::vector<OpNode>& nodes) {
  PF15_CHECK_MSG(net.layer_count() > 0, "capture: empty network");
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    OpNode node = capture_layer(net.layer(i), sample);
    node.input = producer;
    sample = node.out_sample;
    producer = static_cast<int>(nodes.size());
    nodes.push_back(std::move(node));
  }
  return producer;
}

void require_inference_mode(bool training, const char* what) {
  if (training) {
    throw ConfigError(std::string("graph::capture: ") + what +
                      " is in training mode; a compiled plan freezes "
                      "eval-time behaviour (running statistics, identity "
                      "dropout) — call set_training(false) first");
  }
}

}  // namespace

Graph capture(nn::Sequential& net, const Shape& sample_shape) {
  require_inference_mode(net.training(), "the network");
  Graph g;
  g.input_sample = sample_shape;
  const int last =
      capture_chain(net, OpNode::kGraphInput, sample_shape, g.nodes);
  g.outputs.push_back(last);
  return g;
}

Graph capture(nn::ClimateNet& net) {
  require_inference_mode(net.training(), "the climate network");
  const nn::ClimateConfig& cfg = net.config();
  Graph g;
  g.input_sample = Shape{cfg.channels, cfg.image, cfg.image};

  const int features = capture_chain(net.encoder(), OpNode::kGraphInput,
                                     g.input_sample, g.nodes);
  const Shape feat_sample = g.nodes[static_cast<std::size_t>(features)]
                                .out_sample;
  // The coarse feature grid fans out: four per-score heads plus the
  // reconstruction decoder all read the same producer.
  g.outputs.push_back(
      capture_chain(net.conf_head(), features, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.cls_head(), features, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.xy_head(), features, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.wh_head(), features, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.decoder(), features, feat_sample, g.nodes));
  return g;
}

}  // namespace pf15::graph
