#include "graph/graph.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/deconv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"

namespace pf15::graph {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kConv:
      return "conv";
    case OpKind::kDeconv:
      return "deconv";
    case OpKind::kDense:
      return "dense";
    case OpKind::kMaxPool:
      return "maxpool";
    case OpKind::kGlobalPool:
      return "globalpool";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kSigmoid:
      return "sigmoid";
    case OpKind::kTanh:
      return "tanh";
    case OpKind::kBatchNorm:
      return "batchnorm";
    case OpKind::kDropout:
      return "dropout";
    case OpKind::kSplit:
      return "split";
    case OpKind::kAdd:
      return "add";
    case OpKind::kOpaque:
      return "opaque";
  }
  return "unknown";
}

const char* to_string(Epilogue e) {
  switch (e) {
    case Epilogue::kNone:
      return "none";
    case Epilogue::kRelu:
      return "relu";
    case Epilogue::kSigmoid:
      return "sigmoid";
    case Epilogue::kTanh:
      return "tanh";
  }
  return "unknown";
}

std::size_t Graph::consumer_count(int id) const {
  std::size_t n = 0;
  for (const OpNode& node : nodes) {
    for (int in : node.inputs) {
      if (in == id) ++n;
    }
  }
  for (int out : outputs) {
    if (out == id) ++n;
  }
  return n;
}

int Graph::resolve_alias(int id) const {
  while (id >= 0 && nodes[static_cast<std::size_t>(id)].kind == OpKind::kSplit) {
    id = nodes[static_cast<std::size_t>(id)].input0();
  }
  return id;
}

std::vector<int> Graph::levels() const {
  std::vector<int> level(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const OpNode& node = nodes[i];
    int max_in = -1;
    for (int in : node.inputs) {
      PF15_CHECK_MSG(in < static_cast<int>(i),
                     "graph not topologically ordered at node " << i);
      if (in >= 0) max_in = std::max(max_in, level[static_cast<std::size_t>(in)]);
    }
    // Splits do no work: they live at their producer's level so that
    // consumers reading through them see the aliased value's level.
    level[i] = node.kind == OpKind::kSplit ? std::max(max_in, 0) : max_in + 1;
  }
  return level;
}

namespace {

/// Lifts one layer into a node; `sample` is the per-sample input shape.
OpNode capture_layer(nn::Layer& layer, const Shape& sample) {
  OpNode node;
  node.name = layer.name();
  node.in_sample = sample;
  node.out_sample = strip_batch(layer.output_shape(with_batch(sample, 1)));

  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    const nn::Conv2dConfig& cfg = conv->config();
    node.kind = OpKind::kConv;
    gemm::ConvGeom& g = node.problem.geom;
    g.in_c = cfg.in_channels;
    g.in_h = sample[1];
    g.in_w = sample[2];
    g.kernel_h = g.kernel_w = cfg.kernel;
    g.stride_h = g.stride_w = cfg.stride;
    g.pad_h = g.pad_w = cfg.pad;
    node.problem.out_c = cfg.out_channels;
    node.algo = cfg.algo;
    node.weight = conv->weight().clone();
    if (cfg.bias) node.bias = conv->bias().clone();
  } else if (auto* deconv = dynamic_cast<nn::Deconv2d*>(&layer)) {
    const nn::Deconv2dConfig& cfg = deconv->config();
    node.kind = OpKind::kDeconv;
    // The underlying convolution's geometry: its input is this node's
    // output (see nn::Deconv2d::geom).
    gemm::ConvGeom& g = node.problem.geom;
    g.in_c = cfg.out_channels;
    g.in_h = node.out_sample[1];
    g.in_w = node.out_sample[2];
    g.kernel_h = g.kernel_w = cfg.kernel;
    g.stride_h = g.stride_w = cfg.stride;
    g.pad_h = g.pad_w = cfg.pad;
    node.problem.out_c = cfg.in_channels;
    node.algo = cfg.algo;
    auto params = deconv->params();
    node.weight = params[0].value->clone();
    if (cfg.bias) node.bias = params[1].value->clone();
  } else if (auto* fc = dynamic_cast<nn::Dense*>(&layer)) {
    node.kind = OpKind::kDense;
    node.in_features = fc->in_features();
    node.out_features = fc->out_features();
    node.weight = fc->weight().clone();
    node.bias = fc->bias().clone();
  } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
    node.kind = OpKind::kMaxPool;
    node.pool_kernel = pool->kernel();
    node.pool_stride = pool->stride();
  } else if (dynamic_cast<nn::GlobalAvgPool*>(&layer) != nullptr) {
    node.kind = OpKind::kGlobalPool;
  } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
    node.kind = OpKind::kRelu;
  } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr) {
    node.kind = OpKind::kSigmoid;
  } else if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
    node.kind = OpKind::kTanh;
  } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
    // Captured directly as the inference-mode per-channel affine — the
    // exact math BatchNorm2d::forward runs in eval mode. fold_batchnorm
    // later pushes scale/shift into the producer's weights when it can.
    node.kind = OpKind::kBatchNorm;
    const std::size_t c = bn->config().channels;
    node.bn_scale = Tensor(Shape{c});
    node.bn_shift = Tensor(Shape{c});
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float inv_std = 1.0f / std::sqrt(bn->running_var().at(ch) +
                                             bn->config().epsilon);
      const float scale = bn->gamma().at(ch) * inv_std;
      node.bn_scale.at(ch) = scale;
      node.bn_shift.at(ch) =
          bn->beta().at(ch) - bn->running_mean().at(ch) * scale;
    }
  } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
    node.kind = OpKind::kDropout;  // identity in eval mode
  } else {
    // Composite or unknown layer (extensions): execute it through the
    // live layer; passes treat it as a black box.
    node.kind = OpKind::kOpaque;
    node.layer = &layer;
  }
  return node;
}

int append_node(OpNode node, int producer, std::vector<OpNode>& nodes) {
  node.inputs = {producer};
  nodes.push_back(std::move(node));
  return static_cast<int>(nodes.size() - 1);
}

/// Lowers a ResidualBlock into its real sub-graph:
///
///   producer -> split -+-> conv1 [-> bn1] -> relu1 -> conv2 [-> bn2] -+
///                      |                                              v
///                      +----------- [proj conv] ------------------> add -> relu
///
/// so the passes see the branch convolutions (BN folds, relu1 fuses into
/// conv1's epilogue, the trailing ReLU fuses into the add join) and the
/// arena planner can reuse branch buffers across blocks. Returns the
/// final node id.
int lower_residual(nn::ResidualBlock& block, int producer, const Shape& sample,
                   std::vector<OpNode>& nodes) {
  const std::size_t first = nodes.size();

  OpNode split;
  split.kind = OpKind::kSplit;
  split.name = block.name() + ".split";
  split.in_sample = split.out_sample = sample;
  const int split_id = append_node(std::move(split), producer, nodes);

  int branch = split_id;
  Shape s = sample;
  for (std::size_t i = 0; i < block.branch_layer_count(); ++i) {
    OpNode node = capture_layer(block.branch_layer(i), s);
    s = node.out_sample;
    branch = append_node(std::move(node), branch, nodes);
  }

  int shortcut = split_id;
  if (nn::Conv2d* proj = block.projection()) {
    shortcut = append_node(capture_layer(*proj, sample), split_id, nodes);
  }
  PF15_CHECK_MSG(
      s == nodes[static_cast<std::size_t>(shortcut)].out_sample,
      block.name() << ": branch/shortcut shape mismatch in capture");

  OpNode add;
  add.kind = OpKind::kAdd;
  add.name = block.name() + ".add";
  add.in_sample = add.out_sample = s;
  add.inputs = {branch, shortcut};
  nodes.push_back(std::move(add));
  const int add_id = static_cast<int>(nodes.size() - 1);

  OpNode relu;
  relu.kind = OpKind::kRelu;
  relu.name = block.name() + ".relu";
  relu.in_sample = relu.out_sample = s;
  const int out = append_node(std::move(relu), add_id, nodes);

  for (std::size_t i = first; i < nodes.size(); ++i) {
    nodes[i].in_residual = true;
  }
  return out;
}

/// Appends `net`'s layers as a chain hanging off `producer` (residual
/// blocks expand into their split/add sub-graphs); returns the last
/// node's id.
int capture_chain(nn::Sequential& net, int producer, Shape sample,
                  std::vector<OpNode>& nodes) {
  PF15_CHECK_MSG(net.layer_count() > 0, "capture: empty network");
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (auto* block = dynamic_cast<nn::ResidualBlock*>(&net.layer(i))) {
      producer = lower_residual(*block, producer, sample, nodes);
      sample = nodes[static_cast<std::size_t>(producer)].out_sample;
      continue;
    }
    OpNode node = capture_layer(net.layer(i), sample);
    node.inputs = {producer};
    sample = node.out_sample;
    producer = static_cast<int>(nodes.size());
    nodes.push_back(std::move(node));
  }
  return producer;
}

/// " (layer 3 'res2_1.bn1' still runs training behaviour)" for the first
/// layer of `net` reporting training mode; empty when only the container
/// flag is set (stateless nets whose layers are mode-independent).
std::string offending_layer(const nn::Sequential& net,
                            const std::string& part) {
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (net.layer(i).training()) {
      return " (" + (part.empty() ? std::string() : part + " ") + "layer " +
             std::to_string(i) + " '" + net.layer(i).name() +
             "' still runs training behaviour)";
    }
  }
  return "";
}

void require_inference_mode(const nn::Sequential& net, const char* what,
                            const std::string& part = "") {
  if (!net.training()) return;
  throw ConfigError(std::string("graph::capture: ") + what +
                    " is in training mode" + offending_layer(net, part) +
                    "; a compiled plan freezes eval-time behaviour "
                    "(running statistics, identity dropout) — call "
                    "set_training(false) first");
}

}  // namespace

Graph capture(nn::Sequential& net, const Shape& sample_shape) {
  require_inference_mode(net, "the network");
  Graph g;
  g.input_sample = sample_shape;
  const int last =
      capture_chain(net, OpNode::kGraphInput, sample_shape, g.nodes);
  g.outputs.push_back(last);
  return g;
}

Graph capture(nn::ClimateNet& net) {
  const nn::ClimateConfig& cfg = net.config();
  // ClimateNet::training() is the OR over exactly these six parts, so
  // checking each part covers the whole net — and names the part.
  const char* what = "the climate network";
  require_inference_mode(net.encoder(), what, "encoder");
  require_inference_mode(net.conf_head(), what, "conf head");
  require_inference_mode(net.cls_head(), what, "cls head");
  require_inference_mode(net.xy_head(), what, "xy head");
  require_inference_mode(net.wh_head(), what, "wh head");
  require_inference_mode(net.decoder(), what, "decoder");
  Graph g;
  g.input_sample = Shape{cfg.channels, cfg.image, cfg.image};

  const int features = capture_chain(net.encoder(), OpNode::kGraphInput,
                                     g.input_sample, g.nodes);
  const Shape feat_sample = g.nodes[static_cast<std::size_t>(features)]
                                .out_sample;
  // The coarse feature grid fans out through an explicit split: four
  // per-score heads plus the reconstruction decoder all read the same
  // value, and the level-scheduled executor runs them concurrently.
  OpNode split;
  split.kind = OpKind::kSplit;
  split.name = "features.split";
  split.in_sample = split.out_sample = feat_sample;
  split.inputs = {features};
  g.nodes.push_back(std::move(split));
  const int fan = static_cast<int>(g.nodes.size() - 1);

  g.outputs.push_back(
      capture_chain(net.conf_head(), fan, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.cls_head(), fan, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.xy_head(), fan, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.wh_head(), fan, feat_sample, g.nodes));
  g.outputs.push_back(
      capture_chain(net.decoder(), fan, feat_sample, g.nodes));
  return g;
}

}  // namespace pf15::graph
