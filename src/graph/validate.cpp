#include "graph/validate.hpp"

#include <algorithm>
#include <sstream>

#include "common/errors.hpp"

namespace pf15::graph {

namespace {

/// Everything one checking pass needs: the graph, the growing finding
/// list, and the cap. add() formats into a Diagnostic and reports
/// whether the caller should keep going.
struct Reporter {
  const Graph& g;
  std::vector<Diagnostic>& out;
  std::size_t cap;

  bool full() const { return out.size() >= cap; }

  template <typename F>
  bool add(DiagCode code, int node, int other, F&& fill) {
    if (full()) return false;
    std::ostringstream msg;
    fill(msg);
    out.push_back({code, node, other, msg.str()});
    return !full();
  }
};

bool can_carry_epilogue(OpKind k) {
  // Mirrors the executor: apply_epilogue() runs only after conv, deconv,
  // dense, batchnorm, and add nodes. An epilogue anywhere else is fusion
  // that crossed a boundary it must not (e.g. a fan-out split) and would
  // silently drop an activation at execution time.
  switch (k) {
    case OpKind::kConv:
    case OpKind::kDeconv:
    case OpKind::kDense:
    case OpKind::kBatchNorm:
    case OpKind::kAdd:
      return true;
    default:
      return false;
  }
}

/// Graph::resolve_alias with the crash removed: walks kSplit chains with
/// a step bound so a split cycle (which the topological check also
/// flags) terminates here instead of spinning. Sets *ok = false when the
/// chain leaves the graph or never reaches an owner.
int resolve_alias_safe(const Graph& g, int id, bool* ok) {
  const int n = static_cast<int>(g.nodes.size());
  int steps = 0;
  *ok = true;
  while (id >= 0 && id < n &&
         g.nodes[static_cast<std::size_t>(id)].kind == OpKind::kSplit) {
    id = g.nodes[static_cast<std::size_t>(id)].input0();
    if (++steps > n) {
      *ok = false;
      return id;
    }
  }
  if (id < OpNode::kGraphInput || id >= n) *ok = false;
  return id;
}

/// Per-sample output shape feeding edge `in` (kGraphInput = the graph's
/// own input shape). Only called with an in-range edge.
const Shape& edge_shape(const Graph& g, int in) {
  return in == OpNode::kGraphInput
             ? g.input_sample
             : g.nodes[static_cast<std::size_t>(in)].out_sample;
}

/// Node-local checks: edge ranges, topological order, arity, kind
/// purity, epilogue legality, shape agreement along each edge, and
/// weight-tensor extents against the declared geometry. Returns false
/// once the diagnostic cap is hit.
bool check_nodes(Reporter& r) {
  const Graph& g = r.g;
  const int n = static_cast<int>(g.nodes.size());
  for (int i = 0; i < n; ++i) {
    const OpNode& node = g.nodes[static_cast<std::size_t>(i)];

    // ---- arity ----
    const std::size_t want_arity = node.kind == OpKind::kAdd ? 2 : 1;
    if (node.inputs.size() != want_arity) {
      if (!r.add(DiagCode::kBadArity, i, -1, [&](std::ostream& m) {
            m << to_string(node.kind) << " node has " << node.inputs.size()
              << " inputs, expected " << want_arity;
          }))
        return false;
    }

    // ---- edges: range, then order ----
    bool edges_ok = true;
    for (int in : node.inputs) {
      if (in < OpNode::kGraphInput || in >= n) {
        edges_ok = false;
        if (!r.add(DiagCode::kBadEdge, i, -1, [&](std::ostream& m) {
              m << "input edge " << in << " outside [-1, " << n << ")";
            }))
          return false;
      } else if (in >= i) {
        // In an index-edge IR a cycle can only appear as an edge to self
        // or to a higher index, so this one check covers acyclicity.
        edges_ok = false;
        if (!r.add(DiagCode::kNotTopological, i, in, [&](std::ostream& m) {
              m << "input edge " << in << " does not point below node " << i
                << " (cycle or unsorted graph)";
            }))
          return false;
      }
    }

    // ---- kind purity / required payloads ----
    if (node.kind == OpKind::kSplit) {
      if (node.weight.defined() || node.bias.defined() ||
          node.bn_scale.defined() || node.bn_shift.defined() ||
          node.layer != nullptr) {
        if (!r.add(DiagCode::kSplitNotAlias, i, -1, [&](std::ostream& m) {
              m << "split must be a pure alias but owns "
                << (node.weight.defined() ? "weights" :
                    node.bias.defined() ? "bias" :
                    node.layer ? "a live layer" : "bn parameters");
            }))
          return false;
      }
    }
    if (node.kind == OpKind::kOpaque && node.layer == nullptr) {
      if (!r.add(DiagCode::kMissingLayer, i, -1, [&](std::ostream& m) {
            m << "opaque node '" << node.name << "' has no live layer";
          }))
        return false;
    }

    // ---- epilogue legality ----
    if (node.epilogue != Epilogue::kNone && !can_carry_epilogue(node.kind)) {
      if (!r.add(DiagCode::kIllegalEpilogue, i, -1, [&](std::ostream& m) {
            m << to_string(node.epilogue) << " epilogue on a "
              << to_string(node.kind) << " node";
            if (node.kind == OpKind::kSplit) m << " (fusion crossed fan-out)";
          }))
        return false;
    }

    // ---- shape agreement (only over well-formed edges) ----
    if (edges_ok) {
      for (int in : node.inputs) {
        const Shape& produced = edge_shape(g, in);
        if (produced.rank() != 0 && node.in_sample.rank() != 0 &&
            !(produced == node.in_sample)) {
          if (!r.add(DiagCode::kShapeMismatch, i, in, [&](std::ostream& m) {
                m << "consumes " << node.in_sample.str() << " but input "
                  << in << " produces " << produced.str();
              }))
            return false;
        }
      }
      if (node.kind == OpKind::kAdd && node.inputs.size() == 2) {
        // Elementwise join: both operands and the output must agree.
        const Shape& a = edge_shape(g, node.inputs[0]);
        const Shape& b = edge_shape(g, node.inputs[1]);
        if (a.rank() != 0 && b.rank() != 0 &&
            (!(a == b) || !(a == node.out_sample))) {
          if (!r.add(DiagCode::kShapeMismatch, i, -1, [&](std::ostream& m) {
                m << "add operands/output disagree: " << a.str() << " + "
                  << b.str() << " -> " << node.out_sample.str();
              }))
            return false;
        }
      }
      if (node.kind == OpKind::kSplit && node.inputs.size() == 1) {
        const Shape& produced = edge_shape(g, node.input0());
        if (produced.rank() != 0 && !(produced == node.out_sample)) {
          if (!r.add(DiagCode::kShapeMismatch, i, node.input0(),
                     [&](std::ostream& m) {
                       m << "split alias reshapes " << produced.str()
                         << " to " << node.out_sample.str();
                     }))
            return false;
        }
      }
    }

    // ---- weight extents vs declared geometry ----
    switch (node.kind) {
      case OpKind::kConv:
      case OpKind::kDeconv: {
        const std::size_t want =
            node.problem.out_c * node.problem.geom.lowered_rows();
        if (node.weight.defined() && want != 0 &&
            node.weight.numel() != want) {
          if (!r.add(DiagCode::kBadWeights, i, -1, [&](std::ostream& m) {
                m << "filter bank has " << node.weight.numel()
                  << " floats, geometry wants " << want;
              }))
            return false;
        }
        // The bias covers the node's *output* channels. For kDeconv the
        // stored problem is the underlying convolution (whose input is
        // this node's output), so that count is geom.in_c, not out_c.
        const std::size_t bias_channels = node.kind == OpKind::kDeconv
                                              ? node.problem.geom.in_c
                                              : node.problem.out_c;
        if (node.bias.defined() && bias_channels != 0 &&
            node.bias.numel() != bias_channels) {
          if (!r.add(DiagCode::kBadWeights, i, -1, [&](std::ostream& m) {
                m << "bias has " << node.bias.numel() << " floats for "
                  << bias_channels << " output channels";
              }))
            return false;
        }
        break;
      }
      case OpKind::kDense: {
        const std::size_t want = node.in_features * node.out_features;
        if (node.weight.defined() && want != 0 &&
            node.weight.numel() != want) {
          if (!r.add(DiagCode::kBadWeights, i, -1, [&](std::ostream& m) {
                m << "dense weight has " << node.weight.numel()
                  << " floats, expected " << node.in_features << "x"
                  << node.out_features;
              }))
            return false;
        }
        if (node.bias.defined() && node.bias.numel() != node.out_features) {
          if (!r.add(DiagCode::kBadWeights, i, -1, [&](std::ostream& m) {
                m << "dense bias has " << node.bias.numel()
                  << " floats for " << node.out_features << " features";
              }))
            return false;
        }
        break;
      }
      case OpKind::kBatchNorm: {
        // Per-channel affine over the leading (channel) dimension.
        const std::size_t channels =
            node.out_sample.rank() > 0 ? node.out_sample[0] : 0;
        if (channels != 0 &&
            ((node.bn_scale.defined() &&
              node.bn_scale.numel() != channels) ||
             (node.bn_shift.defined() &&
              node.bn_shift.numel() != channels))) {
          if (!r.add(DiagCode::kBadWeights, i, -1, [&](std::ostream& m) {
                m << "batchnorm scale/shift sized "
                  << node.bn_scale.numel() << "/" << node.bn_shift.numel()
                  << " for " << channels << " channels";
              }))
            return false;
        }
        break;
      }
      default:
        break;
    }
  }
  return true;
}

/// Graph outputs must name real nodes, and every split chain must bottom
/// out at a buffer-owning node (or the graph input).
bool check_outputs_and_aliases(Reporter& r) {
  const Graph& g = r.g;
  const int n = static_cast<int>(g.nodes.size());
  for (std::size_t k = 0; k < g.outputs.size(); ++k) {
    const int out = g.outputs[k];
    if (out < 0 || out >= n) {
      if (!r.add(DiagCode::kBadOutput, out, -1, [&](std::ostream& m) {
            m << "graph output " << k << " names node " << out
              << ", graph has " << n;
          }))
        return false;
    }
  }
  for (int i = 0; i < n; ++i) {
    if (g.nodes[static_cast<std::size_t>(i)].kind != OpKind::kSplit) continue;
    bool ok = true;
    const int owner = resolve_alias_safe(g, i, &ok);
    if (!ok) {
      if (!r.add(DiagCode::kDanglingAlias, i, owner, [&](std::ostream& m) {
            m << "split chain from node " << i
              << " never reaches a buffer-owning node";
          }))
        return false;
    }
  }
  return true;
}

/// Levels without the PF15_CHECK: malformed edges contribute nothing, so
/// this never crashes on a corrupted graph (those edges are already
/// flagged by check_nodes).
std::vector<int> safe_levels(const Graph& g) {
  std::vector<int> level(g.nodes.size(), 0);
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const OpNode& node = g.nodes[i];
    int max_in = -1;
    for (int in : node.inputs) {
      if (in >= 0 && in < static_cast<int>(i)) {
        max_in = std::max(max_in, level[static_cast<std::size_t>(in)]);
      }
    }
    level[i] =
        node.kind == OpKind::kSplit ? std::max(max_in, 0) : max_in + 1;
  }
  return level;
}

/// Arena checks, fully independent of plan_arena's bookkeeping: liveness
/// intervals are re-derived here from the edges (def level .. last
/// consumer's level, graph outputs pinned past the end) and every pair
/// of byte-overlapping buffers is tested for interval overlap. A
/// same-defining-level collision is reported separately — under the
/// level-scheduled executor those two writes race, which is worse than a
/// stale-read reuse bug.
bool check_arena(Reporter& r, const ArenaAssignment& arena) {
  const Graph& g = r.g;
  const std::size_t n = g.nodes.size();
  if (arena.offsets.size() != n || arena.external.size() != n) {
    r.add(DiagCode::kArenaOutOfBounds, -1, -1, [&](std::ostream& m) {
      m << "assignment sized for " << arena.offsets.size() << "/"
        << arena.external.size() << " nodes, graph has " << n;
    });
    return !r.full();
  }

  const std::vector<int> level = safe_levels(g);
  const int past_end =
      1 + (level.empty() ? 0 : *std::max_element(level.begin(), level.end()));

  // Interval per node in level units; open = not a planned buffer
  // (split alias or external output).
  struct Live {
    bool planned = false;
    int def = 0;
    int end = 0;  // inclusive
  };
  std::vector<Live> live(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (g.nodes[i].kind == OpKind::kSplit) continue;  // owns no buffer
    if (arena.external[i]) continue;  // caller-visible tensor, no slot
    live[i].planned = true;
    live[i].def = level[i];
    live[i].end = level[i];  // producer overlaps itself trivially
  }
  // Extend to the last consumer, reading through split aliases exactly
  // like the executor does.
  for (std::size_t c = 0; c < n; ++c) {
    for (int in : g.nodes[c].inputs) {
      bool ok = true;
      const int owner = resolve_alias_safe(g, in, &ok);
      if (!ok || owner < 0) continue;
      auto& lv = live[static_cast<std::size_t>(owner)];
      if (lv.planned) {
        lv.end = std::max(lv.end, level[c]);
      } else if (arena.external[static_cast<std::size_t>(owner)]) {
        // External buffers are written straight into caller tensors and
        // must never be read back by another node.
        if (!r.add(DiagCode::kExternalConsumed, owner,
                   static_cast<int>(c), [&](std::ostream& m) {
                     m << "external buffer of node " << owner
                       << " is consumed by node " << c;
                   }))
          return false;
      }
    }
  }
  for (int out : g.outputs) {
    bool ok = true;
    const int owner = resolve_alias_safe(g, out, &ok);
    if (!ok || owner < 0) continue;
    if (live[static_cast<std::size_t>(owner)].planned) {
      // Outputs are read back after the run: live past the last level.
      live[static_cast<std::size_t>(owner)].end = past_end;
    }
  }

  // Bounds, then pairwise disjointness.
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i].planned) continue;
    const std::size_t sz = g.nodes[i].out_sample.numel();
    if (arena.offsets[i] + sz > arena.total_floats) {
      if (!r.add(DiagCode::kArenaOutOfBounds, static_cast<int>(i), -1,
                 [&](std::ostream& m) {
                   m << "buffer [" << arena.offsets[i] << ", "
                     << arena.offsets[i] + sz << ") exceeds arena of "
                     << arena.total_floats << " floats";
                 }))
        return false;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i].planned) continue;
    const std::size_t ai = arena.offsets[i];
    const std::size_t bi = ai + g.nodes[i].out_sample.numel();
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!live[j].planned) continue;
      const std::size_t aj = arena.offsets[j];
      const std::size_t bj = aj + g.nodes[j].out_sample.numel();
      const bool bytes_overlap = ai < bj && aj < bi;
      const bool levels_overlap =
          live[i].def <= live[j].end && live[j].def <= live[i].end;
      if (!bytes_overlap || !levels_overlap) continue;
      const DiagCode code = level[i] == level[j]
                                ? DiagCode::kConcurrentWriteOverlap
                                : DiagCode::kLiveRangeOverlap;
      if (!r.add(code, static_cast<int>(i), static_cast<int>(j),
                 [&](std::ostream& m) {
                   m << "buffers [" << ai << ", " << bi << ") live L"
                     << live[i].def << ".." << live[i].end << " and ["
                     << aj << ", " << bj << ") live L" << live[j].def
                     << ".." << live[j].end
                     << (level[i] == level[j]
                             ? " are written concurrently"
                             : " share bytes while both live");
                 }))
        return false;
    }
  }
  return true;
}

}  // namespace

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kBadOutput: return "bad_output";
    case DiagCode::kBadArity: return "bad_arity";
    case DiagCode::kBadEdge: return "bad_edge";
    case DiagCode::kNotTopological: return "not_topological";
    case DiagCode::kDanglingAlias: return "dangling_alias";
    case DiagCode::kShapeMismatch: return "shape_mismatch";
    case DiagCode::kIllegalEpilogue: return "illegal_epilogue";
    case DiagCode::kSplitNotAlias: return "split_not_alias";
    case DiagCode::kMissingLayer: return "missing_layer";
    case DiagCode::kBadWeights: return "bad_weights";
    case DiagCode::kArenaOutOfBounds: return "arena_out_of_bounds";
    case DiagCode::kConcurrentWriteOverlap: return "concurrent_write_overlap";
    case DiagCode::kLiveRangeOverlap: return "live_range_overlap";
    case DiagCode::kExternalConsumed: return "external_consumed";
  }
  return "unknown";
}

std::vector<Diagnostic> validate(const Graph& g, const ValidateOptions& opt) {
  std::vector<Diagnostic> diags;
  Reporter r{g, diags, opt.max_diagnostics == 0 ? 1 : opt.max_diagnostics};
  const bool structure_ok = check_nodes(r) && check_outputs_and_aliases(r);
  // The arena checks derive levels and walk aliases; on a structurally
  // broken graph those derivations are meaningless, and the structural
  // findings already name the root cause.
  if (structure_ok && diags.empty() && opt.arena != nullptr) {
    check_arena(r, *opt.arena);
  }
  return diags;
}

std::string render(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i) os << "\n";
    os << to_string(diags[i].code);
    if (diags[i].node >= 0) os << " @node" << diags[i].node;
    if (diags[i].other >= 0) os << " (vs @node" << diags[i].other << ")";
    os << ": " << diags[i].message;
  }
  return os.str();
}

void check_valid(const Graph& g, const char* where,
                 const ArenaAssignment* arena) {
  ValidateOptions opt;
  opt.arena = arena;
  const std::vector<Diagnostic> diags = validate(g, opt);
  PF15_CHECK_MSG(diags.empty(), "graph validation failed after " << where
                                    << ":\n" << render(diags));
}

}  // namespace pf15::graph
