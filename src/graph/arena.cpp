#include "graph/arena.hpp"

#include <algorithm>

namespace pf15::graph {

ArenaAssignment plan_arena(const Graph& g) {
  const std::size_t n = g.nodes.size();
  ArenaAssignment plan;
  plan.offsets.assign(n, 0);
  plan.external.assign(n, false);

  const std::vector<int> level = g.levels();
  // Level interval of node i's output: [level[i], level of last
  // consumer], with consumers resolved through split aliases; graph
  // outputs stay live past the last level (copied out after the run).
  const int kPastEnd = n == 0 ? 1 : *std::max_element(level.begin(),
                                                      level.end()) + 1;
  std::vector<int> last(n, 0);
  std::vector<std::size_t> size(n, 0);
  std::vector<std::size_t> consumers(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (g.nodes[i].kind == OpKind::kSplit) continue;  // owns no buffer
    last[i] = level[i];
    size[i] = g.nodes[i].out_sample.numel();
    plan.eager_floats += size[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (g.nodes[i].kind == OpKind::kSplit) continue;
    for (int in : g.nodes[i].inputs) {
      const int src = g.resolve_alias(in);
      if (src < 0) continue;
      last[static_cast<std::size_t>(src)] =
          std::max(last[static_cast<std::size_t>(src)], level[i]);
      ++consumers[static_cast<std::size_t>(src)];
    }
  }
  for (int out : g.outputs) {
    const int src = g.resolve_alias(out);
    if (src < 0) continue;
    last[static_cast<std::size_t>(src)] = kPastEnd;
    // An output nothing else reads is produced straight into the result
    // tensor — no arena slot, no copy-out.
    if (consumers[static_cast<std::size_t>(src)] == 0) {
      plan.external[static_cast<std::size_t>(src)] = true;
    }
  }

  // Largest-first placement: for each buffer, sweep the already-placed
  // buffers whose live interval overlaps and take the lowest offset gap
  // that fits. O(n^2 log n) on graphs of tens of nodes.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (size[a] != size[b]) return size[a] > size[b];
    return a < b;
  });

  std::vector<bool> placed(n, false);
  for (std::size_t i : order) {
    if (plan.external[i] || size[i] == 0) continue;
    // Intervals are closed: [def, last] in levels. Overlap means the two
    // buffers are both live at some level and must not share bytes —
    // including two same-level buffers, which the parallel executor may
    // be writing concurrently.
    std::vector<std::pair<std::size_t, std::size_t>> busy;  // (offset, end)
    for (std::size_t j = 0; j < n; ++j) {
      if (!placed[j]) continue;
      if (last[j] < level[i] || last[i] < level[j]) continue;  // disjoint
      busy.emplace_back(plan.offsets[j], plan.offsets[j] + size[j]);
    }
    std::sort(busy.begin(), busy.end());
    std::size_t offset = 0;
    for (const auto& [b_off, b_end] : busy) {
      if (offset + size[i] <= b_off) break;  // fits in the gap before b
      offset = std::max(offset, b_end);
    }
    plan.offsets[i] = offset;
    placed[i] = true;
    plan.total_floats = std::max(plan.total_floats, offset + size[i]);
  }
  return plan;
}

}  // namespace pf15::graph
