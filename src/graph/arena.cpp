#include "graph/arena.hpp"

#include <algorithm>

namespace pf15::graph {

ArenaAssignment plan_arena(const Graph& g) {
  const std::size_t n = g.nodes.size();
  ArenaAssignment plan;
  plan.offsets.assign(n, 0);
  plan.external.assign(n, false);

  // Live interval of node i's output: [i, last consumer]; graph outputs
  // stay live past the last step (they are copied out after the run).
  std::vector<std::size_t> last(n, 0);
  std::vector<std::size_t> size(n, 0);
  std::vector<std::size_t> consumers(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    last[i] = i;
    size[i] = g.nodes[i].out_sample.numel();
    plan.eager_floats += size[i];
    if (g.nodes[i].input >= 0) {
      last[static_cast<std::size_t>(g.nodes[i].input)] = i;
      ++consumers[static_cast<std::size_t>(g.nodes[i].input)];
    }
  }
  for (int out : g.outputs) {
    if (out < 0) continue;
    last[static_cast<std::size_t>(out)] = n;
    // An output nothing else reads is produced straight into the result
    // tensor — no arena slot, no copy-out.
    if (consumers[static_cast<std::size_t>(out)] == 0) {
      plan.external[static_cast<std::size_t>(out)] = true;
    }
  }

  // Largest-first placement: for each buffer, sweep the already-placed
  // buffers whose live interval overlaps and take the lowest offset gap
  // that fits. O(n^2 log n) on graphs of tens of nodes.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (size[a] != size[b]) return size[a] > size[b];
    return a < b;
  });

  std::vector<bool> placed(n, false);
  for (std::size_t i : order) {
    if (plan.external[i]) continue;
    // Intervals are closed: [def, last]. Overlap means the two buffers
    // are both live at some step and must not share bytes.
    std::vector<std::pair<std::size_t, std::size_t>> busy;  // (offset, end)
    for (std::size_t j = 0; j < n; ++j) {
      if (!placed[j]) continue;
      if (last[j] < i || last[i] < j) continue;  // disjoint intervals
      busy.emplace_back(plan.offsets[j], plan.offsets[j] + size[j]);
    }
    std::sort(busy.begin(), busy.end());
    std::size_t offset = 0;
    for (const auto& [b_off, b_end] : busy) {
      if (offset + size[i] <= b_off) break;  // fits in the gap before b
      offset = std::max(offset, b_end);
    }
    plan.offsets[i] = offset;
    placed[i] = true;
    plan.total_floats = std::max(plan.total_floats, offset + size[i]);
  }
  return plan;
}

}  // namespace pf15::graph
