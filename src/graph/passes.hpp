// Graph optimization passes.
//
// All passes are eval-only rewrites over the captured IR (graph.hpp):
// they preserve the forward math up to floating-point reassociation and
// never touch the live network (weight-carrying nodes own copies).
// Opaque nodes are black boxes: no pass reads into or rewires across
// them, so e.g. fusion can never cross a residual block's skip join.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace pf15::graph {

struct PassStats {
  std::size_t stripped_noops = 0;
  std::size_t folded_batchnorms = 0;
  std::size_t fused_activations = 0;
};

/// Removes eval-time no-ops (Dropout is the identity in inference mode),
/// rewiring consumers to the stripped node's producer. Returns the number
/// of nodes removed.
std::size_t strip_noops(Graph& g);

/// Folds BatchNorm running-statistics affines (y = scale x + shift) into
/// the producer's weights when the producer is a Conv/Deconv/Dense whose
/// only consumer is the BatchNorm:
///   w'[oc] = scale[oc] * w[oc],  b'[oc] = scale[oc] * b[oc] + shift[oc]
/// (a bias is materialised when the producer had none). BatchNorms that
/// cannot fold — producer opaque, fanned out, or already carrying a fused
/// epilogue — stay behind as per-channel affine nodes. Returns the number
/// folded.
std::size_t fold_batchnorm(Graph& g);

/// Fuses standalone elementwise activations (ReLU/Sigmoid/Tanh) into the
/// epilogue of a Conv/Deconv/Dense/BatchNorm producer with exactly one
/// consumer and no epilogue yet. Returns the number fused.
std::size_t fuse_activations(Graph& g);

/// The standard pipeline: strip no-ops, fold BatchNorm, fuse activations
/// (in that order — folding requires the BN to sit directly on the conv).
PassStats optimize(Graph& g);

}  // namespace pf15::graph
