// Graph optimization passes.
//
// All passes are eval-only rewrites over the captured IR (graph.hpp):
// they preserve the forward math up to floating-point reassociation and
// never touch the live network (weight-carrying nodes own copies). The
// passes walk the DAG through explicit input edges, so with residual
// blocks lowered into real split/add sub-graphs they fire *inside* the
// branches too: BatchNorm folds into the branch convolutions, branch
// activations fuse into conv epilogues, and the trailing ReLU of a block
// fuses into the add join itself. Fusion still never crosses a fan-out
// point (a kSplit is a consumer like any other, so its producer never
// looks single-consumer) and never looks into an opaque node.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace pf15::graph {

struct PassStats {
  std::size_t stripped_noops = 0;
  std::size_t folded_batchnorms = 0;
  std::size_t fused_activations = 0;
  /// Subsets of the above that fired inside residual sub-graphs — the
  /// regression guard that capture did not silently fall back to opaque
  /// residual blocks (where no pass can fire).
  std::size_t residual_folded_batchnorms = 0;
  std::size_t residual_fused_activations = 0;
  /// Activations fused into kAdd join epilogues (the residual ReLU).
  std::size_t fused_joins = 0;
};

/// Removes eval-time no-ops (Dropout is the identity in inference mode),
/// rewiring consumers to the stripped node's producer. Returns the number
/// of nodes removed.
std::size_t strip_noops(Graph& g);

/// Folds BatchNorm running-statistics affines (y = scale x + shift) into
/// the producer's weights when the producer is a Conv/Deconv/Dense whose
/// only consumer is the BatchNorm:
///   w'[oc] = scale[oc] * w[oc],  b'[oc] = scale[oc] * b[oc] + shift[oc]
/// (a bias is materialised when the producer had none). BatchNorms that
/// cannot fold — producer opaque, fanned out, or already carrying a fused
/// epilogue — stay behind as per-channel affine nodes. Returns the number
/// folded; `stats` (optional) accumulates the residual-subgraph subcount.
std::size_t fold_batchnorm(Graph& g, PassStats* stats = nullptr);

/// Fuses standalone elementwise activations (ReLU/Sigmoid/Tanh) into the
/// epilogue of a Conv/Deconv/Dense/BatchNorm/Add producer with exactly
/// one consumer and no epilogue yet — for kAdd producers this is the
/// residual join absorbing its trailing ReLU. Returns the number fused;
/// `stats` (optional) accumulates the residual and join subcounts.
std::size_t fuse_activations(Graph& g, PassStats* stats = nullptr);

/// The standard pipeline: strip no-ops, fold BatchNorm, fuse activations
/// (in that order — folding requires the BN to sit directly on the conv).
PassStats optimize(Graph& g);

}  // namespace pf15::graph
