// Inference op graph — the IR of the graph compiler.
//
// A live network (nn::Sequential, nn::ClimateNet) executes eagerly: one
// virtual forward() per layer, one owned activation per layer output, and
// eval-time dead work (Dropout, BatchNorm normalisation arithmetic) still
// in the hot path. capture() lifts the network into an explicit op graph
// whose weight-carrying nodes own *deep copies* of the layer parameters,
// so the optimization passes (see passes.hpp) can fold and fuse without
// mutating the training-side network. The compiled executor
// (compiled_plan.hpp) then runs the graph out of one shared activation
// arena with pre-tuned convolution plans.
//
// The IR is a true DAG: every node carries explicit input edges
// (`inputs`), fan-out is marked by kSplit nodes (zero-cost aliases of
// their producer's value), and kAdd join nodes merge two branches
// elementwise. ResidualBlock and the ClimateNet head fan-out lower into
// real sub-graphs — split -> branch / shortcut -> add -> activation — so
// the passes fold and fuse *inside* residual blocks and the executor can
// run independent branches concurrently (level scheduling). Only layers
// the compiler genuinely does not understand are captured opaquely and
// executed through the live layer; passes never look inside those.
#pragma once

#include <string>
#include <vector>

#include "gemm/conv_backend.hpp"
#include "nn/climate_net.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"
#include "tensor/tensor.hpp"

namespace pf15::graph {

enum class OpKind {
  kConv,        // Conv2d; bias/activation may be fused into its epilogue
  kDeconv,      // Deconv2d (runs the underlying conv's backward-data)
  kDense,       // fully connected
  kMaxPool,     // max pooling
  kGlobalPool,  // global average pooling
  kRelu,        // standalone elementwise activations (pre-fusion)
  kSigmoid,
  kTanh,
  kBatchNorm,  // inference-mode per-channel affine (pre-fold)
  kDropout,    // eval no-op (pre-strip)
  kSplit,      // explicit fan-out marker: aliases its producer's value
               // (no buffer, no work); consumers read through it
  kAdd,        // two-input elementwise join (residual skip add); an
               // activation may be fused into its epilogue
  kOpaque,     // anything else, executed through the live nn::Layer
};

/// Stable lower-case name ("conv", "deconv", ...).
const char* to_string(OpKind kind);

/// Elementwise activation fused into a producer's epilogue.
enum class Epilogue { kNone, kRelu, kSigmoid, kTanh };

const char* to_string(Epilogue e);

/// One node of the graph. Weight-carrying nodes own deep copies of the
/// source layer's parameters; opaque nodes borrow the live layer (the
/// graph is then only valid while the source network lives).
struct OpNode {
  /// `inputs` value meaning "the graph input tensor".
  static constexpr int kGraphInput = -1;

  OpKind kind = OpKind::kOpaque;
  std::string name;
  /// Producer node ids (or kGraphInput). Every kind has exactly one input
  /// except kAdd (two: {branch, shortcut}).
  std::vector<int> inputs = {kGraphInput};
  Shape in_sample;   // per-sample input shape (no batch dimension)
  Shape out_sample;  // per-sample output shape

  /// Lowered from a residual sub-graph — lets the compile report (and the
  /// regression guard in verify.sh) attribute folds/fusions that fire
  /// *inside* residual blocks, where the opaque capture could not.
  bool in_residual = false;

  /// First (usually only) input edge.
  int input0() const { return inputs.empty() ? kGraphInput : inputs[0]; }

  // ---- conv / deconv ----
  /// Per-image problem (for kDeconv: the underlying convolution, whose
  /// input is this node's output).
  gemm::ConvProblem problem;
  nn::ConvAlgo algo = nn::ConvAlgo::kAuto;
  Tensor weight;
  Tensor bias;  // undefined (!defined()) = no bias

  // ---- dense ----
  std::size_t in_features = 0;
  std::size_t out_features = 0;

  // ---- max pool ----
  std::size_t pool_kernel = 0;
  std::size_t pool_stride = 0;

  // ---- batchnorm (running-statistics affine: y = scale * x + shift) ----
  Tensor bn_scale;  // (C) gamma / sqrt(running_var + eps)
  Tensor bn_shift;  // (C) beta - running_mean * scale

  // ---- fused epilogue (set by passes) ----
  Epilogue epilogue = Epilogue::kNone;

  // ---- opaque ----
  nn::Layer* layer = nullptr;  // borrowed from the source network
};

/// The captured graph: nodes in topological order (every edge points to a
/// lower index) plus the node ids whose results leave the graph.
struct Graph {
  std::vector<OpNode> nodes;
  std::vector<int> outputs;
  Shape input_sample;  // per-sample graph input shape

  /// Number of direct consumers of node `id`: input edges naming it plus
  /// graph outputs (once each). Splits count as one consumer — fan-out
  /// behind a split therefore never looks like a single consumer, which
  /// is what keeps folds/fusions from crossing a branch point.
  std::size_t consumer_count(int id) const;

  /// Follows kSplit aliases down to the node that actually owns the
  /// value (or kGraphInput). Non-split ids map to themselves.
  int resolve_alias(int id) const;

  /// DAG level per node: level(i) = 1 + max over input levels, with the
  /// graph input at -1, so independent nodes (e.g. the two sides of a
  /// residual split, the climate heads) share a level. kSplit nodes are
  /// pass-through: they take their producer's level and schedule no
  /// work. Nodes of the same level never consume each other — the
  /// level-scheduled executor's concurrency invariant, and the unit the
  /// arena planner measures liveness in.
  std::vector<int> levels() const;
};

/// Captures `net` into an op graph for per-sample inputs of
/// `sample_shape` (e.g. (C, H, W)). ResidualBlock layers lower into real
/// split/add sub-graphs. The net must be in inference mode — throws
/// pf15::ConfigError naming the offending layer otherwise: freezing
/// training behaviour (batch statistics, dropout masks) into a static
/// eval plan would silently change the math it serves.
Graph capture(nn::Sequential& net, const Shape& sample_shape);

/// ClimateNet capture: the encoder chain feeds an explicit kSplit from
/// which the four detection heads and the reconstruction decoder fan
/// out. Outputs are ordered (conf, cls, xy, wh, recon), matching
/// nn::ClimateNet::Outputs.
Graph capture(nn::ClimateNet& net);

}  // namespace pf15::graph
