// Inference op graph — the IR of the graph compiler.
//
// A live network (nn::Sequential, nn::ClimateNet) executes eagerly: one
// virtual forward() per layer, one owned activation per layer output, and
// eval-time dead work (Dropout, BatchNorm normalisation arithmetic) still
// in the hot path. capture() lifts the network into an explicit op graph
// whose weight-carrying nodes own *deep copies* of the layer parameters,
// so the optimization passes (see passes.hpp) can fold and fuse without
// mutating the training-side network. The compiled executor
// (compiled_plan.hpp) then runs the graph out of one shared activation
// arena with pre-tuned convolution plans.
//
// The IR is deliberately small: every node has exactly one input (fan-out
// is several nodes naming the same producer — ClimateNet's feature grid
// feeds four heads and the decoder), and any layer the compiler does not
// understand is captured opaquely and executed through the live layer.
// Passes never look inside an opaque node, which is what keeps fusion
// from crossing a residual block's skip join.
#pragma once

#include <string>
#include <vector>

#include "gemm/conv_backend.hpp"
#include "nn/climate_net.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"
#include "tensor/tensor.hpp"

namespace pf15::graph {

enum class OpKind {
  kConv,        // Conv2d; bias/activation may be fused into its epilogue
  kDeconv,      // Deconv2d (runs the underlying conv's backward-data)
  kDense,       // fully connected
  kMaxPool,     // max pooling
  kGlobalPool,  // global average pooling
  kRelu,        // standalone elementwise activations (pre-fusion)
  kSigmoid,
  kTanh,
  kBatchNorm,  // inference-mode per-channel affine (pre-fold)
  kDropout,    // eval no-op (pre-strip)
  kOpaque,     // anything else, executed through the live nn::Layer
};

/// Stable lower-case name ("conv", "deconv", ...).
const char* to_string(OpKind kind);

/// Elementwise activation fused into a producer's epilogue.
enum class Epilogue { kNone, kRelu, kSigmoid, kTanh };

const char* to_string(Epilogue e);

/// One node of the graph. Weight-carrying nodes own deep copies of the
/// source layer's parameters; opaque nodes borrow the live layer (the
/// graph is then only valid while the source network lives).
struct OpNode {
  /// `input` value meaning "the graph input tensor".
  static constexpr int kGraphInput = -1;

  OpKind kind = OpKind::kOpaque;
  std::string name;
  int input = kGraphInput;  // producer node index, or kGraphInput
  Shape in_sample;          // per-sample input shape (no batch dimension)
  Shape out_sample;         // per-sample output shape

  // ---- conv / deconv ----
  /// Per-image problem (for kDeconv: the underlying convolution, whose
  /// input is this node's output).
  gemm::ConvProblem problem;
  nn::ConvAlgo algo = nn::ConvAlgo::kAuto;
  Tensor weight;
  Tensor bias;  // undefined (!defined()) = no bias

  // ---- dense ----
  std::size_t in_features = 0;
  std::size_t out_features = 0;

  // ---- max pool ----
  std::size_t pool_kernel = 0;
  std::size_t pool_stride = 0;

  // ---- batchnorm (running-statistics affine: y = scale * x + shift) ----
  Tensor bn_scale;  // (C) gamma / sqrt(running_var + eps)
  Tensor bn_shift;  // (C) beta - running_mean * scale

  // ---- fused epilogue (set by passes) ----
  Epilogue epilogue = Epilogue::kNone;

  // ---- opaque ----
  nn::Layer* layer = nullptr;  // borrowed from the source network
};

/// The captured graph: nodes in execution (topological) order plus the
/// node ids whose results leave the graph.
struct Graph {
  std::vector<OpNode> nodes;
  std::vector<int> outputs;
  Shape input_sample;  // per-sample graph input shape

  /// Number of consumers of node `id` (graph outputs count once each).
  std::size_t consumer_count(int id) const;
};

/// Captures `net` into an op graph for per-sample inputs of
/// `sample_shape` (e.g. (C, H, W)). The net must be in inference mode —
/// throws pf15::ConfigError otherwise: freezing training behaviour
/// (batch statistics, dropout masks) into a static eval plan would
/// silently change the math it serves.
Graph capture(nn::Sequential& net, const Shape& sample_shape);

/// ClimateNet capture: the encoder chain fans out into the four
/// detection heads and the reconstruction decoder. Outputs are ordered
/// (conf, cls, xy, wh, recon), matching nn::ClimateNet::Outputs.
Graph capture(nn::ClimateNet& net);

}  // namespace pf15::graph
