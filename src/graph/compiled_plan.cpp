#include "graph/compiled_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "common/task_scheduler.hpp"
#include "common/timer.hpp"
#include "graph/validate.hpp"
#include "gemm/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pf15::graph {

namespace {

/// In-place fused epilogue, applied per image right after the producing
/// kernel while the output is cache-hot. The formulas match the eager
/// activation layers exactly.
void apply_epilogue(Epilogue e, float* x, std::size_t n) {
  switch (e) {
    case Epilogue::kNone:
      return;
    case Epilogue::kRelu:
      for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
      return;
    case Epilogue::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = 1.0f / (1.0f + std::exp(-x[i]));
      }
      return;
    case Epilogue::kTanh:
      for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
      return;
  }
}

}  // namespace

TaskScheduler& CompiledPlan::sched() const {
  return scheduler_ != nullptr ? *scheduler_ : TaskScheduler::global();
}

CompiledPlan::CompiledPlan(Graph graph, const CompileOptions& opt)
    : graph_(std::move(graph)), scheduler_(opt.scheduler) {
  WallTimer compile_timer;
  obs::TraceSpan compile_span("compile", "compile");
  report_.captured_ops = graph_.nodes.size();
  {
    obs::TraceSpan span("passes", "compile");
    if (opt.strip_noops) {
      report_.passes.stripped_noops = graph::strip_noops(graph_);
#ifndef NDEBUG
      check_valid(graph_, "strip_noops");
#endif
    }
    if (opt.fold_batchnorm) {
      report_.passes.folded_batchnorms =
          graph::fold_batchnorm(graph_, &report_.passes);
#ifndef NDEBUG
      check_valid(graph_, "fold_batchnorm");
#endif
    }
    if (opt.fuse_activations) {
      report_.passes.fused_activations =
          graph::fuse_activations(graph_, &report_.passes);
#ifndef NDEBUG
      check_valid(graph_, "fuse_activations");
#endif
    }
  }
  report_.compiled_ops = graph_.nodes.size();
  {
    obs::TraceSpan span("plan_arena", "compile");
    arena_plan_ = plan_arena(graph_);
  }
#ifndef NDEBUG
  // Debug builds re-prove the planner's work: liveness is re-derived from
  // the edges inside validate(), independent of plan_arena's bookkeeping.
  check_valid(graph_, "plan_arena", &arena_plan_);
#endif
  report_.arena_floats_per_sample = arena_plan_.total_floats;
  report_.eager_floats_per_sample = arena_plan_.eager_floats;
  build_schedule(opt.parallel_levels);
  opaque_in_.resize(graph_.nodes.size());
  opaque_out_.resize(graph_.nodes.size());
  dispatch_.resize(graph_.nodes.size());
  // Which result tensor an external node writes into (first listing wins
  // when an output is named twice). Outputs resolve through split
  // aliases: the slot belongs to the node that owns the value.
  output_slot_.assign(graph_.nodes.size(), -1);
  for (std::size_t k = 0; k < graph_.outputs.size(); ++k) {
    const int o = graph_.resolve_alias(graph_.outputs[k]);
    if (o >= 0 && arena_plan_.external[static_cast<std::size_t>(o)] &&
        output_slot_[static_cast<std::size_t>(o)] < 0) {
      output_slot_[static_cast<std::size_t>(o)] = static_cast<int>(k);
    }
  }
  if (opt.pretune) {
    WallTimer pretune_timer;
    obs::TraceSpan span("pretune", "compile");
    pretune_convs(std::max<std::size_t>(1, opt.max_batch));
    report_.pretune_seconds = pretune_timer.seconds();
  }
  report_.compile_seconds = compile_timer.seconds();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("pf15_graph_compiles_total", "CompiledPlan constructions")
      .add(1);
  reg.histogram("pf15_graph_compile_seconds",
                obs::Histogram::exponential_bounds(1e-4, 4.0, 12),
                "CompiledPlan construction wall time")
      .observe(report_.compile_seconds);
}

void CompiledPlan::build_schedule(bool parallel_levels) {
  parallel_levels_ = parallel_levels;
  schedule_.clear();
  const std::vector<int> level = graph_.levels();
  int max_level = -1;
  for (std::size_t i = 0; i < graph_.nodes.size(); ++i) {
    if (graph_.nodes[i].kind == OpKind::kSplit) continue;  // no work
    max_level = std::max(max_level, level[i]);
  }
  schedule_.resize(static_cast<std::size_t>(max_level + 1));
  for (std::size_t i = 0; i < graph_.nodes.size(); ++i) {
    const OpNode& node = graph_.nodes[i];
    if (node.kind == OpKind::kSplit) continue;
    Level& lvl = schedule_[static_cast<std::size_t>(level[i])];
    // Nested waits are legal on the scheduler, so every known node kind
    // may run inside a wide-level task. Opaque nodes run a live
    // extension layer whose forward we cannot inspect: it joins a wide
    // level only when it opts in via Layer::parallel_ok().
    if (node.kind == OpKind::kOpaque &&
        !(node.layer != nullptr && node.layer->parallel_ok())) {
      lvl.serial.push_back(i);
    } else {
      lvl.parallel.push_back(i);
    }
  }
  report_.levels = schedule_.size();
  report_.max_level_width = 0;
  report_.wide_level_nodes = 0;
  for (const Level& lvl : schedule_) {
    report_.max_level_width = std::max(
        report_.max_level_width, lvl.parallel.size() + lvl.serial.size());
    if (lvl.parallel.size() > 1) {
      report_.wide_level_nodes += lvl.parallel.size();
    }
  }
  level_names_.clear();
  level_names_.reserve(schedule_.size());
  for (std::size_t l = 0; l < schedule_.size(); ++l) {
    level_names_.push_back("level" + std::to_string(l));
  }
}

void CompiledPlan::pretune_convs(std::size_t max_batch) {
  gemm::ConvPlanCache& cache = gemm::ConvPlanCache::global();
  const std::uint64_t misses_before = cache.misses();
  const std::size_t top = gemm::conv_batch_bucket(max_batch);
  for (std::size_t i = 0; i < graph_.nodes.size(); ++i) {
    const OpNode& node = graph_.nodes[i];
    gemm::ConvPhase phase = gemm::ConvPhase::kForward;
    if (node.kind == OpKind::kDeconv) {
      phase = gemm::ConvPhase::kBackwardData;  // deconv forward runs it
    } else if (node.kind != OpKind::kConv) {
      continue;
    }
    if (node.algo != nn::ConvAlgo::kAuto) continue;  // forced: no tuning
    // Every batch bucket the plan will serve. One execution mode exists
    // now — backends may always fan out (parallel_ok=true), nested
    // waits being legal — so the bucket is the whole key.
    for (std::size_t bucket = 1; bucket <= top; bucket <<= 1) {
      cache.plan(node.problem, phase, /*parallel_ok=*/true, bucket);
      ++report_.pretuned_plans;
    }
  }
  report_.pretune_misses =
      static_cast<std::size_t>(cache.misses() - misses_before);
}

const float* CompiledPlan::edge_data(int e, const Tensor& input,
                                     std::size_t batch) {
  const int r = graph_.resolve_alias(e);
  if (r < 0) return input.data();
  const std::size_t s = static_cast<std::size_t>(r);
  // External values have zero node consumers by construction, so every
  // edge read lands in the arena.
  PF15_CHECK(!arena_plan_.external[s]);
  return arena_.data() + arena_plan_.offsets[s] * batch;
}

const std::vector<Tensor>& CompiledPlan::run_all(const Tensor& input) {
  PF15_CHECK_MSG(input.shape().rank() >= 1 &&
                     strip_batch(input.shape()) == graph_.input_sample,
                 "CompiledPlan::run: input " << input.shape()
                                             << " does not batch samples of "
                                             << graph_.input_sample);
  const std::size_t batch = input.shape()[0];
  PF15_CHECK(batch >= 1);
  const std::size_t need = arena_plan_.total_floats * batch;
  if (arena_.size() < need) arena_.resize(need);

  // Result tensors first: external nodes write straight into them.
  outputs_.resize(graph_.outputs.size());
  for (std::size_t k = 0; k < graph_.outputs.size(); ++k) {
    const int o = graph_.outputs[k];
    const Shape& sample =
        o == OpNode::kGraphInput
            ? graph_.input_sample
            : graph_.nodes[static_cast<std::size_t>(o)].out_sample;
    nn::ensure_shape(outputs_[k], with_batch(sample, batch));
  }

  // Level-scheduled execution: levels run in order with a barrier after
  // each, so every node reads fully-written producer buffers. Within a
  // level the nodes are independent by construction; a wide level spawns
  // one task per node with a TaskSync continuation barrier — wait()
  // executes pending work, so each node task is free to fan its batch
  // across per-image child tasks and each conv backend to fan out
  // beneath that (node×batch×kernel product parallelism).
  //
  // Under PF15_TRACE every level and every node gets a span: wide-level
  // imbalance (one straggler node pinning the barrier) and serial opaque
  // stragglers are visible in the trace instead of folded into one
  // end-to-end number.
  obs::TraceSpan run_span("plan_run", "graph");
  static obs::Counter& executions = obs::MetricsRegistry::global().counter(
      "pf15_graph_executions_total", "CompiledPlan batched runs");
  executions.add(1);
  for (std::size_t l = 0; l < schedule_.size(); ++l) {
    const Level& lvl = schedule_[l];
    obs::TraceSpan level_span(
        obs::trace_enabled() ? level_names_[l] : std::string(), "graph");
    for (std::size_t id : lvl.serial) {
      execute_node(id, input, batch);
    }
    if (parallel_levels_ && lvl.parallel.size() > 1) {
      TaskScheduler& scheduler = sched();
      TaskSync level_done;
      for (std::size_t id : lvl.parallel) {
        scheduler.spawn(level_done, [this, id, &input, batch] {
          execute_node(id, input, batch);
        });
      }
      scheduler.wait(level_done);  // the per-level barrier; helps
    } else {
      for (std::size_t id : lvl.parallel) {
        execute_node(id, input, batch);
      }
    }
  }

  // Non-external outputs (still read by other nodes, an output listed
  // twice, or the graph input itself) are copied out of their buffer.
  for (std::size_t k = 0; k < graph_.outputs.size(); ++k) {
    const int o = graph_.resolve_alias(graph_.outputs[k]);
    if (o >= 0 && arena_plan_.external[static_cast<std::size_t>(o)]) {
      const int slot = output_slot_[static_cast<std::size_t>(o)];
      if (slot == static_cast<int>(k)) continue;  // produced in place
      outputs_[k].copy_from(outputs_[static_cast<std::size_t>(slot)]);
      continue;
    }
    std::memcpy(outputs_[k].data(), edge_data(o, input, batch),
                outputs_[k].numel() * sizeof(float));
  }
  return outputs_;
}

std::pair<const gemm::ConvBackend*, const gemm::ConvPrep*>
CompiledPlan::conv_dispatch(std::size_t id, gemm::ConvPhase phase,
                            std::size_t batch) {
  const OpNode& node = graph_.nodes[id];
  ConvDispatch& d = dispatch_[id];
  const std::size_t key = gemm::conv_batch_bucket(batch);
  auto kind_it = d.kind_by_bucket.find(key);
  if (kind_it == d.kind_by_bucket.end()) {
    // First sight of this bucket: one plan-cache resolution, frozen for
    // the plan's lifetime (its weights are frozen clones, and a compiled
    // plan deliberately keeps the backends it was born with).
    kind_it =
        d.kind_by_bucket
            .emplace(key, nn::resolve_conv_backend(node.algo, node.problem,
                                                   phase,
                                                   /*parallel_ok=*/true,
                                                   batch))
            .first;
  }
  const gemm::ConvBackend& be = gemm::backend(kind_it->second);
  auto prep_it = d.prep.find(kind_it->second);
  if (prep_it == d.prep.end()) {
    // A node runs exactly one phase (conv: forward, deconv:
    // backward-data), so the per-kind prep is unambiguous.
    prep_it =
        d.prep
            .emplace(kind_it->second,
                     phase == gemm::ConvPhase::kForward
                         ? be.prepare_forward(node.problem,
                                              node.weight.data())
                         : be.prepare_backward_data(node.problem,
                                                    node.weight.data()))
            .first;
  }
  return {&be, prep_it->second.get()};
}

const Tensor& CompiledPlan::run(const Tensor& input) {
  PF15_CHECK_MSG(graph_.outputs.size() == 1,
                 "CompiledPlan::run: graph has " << graph_.outputs.size()
                                                 << " outputs; use run_all");
  return run_all(input)[0];
}

void CompiledPlan::execute_node(std::size_t id, const Tensor& input,
                                std::size_t batch) {
  const OpNode& node = graph_.nodes[id];
  // Per-node span on whichever thread executes it (a scheduler worker
  // for wide levels): the node's captured name, so the trace reads like
  // the model.
  obs::TraceSpan node_span(
      obs::trace_enabled() ? node.name : std::string(), "graph");
  const float* src = node.kind == OpKind::kAdd
                         ? nullptr  // two inputs, resolved below
                         : edge_data(node.input0(), input, batch);
  float* dst =
      arena_plan_.external[id]
          ? outputs_[static_cast<std::size_t>(output_slot_[id])].data()
          : arena_.data() + arena_plan_.offsets[id] * batch;
  switch (node.kind) {
    case OpKind::kConv: {
      const gemm::ConvProblem& p = node.problem;
      // Backend and prepared weight transform (Winograd's U) come from
      // the frozen per-node memo: no plan-cache lock, no per-run filter
      // transform after first sight. A batch fans its images across the
      // scheduler as child tasks (legal even inside a wide-level node
      // task — the barrier wait helps), and the backend may fan out
      // further beneath each image.
      const std::pair<const gemm::ConvBackend*, const gemm::ConvPrep*>
          dispatch = conv_dispatch(id, gemm::ConvPhase::kForward, batch);
      const float* bias = node.bias.defined() ? node.bias.data() : nullptr;
      const std::size_t in_img = p.geom.in_c * p.geom.in_h * p.geom.in_w;
      const std::size_t out_img = p.out_c * p.geom.lowered_cols();
      const auto one_image = [&](std::size_t img) {
        float* out = dst + img * out_img;
        dispatch.first->forward_prepared(p, dispatch.second,
                                         src + img * in_img,
                                         node.weight.data(), bias, out,
                                         /*parallel_ok=*/true);
        apply_epilogue(node.epilogue, out, out_img);
      };
      if (batch <= 1) {
        one_image(0);
      } else {
        sched().parallel_for(0, batch, one_image);
      }
      return;
    }
    case OpKind::kDeconv: {
      const gemm::ConvProblem& p = node.problem;
      // The rotated/transformed filter bank is prepared once per backend
      // (prepare_backward_data), not per image.
      const std::pair<const gemm::ConvBackend*, const gemm::ConvPrep*>
          dispatch =
              conv_dispatch(id, gemm::ConvPhase::kBackwardData, batch);
      const std::size_t in_img = node.in_sample.numel();
      const std::size_t out_img = node.out_sample.numel();
      const std::size_t out_c = node.out_sample[0];
      const std::size_t plane = p.geom.in_h * p.geom.in_w;
      const auto one_image = [&](std::size_t img) {
        float* out = dst + img * out_img;
        dispatch.first->backward_data_prepared(p, dispatch.second,
                                               src + img * in_img,
                                               node.weight.data(), out,
                                               /*parallel_ok=*/true);
        if (node.bias.defined()) {
          for (std::size_t oc = 0; oc < out_c; ++oc) {
            const float b = node.bias.at(oc);
            float* row = out + oc * plane;
            for (std::size_t i = 0; i < plane; ++i) row[i] += b;
          }
        }
        apply_epilogue(node.epilogue, out, out_img);
      };
      if (batch <= 1) {
        one_image(0);
      } else {
        sched().parallel_for(0, batch, one_image);
      }
      return;
    }
    case OpKind::kDense: {
      // out (batch x OF) = in (batch x IF) * W^T, same lowering as
      // nn::Dense::forward. The parallel GEMM self-limits on small work
      // and is safe at any nesting depth; its row-block partitioning
      // never changes per-element arithmetic, so serial and parallel
      // schedules stay bit-exact.
      gemm::sgemm_parallel(false, true, batch, node.out_features,
                           node.in_features, 1.0f, src, node.in_features,
                           node.weight.data(), node.in_features, 0.0f, dst,
                           node.out_features);
      for (std::size_t b = 0; b < batch; ++b) {
        float* row = dst + b * node.out_features;
        for (std::size_t j = 0; j < node.out_features; ++j) {
          row[j] += node.bias.at(j);
        }
      }
      apply_epilogue(node.epilogue, dst, batch * node.out_features);
      return;
    }
    case OpKind::kMaxPool: {
      const std::size_t ih = node.in_sample[1], iw = node.in_sample[2];
      const std::size_t oh = node.out_sample[1], ow = node.out_sample[2];
      const std::size_t planes = batch * node.in_sample[0];
      const std::size_t k = node.pool_kernel, s = node.pool_stride;
      for (std::size_t pl = 0; pl < planes; ++pl) {
        const float* in_plane = src + pl * ih * iw;
        float* out_plane = dst + pl * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          for (std::size_t x = 0; x < ow; ++x) {
            float best = -std::numeric_limits<float>::infinity();
            for (std::size_t ky = 0; ky < k; ++ky) {
              const float* row = in_plane + (y * s + ky) * iw + x * s;
              for (std::size_t kx = 0; kx < k; ++kx) {
                best = std::max(best, row[kx]);
              }
            }
            out_plane[y * ow + x] = best;
          }
        }
      }
      return;
    }
    case OpKind::kGlobalPool: {
      const std::size_t plane = node.in_sample[1] * node.in_sample[2];
      const std::size_t planes = batch * node.in_sample[0];
      const float inv = 1.0f / static_cast<float>(plane);
      for (std::size_t pl = 0; pl < planes; ++pl) {
        const float* in_plane = src + pl * plane;
        double sum = 0.0;
        for (std::size_t i = 0; i < plane; ++i) sum += in_plane[i];
        dst[pl] = static_cast<float>(sum) * inv;
      }
      return;
    }
    case OpKind::kRelu: {
      const std::size_t n = batch * node.out_sample.numel();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
      }
      return;
    }
    case OpKind::kSigmoid: {
      const std::size_t n = batch * node.out_sample.numel();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = 1.0f / (1.0f + std::exp(-src[i]));
      }
      return;
    }
    case OpKind::kTanh: {
      const std::size_t n = batch * node.out_sample.numel();
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::tanh(src[i]);
      return;
    }
    case OpKind::kBatchNorm: {
      // The unfolded case (producer opaque or fanned out): the running-
      // statistics affine, per channel.
      const std::size_t c = node.bn_scale.numel();
      const std::size_t plane = node.in_sample[1] * node.in_sample[2];
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t ch = 0; ch < c; ++ch) {
          const float scale = node.bn_scale.at(ch);
          const float shift = node.bn_shift.at(ch);
          const float* x = src + (b * c + ch) * plane;
          float* y = dst + (b * c + ch) * plane;
          for (std::size_t i = 0; i < plane; ++i) {
            y[i] = scale * x[i] + shift;
          }
        }
      }
      apply_epilogue(node.epilogue, dst, batch * node.out_sample.numel());
      return;
    }
    case OpKind::kDropout: {
      // Identity in eval mode; survives only when strip_noops is off.
      std::memcpy(dst, src,
                  batch * node.out_sample.numel() * sizeof(float));
      return;
    }
    case OpKind::kAdd: {
      // Residual join: elementwise branch + shortcut, then the fused
      // trailing activation while the sum is cache-hot — the exact math
      // of ResidualBlock's add/ReLU tail.
      PF15_CHECK(node.inputs.size() == 2);
      const float* a = edge_data(node.inputs[0], input, batch);
      const float* b = edge_data(node.inputs[1], input, batch);
      const std::size_t n = batch * node.out_sample.numel();
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
      apply_epilogue(node.epilogue, dst, n);
      return;
    }
    case OpKind::kSplit: {
      PF15_CHECK_MSG(false,
                     "split nodes own no buffer and are never scheduled");
      return;
    }
    case OpKind::kOpaque: {
      // Stage through owned tensors: Layer::forward wants Tensors, and an
      // opaque layer may resize its output.
      PF15_CHECK(node.layer != nullptr);
      nn::ensure_shape(opaque_in_[id], with_batch(node.in_sample, batch));
      std::memcpy(opaque_in_[id].data(), src,
                  opaque_in_[id].numel() * sizeof(float));
      node.layer->forward(opaque_in_[id], opaque_out_[id]);
      PF15_CHECK_MSG(
          opaque_out_[id].shape() == with_batch(node.out_sample, batch),
          node.name << ": opaque output " << opaque_out_[id].shape()
                    << " != planned " << with_batch(node.out_sample, batch));
      std::memcpy(dst, opaque_out_[id].data(),
                  opaque_out_[id].numel() * sizeof(float));
      return;
    }
  }
  PF15_CHECK_MSG(false, "unhandled op kind in compiled plan");
}

CompiledPlan compile(nn::Sequential& net, const Shape& sample_shape,
                     const CompileOptions& opt) {
  return CompiledPlan(capture(net, sample_shape), opt);
}

CompiledPlan compile(nn::ClimateNet& net, const CompileOptions& opt) {
  return CompiledPlan(capture(net), opt);
}

}  // namespace pf15::graph
