// Dynamic micro-batching request queue.
//
// Single-sample inference wastes the batch dimension the kernels are
// tuned for: a (1, C, H, W) forward pays full per-layer overhead for one
// row of GEMM. The batcher coalesces concurrent single-sample requests
// into one batched forward using the classic two-knob policy:
//
//   max_batch    — never coalesce more than this many samples, bounding
//                  the latency a request can add to others;
//   max_wait_us  — after the first request of a batch arrives, linger at
//                  most this long for companions, bounding queueing delay
//                  under light load (0 = serve immediately, batching only
//                  what has already queued up).
//
// The queue is bounded: submit() blocks when `queue_capacity` requests
// are pending (backpressure to producers), try_submit() returns nullopt
// instead. close() starts a graceful shutdown — new submissions are
// refused, already-queued requests are still drained by the workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <optional>
#include <vector>

#include "common/errors.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "tensor/tensor.hpp"

namespace pf15::serve {

/// Thrown by submit() after close(): the engine is shutting down and the
/// request was never enqueued.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

struct BatcherConfig {
  std::size_t max_batch = 16;
  /// Microseconds to linger for companions after a batch's first request.
  std::uint64_t max_wait_us = 500;
  /// Pending-request bound; submit() blocks / try_submit() fails beyond it.
  std::size_t queue_capacity = 1024;
};

/// One pending inference request: the sample, the promise the caller's
/// future is tied to, and the enqueue timestamp for latency accounting.
struct Request {
  Tensor input;  // single sample, e.g. (C, H, W)
  std::promise<Tensor> result;
  std::chrono::steady_clock::time_point enqueued;
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(const BatcherConfig& cfg);

  /// Destruction with requests still queued (closed but never drained —
  /// possible when the owner tears down without running workers) fails
  /// each pending promise with ShutdownError, so waiting futures observe
  /// a typed shutdown instead of std::future_error(broken_promise).
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  /// Enqueues one sample; blocks while the queue is at capacity
  /// (backpressure). The future resolves to this sample's output row once
  /// a worker has run the batched forward. Throws ShutdownError after
  /// close().
  std::future<Tensor> submit(Tensor sample);

  /// Non-blocking variant: nullopt when the queue is at capacity.
  std::optional<std::future<Tensor>> try_submit(Tensor sample);

  /// Worker side. Blocks for the first pending request, then coalesces up
  /// to max_batch requests, lingering at most max_wait_us. Returns an
  /// empty vector only when the batcher is closed AND drained — the
  /// worker's signal to exit.
  std::vector<Request> next_batch();

  /// Graceful shutdown: refuse new submissions, wake all waiters. Queued
  /// requests remain for workers to drain.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return cfg_.queue_capacity; }
  const BatcherConfig& config() const { return cfg_; }

  /// Requests this batcher turned away: try_submit() at capacity plus
  /// submissions refused because the batcher was closed. Before this
  /// counter, backpressure rejections were invisible — an overloaded
  /// engine looked merely slow.
  std::size_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Requests accepted into the queue over the batcher's lifetime.
  std::size_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  std::future<Tensor> enqueue_locked(Tensor&& sample)
      PF15_REQUIRES(mutex_);
  void note_rejected();

  BatcherConfig cfg_;
  mutable Mutex mutex_;
  CondVar cv_not_empty_;  // workers wait here
  CondVar cv_not_full_;   // producers wait here
  std::deque<Request> queue_ PF15_GUARDED_BY(mutex_);
  bool closed_ PF15_GUARDED_BY(mutex_) = false;
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> accepted_{0};

  // Registry instruments, hoisted at construction (creation takes the
  // registry mutex; use never does). Process-wide by name: concurrent
  // batchers share them, so the counters aggregate and the depth gauge
  // reads whichever batcher moved last.
  obs::Counter& m_accepted_;
  obs::Counter& m_rejected_;
  obs::Gauge& m_depth_;
};

}  // namespace pf15::serve
