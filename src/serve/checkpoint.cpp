#include "serve/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace pf15::serve {

namespace {

constexpr char kCheckpointMagic[8] = {'P', 'F', '1', '5',
                                      'C', 'K', 'P', 'T'};

}  // namespace

void write_checkpoint(std::ostream& os, const std::string& model_kind,
                      const std::vector<nn::Param>& entries) {
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  const std::uint32_t version = kCheckpointVersion;
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint32_t kind_len =
      static_cast<std::uint32_t>(model_kind.size());
  os.write(reinterpret_cast<const char*>(&kind_len), sizeof(kind_len));
  os.write(model_kind.data(), static_cast<std::streamsize>(kind_len));
  if (!os) throw IoError("write_checkpoint: header write failed");
  nn::save_named_tensors(os, entries);
}

CheckpointMeta read_checkpoint_meta(std::istream& is) {
  char magic[sizeof(kCheckpointMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    throw IoError("read_checkpoint: bad magic — not a pf15 checkpoint");
  }
  CheckpointMeta meta;
  is.read(reinterpret_cast<char*>(&meta.version), sizeof(meta.version));
  if (!is) throw IoError("read_checkpoint: truncated header");
  if (meta.version != kCheckpointVersion) {
    std::ostringstream oss;
    oss << "read_checkpoint: unsupported format version " << meta.version
        << " (reader supports " << kCheckpointVersion << ")";
    throw IoError(oss.str());
  }
  std::uint32_t kind_len = 0;
  is.read(reinterpret_cast<char*>(&kind_len), sizeof(kind_len));
  if (!is) throw IoError("read_checkpoint: truncated header");
  meta.model_kind.resize(kind_len);
  is.read(meta.model_kind.data(), static_cast<std::streamsize>(kind_len));
  if (!is) throw IoError("read_checkpoint: truncated model kind");
  return meta;
}

void read_checkpoint(std::istream& is, const std::string& expected_kind,
                     const std::vector<nn::Param>& entries) {
  const CheckpointMeta meta = read_checkpoint_meta(is);
  if (!expected_kind.empty() && meta.model_kind != expected_kind) {
    throw IoError("read_checkpoint: checkpoint holds a \"" +
                  meta.model_kind + "\" model but \"" + expected_kind +
                  "\" was expected");
  }
  nn::load_named_tensors(is, entries);
}

void checkpoint_model(std::ostream& os, nn::Sequential& net,
                      const std::string& model_kind) {
  write_checkpoint(os, model_kind, net.params_and_state());
}

void restore_model(std::istream& is, nn::Sequential& net,
                   const std::string& expected_kind) {
  read_checkpoint(is, expected_kind, net.params_and_state());
}

void checkpoint_model(std::ostream& os, nn::ClimateNet& net) {
  write_checkpoint(os, "climate", net.params_and_state());
}

void restore_model(std::istream& is, nn::ClimateNet& net) {
  read_checkpoint(is, "climate", net.params_and_state());
}

void checkpoint_model_file(const std::string& path, nn::Sequential& net,
                           const std::string& model_kind) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("checkpoint_model_file: cannot open " + path);
  checkpoint_model(os, net, model_kind);
  os.flush();
  if (!os) throw IoError("checkpoint_model_file: write failed for " + path);
}

void restore_model_file(const std::string& path, nn::Sequential& net,
                        const std::string& expected_kind) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("restore_model_file: cannot open " + path);
  restore_model(is, net, expected_kind);
}

CheckpointMeta read_checkpoint_meta_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("read_checkpoint_meta_file: cannot open " + path);
  return read_checkpoint_meta(is);
}

}  // namespace pf15::serve
