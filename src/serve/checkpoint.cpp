#include "serve/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace pf15::serve {

namespace {

constexpr char kCheckpointMagic[8] = {'P', 'F', '1', '5',
                                      'C', 'K', 'P', 'T'};

// Magic of the optional plan section trailing the payload; the digit is
// its format version (the JSON inside carries its own, stricter version).
constexpr char kPlanSectionMagic[8] = {'P', 'F', '1', '5',
                                       'P', 'L', 'N', '1'};

}  // namespace

void write_embedded_plans(std::ostream& os, const std::string& plans_json) {
  os.write(kPlanSectionMagic, sizeof(kPlanSectionMagic));
  const std::uint64_t len = plans_json.size();
  os.write(reinterpret_cast<const char*>(&len), sizeof(len));
  os.write(plans_json.data(), static_cast<std::streamsize>(len));
  if (!os) throw IoError("write_embedded_plans: stream write failed");
}

std::string read_embedded_plans(std::istream& is) {
  // Optionality is "the stream ends here", not "anything goes": a partial
  // or foreign trailer is a corrupt checkpoint and must say so.
  if (is.peek() == std::istream::traits_type::eof()) return "";
  char magic[sizeof(kPlanSectionMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kPlanSectionMagic, sizeof(magic)) != 0) {
    throw IoError(
        "read_embedded_plans: trailing bytes after the checkpoint payload "
        "are not a plan section");
  }
  std::uint64_t len = 0;
  is.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!is) throw IoError("read_embedded_plans: truncated section header");
  // Validate the length against the bytes actually left in the stream
  // before allocating: a corrupt length field must surface as IoError,
  // not as std::length_error / a multi-GB allocation attempt.
  const std::istream::pos_type body = is.tellg();
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(body);
  if (body == std::istream::pos_type(-1) ||
      end == std::istream::pos_type(-1) ||
      static_cast<std::uint64_t>(end - body) < len) {
    throw IoError("read_embedded_plans: plan section length exceeds the "
                  "stream — corrupt checkpoint trailer");
  }
  std::string text(static_cast<std::size_t>(len), '\0');
  is.read(text.data(), static_cast<std::streamsize>(len));
  if (!is) throw IoError("read_embedded_plans: truncated plan document");
  return text;
}

void write_checkpoint(std::ostream& os, const std::string& model_kind,
                      const std::vector<nn::Param>& entries) {
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  const std::uint32_t version = kCheckpointVersion;
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint32_t kind_len =
      static_cast<std::uint32_t>(model_kind.size());
  os.write(reinterpret_cast<const char*>(&kind_len), sizeof(kind_len));
  os.write(model_kind.data(), static_cast<std::streamsize>(kind_len));
  if (!os) throw IoError("write_checkpoint: header write failed");
  nn::save_named_tensors(os, entries);
}

CheckpointMeta read_checkpoint_meta(std::istream& is) {
  char magic[sizeof(kCheckpointMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    throw IoError("read_checkpoint: bad magic — not a pf15 checkpoint");
  }
  CheckpointMeta meta;
  is.read(reinterpret_cast<char*>(&meta.version), sizeof(meta.version));
  if (!is) throw IoError("read_checkpoint: truncated header");
  if (meta.version != kCheckpointVersion) {
    std::ostringstream oss;
    oss << "read_checkpoint: unsupported format version " << meta.version
        << " (reader supports " << kCheckpointVersion << ")";
    throw IoError(oss.str());
  }
  std::uint32_t kind_len = 0;
  is.read(reinterpret_cast<char*>(&kind_len), sizeof(kind_len));
  if (!is) throw IoError("read_checkpoint: truncated header");
  meta.model_kind.resize(kind_len);
  is.read(meta.model_kind.data(), static_cast<std::streamsize>(kind_len));
  if (!is) throw IoError("read_checkpoint: truncated model kind");
  return meta;
}

void read_checkpoint(std::istream& is, const std::string& expected_kind,
                     const std::vector<nn::Param>& entries) {
  const CheckpointMeta meta = read_checkpoint_meta(is);
  if (!expected_kind.empty() && meta.model_kind != expected_kind) {
    throw IoError("read_checkpoint: checkpoint holds a \"" +
                  meta.model_kind + "\" model but \"" + expected_kind +
                  "\" was expected");
  }
  nn::load_named_tensors(is, entries);
}

void checkpoint_model(std::ostream& os, nn::Sequential& net,
                      const std::string& model_kind) {
  write_checkpoint(os, model_kind, net.params_and_state());
}

void restore_model(std::istream& is, nn::Sequential& net,
                   const std::string& expected_kind) {
  read_checkpoint(is, expected_kind, net.params_and_state());
}

void checkpoint_model_with_plans(std::ostream& os, nn::Sequential& net,
                                 const std::string& model_kind,
                                 const gemm::ConvPlanCache& plans) {
  checkpoint_model(os, net, model_kind);
  write_embedded_plans(os, plans.dump());
}

void checkpoint_model(std::ostream& os, nn::ClimateNet& net) {
  write_checkpoint(os, "climate", net.params_and_state());
}

void restore_model(std::istream& is, nn::ClimateNet& net) {
  read_checkpoint(is, "climate", net.params_and_state());
}

void checkpoint_model_file(const std::string& path, nn::Sequential& net,
                           const std::string& model_kind) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("checkpoint_model_file: cannot open " + path);
  checkpoint_model(os, net, model_kind);
  os.flush();
  if (!os) throw IoError("checkpoint_model_file: write failed for " + path);
}

void checkpoint_model_file_with_plans(const std::string& path,
                                      nn::Sequential& net,
                                      const std::string& model_kind,
                                      const gemm::ConvPlanCache& plans) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw IoError("checkpoint_model_file_with_plans: cannot open " + path);
  }
  checkpoint_model_with_plans(os, net, model_kind, plans);
  os.flush();
  if (!os) {
    throw IoError("checkpoint_model_file_with_plans: write failed for " +
                  path);
  }
}

void restore_model_file(const std::string& path, nn::Sequential& net,
                        const std::string& expected_kind) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("restore_model_file: cannot open " + path);
  restore_model(is, net, expected_kind);
}

CheckpointMeta read_checkpoint_meta_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("read_checkpoint_meta_file: cannot open " + path);
  return read_checkpoint_meta(is);
}

}  // namespace pf15::serve
