#include "serve/batcher.hpp"

#include "obs/trace.hpp"

namespace pf15::serve {

DynamicBatcher::DynamicBatcher(const BatcherConfig& cfg)
    : cfg_(cfg),
      m_accepted_(obs::MetricsRegistry::global().counter(
          "pf15_serve_accepted_total",
          "requests accepted into the batcher queue")),
      m_rejected_(obs::MetricsRegistry::global().counter(
          "pf15_serve_rejected_total",
          "requests refused by backpressure or shutdown")),
      m_depth_(obs::MetricsRegistry::global().gauge(
          "pf15_serve_queue_depth", "requests waiting in the batcher")) {
  PF15_CHECK_MSG(cfg_.max_batch >= 1,
                 "max_batch must be >= 1, got " << cfg_.max_batch);
  PF15_CHECK_MSG(cfg_.queue_capacity >= 1,
                 "queue_capacity must be >= 1, got " << cfg_.queue_capacity);
}

DynamicBatcher::~DynamicBatcher() PF15_NO_THREAD_SAFETY_ANALYSIS {
  // No lock: destruction requires external quiescence (no concurrent
  // submit/next_batch), same as any other destructor — the annotation
  // opt-out records exactly this contract. Anything still queued was
  // accepted but will never be served — fail it loudly.
  for (Request& req : queue_) {
    req.result.set_exception(std::make_exception_ptr(
        ShutdownError("DynamicBatcher destroyed with request pending")));
  }
}

void DynamicBatcher::note_rejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  m_rejected_.add(1);
}

std::future<Tensor> DynamicBatcher::enqueue_locked(Tensor&& sample) {
  Request req;
  req.input = std::move(sample);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.result.get_future();
  queue_.push_back(std::move(req));
  accepted_.fetch_add(1, std::memory_order_relaxed);
  m_accepted_.add(1);
  m_depth_.set(static_cast<double>(queue_.size()));
  cv_not_empty_.notify_one();
  return fut;
}

std::future<Tensor> DynamicBatcher::submit(Tensor sample) {
  UniqueLock lock(mutex_);
  while (!closed_ && queue_.size() >= cfg_.queue_capacity) {
    cv_not_full_.wait(lock);
  }
  if (closed_) {
    note_rejected();
    throw ShutdownError("DynamicBatcher::submit: batcher is closed");
  }
  return enqueue_locked(std::move(sample));
}

std::optional<std::future<Tensor>> DynamicBatcher::try_submit(
    Tensor sample) {
  MutexLock lock(mutex_);
  if (closed_) {
    note_rejected();
    throw ShutdownError("DynamicBatcher::try_submit: batcher is closed");
  }
  if (queue_.size() >= cfg_.queue_capacity) {
    note_rejected();
    return std::nullopt;
  }
  return enqueue_locked(std::move(sample));
}

std::vector<Request> DynamicBatcher::next_batch() {
  UniqueLock lock(mutex_);
  while (!closed_ && queue_.empty()) cv_not_empty_.wait(lock);
  if (queue_.empty()) return {};  // closed and drained: worker exits

  // The batch-formation span starts once a first request exists — the
  // linger window, not the idle block above it.
  obs::TraceSpan span("batch_form", "serve");

  std::vector<Request> batch;
  batch.reserve(cfg_.max_batch);
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();

  // Linger for companions until the batch fills, the deadline passes, or
  // shutdown begins (no point waiting for traffic that can't arrive).
  //
  // Wakeup discipline: we never trust cv_status — a close() notification
  // can race the deadline so that wait_until reports `timeout` even
  // though state changed, and spurious wakeups report `no_timeout` with
  // nothing to do. Instead, every wakeup (and the deadline itself) is
  // re-evaluated against the queue, closed_, and the clock under the
  // lock, so the "max_wait_us elapses exactly as close() runs"
  // interleaving takes the same path as any other wakeup: drain what
  // raced in, then stop.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(cfg_.max_wait_us);
  while (batch.size() < cfg_.max_batch) {
    if (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    if (closed_ || cfg_.max_wait_us == 0) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
    cv_not_empty_.wait_until(lock, deadline);
  }
  // The deadline (or close) may have raced one last enqueue notification:
  // that request is already queued, so take it now rather than stranding
  // it for a worker that may never come.
  while (!queue_.empty() && batch.size() < cfg_.max_batch) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }

  m_depth_.set(static_cast<double>(queue_.size()));
  cv_not_full_.notify_all();
  return batch;
}

void DynamicBatcher::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_not_empty_.notify_all();
  cv_not_full_.notify_all();
}

bool DynamicBatcher::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

std::size_t DynamicBatcher::depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace pf15::serve
