// Concurrent inference engine: N model replicas behind a dynamic batcher.
//
// The serving story mirrors the paper's training story at request scale:
// the batch dimension is where the hardware efficiency lives, so the
// engine turns a stream of independent single-sample requests into
// batched inference-mode forward passes. Each replica is a full copy of
// the network owned by exactly one worker thread (no locking on the hot
// path — a Sequential is not re-entrant), all workers pull from one
// bounded DynamicBatcher queue, and callers hold futures.
//
//   caller ──submit()──▶ DynamicBatcher ──next_batch()──▶ replica k
//     ◀───────future◀──────promise◀────────forward(batch)─────┘
//
// Checkpoints close the loop with training: build the engine from a
// factory (architecture) plus a checkpoint (weights). Every replica gets
// byte-identical weights and is switched to inference mode, so any
// replica answers any request identically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "graph/compiled_plan.hpp"
#include "nn/network.hpp"
#include "obs/metrics.hpp"
#include "perf/latency.hpp"
#include "serve/batcher.hpp"

namespace pf15::serve {

/// Builds one architecture instance (weights need not be meaningful; the
/// engine overwrites them so all replicas match).
using ModelFactory = std::function<nn::Sequential()>;

struct EngineConfig {
  /// Model replicas == worker threads pulling from the shared queue.
  std::size_t replicas = 1;
  /// Per-request sample shape, e.g. (C, H, W). submit() validates it.
  Shape sample_shape;
  BatcherConfig batcher;
  /// Execute through per-replica graph::CompiledPlans (eval no-ops
  /// stripped, BatchNorm folded, activations fused — inside residual
  /// sub-graphs too — static activation arena, pre-tuned conv plans)
  /// instead of eager Sequential::forward. Output-equivalent to eager
  /// within floating-point tolerance.
  bool compiled = false;
  /// Level-scheduled concurrent execution of independent graph nodes
  /// inside each compiled plan (CompileOptions::parallel_levels). The
  /// plans fan out on the global task scheduler; replica workers live
  /// on dedicated threads, so replica-level and node-level parallelism
  /// compose. Ignored when `compiled` is false.
  bool compiled_parallel = true;
};

/// Point-in-time serving metrics (percentiles via perf::LatencyRecorder,
/// p50/p90/p99/p999). The counters mirror the process-wide metrics
/// registry (pf15_serve_*), which benches and examples dump wholesale.
struct ServingStats {
  std::size_t requests = 0;  // completed requests
  std::size_t batches = 0;   // batched forwards executed
  double mean_batch_size = 0.0;
  perf::LatencySummary latency;  // submit -> result, seconds
  double throughput_rps = 0.0;   // completed / (last completion - first submit)
  /// Requests the batcher turned away (try_submit at capacity, or any
  /// submission after shutdown began).
  std::size_t rejected = 0;
  /// Requests waiting in the batcher right now (sampled).
  std::size_t queue_depth = 0;
  /// Requests accepted but not yet answered (queued + being served).
  std::size_t in_flight = 0;
};

class ServingEngine {
 public:
  /// Replica 0 comes from `factory`; the rest are byte-identical copies of
  /// it. All replicas are put in inference mode. Workers start immediately.
  ServingEngine(ModelFactory factory, const EngineConfig& cfg);

  /// Same, but all replicas restore their weights from the checkpoint at
  /// `path` first (kind-checked against `expected_kind` unless empty).
  ServingEngine(ModelFactory factory, const std::string& checkpoint_path,
                const std::string& expected_kind, const EngineConfig& cfg);

  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues one sample (cloned); blocks under backpressure. The future
  /// resolves to this sample's output row (batch dimension stripped).
  /// Throws ShutdownError after shutdown().
  std::future<Tensor> submit(const Tensor& sample);

  /// Non-blocking: nullopt when the queue is at capacity.
  std::optional<std::future<Tensor>> try_submit(const Tensor& sample);

  /// Graceful shutdown: stop accepting, drain the queue, join workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServingStats stats() const;

  std::size_t replica_count() const { return replicas_.size(); }
  const EngineConfig& config() const { return cfg_; }
  /// Per-sample output shape (batch dimension stripped).
  const Shape& output_shape() const { return output_sample_shape_; }
  /// The compile report of replica 0's plan; null when running eager.
  const graph::CompileReport* compile_report() const {
    return plans_.empty() ? nullptr : &plans_.front()->report();
  }

 private:
  /// Shared constructor tail: builds the replicas from `factory`, restores
  /// each from `weights` (checkpoint bytes; null = clone replica 0 so all
  /// replicas match even with a randomising factory), merges any embedded
  /// conv plans into the global plan cache, switches the replicas to
  /// inference mode, compiles per-replica plans when configured, probes
  /// the output shape, starts the workers.
  void init_replicas(const ModelFactory& factory, std::istream* weights,
                     const std::string& expected_kind);
  void start_workers();
  void worker_loop(std::size_t replica_index);
  void serve_batch(std::size_t replica_index, std::vector<Request>&& batch);
  void note_submit();

  EngineConfig cfg_;
  std::vector<nn::Sequential> replicas_;
  /// One compiled plan per replica (empty when cfg_.compiled is false).
  /// A plan is stateful like its replica: only its worker touches it.
  std::vector<std::unique_ptr<graph::CompiledPlan>> plans_;
  Shape output_sample_shape_;
  DynamicBatcher batcher_;

  // One dedicated thread per replica (the loops block on the batcher,
  // so they must not occupy task-scheduler workers); shutdown() joins.
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};

  // ---- metrics ----
  perf::LatencyRecorder latency_;
  std::atomic<std::size_t> requests_completed_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> in_flight_{0};
  mutable Mutex stats_mutex_;
  bool saw_first_submit_ PF15_GUARDED_BY(stats_mutex_) = false;
  std::chrono::steady_clock::time_point first_submit_
      PF15_GUARDED_BY(stats_mutex_);
  std::chrono::steady_clock::time_point last_completion_
      PF15_GUARDED_BY(stats_mutex_);

  // Registry instruments (process-wide by name; hoisted once at
  // construction so the hot path never touches the registry mutex).
  struct Metrics {
    Metrics();
    obs::Counter& requests;
    obs::Counter& batches;
    obs::Gauge& in_flight;
    obs::Histogram& batch_size;
    obs::Histogram& queue_wait;
    obs::Histogram& latency;
  };
  Metrics metrics_;
};

}  // namespace pf15::serve
