#include "serve/engine.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "serve/checkpoint.hpp"

namespace pf15::serve {

namespace {

/// Seconds-domain duration buckets shared by the serving histograms:
/// 10us .. ~80s, doubling.
std::vector<double> duration_bounds() {
  return obs::Histogram::exponential_bounds(1e-5, 2.0, 23);
}

obs::MetricsRegistry& reg() { return obs::MetricsRegistry::global(); }

}  // namespace

ServingEngine::Metrics::Metrics()
    : requests(reg().counter("pf15_serve_requests_total",
                             "requests completed")),
      batches(reg().counter("pf15_serve_batches_total",
                            "batched forwards executed")),
      in_flight(reg().gauge("pf15_serve_in_flight",
                            "requests accepted but not answered")),
      batch_size(reg().histogram("pf15_serve_batch_size",
                                 {1, 2, 4, 8, 16, 32, 64, 128, 256},
                                 "coalesced batch sizes")),
      queue_wait(reg().histogram("pf15_serve_queue_wait_seconds",
                                 duration_bounds(),
                                 "submit -> batch formation")),
      latency(reg().histogram("pf15_serve_latency_seconds",
                              duration_bounds(), "submit -> result")) {}

ServingEngine::ServingEngine(ModelFactory factory, const EngineConfig& cfg)
    : cfg_(cfg), batcher_(cfg.batcher) {
  init_replicas(factory, nullptr, "");
}

ServingEngine::ServingEngine(ModelFactory factory,
                             const std::string& checkpoint_path,
                             const std::string& expected_kind,
                             const EngineConfig& cfg)
    : cfg_(cfg), batcher_(cfg.batcher) {
  // Read the checkpoint from disk once; every replica restores from the
  // in-memory copy.
  std::ifstream file(checkpoint_path, std::ios::binary);
  if (!file) {
    throw IoError("ServingEngine: cannot open checkpoint " +
                  checkpoint_path);
  }
  std::stringstream weights(std::ios::in | std::ios::out |
                            std::ios::binary);
  weights << file.rdbuf();
  init_replicas(factory, &weights, expected_kind);
}

void ServingEngine::init_replicas(const ModelFactory& factory,
                                  std::istream* weights,
                                  const std::string& expected_kind) {
  PF15_CHECK_MSG(cfg_.replicas >= 1, "need at least one replica");
  PF15_CHECK_MSG(cfg_.sample_shape.rank() >= 1,
                 "EngineConfig::sample_shape must be set");
  PF15_CHECK(factory != nullptr);

  replicas_.reserve(cfg_.replicas);
  replicas_.push_back(factory());

  // Without external weights, clone replica 0's so every replica answers
  // identically even when the factory randomises initialisation.
  std::stringstream replica0;
  std::string kind = expected_kind;
  if (weights == nullptr) {
    replica0 = std::stringstream(std::ios::in | std::ios::out |
                                 std::ios::binary);
    checkpoint_model(replica0, replicas_[0], "replica");
    weights = &replica0;
    kind = "replica";
  } else {
    restore_model(*weights, replicas_[0], kind);
    // A plan-carrying checkpoint warms the process-wide conv plan cache
    // before any plan is compiled: a cold server then answers its first
    // request with zero first-sight tunes. Plans recorded on a different
    // machine shape fail hardware validation; serving then just tunes
    // from scratch — degraded, never wrong.
    try {
      const std::string plans = read_embedded_plans(*weights);
      if (!plans.empty()) {
        gemm::ConvPlanCache::global().load_document(plans, "checkpoint");
      }
    } catch (const Error& e) {
      PF15_WARN("serving: ignoring embedded conv plans (" << e.what()
                                                          << ")");
    }
  }
  for (std::size_t i = 1; i < cfg_.replicas; ++i) {
    replicas_.push_back(factory());
    weights->clear();
    weights->seekg(0);
    restore_model(*weights, replicas_.back(), kind);
  }

  for (auto& r : replicas_) r.set_training(false);
  if (cfg_.compiled) {
    graph::CompileOptions copt;
    copt.max_batch = cfg_.batcher.max_batch;
    copt.parallel_levels = cfg_.compiled_parallel;
    plans_.reserve(replicas_.size());
    for (auto& r : replicas_) {
      plans_.push_back(std::make_unique<graph::CompiledPlan>(
          graph::compile(r, cfg_.sample_shape, copt)));
    }
  }
  output_sample_shape_ =
      strip_batch(replicas_[0].output_shape(with_batch(cfg_.sample_shape, 1)));
  start_workers();
}

ServingEngine::~ServingEngine() { shutdown(); }

void ServingEngine::start_workers() {
  // Replica loops block on the batcher, so they get dedicated threads —
  // parking a long-lived blocking loop on a task-scheduler worker would
  // strand that worker for the engine's lifetime. Compute (compiled
  // plans, conv batch loops) still fans out on the global scheduler, so
  // replica-level and node-level parallelism compose.
  workers_.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ServingEngine::note_submit() {
  MutexLock lock(stats_mutex_);
  if (!saw_first_submit_) {
    saw_first_submit_ = true;
    first_submit_ = std::chrono::steady_clock::now();
  }
}

std::future<Tensor> ServingEngine::submit(const Tensor& sample) {
  PF15_CHECK_MSG(sample.shape() == cfg_.sample_shape,
                 "submit: sample shape " << sample.shape()
                                         << " != engine sample shape "
                                         << cfg_.sample_shape);
  // The span covers the enqueue including any backpressure block — queue
  // saturation shows up as long submit spans on producer threads.
  obs::TraceSpan span("submit", "serve");
  std::future<Tensor> fut = batcher_.submit(sample.clone());
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  metrics_.in_flight.add(1.0);
  note_submit();  // only requests the batcher accepted count for throughput
  return fut;
}

std::optional<std::future<Tensor>> ServingEngine::try_submit(
    const Tensor& sample) {
  PF15_CHECK_MSG(sample.shape() == cfg_.sample_shape,
                 "try_submit: sample shape " << sample.shape()
                                             << " != engine sample shape "
                                             << cfg_.sample_shape);
  std::optional<std::future<Tensor>> fut =
      batcher_.try_submit(sample.clone());
  if (fut.has_value()) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    metrics_.in_flight.add(1.0);
    note_submit();
  }
  return fut;
}

void ServingEngine::worker_loop(std::size_t replica_index) {
  while (true) {
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    serve_batch(replica_index, std::move(batch));
  }
}

void ServingEngine::serve_batch(std::size_t replica_index,
                                std::vector<Request>&& batch) {
  const std::size_t n = batch.size();
  bool counted_done = false;
  try {
    // Queue wait per request (enqueue -> this batch forming), recorded on
    // the worker's track: the tracer accepts explicit (ts, dur) so the
    // cross-thread interval shows up even though no single thread spans
    // it.
    if (obs::trace_enabled()) {
      const double now_us = obs::trace_now_us();
      const auto now = std::chrono::steady_clock::now();
      for (const Request& req : batch) {
        const double wait_us =
            std::chrono::duration<double, std::micro>(now - req.enqueued)
                .count();
        obs::trace_record("queue_wait", "serve", now_us - wait_us, wait_us);
      }
    }
    {
      const auto formed = std::chrono::steady_clock::now();
      for (const Request& req : batch) {
        metrics_.queue_wait.observe(
            std::chrono::duration<double>(formed - req.enqueued).count());
      }
    }
    metrics_.batch_size.observe(static_cast<double>(n));

    obs::TraceSpan exec_span("replica_execute", "serve");
    std::vector<const Tensor*> inputs;
    inputs.reserve(n);
    for (const auto& req : batch) inputs.push_back(&req.input);
    const Tensor batched = stack_samples(inputs);

    const Tensor& out = cfg_.compiled
                            ? plans_[replica_index]->run(batched)
                            : replicas_[replica_index].forward(batched);
    PF15_CHECK_MSG(out.shape().rank() >= 1 && out.shape()[0] == n,
                   "replica output " << out.shape()
                                     << " lacks batch dimension " << n);

    // Record metrics before fulfilling any promise: a caller that wakes
    // from future.get() and immediately reads stats() must see this batch.
    const auto done = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      const double seconds =
          std::chrono::duration<double>(done - batch[i].enqueued).count();
      latency_.record(seconds);
      metrics_.latency.observe(seconds);
    }
    requests_completed_.fetch_add(n, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(n, std::memory_order_relaxed);
    counted_done = true;
    metrics_.requests.add(n);
    metrics_.batches.add(1);
    metrics_.in_flight.add(-static_cast<double>(n));
    {
      MutexLock lock(stats_mutex_);
      last_completion_ = done;
    }

    obs::TraceSpan respond_span("respond", "serve");
    for (std::size_t i = 0; i < n; ++i) {
      batch[i].result.set_value(extract_sample(out, i));
    }
  } catch (...) {
    // A failed batch fails each of its requests, not the engine: the
    // exception propagates through every future, workers keep serving.
    // Failed requests are answered (with an exception), so they leave
    // the in-flight count too — unless the success path already took
    // them out before the failure.
    if (!counted_done) {
      in_flight_.fetch_sub(n, std::memory_order_relaxed);
      metrics_.in_flight.add(-static_cast<double>(n));
    }
    const std::exception_ptr err = std::current_exception();
    for (auto& req : batch) {
      try {
        req.result.set_exception(err);
      } catch (const std::future_error&) {
        // Promise already satisfied (failure mid-fulfilment); nothing to do.
      }
    }
  }
}

void ServingEngine::shutdown() {
  if (stopped_.exchange(true)) return;
  batcher_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServingStats ServingEngine::stats() const {
  ServingStats s;
  s.requests = requests_completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches ? static_cast<double>(s.requests) /
                      static_cast<double>(s.batches)
                : 0.0;
  s.latency = latency_.summary();
  s.rejected = batcher_.rejected();
  s.queue_depth = batcher_.depth();
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  {
    MutexLock lock(stats_mutex_);
    if (saw_first_submit_ && s.requests > 0) {
      const double elapsed =
          std::chrono::duration<double>(last_completion_ - first_submit_)
              .count();
      s.throughput_rps =
          elapsed > 0 ? static_cast<double>(s.requests) / elapsed : 0.0;
    }
  }
  return s;
}

}  // namespace pf15::serve
