// Versioned binary model checkpoints.
//
// A checkpoint is the serving handoff artifact: training (src/hybrid,
// src/ps) produces one, the ServingEngine consumes one, possibly on a
// different machine and much later. The format is therefore
// self-describing and paranoid: a magic string, a format version, a
// model-kind tag, and then a validated named-tensor stream (every entry
// carries its name and shape) so a checkpoint can never be restored into
// the wrong architecture silently. Payload floats are stored verbatim, so
// a round trip is bit-exact.
//
// A checkpoint may additionally carry the convolution plan-cache JSON
// (gemm::ConvPlanCache::dump()) as an optional tagged section after the
// payload: the warm-start artifact. A cold serving process that restores
// such a checkpoint merges the embedded plans and answers its first
// request with zero first-sight tunes. The section is optional — plain
// checkpoints read exactly as before — but when trailing bytes exist
// they must be a valid plan section (anything else is a corrupt file).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gemm/conv_backend.hpp"
#include "nn/climate_net.hpp"
#include "nn/network.hpp"

namespace pf15::serve {

/// Current checkpoint format version. Readers reject versions they do not
/// understand instead of guessing at the layout.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Header fields of a checkpoint, available before touching the payload.
struct CheckpointMeta {
  std::uint32_t version = 0;
  /// Free-form architecture tag ("hep", "climate", "resnet", ...). Restore
  /// refuses a checkpoint whose kind differs from what the caller expects.
  std::string model_kind;
};

// ---- stream-level API ------------------------------------------------------

/// Writes header + the given (params + state) entries. Throws IoError on
/// stream failure.
void write_checkpoint(std::ostream& os, const std::string& model_kind,
                      const std::vector<nn::Param>& entries);

/// Reads and validates the header, leaving the stream at the payload.
/// Throws IoError on bad magic or unsupported version.
CheckpointMeta read_checkpoint_meta(std::istream& is);

/// Reads a full checkpoint into `entries`. `expected_kind` empty = accept
/// any kind. Throws IoError on any header/name/shape mismatch.
void read_checkpoint(std::istream& is, const std::string& expected_kind,
                     const std::vector<nn::Param>& entries);

// ---- embedded plan-cache section -------------------------------------------

/// Appends the tagged plan section (magic, length, JSON bytes) after a
/// checkpoint payload. `plans_json` is a ConvPlanCache::dump() document.
void write_embedded_plans(std::ostream& os, const std::string& plans_json);

/// Reads the optional plan section. The stream must be positioned right
/// after the named-tensor payload (i.e. after read_checkpoint). Returns
/// "" when the checkpoint carries no plans; throws IoError when trailing
/// bytes exist but are not a valid plan section.
std::string read_embedded_plans(std::istream& is);

// ---- whole-model convenience ----------------------------------------------
// These capture trainable parameters *and* non-trainable state (BatchNorm
// running statistics), which inference needs and params() alone misses.

void checkpoint_model(std::ostream& os, nn::Sequential& net,
                      const std::string& model_kind);
void restore_model(std::istream& is, nn::Sequential& net,
                   const std::string& expected_kind);

/// checkpoint_model plus the embedded plan section from `plans` — the
/// compiled-serving handoff artifact (weights + every tuned conv plan).
void checkpoint_model_with_plans(std::ostream& os, nn::Sequential& net,
                                 const std::string& model_kind,
                                 const gemm::ConvPlanCache& plans);

/// ClimateNet checkpoints carry kind "climate".
void checkpoint_model(std::ostream& os, nn::ClimateNet& net);
void restore_model(std::istream& is, nn::ClimateNet& net);

// ---- file-level convenience ------------------------------------------------

void checkpoint_model_file(const std::string& path, nn::Sequential& net,
                           const std::string& model_kind);
void checkpoint_model_file_with_plans(const std::string& path,
                                      nn::Sequential& net,
                                      const std::string& model_kind,
                                      const gemm::ConvPlanCache& plans);
void restore_model_file(const std::string& path, nn::Sequential& net,
                        const std::string& expected_kind);
CheckpointMeta read_checkpoint_meta_file(const std::string& path);

}  // namespace pf15::serve
