// Versioned binary model checkpoints.
//
// A checkpoint is the serving handoff artifact: training (src/hybrid,
// src/ps) produces one, the ServingEngine consumes one, possibly on a
// different machine and much later. The format is therefore
// self-describing and paranoid: a magic string, a format version, a
// model-kind tag, and then a validated named-tensor stream (every entry
// carries its name and shape) so a checkpoint can never be restored into
// the wrong architecture silently. Payload floats are stored verbatim, so
// a round trip is bit-exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/climate_net.hpp"
#include "nn/network.hpp"

namespace pf15::serve {

/// Current checkpoint format version. Readers reject versions they do not
/// understand instead of guessing at the layout.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Header fields of a checkpoint, available before touching the payload.
struct CheckpointMeta {
  std::uint32_t version = 0;
  /// Free-form architecture tag ("hep", "climate", "resnet", ...). Restore
  /// refuses a checkpoint whose kind differs from what the caller expects.
  std::string model_kind;
};

// ---- stream-level API ------------------------------------------------------

/// Writes header + the given (params + state) entries. Throws IoError on
/// stream failure.
void write_checkpoint(std::ostream& os, const std::string& model_kind,
                      const std::vector<nn::Param>& entries);

/// Reads and validates the header, leaving the stream at the payload.
/// Throws IoError on bad magic or unsupported version.
CheckpointMeta read_checkpoint_meta(std::istream& is);

/// Reads a full checkpoint into `entries`. `expected_kind` empty = accept
/// any kind. Throws IoError on any header/name/shape mismatch.
void read_checkpoint(std::istream& is, const std::string& expected_kind,
                     const std::vector<nn::Param>& entries);

// ---- whole-model convenience ----------------------------------------------
// These capture trainable parameters *and* non-trainable state (BatchNorm
// running statistics), which inference needs and params() alone misses.

void checkpoint_model(std::ostream& os, nn::Sequential& net,
                      const std::string& model_kind);
void restore_model(std::istream& is, nn::Sequential& net,
                   const std::string& expected_kind);

/// ClimateNet checkpoints carry kind "climate".
void checkpoint_model(std::ostream& os, nn::ClimateNet& net);
void restore_model(std::istream& is, nn::ClimateNet& net);

// ---- file-level convenience ------------------------------------------------

void checkpoint_model_file(const std::string& path, nn::Sequential& net,
                           const std::string& model_kind);
void restore_model_file(const std::string& path, nn::Sequential& net,
                        const std::string& expected_kind);
CheckpointMeta read_checkpoint_meta_file(const std::string& path);

}  // namespace pf15::serve
