// Cut-based benchmark analysis for the HEP task (§I-A, §VII-A).
//
// The paper compares its CNN to "our own implementation of the selections
// of [5]" — rectangular cuts on high-level physics features (jet count,
// HT, summed jet mass). We reproduce that: a grid search over cut
// thresholds on a calibration sample picks the selection maximizing
// true-positive rate subject to a false-positive-rate budget, exactly the
// operating-point comparison of §VII-A (baseline: TPR 42% @ FPR 0.02%).
#pragma once

#include <cstddef>
#include <vector>

#include "data/hep_generator.hpp"

namespace pf15::data {

/// A rectangular selection: event passes iff every cut holds.
struct CutSelection {
  int min_njet = 0;
  float min_ht = 0.0f;
  float min_mj_sum = 0.0f;

  bool passes(const HepFeatures& f) const {
    return f.njet >= min_njet && f.ht >= min_ht && f.mj_sum >= min_mj_sum;
  }
};

struct RatePoint {
  double tpr = 0.0;  // signal efficiency
  double fpr = 0.0;  // background acceptance
};

class CutBaseline {
 public:
  /// Fits cut thresholds on (features, labels) maximizing TPR subject to
  /// FPR <= max_fpr. Grid resolution trades fit quality for time.
  void fit(const std::vector<HepFeatures>& features,
           const std::vector<std::int32_t>& labels, double max_fpr,
           std::size_t grid = 24);

  /// Evaluates the fitted selection on a sample.
  RatePoint evaluate(const std::vector<HepFeatures>& features,
                     const std::vector<std::int32_t>& labels) const;

  const CutSelection& selection() const { return selection_; }

 private:
  CutSelection selection_;
};

/// Sweeps a score threshold over classifier outputs to find the TPR at a
/// given FPR budget — used to put the CNN and the cut baseline on the same
/// operating point. `scores` are higher-is-more-signal.
RatePoint tpr_at_fpr(const std::vector<float>& scores,
                     const std::vector<std::int32_t>& labels, double max_fpr);

}  // namespace pf15::data
