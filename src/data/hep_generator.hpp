// Synthetic HEP event generator (substitute for Pythia + Delphes, §I-A).
//
// The paper's task: discriminate rare RPV-SUSY-like multi-jet "signal"
// events from prevalent QCD "background" in calorimeter images with three
// channels — electromagnetic calorimeter energy, hadronic calorimeter
// energy, and inner-detector track counts.
//
// Our toy physics preserves what matters for the benchmark comparison:
//  * Both classes are sums of jets (localized energy deposits) on a
//    cylindrical detector unrolled to a 2-D (eta, phi) image.
//  * Signal events have more jets, a harder momentum spectrum, and —
//    crucially — two-prong substructure inside each heavy-decay jet.
//  * The high-level features the cut-based baseline uses (jet count, HT,
//    summed jet mass) are computed with detector-like smearing, so they
//    carry *less* information than the image itself. A convolutional model
//    reading the raw image can therefore beat the cut baseline, which is
//    the §VII-A science result.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace pf15::data {

/// High-level physics features, the inputs of the cut-based benchmark
/// (modeled on the ATLAS multi-jet search selections of ref [5]).
struct HepFeatures {
  int njet = 0;          // jets with pT above threshold
  float ht = 0.0f;       // scalar sum of jet pT [GeV]
  float lead_pt = 0.0f;  // leading-jet pT [GeV]
  float mj_sum = 0.0f;   // summed (smeared) large-radius jet mass [GeV]
};

/// One generated event: image + truth label + reconstructed features.
struct HepEvent {
  Tensor image;  // (channels, H, W): EM calo, hadronic calo, tracks
  std::int32_t label = 0;  // 1 = signal, 0 = background
  HepFeatures features;
};

struct HepGeneratorConfig {
  std::size_t image = 224;
  std::size_t channels = 3;
  double signal_fraction = 0.5;  // class balance of the generated stream
  // Background (QCD): jet multiplicity ~ 2 + Poisson(mean).
  double bkg_jet_mean = 3.0;
  // Signal (SUSY cascade): higher multiplicity — but only moderately, so
  // a multiplicity cut alone cannot match the image (the §VII-A premise:
  // the discriminating power is in the substructure, which high-level
  // features only see through the heavily smeared mass proxy).
  double sig_jet_mean = 4.5;
  // Exponential jet-pT spectra (GeV); signal is harder.
  double bkg_pt_scale = 80.0;
  double sig_pt_scale = 120.0;
  // Fraction of signal jets carrying two-prong substructure.
  double sig_substructure_prob = 0.85;
  // QCD jets also split (gluon radiation): background two-prong rate.
  // Nonzero is what keeps the jet-mass feature from acting as a truth
  // tag — the classes overlap in any single feature, and only the joint
  // spatial pattern (the image) separates them cleanly.
  double bkg_substructure_prob = 0.3;
  // Detector smearing applied to the high-level features (fractional).
  double feature_smear = 0.35;
  // Calorimeter noise level per cell.
  double noise_sigma = 0.02;
  std::uint64_t seed = 20170817;
};

class HepGenerator {
 public:
  explicit HepGenerator(const HepGeneratorConfig& cfg,
                        std::uint64_t stream = 0);

  /// Generates one event; label sampled from signal_fraction.
  HepEvent generate();
  /// Generates one event of a fixed class.
  HepEvent generate(bool signal);

  const HepGeneratorConfig& config() const { return cfg_; }

 private:
  struct Jet {
    float eta_px;  // position in pixels
    float phi_px;
    float pt;        // transverse momentum proxy [GeV]
    float width;     // angular size in pixels
    float em_frac;   // electromagnetic energy fraction
    bool two_prong;  // substructure flag
    float prong_dx;  // offset of the second prong (pixels)
    float prong_dy;
  };

  std::vector<Jet> sample_jets(bool signal);
  void deposit(const Jet& jet, Tensor& image);
  HepFeatures reconstruct(const std::vector<Jet>& jets);

  HepGeneratorConfig cfg_;
  Rng rng_;
};

}  // namespace pf15::data
