// Synthetic climate field generator (substitute for the CAM5 25-km runs,
// §I-B). Produces 16-channel images with embedded extreme-weather events
// and ground-truth bounding boxes, plus an unlabeled stream for the
// semi-supervised autoencoder branch.
//
// Event classes mirror the paper's targets:
//   0 TC  — tropical cyclone: compact moisture blob + cyclonic rotation in
//           the wind channels + deep pressure low.
//   1 ETC — extratropical cyclone: same signature, larger and weaker.
//   2 AR  — atmospheric river: long, thin, tilted moisture band.
//   3 TD  — tropical depression: small, weak blob.
// Each event stamps a physically-coupled signature across several channels
// (moisture, U/V winds, pressure, temperature), so detection genuinely
// requires multi-channel features — the property that rules out pre-trained
// RGB networks in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/boxes.hpp"
#include "tensor/tensor.hpp"

namespace pf15::data {

struct ClimateSample {
  Tensor image;  // (channels, H, W)
  std::vector<nn::Box> boxes;
  bool labeled = true;
};

struct ClimateGeneratorConfig {
  std::size_t image = 768;
  std::size_t channels = 16;
  std::size_t classes = 4;
  double events_mean = 2.0;      // Poisson mean of events per image
  double labeled_fraction = 0.5; // rest feed only the autoencoder
  double background_modes = 6;   // low-frequency background complexity
  double noise_sigma = 0.15;
  std::uint64_t seed = 20151231;
};

class ClimateGenerator {
 public:
  explicit ClimateGenerator(const ClimateGeneratorConfig& cfg,
                            std::uint64_t stream = 0);

  ClimateSample generate();
  /// Force the labeled flag (e.g. build a purely-labeled eval set).
  ClimateSample generate(bool labeled);

  const ClimateGeneratorConfig& config() const { return cfg_; }

 private:
  void paint_background(Tensor& image);
  /// Stamps one event of class `cls` and returns its ground-truth box.
  nn::Box stamp_event(int cls, Tensor& image);

  ClimateGeneratorConfig cfg_;
  Rng rng_;
};

}  // namespace pf15::data
