#include "data/climate_generator.hpp"

#include <algorithm>
#include <cmath>

namespace pf15::data {

namespace {
constexpr double kPi = 3.14159265358979323846;

// Channel roles. With fewer than 16 channels (test configs) the roles wrap.
enum ChannelRole : std::size_t {
  kMoisture = 0,  // TMQ-like integrated water vapor
  kUWind = 1,     // U850
  kVWind = 2,     // V850
  kPressure = 3,  // PSL
  kTemp = 4,      // T500
};
}  // namespace

ClimateGenerator::ClimateGenerator(const ClimateGeneratorConfig& cfg,
                                   std::uint64_t stream)
    : cfg_(cfg), rng_(cfg.seed, stream) {
  PF15_CHECK(cfg.image >= 16);
  PF15_CHECK(cfg.channels >= 4);
  PF15_CHECK(cfg.classes >= 1 && cfg.classes <= 4);
}

ClimateSample ClimateGenerator::generate() {
  return generate(rng_.bernoulli(cfg_.labeled_fraction));
}

ClimateSample ClimateGenerator::generate(bool labeled) {
  ClimateSample s;
  s.labeled = labeled;
  s.image = Tensor(Shape{cfg_.channels, cfg_.image, cfg_.image});
  paint_background(s.image);

  const std::uint64_t nevents = rng_.poisson(cfg_.events_mean);
  for (std::uint64_t e = 0; e < nevents; ++e) {
    const int cls = static_cast<int>(rng_.uniform_int(cfg_.classes));
    s.boxes.push_back(stamp_event(cls, s.image));
  }
  // Unlabeled samples still *contain* events; we simply do not reveal the
  // boxes — that is what "unlabeled" means for training.
  if (!labeled) s.boxes.clear();
  return s;
}

void ClimateGenerator::paint_background(Tensor& image) {
  const std::size_t size = cfg_.image;
  const std::size_t plane = size * size;
  const auto modes = static_cast<std::size_t>(cfg_.background_modes);
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    float* p = image.data() + ch * plane;
    // Smooth large-scale circulation: a few random low-frequency modes.
    struct Mode {
      float fx, fy, phase, amp;
    };
    std::vector<Mode> ms(modes);
    for (auto& m : ms) {
      m.fx = static_cast<float>(rng_.uniform_int(4)) + 1.0f;
      m.fy = static_cast<float>(rng_.uniform_int(4)) + 1.0f;
      m.phase = static_cast<float>(rng_.uniform() * 2.0 * kPi);
      m.amp = static_cast<float>(rng_.normal(0.0, 0.5));
    }
    for (std::size_t y = 0; y < size; ++y) {
      const float fy = static_cast<float>(y) / static_cast<float>(size);
      for (std::size_t x = 0; x < size; ++x) {
        const float fx = static_cast<float>(x) / static_cast<float>(size);
        float v = 0.0f;
        for (const auto& m : ms) {
          v += m.amp * std::sin(2.0f * static_cast<float>(kPi) *
                                    (m.fx * fx + m.fy * fy) +
                                m.phase);
        }
        p[y * size + x] = v + static_cast<float>(
                                  rng_.normal(0.0, cfg_.noise_sigma));
      }
    }
  }
}

nn::Box ClimateGenerator::stamp_event(int cls, Tensor& image) {
  const std::size_t size = cfg_.image;
  const std::size_t plane = size * size;
  const float fsize = static_cast<float>(size);
  auto chan = [&](std::size_t role) {
    return image.data() + (role % cfg_.channels) * plane;
  };

  // Class-dependent geometry (fractions of the image side).
  float radius_frac, amplitude;
  switch (cls) {
    case 0:  // TC: compact, intense
      radius_frac = 0.035f + 0.02f * static_cast<float>(rng_.uniform());
      amplitude = 3.0f + static_cast<float>(rng_.uniform());
      break;
    case 1:  // ETC: large, moderate
      radius_frac = 0.08f + 0.04f * static_cast<float>(rng_.uniform());
      amplitude = 1.8f + 0.6f * static_cast<float>(rng_.uniform());
      break;
    case 3:  // TD: small, weak
      radius_frac = 0.025f + 0.015f * static_cast<float>(rng_.uniform());
      amplitude = 1.4f + 0.4f * static_cast<float>(rng_.uniform());
      break;
    default:  // AR handled separately below
      radius_frac = 0.0f;
      amplitude = 2.2f + 0.8f * static_cast<float>(rng_.uniform());
      break;
  }

  if (cls == 2) {
    // Atmospheric river: a tilted moisture band of length ~0.4-0.7 of the
    // image and width ~0.03.
    const float len = (0.4f + 0.3f * static_cast<float>(rng_.uniform())) *
                      fsize;
    const float width = (0.025f + 0.015f *
                         static_cast<float>(rng_.uniform())) * fsize;
    const float angle = static_cast<float>(rng_.uniform() * kPi);
    const float cx = rng_.uniform(0.2f, 0.8f) * fsize;
    const float cy = rng_.uniform(0.2f, 0.8f) * fsize;
    const float dx = std::cos(angle), dy = std::sin(angle);
    float* moisture = chan(kMoisture);
    float* temp = chan(kTemp);
    float x0 = fsize, x1 = 0.0f, y0 = fsize, y1 = 0.0f;
    const int reach = static_cast<int>(len * 0.5f + 3.0f * width);
    const int icx = static_cast<int>(cx), icy = static_cast<int>(cy);
    for (int y = std::max(0, icy - reach);
         y < std::min<int>(static_cast<int>(size), icy + reach); ++y) {
      for (int x = std::max(0, icx - reach);
           x < std::min<int>(static_cast<int>(size), icx + reach); ++x) {
        const float rx = static_cast<float>(x) - cx;
        const float ry = static_cast<float>(y) - cy;
        const float along = rx * dx + ry * dy;
        const float across = -rx * dy + ry * dx;
        if (std::abs(along) > len * 0.5f) continue;
        const float profile =
            std::exp(-(across * across) / (2.0f * width * width));
        if (profile < 1e-3f) continue;
        const std::size_t idx = static_cast<std::size_t>(y) * size +
                                static_cast<std::size_t>(x);
        moisture[idx] += amplitude * profile;
        temp[idx] += 0.3f * amplitude * profile;
        x0 = std::min(x0, static_cast<float>(x));
        x1 = std::max(x1, static_cast<float>(x));
        y0 = std::min(y0, static_cast<float>(y));
        y1 = std::max(y1, static_cast<float>(y));
      }
    }
    nn::Box box;
    box.cls = cls;
    box.x = std::max(0.0f, x0 / fsize);
    box.y = std::max(0.0f, y0 / fsize);
    box.w = std::max(1.0f / fsize, (x1 - x0) / fsize);
    box.h = std::max(1.0f / fsize, (y1 - y0) / fsize);
    return box;
  }

  // Rotational events (TC / ETC / TD).
  const float radius = radius_frac * fsize;
  const float cx = rng_.uniform(radius * 2.5f, fsize - radius * 2.5f);
  const float cy = rng_.uniform(radius * 2.5f, fsize - radius * 2.5f);
  const int reach = static_cast<int>(3.0f * radius);
  float* moisture = chan(kMoisture);
  float* uwind = chan(kUWind);
  float* vwind = chan(kVWind);
  float* pressure = chan(kPressure);
  float* temp = chan(kTemp);
  const int icx = static_cast<int>(cx), icy = static_cast<int>(cy);
  for (int y = std::max(0, icy - reach);
       y < std::min<int>(static_cast<int>(size), icy + reach); ++y) {
    for (int x = std::max(0, icx - reach);
         x < std::min<int>(static_cast<int>(size), icx + reach); ++x) {
      const float rx = static_cast<float>(x) - cx;
      const float ry = static_cast<float>(y) - cy;
      const float r2 = rx * rx + ry * ry;
      const float envelope = std::exp(-r2 / (2.0f * radius * radius));
      if (envelope < 1e-3f) continue;
      const float r = std::sqrt(r2) + 1e-3f;
      const std::size_t idx = static_cast<std::size_t>(y) * size +
                              static_cast<std::size_t>(x);
      moisture[idx] += amplitude * envelope;
      // Cyclonic (counter-clockwise) tangential wind with a calm eye.
      const float tangential =
          amplitude * envelope * (r / radius) * std::exp(1.0f - r / radius);
      uwind[idx] += -tangential * (ry / r);
      vwind[idx] += tangential * (rx / r);
      pressure[idx] -= amplitude * envelope;  // deep low
      temp[idx] += 0.4f * amplitude * envelope;  // warm core
    }
  }
  nn::Box box;
  box.cls = cls;
  const float half = 2.2f * radius;
  box.x = std::clamp((cx - half) / fsize, 0.0f, 1.0f);
  box.y = std::clamp((cy - half) / fsize, 0.0f, 1.0f);
  box.w = std::min(2.0f * half / fsize, 1.0f - box.x);
  box.h = std::min(2.0f * half / fsize, 1.0f - box.y);
  return box;
}

}  // namespace pf15::data
