#include "data/loader.hpp"

#include <cstring>

#include "common/errors.hpp"

namespace pf15::data {

BatchLoader::BatchLoader(ShardReader& reader, std::size_t batch_size,
                         std::uint64_t seed)
    : reader_(reader), batch_size_(batch_size), rng_(seed) {
  PF15_CHECK(batch_size_ > 0);
  PF15_CHECK_MSG(reader_.size() >= batch_size_,
                 "shard smaller than one batch");
  order_.resize(reader_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  reshuffle();
}

void BatchLoader::reshuffle() {
  // Fisher–Yates with our deterministic engine.
  for (std::size_t i = order_.size(); i > 1; --i) {
    const std::size_t j = rng_.uniform_int(i);
    std::swap(order_[i - 1], order_[j]);
  }
  cursor_ = 0;
}

Batch BatchLoader::next() {
  Batch batch;
  batch.images = Tensor(Shape{batch_size_, reader_.channels(),
                              reader_.height(), reader_.width()});
  batch.labels.reserve(batch_size_);
  batch.boxes.reserve(batch_size_);
  batch.labeled.reserve(batch_size_);
  const double io_before = reader_.io_seconds();
  const std::size_t per_image =
      reader_.channels() * reader_.height() * reader_.width();
  for (std::size_t i = 0; i < batch_size_; ++i) {
    if (cursor_ >= order_.size()) reshuffle();
    const Sample s = reader_.read(order_[cursor_++]);
    std::memcpy(batch.images.data() + i * per_image, s.image.data(),
                per_image * sizeof(float));
    batch.labels.push_back(s.label);
    batch.boxes.push_back(s.boxes);
    batch.labeled.push_back(s.labeled);
  }
  batch.io_seconds = reader_.io_seconds() - io_before;
  return batch;
}

PrefetchLoader::PrefetchLoader(ShardReader& reader, std::size_t batch_size,
                               std::size_t queue_depth, std::uint64_t seed)
    : inner_(reader, batch_size, seed), queue_depth_(queue_depth) {
  PF15_CHECK(queue_depth_ > 0);
  producer_ = std::thread([this] { producer_loop(); });
}

PrefetchLoader::~PrefetchLoader() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_producer_.notify_all();
  cv_consumer_.notify_all();
  producer_.join();
}

void PrefetchLoader::producer_loop() {
  for (;;) {
    {
      UniqueLock lock(mutex_);
      while (!stop_ && queue_.size() >= queue_depth_) {
        cv_producer_.wait(lock);
      }
      if (stop_) return;
    }
    Batch b = inner_.next();
    {
      MutexLock lock(mutex_);
      queue_.push_back(std::move(b));
    }
    cv_consumer_.notify_one();
  }
}

Batch PrefetchLoader::next() {
  UniqueLock lock(mutex_);
  while (!stop_ && queue_.empty()) cv_consumer_.wait(lock);
  PF15_CHECK_MSG(!queue_.empty(), "prefetch loader stopped");
  Batch b = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  cv_producer_.notify_one();
  // The consumer never waited on I/O directly; the cost moved off the
  // critical path, which is exactly what the ablation measures.
  b.io_seconds = 0.0;
  return b;
}

Batch make_batch(const std::vector<const Sample*>& samples) {
  PF15_CHECK(!samples.empty());
  const Shape& s0 = samples.front()->image.shape();
  Batch batch;
  batch.images = Tensor(Shape{samples.size(), s0[0], s0[1], s0[2]});
  const std::size_t per_image = samples.front()->image.numel();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    PF15_CHECK(samples[i]->image.shape() == s0);
    std::memcpy(batch.images.data() + i * per_image,
                samples[i]->image.data(), per_image * sizeof(float));
    batch.labels.push_back(samples[i]->label);
    batch.boxes.push_back(samples[i]->boxes);
    batch.labeled.push_back(samples[i]->labeled);
  }
  return batch;
}

}  // namespace pf15::data
