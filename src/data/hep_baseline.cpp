#include "data/hep_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace pf15::data {

namespace {
RatePoint rates_for(const CutSelection& sel,
                    const std::vector<HepFeatures>& features,
                    const std::vector<std::int32_t>& labels) {
  std::size_t tp = 0, fp = 0, pos = 0, neg = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    const bool is_signal = labels[i] == 1;
    (is_signal ? pos : neg) += 1;
    if (sel.passes(features[i])) {
      (is_signal ? tp : fp) += 1;
    }
  }
  RatePoint r;
  if (pos > 0) r.tpr = static_cast<double>(tp) / static_cast<double>(pos);
  if (neg > 0) r.fpr = static_cast<double>(fp) / static_cast<double>(neg);
  return r;
}

/// Quantile grid of a feature's positive-class values, deduplicated.
std::vector<float> quantile_grid(std::vector<float> values,
                                 std::size_t grid) {
  std::sort(values.begin(), values.end());
  std::vector<float> out;
  out.push_back(0.0f);
  for (std::size_t q = 0; q < grid; ++q) {
    const std::size_t idx =
        std::min(values.size() - 1, q * values.size() / grid);
    if (out.empty() || values[idx] > out.back()) out.push_back(values[idx]);
  }
  return out;
}
}  // namespace

void CutBaseline::fit(const std::vector<HepFeatures>& features,
                      const std::vector<std::int32_t>& labels,
                      double max_fpr, std::size_t grid) {
  PF15_CHECK(features.size() == labels.size());
  PF15_CHECK(!features.empty());

  std::vector<float> ht_values, mj_values;
  int max_njet = 0;
  for (const auto& f : features) {
    ht_values.push_back(f.ht);
    mj_values.push_back(f.mj_sum);
    max_njet = std::max(max_njet, f.njet);
  }
  const std::vector<float> ht_grid = quantile_grid(ht_values, grid);
  const std::vector<float> mj_grid = quantile_grid(mj_values, grid);

  CutSelection best;
  double best_tpr = -1.0;
  for (int njet = 0; njet <= max_njet; ++njet) {
    for (float ht : ht_grid) {
      for (float mj : mj_grid) {
        const CutSelection sel{njet, ht, mj};
        const RatePoint r = rates_for(sel, features, labels);
        if (r.fpr <= max_fpr && r.tpr > best_tpr) {
          best_tpr = r.tpr;
          best = sel;
        }
      }
    }
  }
  PF15_CHECK_MSG(best_tpr >= 0.0, "no selection meets the FPR budget");
  selection_ = best;
}

RatePoint CutBaseline::evaluate(const std::vector<HepFeatures>& features,
                                const std::vector<std::int32_t>& labels)
    const {
  PF15_CHECK(features.size() == labels.size());
  return rates_for(selection_, features, labels);
}

RatePoint tpr_at_fpr(const std::vector<float>& scores,
                     const std::vector<std::int32_t>& labels,
                     double max_fpr) {
  PF15_CHECK(scores.size() == labels.size());
  PF15_CHECK(!scores.empty());
  // Sort by descending score; walk down accepting events until the FPR
  // budget would be exceeded.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t pos = 0, neg = 0;
  for (auto l : labels) (l == 1 ? pos : neg) += 1;
  PF15_CHECK(pos > 0 && neg > 0);
  const auto fp_budget = static_cast<std::size_t>(
      std::floor(max_fpr * static_cast<double>(neg)));
  std::size_t tp = 0, fp = 0;
  RatePoint best{0.0, 0.0};
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] == 1) {
      ++tp;
    } else {
      ++fp;
      if (fp > fp_budget) break;
    }
    // Only take operating points at the end of score ties.
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    const double tpr = static_cast<double>(tp) / static_cast<double>(pos);
    if (tpr > best.tpr) {
      best.tpr = tpr;
      best.fpr = static_cast<double>(fp) / static_cast<double>(neg);
    }
  }
  return best;
}

}  // namespace pf15::data
