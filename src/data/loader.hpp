// Batch assembly and background prefetching.
//
// §VI-A measures the I/O share of iteration time (13% for climate, ~2% for
// HEP) and attributes it to single-threaded HDF5 reads. We provide both a
// synchronous loader (reproducing that cost in the training loop) and a
// background-prefetch loader (the fix the paper defers to future work) so
// the ablation bench can quantify the difference.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "data/shard_store.hpp"

namespace pf15::data {

/// One training batch: stacked images plus per-sample annotations.
struct Batch {
  Tensor images;  // (N, C, H, W)
  std::vector<std::int32_t> labels;
  std::vector<std::vector<nn::Box>> boxes;
  std::vector<bool> labeled;
  double io_seconds = 0.0;  // time spent reading source data
};

/// Assembles batches from a shard with shuffled epochs (synchronous).
class BatchLoader {
 public:
  BatchLoader(ShardReader& reader, std::size_t batch_size,
              std::uint64_t seed = 1);

  /// Next batch; wraps across epochs (reshuffling each epoch).
  Batch next();

  std::size_t batch_size() const { return batch_size_; }

 private:
  void reshuffle();

  ShardReader& reader_;
  std::size_t batch_size_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

/// Wraps a BatchLoader with a bounded background prefetch queue. next()
/// blocks only when the producer thread has fallen behind.
class PrefetchLoader {
 public:
  PrefetchLoader(ShardReader& reader, std::size_t batch_size,
                 std::size_t queue_depth = 4, std::uint64_t seed = 1);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  Batch next();

 private:
  void producer_loop();

  BatchLoader inner_;
  std::size_t queue_depth_;
  Mutex mutex_;
  std::deque<Batch> queue_ PF15_GUARDED_BY(mutex_);
  CondVar cv_producer_;
  CondVar cv_consumer_;
  bool stop_ PF15_GUARDED_BY(mutex_) = false;
  std::thread producer_;
};

/// Builds a batch directly from in-memory samples (tests, generators).
Batch make_batch(const std::vector<const Sample*>& samples);

}  // namespace pf15::data
