#include "data/hep_generator.hpp"

#include <algorithm>
#include <cmath>

namespace pf15::data {

HepGenerator::HepGenerator(const HepGeneratorConfig& cfg,
                           std::uint64_t stream)
    : cfg_(cfg), rng_(cfg.seed, stream) {
  PF15_CHECK(cfg.image >= 16);
  PF15_CHECK(cfg.channels == 3);
}

HepEvent HepGenerator::generate() {
  return generate(rng_.bernoulli(cfg_.signal_fraction));
}

HepEvent HepGenerator::generate(bool signal) {
  HepEvent ev;
  ev.label = signal ? 1 : 0;
  ev.image = Tensor(Shape{cfg_.channels, cfg_.image, cfg_.image});

  const std::vector<Jet> jets = sample_jets(signal);
  for (const Jet& jet : jets) deposit(jet, ev.image);

  // Calorimeter noise on the two energy channels.
  const std::size_t plane = cfg_.image * cfg_.image;
  for (std::size_t ch = 0; ch < 2; ++ch) {
    float* p = ev.image.data() + ch * plane;
    for (std::size_t i = 0; i < plane; ++i) {
      p[i] += static_cast<float>(
          std::max(0.0, rng_.normal(0.0, cfg_.noise_sigma)));
    }
  }
  ev.features = reconstruct(jets);
  return ev;
}

std::vector<HepGenerator::Jet> HepGenerator::sample_jets(bool signal) {
  const double jet_mean = signal ? cfg_.sig_jet_mean : cfg_.bkg_jet_mean;
  const double pt_scale = signal ? cfg_.sig_pt_scale : cfg_.bkg_pt_scale;
  const std::size_t njet = 2 + rng_.poisson(jet_mean);
  const float size = static_cast<float>(cfg_.image);

  std::vector<Jet> jets;
  jets.reserve(njet);
  for (std::size_t j = 0; j < njet; ++j) {
    Jet jet;
    // Keep deposits inside the "barrel" in eta; phi wraps below.
    jet.eta_px = rng_.uniform(0.1f * size, 0.9f * size);
    jet.phi_px = rng_.uniform(0.0f, size);
    jet.pt = static_cast<float>(40.0 + rng_.exponential(1.0 / pt_scale));
    // Jet angular size shrinks with pT (collimation). The floor keeps a
    // jet at least a pixel wide on downscaled images (tests/benches run
    // at 32-64 px): below one pixel the deposit aliases away and the
    // image carries *less* information than the smeared features, which
    // inverts the §VII-A comparison the generator exists to support.
    jet.width = std::max(
        0.9f, static_cast<float>(size / 228.0f) *
                  (3.0f + 240.0f / (40.0f + jet.pt)));
    jet.em_frac = static_cast<float>(
        std::clamp(rng_.normal(0.45, 0.15), 0.05, 0.95));
    jet.two_prong = rng_.bernoulli(signal ? cfg_.sig_substructure_prob
                                          : cfg_.bkg_substructure_prob);
    if (jet.two_prong) {
      // Second prong displaced by ~2 jet widths in a random direction,
      // never less than ~2.5 px so the two cores resolve at any image
      // scale (same rationale as the width floor above).
      const double angle = rng_.uniform() * 2.0 * 3.14159265358979;
      const float sep = std::max(
          2.5f, jet.width * static_cast<float>(1.5 + rng_.uniform()));
      jet.prong_dx = sep * static_cast<float>(std::cos(angle));
      jet.prong_dy = sep * static_cast<float>(std::sin(angle));
    } else {
      jet.prong_dx = jet.prong_dy = 0.0f;
    }
    jets.push_back(jet);
  }
  return jets;
}

void HepGenerator::deposit(const Jet& jet, Tensor& image) {
  const std::size_t size = cfg_.image;
  const std::size_t plane = size * size;
  float* em = image.data();
  float* had = image.data() + plane;
  float* trk = image.data() + 2 * plane;

  // Split pT between prongs when there is substructure.
  struct Prong {
    float x, y, pt;
  };
  Prong prongs[2];
  std::size_t nprong = 1;
  if (jet.two_prong) {
    const float share = 0.4f + 0.2f * static_cast<float>(rng_.uniform());
    prongs[0] = {jet.eta_px - 0.5f * jet.prong_dx,
                 jet.phi_px - 0.5f * jet.prong_dy, jet.pt * share};
    prongs[1] = {jet.eta_px + 0.5f * jet.prong_dx,
                 jet.phi_px + 0.5f * jet.prong_dy, jet.pt * (1.0f - share)};
    nprong = 2;
  } else {
    prongs[0] = {jet.eta_px, jet.phi_px, jet.pt};
  }

  const float sigma = jet.width * 0.6f;
  const int radius = static_cast<int>(std::ceil(3.0f * sigma));
  const float inv2s2 = 1.0f / (2.0f * sigma * sigma);
  for (std::size_t p = 0; p < nprong; ++p) {
    const Prong& pr = prongs[p];
    const float amp =
        pr.pt / (2.0f * 3.14159265f * sigma * sigma);  // energy density
    const int cy = static_cast<int>(pr.x);
    const int cx = static_cast<int>(pr.y);
    for (int dy = -radius; dy <= radius; ++dy) {
      const int yy = cy + dy;
      if (yy < 0 || yy >= static_cast<int>(size)) continue;  // eta edge
      for (int dx = -radius; dx <= radius; ++dx) {
        // phi is periodic on the cylinder: wrap.
        int xx = (cx + dx) % static_cast<int>(size);
        if (xx < 0) xx += static_cast<int>(size);
        const float fx = pr.x - static_cast<float>(yy);
        const float fy = static_cast<float>(dx) -
                         (pr.y - static_cast<float>(cx));
        const float r2 = fx * fx + fy * fy;
        const float e = amp * std::exp(-r2 * inv2s2);
        if (e < 1e-4f) continue;
        const std::size_t idx =
            static_cast<std::size_t>(yy) * size + static_cast<std::size_t>(xx);
        em[idx] += jet.em_frac * e;
        had[idx] += (1.0f - jet.em_frac) * e;
      }
    }
    // Tracks: discrete counts near the prong core, ~ pT / 10 tracks.
    const std::uint64_t ntrack = rng_.poisson(pr.pt / 10.0);
    for (std::uint64_t t = 0; t < ntrack; ++t) {
      const int ty = static_cast<int>(
          pr.x + rng_.normal(0.0, sigma * 0.8));
      int tx = static_cast<int>(pr.y + rng_.normal(0.0, sigma * 0.8));
      if (ty < 0 || ty >= static_cast<int>(size)) continue;
      tx %= static_cast<int>(size);
      if (tx < 0) tx += static_cast<int>(size);
      trk[static_cast<std::size_t>(ty) * size +
          static_cast<std::size_t>(tx)] += 1.0f;
    }
  }
}

HepFeatures HepGenerator::reconstruct(const std::vector<Jet>& jets) {
  HepFeatures f;
  const float pt_threshold = 50.0f;
  for (const Jet& jet : jets) {
    // Jet-energy-scale smearing: detector-level features are lossy, which
    // is why the image-based classifier can win (§VII-A).
    const float smear = static_cast<float>(
        std::max(0.1, rng_.normal(1.0, cfg_.feature_smear)));
    const float pt = jet.pt * smear;
    if (pt < pt_threshold) continue;
    ++f.njet;
    f.ht += pt;
    f.lead_pt = std::max(f.lead_pt, pt);
    // Large-radius jet mass proxy: substructure raises it; heavily smeared.
    const float sep = jet.two_prong
                          ? std::sqrt(jet.prong_dx * jet.prong_dx +
                                      jet.prong_dy * jet.prong_dy)
                          : jet.width * 0.4f;
    const float mass =
        0.25f * pt * (sep / std::max(jet.width, 1e-3f)) *
        static_cast<float>(std::max(0.1, rng_.normal(1.0, 1.7 * cfg_.feature_smear)));
    f.mj_sum += mass;
  }
  return f;
}

}  // namespace pf15::data
