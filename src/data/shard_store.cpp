#include "data/shard_store.hpp"

#include "common/errors.hpp"
#include "common/timer.hpp"

namespace pf15::data {

namespace {
constexpr std::uint64_t kMagic = 0x5046313553485244ULL;  // "PF15SHRD"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw IoError("shard: truncated read");
  return v;
}
}  // namespace

ShardWriter::ShardWriter(const std::string& path, std::size_t channels,
                         std::size_t height, std::size_t width)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      channels_(channels),
      height_(height),
      width_(width) {
  if (!out_) throw IoError("shard: cannot open for write: " + path);
  write_pod(out_, kMagic);
  write_pod(out_, kVersion);
  write_pod<std::uint64_t>(out_, 0);  // count, patched in close()
  write_pod<std::uint64_t>(out_, channels_);
  write_pod<std::uint64_t>(out_, height_);
  write_pod<std::uint64_t>(out_, width_);
}

ShardWriter::~ShardWriter() {
  try {
    close();
  } catch (const Error&) {
    // Destructor must not throw; an explicit close() reports failures.
  }
}

void ShardWriter::append(const Sample& sample) {
  PF15_CHECK(!closed_);
  PF15_CHECK_MSG((sample.image.shape() ==
                  Shape{channels_, height_, width_}),
                 "shard geometry mismatch: " << sample.image.shape());
  write_pod(out_, sample.label);
  write_pod<std::uint8_t>(out_, sample.labeled ? 1 : 0);
  write_pod<std::uint32_t>(out_,
                           static_cast<std::uint32_t>(sample.boxes.size()));
  for (const auto& b : sample.boxes) {
    write_pod(out_, b.x);
    write_pod(out_, b.y);
    write_pod(out_, b.w);
    write_pod(out_, b.h);
    write_pod<std::int32_t>(out_, b.cls);
  }
  out_.write(reinterpret_cast<const char*>(sample.image.data()),
             static_cast<std::streamsize>(sample.image.numel() *
                                          sizeof(float)));
  if (!out_) throw IoError("shard: write failed: " + path_);
  ++count_;
}

void ShardWriter::close() {
  if (closed_) return;
  closed_ = true;
  // Patch the record count into the header.
  out_.seekp(sizeof(kMagic) + sizeof(kVersion));
  write_pod<std::uint64_t>(out_, count_);
  out_.close();
  if (!out_) throw IoError("shard: close failed: " + path_);
}

ShardReader::ShardReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw IoError("shard: cannot open for read: " + path);
  if (read_pod<std::uint64_t>(in_) != kMagic) {
    throw IoError("shard: bad magic: " + path);
  }
  if (read_pod<std::uint32_t>(in_) != kVersion) {
    throw IoError("shard: unsupported version: " + path);
  }
  const auto count = read_pod<std::uint64_t>(in_);
  channels_ = read_pod<std::uint64_t>(in_);
  height_ = read_pod<std::uint64_t>(in_);
  width_ = read_pod<std::uint64_t>(in_);
  // Build the offset index with one pass over record headers.
  offsets_.reserve(count);
  std::uint64_t pos = static_cast<std::uint64_t>(in_.tellg());
  const std::uint64_t payload = channels_ * height_ * width_ * sizeof(float);
  for (std::uint64_t i = 0; i < count; ++i) {
    offsets_.push_back(pos);
    in_.seekg(static_cast<std::streamoff>(pos + sizeof(std::int32_t) +
                                          sizeof(std::uint8_t)));
    const auto nboxes = read_pod<std::uint32_t>(in_);
    pos += sizeof(std::int32_t) + sizeof(std::uint8_t) +
           sizeof(std::uint32_t) +
           nboxes * (4 * sizeof(float) + sizeof(std::int32_t)) + payload;
  }
}

Sample ShardReader::read(std::size_t index) {
  PF15_CHECK_MSG(index < offsets_.size(),
                 "shard index " << index << " out of " << offsets_.size());
  WallTimer timer;
  in_.seekg(static_cast<std::streamoff>(offsets_[index]));
  Sample s;
  s.label = read_pod<std::int32_t>(in_);
  s.labeled = read_pod<std::uint8_t>(in_) != 0;
  const auto nboxes = read_pod<std::uint32_t>(in_);
  s.boxes.resize(nboxes);
  for (auto& b : s.boxes) {
    b.x = read_pod<float>(in_);
    b.y = read_pod<float>(in_);
    b.w = read_pod<float>(in_);
    b.h = read_pod<float>(in_);
    b.cls = read_pod<std::int32_t>(in_);
  }
  s.image = Tensor(Shape{channels_, height_, width_});
  in_.read(reinterpret_cast<char*>(s.image.data()),
           static_cast<std::streamsize>(s.image.numel() * sizeof(float)));
  if (!in_) throw IoError("shard: truncated sample");
  io_seconds_ += timer.seconds();
  return s;
}

}  // namespace pf15::data
