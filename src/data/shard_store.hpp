// On-disk dataset shards — our stand-in for the paper's HDF5 pipeline.
//
// Format (little-endian):
//   u64 magic "PF15SHRD" | u32 version | u64 count | u64 C, H, W
//   count x records: i32 label | u8 labeled | u32 nboxes
//                    nboxes x (f32 x,y,w,h, i32 cls)
//                    C*H*W f32 payload
//
// The reader builds an in-memory offset index on open so samples can be
// fetched in any order (shuffled epochs), and it reports cumulative read
// time so the I/O fraction measurements of §VI-A can be reproduced.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "nn/boxes.hpp"
#include "tensor/tensor.hpp"

namespace pf15::data {

struct Sample {
  Tensor image;  // (C, H, W)
  std::int32_t label = 0;
  bool labeled = true;
  std::vector<nn::Box> boxes;
};

class ShardWriter {
 public:
  /// Opens the shard for writing; geometry is fixed per shard.
  ShardWriter(const std::string& path, std::size_t channels,
              std::size_t height, std::size_t width);
  ~ShardWriter();

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  void append(const Sample& sample);
  /// Finalises the header (count) and closes the file. Called by the
  /// destructor if not called explicitly; explicit call surfaces errors.
  void close();

  std::size_t count() const { return count_; }

 private:
  std::ofstream out_;
  std::string path_;
  std::size_t channels_, height_, width_;
  std::size_t count_ = 0;
  bool closed_ = false;
};

class ShardReader {
 public:
  explicit ShardReader(const std::string& path);

  std::size_t size() const { return offsets_.size(); }
  std::size_t channels() const { return channels_; }
  std::size_t height() const { return height_; }
  std::size_t width() const { return width_; }

  /// Random-access fetch (thread-compatible: one reader per thread).
  Sample read(std::size_t index);

  /// Cumulative wall-clock spent inside read() — the I/O cost meter.
  double io_seconds() const { return io_seconds_; }
  void reset_io_seconds() { io_seconds_ = 0.0; }

 private:
  std::ifstream in_;
  std::size_t channels_ = 0, height_ = 0, width_ = 0;
  std::vector<std::uint64_t> offsets_;
  double io_seconds_ = 0.0;
};

}  // namespace pf15::data
