#include "perf/latency.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace pf15::perf {

double sorted_percentile(const std::vector<double>& sorted, double q) {
  PF15_CHECK_MSG(q >= 0.0 && q <= 1.0, "percentile q out of range: " << q);
  if (sorted.empty()) return 0.0;
  // Nearest-rank: ceil(q * N), clamped to [1, N], 1-indexed.
  const auto n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

LatencyRecorder::LatencyRecorder(std::size_t max_samples)
    : max_samples_(max_samples), rng_state_(0x9e3779b97f4a7c15ull) {
  PF15_CHECK_MSG(max_samples_ >= 1, "max_samples must be >= 1");
  samples_.reserve(std::min<std::size_t>(max_samples_, 4096));
}

void LatencyRecorder::record(double seconds) {
  MutexLock lock(mutex_);
  ++total_;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
  if (samples_.size() < max_samples_) {
    samples_.push_back(seconds);
    return;
  }
  // Reservoir sampling (Algorithm R): keep with prob max_samples_/total_.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const std::size_t slot = rng_state_ % total_;
  if (slot < max_samples_) samples_[slot] = seconds;
}

std::size_t LatencyRecorder::count() const {
  MutexLock lock(mutex_);
  return total_;
}

double LatencyRecorder::percentile(double q) const {
  std::vector<double> sorted;
  {
    MutexLock lock(mutex_);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted_percentile(sorted, q);
}

LatencySummary LatencyRecorder::summary() const {
  LatencySummary s;
  std::vector<double> sorted;
  {
    MutexLock lock(mutex_);
    sorted = samples_;
    s.count = total_;
    if (total_ > 0) {
      s.mean = sum_ / static_cast<double>(total_);
      s.max = max_;
    }
  }
  if (sorted.empty()) return s;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = sorted_percentile(sorted, 0.50);
  s.p90 = sorted_percentile(sorted, 0.90);
  s.p99 = sorted_percentile(sorted, 0.99);
  s.p999 = sorted_percentile(sorted, 0.999);
  return s;
}

void LatencyRecorder::reset() {
  MutexLock lock(mutex_);
  samples_.clear();
  total_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

}  // namespace pf15::perf
