// Result reporting: aligned console tables (the bench binaries print the
// same rows/series the paper's tables and figures carry) and CSV emission
// for re-plotting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pf15::perf {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders with aligned columns.
  std::string str() const;

  /// Writes comma-separated values (header + rows) to `path`.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pf15::perf
