// Efficiency-vs-minibatch measurement and curve fitting (§II-A).
//
// DeepBench's observation — kernels run at 75-80% of peak for large
// minibatches but 20-30% at minibatch 4-16 — drives the paper's strong
// scaling behaviour. We measure our own kernels' efficiency as a function
// of batch size and fit the saturating curve eff(b) = eff_max * b / (b +
// b_half), which the Cori simulator consumes.
#pragma once

#include <cstddef>
#include <vector>

#include "simnet/cori_model.hpp"

namespace pf15::perf {

struct EfficiencyPoint {
  double batch = 0.0;
  double flops_rate = 0.0;  // measured FLOP/s
};

/// Measures conv-layer forward throughput at each batch size using the
/// pf15 kernels (one warmup + `repeats` timed runs, best time kept).
std::vector<EfficiencyPoint> measure_conv_efficiency(
    const std::vector<std::size_t>& batches, std::size_t image = 32,
    std::size_t channels = 64, std::size_t filters = 64,
    std::size_t repeats = 3);

/// Least-squares fit of the saturating curve to measured points, given the
/// machine peak the rates are normalized by. Linearises as
/// 1/eff = 1/eff_max + (b_half/eff_max) * (1/b).
simnet::EfficiencyCurve fit_efficiency_curve(
    const std::vector<EfficiencyPoint>& points, double peak_flops);

}  // namespace pf15::perf
