// Latency/throughput metering for the serving path.
//
// The training-side meters (FlopMeter, IterationTimeline) answer "how fast
// is one rank's iteration"; serving asks a different question — the tail:
// what latency do the slowest percentiles of requests see, and how many
// requests per second does the engine sustain while holding that tail.
// LatencyRecorder is the thread-safe accumulator the ServingEngine feeds;
// summary() snapshots count/mean/percentiles without stopping traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"

namespace pf15::perf {

/// Percentile snapshot of a set of recorded durations.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// The serving-front-door SLO percentile: meaningful once count is in
  /// the thousands (below that, nearest-rank p999 degenerates to max).
  double p999 = 0.0;
  double max = 0.0;
};

/// Thread-safe duration recorder with bounded memory. The first
/// `max_samples` durations are kept verbatim; beyond that, reservoir
/// sampling keeps a uniform subsample, so percentiles stay representative
/// while a long-running engine's recorder stays O(max_samples) — count,
/// mean and max remain exact over everything ever recorded. summary()
/// copies and sorts the reservoir; call it at reporting cadence, not per
/// request.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t max_samples = 65536);

  void record(double seconds);

  /// Total number of durations ever recorded (not the reservoir size).
  std::size_t count() const;

  /// q in [0, 1]; nearest-rank percentile over the reservoir. 0 when
  /// nothing has been recorded.
  double percentile(double q) const;

  LatencySummary summary() const;

  void reset();

 private:
  const std::size_t max_samples_;
  mutable Mutex mutex_;
  std::vector<double> samples_ PF15_GUARDED_BY(mutex_);  // reservoir
  std::size_t total_ PF15_GUARDED_BY(mutex_) = 0;
  double sum_ PF15_GUARDED_BY(mutex_) = 0.0;
  double max_ PF15_GUARDED_BY(mutex_) = 0.0;
  /// xorshift for reservoir replacement
  std::uint64_t rng_state_ PF15_GUARDED_BY(mutex_);
};

/// Nearest-rank percentile of a sorted sample vector (q in [0, 1]).
double sorted_percentile(const std::vector<double>& sorted, double q);

}  // namespace pf15::perf
