// FLOP-rate metering per the paper's methodology (§V): the peak rate comes
// from the fastest iteration, the sustained rate from the best average
// over a contiguous window of iterations; FLOPs are counted analytically
// per layer (our SDE stand-in) and cross-checked against the instrumented
// GEMM counter in tests.
#pragma once

#include <cstdint>

#include "common/timer.hpp"

namespace pf15::perf {

class FlopMeter {
 public:
  /// `flops_per_iteration`: analytic forward+backward (+update) FLOPs of
  /// one training iteration at the measured batch size.
  explicit FlopMeter(std::uint64_t flops_per_iteration)
      : flops_per_iteration_(flops_per_iteration) {}

  void record_iteration(double seconds) { timeline_.record(seconds); }

  std::size_t iterations() const { return timeline_.size(); }
  std::uint64_t flops_per_iteration() const { return flops_per_iteration_; }

  /// FLOP/s of the fastest iteration (paper's "peak").
  double peak_rate() const {
    return static_cast<double>(flops_per_iteration_) /
           timeline_.min_time();
  }

  /// FLOP/s over the best contiguous window (paper's "sustained").
  double sustained_rate(std::size_t window) const {
    return static_cast<double>(flops_per_iteration_) /
           timeline_.best_window_mean(window);
  }

  double mean_rate() const {
    return static_cast<double>(flops_per_iteration_) /
           timeline_.mean_time();
  }

  const IterationTimeline& timeline() const { return timeline_; }

 private:
  std::uint64_t flops_per_iteration_;
  IterationTimeline timeline_;
};

}  // namespace pf15::perf
