#include "perf/efficiency.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/conv2d.hpp"

namespace pf15::perf {

std::vector<EfficiencyPoint> measure_conv_efficiency(
    const std::vector<std::size_t>& batches, std::size_t image,
    std::size_t channels, std::size_t filters, std::size_t repeats) {
  std::vector<EfficiencyPoint> points;
  Rng rng(7);
  nn::Conv2dConfig cfg;
  cfg.in_channels = channels;
  cfg.out_channels = filters;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.pad = 1;
  nn::Conv2d conv("eff_probe", cfg, rng);
  for (std::size_t b : batches) {
    Tensor in(Shape{b, channels, image, image});
    in.fill_uniform(rng, -1.0f, 1.0f);
    Tensor out;
    conv.forward(in, out);  // warmup (allocates scratch)
    double best = 1e100;
    for (std::size_t r = 0; r < repeats; ++r) {
      WallTimer timer;
      conv.forward(in, out);
      best = std::min(best, timer.seconds());
    }
    EfficiencyPoint p;
    p.batch = static_cast<double>(b);
    p.flops_rate =
        static_cast<double>(conv.forward_flops(in.shape())) / best;
    points.push_back(p);
  }
  return points;
}

simnet::EfficiencyCurve fit_efficiency_curve(
    const std::vector<EfficiencyPoint>& points, double peak_flops) {
  PF15_CHECK(points.size() >= 2);
  PF15_CHECK(peak_flops > 0.0);
  // y = 1/eff, x = 1/b; y = a + c*x with a = 1/eff_max, c = b_half/eff_max.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(points.size());
  for (const auto& p : points) {
    PF15_CHECK(p.batch > 0.0 && p.flops_rate > 0.0);
    const double eff = p.flops_rate / peak_flops;
    const double x = 1.0 / p.batch;
    const double y = 1.0 / eff;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  PF15_CHECK(denom != 0.0);
  const double c = (n * sxy - sx * sy) / denom;
  const double a = (sy - c * sx) / n;
  simnet::EfficiencyCurve curve;
  PF15_CHECK_MSG(a > 0.0, "degenerate efficiency fit");
  curve.eff_max = 1.0 / a;
  curve.eff_floor = 0.0;  // the linearized model carries no floor term
  curve.b_half = std::max(0.0, c / a);
  return curve;
}

}  // namespace pf15::perf
