#include "perf/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/errors.hpp"

namespace pf15::perf {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json& Json::push_back(Json v) {
  PF15_CHECK_MSG(is_array(), "push_back on a non-array Json value");
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  PF15_CHECK_MSG(is_object(), "set on a non-object Json value");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

void Json::render_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::render(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
      ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (std::isfinite(num_) && num_ == std::floor(num_) &&
          std::fabs(num_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        out += buf;
      } else if (std::isfinite(num_)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", num_);
        out += buf;
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Type::kString:
      render_string(out, str_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].render(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        render_string(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.render(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  render(out, indent, 0);
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  std::ofstream file(path);
  if (!file) throw IoError("Json::write_file: cannot open " + path);
  file << dump(indent) << '\n';
  if (!file) throw IoError("Json::write_file: write failed for " + path);
}

}  // namespace pf15::perf
