#include "perf/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/errors.hpp"

namespace pf15::perf {

namespace {

/// Recursive-descent parser. Whitespace handling is JSON-standard; numbers
/// go through strtod (the writer only emits what strtod reads back).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw IoError("Json::parse: " + why + " at offset " +
                  std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    // Containers recurse; bound the depth so a hostile document (e.g. a
    // tampered plan-cache file full of '[') fails with IoError instead
    // of overflowing the stack.
    if (depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    ++depth_;
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') {
        --depth_;
        return obj;
      }
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    ++depth_;
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        --depth_;
        return arr;
      }
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    return Json(value);
  }

  static constexpr std::size_t kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json Json::read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw IoError("Json::read_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) throw IoError("Json::read_file: read failed for " + path);
  return parse(buffer.str());
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw IoError("Json: value is not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw IoError("Json: value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw IoError("Json: value is not a string");
  return str_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) throw IoError("Json::at on a non-array value");
  if (index >= items_.size()) {
    throw IoError("Json::at: index " + std::to_string(index) +
                  " out of range");
  }
  return items_[index];
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Json& Json::get(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) throw IoError("Json: missing key '" + key + "'");
  return *found;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json& Json::push_back(Json v) {
  PF15_CHECK_MSG(is_array(), "push_back on a non-array Json value");
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  PF15_CHECK_MSG(is_object(), "set on a non-object Json value");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

void Json::render_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::render(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
      ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (std::isfinite(num_) && num_ == std::floor(num_) &&
          std::fabs(num_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        out += buf;
      } else if (std::isfinite(num_)) {
        // max_digits10: the parse() round-trip must reproduce the double
        // exactly (the plan cache persists timings through this).
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out += buf;
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Type::kString:
      render_string(out, str_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].render(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        render_string(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.render(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  render(out, indent, 0);
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  std::ofstream file(path);
  if (!file) throw IoError("Json::write_file: cannot open " + path);
  file << dump(indent) << '\n';
  if (!file) throw IoError("Json::write_file: write failed for " + path);
}

}  // namespace pf15::perf
