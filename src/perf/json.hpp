// Minimal JSON document builder and reader for machine-readable records.
//
// Bench binaries historically emitted console tables and CSV; tracking a
// perf trajectory across PRs needs a structured, self-describing record
// (nested objects, typed numbers) that tooling can diff. The writer keeps
// deterministic key order (insertion order), so records are stable under
// version control. The reader (parse/read_file + typed accessors) exists
// for the subsystems that persist state as JSON — the convolution plan
// cache loads its on-disk format through it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pf15::perf {

/// One JSON value: null, bool, number, string, array, or object. Values
/// are built imperatively and rendered with dump(). Numbers are stored as
/// doubles; integral values round-trip exactly up to 2^53.
class Json {
 public:
  Json() : type_(Type::kNull) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}          // NOLINT
  Json(double v) : type_(Type::kNumber), num_(v) {}       // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}           // NOLINT
  Json(std::size_t v) : Json(static_cast<double>(v)) {}   // NOLINT
  Json(const char* v) : type_(Type::kString), str_(v) {}  // NOLINT
  Json(std::string v) : type_(Type::kString), str_(std::move(v)) {}  // NOLINT

  static Json array();
  static Json object();

  /// Parses a JSON document. Throws pf15::IoError on malformed input
  /// (unterminated strings, trailing garbage, bad escapes, ...).
  static Json parse(const std::string& text);

  /// Reads and parses `path`; throws pf15::IoError if the file cannot be
  /// read or does not parse.
  static Json read_file(const std::string& path);

  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads; each throws pf15::IoError when the value has a
  /// different type (load paths treat that as a corrupt document).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Element count of an array or object (0 for scalars).
  std::size_t size() const;
  /// Array element access; throws pf15::IoError out of range.
  const Json& at(std::size_t index) const;
  /// Object member lookup; nullptr when the key is absent.
  const Json* find(const std::string& key) const;
  /// Object member access; throws pf15::IoError when absent.
  const Json& get(const std::string& key) const;

  /// Appends to an array (the value must have been made with array()).
  Json& push_back(Json v);

  /// Sets a key on an object (made with object()); insertion order is
  /// preserved and duplicate keys overwrite in place.
  Json& set(const std::string& key, Json v);

  /// Renders the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 renders compact.
  std::string dump(int indent = 2) const;

  /// dump() + trailing newline written to `path`; throws pf15::IoError on
  /// failure.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  void render(std::string& out, int indent, int depth) const;
  static void render_string(std::string& out, const std::string& s);

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;  // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

}  // namespace pf15::perf
