#include "perf/report.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/errors.hpp"

namespace pf15::perf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PF15_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  PF15_CHECK_MSG(row.size() == header_.size(),
                 "row width " << row.size() << " != header width "
                              << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << std::left << std::setw(static_cast<int>(width[c]) + 2)
          << row[c];
    }
    oss << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  oss << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("Table: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  if (!out) throw IoError("Table: write failed: " + path);
}

}  // namespace pf15::perf
