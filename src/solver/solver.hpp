// Solvers (optimizers).
//
// The HEP network trains with ADAM (§III-A); the climate network with
// SGD + momentum (§III-B). The hybrid trainer additionally re-tunes
// momentum as a function of the number of asynchronous groups, following
// the "asynchrony begets momentum" result the paper cites ([31], §VI-B4):
// asynchronous staleness contributes an implicit momentum, so the explicit
// coefficient must be dialed down as groups are added.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace pf15::solver {

/// Base solver over a fixed parameter list. step() consumes the gradients
/// currently stored in the Param::grad tensors and zeroes them.
class Solver {
 public:
  explicit Solver(std::vector<nn::Param> params)
      : params_(std::move(params)) {}
  virtual ~Solver() = default;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Apply one update using the accumulated gradients, then zero them.
  void step();

  /// Apply an externally supplied update direction `grads` (one tensor per
  /// parameter, same order/shapes) — the parameter-server path, where the
  /// gradient arrives over the wire instead of from local backward().
  virtual void apply(const std::vector<const Tensor*>& grads) = 0;

  std::size_t iteration() const { return iteration_; }

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

  /// Optional global-norm gradient clipping (0 disables).
  void set_clip_norm(double clip) { clip_norm_ = clip; }

  const std::vector<nn::Param>& params() const { return params_; }

  /// Solver-state (history) serialization for checkpointing.
  virtual void save_state(std::ostream& os) const = 0;
  virtual void load_state(std::istream& is) = 0;

  virtual std::string name() const = 0;

 protected:
  /// Rescale `grads` in place if the global L2 norm exceeds clip_norm_.
  void clip(const std::vector<const Tensor*>& grads,
            std::vector<float>& scale_out) const;

  std::vector<nn::Param> params_;
  double lr_ = 1e-3;
  double clip_norm_ = 0.0;
  std::size_t iteration_ = 0;
};

/// SGD with classical (heavy-ball) momentum:
///   v <- mu * v - lr * g;  w <- w + v.
class SgdSolver final : public Solver {
 public:
  SgdSolver(std::vector<nn::Param> params, double lr, double momentum);

  void apply(const std::vector<const Tensor*>& grads) override;
  double momentum() const { return momentum_; }
  void set_momentum(double mu) { momentum_ = mu; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;
  std::string name() const override { return "sgd"; }

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// ADAM (Kingma & Ba) with bias correction; §III-A's solver of choice
/// because it "requires less parameter tuning than SGD".
class AdamSolver final : public Solver {
 public:
  AdamSolver(std::vector<nn::Param> params, double lr, double beta1 = 0.9,
             double beta2 = 0.999, double epsilon = 1e-8);

  void apply(const std::vector<const Tensor*>& grads) override;
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;
  std::string name() const override { return "adam"; }

 private:
  double beta1_, beta2_, epsilon_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Piecewise learning-rate schedule: multiply base LR by `factor` at each
/// boundary iteration.
class StepSchedule {
 public:
  StepSchedule(double base_lr, std::vector<std::size_t> boundaries,
               double factor)
      : base_lr_(base_lr), boundaries_(std::move(boundaries)),
        factor_(factor) {}

  double lr_at(std::size_t iteration) const {
    double lr = base_lr_;
    for (std::size_t b : boundaries_) {
      if (iteration >= b) lr *= factor_;
    }
    return lr;
  }

 private:
  double base_lr_;
  std::vector<std::size_t> boundaries_;
  double factor_;
};

/// The [31]-style momentum correction: with G asynchronous groups, the
/// effective momentum seen by the optimization is approximately
/// 1 - (1 - mu) / G, so to keep a target effective momentum we solve for
/// the explicit coefficient; clamped at >= 0.
double tuned_momentum_for_groups(double target_effective_momentum,
                                 std::size_t groups);

}  // namespace pf15::solver
