#include "solver/solver.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/errors.hpp"

namespace pf15::solver {

void Solver::step() {
  std::vector<const Tensor*> grads;
  grads.reserve(params_.size());
  for (const auto& p : params_) grads.push_back(p.grad);
  apply(grads);
  for (auto& p : params_) p.grad->zero();
}

void Solver::clip(const std::vector<const Tensor*>& grads,
                  std::vector<float>& scale_out) const {
  scale_out.assign(grads.size(), 1.0f);
  if (clip_norm_ <= 0.0) return;
  double sq = 0.0;
  for (const Tensor* g : grads) sq += g->sumsq();
  const double norm = std::sqrt(sq);
  if (norm > clip_norm_) {
    const float s = static_cast<float>(clip_norm_ / norm);
    for (auto& v : scale_out) v = s;
  }
}

SgdSolver::SgdSolver(std::vector<nn::Param> params, double lr,
                     double momentum)
    : Solver(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void SgdSolver::apply(const std::vector<const Tensor*>& grads) {
  PF15_CHECK(grads.size() == params_.size());
  std::vector<float> scale;
  clip(grads, scale);
  const float lr = static_cast<float>(lr_);
  const float mu = static_cast<float>(momentum_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    PF15_CHECK(grads[i]->shape() == params_[i].value->shape());
    float* __restrict__ v = velocity_[i].data();
    float* __restrict__ w = params_[i].value->data();
    const float* __restrict__ g = grads[i]->data();
    const float s = scale[i];
    const std::size_t n = velocity_[i].numel();
    for (std::size_t j = 0; j < n; ++j) {
      v[j] = mu * v[j] - lr * s * g[j];
      w[j] += v[j];
    }
  }
  ++iteration_;
}

void SgdSolver::save_state(std::ostream& os) const {
  const std::uint64_t iter = iteration_;
  os.write(reinterpret_cast<const char*>(&iter), sizeof(iter));
  for (const auto& v : velocity_) v.save(os);
}

void SgdSolver::load_state(std::istream& is) {
  std::uint64_t iter = 0;
  is.read(reinterpret_cast<char*>(&iter), sizeof(iter));
  if (!is) throw IoError("SgdSolver::load_state: bad header");
  iteration_ = iter;
  for (auto& v : velocity_) {
    Tensor t = Tensor::load(is);
    PF15_CHECK(t.shape() == v.shape());
    v.copy_from(t);
  }
}

AdamSolver::AdamSolver(std::vector<nn::Param> params, double lr,
                       double beta1, double beta2, double epsilon)
    : Solver(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void AdamSolver::apply(const std::vector<const Tensor*>& grads) {
  PF15_CHECK(grads.size() == params_.size());
  std::vector<float> scale;
  clip(grads, scale);
  ++iteration_;
  const double t = static_cast<double>(iteration_);
  const double bias1 = 1.0 - std::pow(beta1_, t);
  const double bias2 = 1.0 - std::pow(beta2_, t);
  const float alpha =
      static_cast<float>(lr_ * std::sqrt(bias2) / bias1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_ * std::sqrt(bias2));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    PF15_CHECK(grads[i]->shape() == params_[i].value->shape());
    float* __restrict__ m = m_[i].data();
    float* __restrict__ v = v_[i].data();
    float* __restrict__ w = params_[i].value->data();
    const float* __restrict__ graw = grads[i]->data();
    const float s = scale[i];
    const std::size_t n = m_[i].numel();
    for (std::size_t j = 0; j < n; ++j) {
      const float g = s * graw[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      w[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

void AdamSolver::save_state(std::ostream& os) const {
  const std::uint64_t iter = iteration_;
  os.write(reinterpret_cast<const char*>(&iter), sizeof(iter));
  for (const auto& m : m_) m.save(os);
  for (const auto& v : v_) v.save(os);
}

void AdamSolver::load_state(std::istream& is) {
  std::uint64_t iter = 0;
  is.read(reinterpret_cast<char*>(&iter), sizeof(iter));
  if (!is) throw IoError("AdamSolver::load_state: bad header");
  iteration_ = iter;
  for (auto& m : m_) {
    Tensor t = Tensor::load(is);
    PF15_CHECK(t.shape() == m.shape());
    m.copy_from(t);
  }
  for (auto& v : v_) {
    Tensor t = Tensor::load(is);
    PF15_CHECK(t.shape() == v.shape());
    v.copy_from(t);
  }
}

double tuned_momentum_for_groups(double target_effective_momentum,
                                 std::size_t groups) {
  PF15_CHECK(groups >= 1);
  // Effective momentum composes the explicit mu with the implicit
  // asynchrony term ~ (1 - 1/G): mu_eff ≈ mu + (1 - mu) * (1 - 1/G).
  // Solving mu_eff = target for mu and clamping to [0, target]:
  const double g = static_cast<double>(groups);
  const double implicit = 1.0 - 1.0 / g;
  const double mu = (target_effective_momentum - implicit) / (1.0 - implicit + 1e-12);
  if (groups == 1) return target_effective_momentum;
  return std::max(0.0, std::min(mu, target_effective_momentum));
}

}  // namespace pf15::solver
