// Model adapters that give the hybrid trainer a uniform view of the two
// paper applications: one train_step() that runs forward+backward on a
// batch, accumulates parameter gradients, and reports the batch loss.
#pragma once

#include <functional>
#include <memory>

#include "data/loader.hpp"
#include "nn/climate_net.hpp"
#include "nn/hep_model.hpp"
#include "nn/losses.hpp"

namespace pf15::hybrid {

class TrainableModel {
 public:
  virtual ~TrainableModel() = default;

  /// Forward + backward on `batch`; parameter gradients accumulate (caller
  /// zeroes). Returns the mean batch loss.
  virtual double train_step(const data::Batch& batch) = 0;

  virtual std::vector<nn::Param> params() = 0;

  /// Enables per-layer wall/FLOP profiling inside train_step (the Fig 5
  /// measurement path). Off by default: the timers cost a little.
  void set_profile(bool profile) { profile_ = profile; }
  bool profiling() const { return profile_; }

 protected:
  bool profile_ = false;
};

using ModelFactory = std::function<std::unique_ptr<TrainableModel>()>;

/// Supplies the batch a given worker trains on at a given iteration.
/// Must be thread-safe across workers.
using BatchSource =
    std::function<data::Batch(int worker_rank, std::size_t iteration)>;

/// HEP: Sequential CNN + softmax cross-entropy (§III-A).
class HepTrainable final : public TrainableModel {
 public:
  explicit HepTrainable(const nn::HepConfig& cfg)
      : net_(nn::build_hep_network(cfg)) {}

  double train_step(const data::Batch& batch) override {
    const Tensor& logits = net_.forward(batch.images, profile_);
    const double batch_loss =
        loss_.forward_backward(logits, batch.labels, probs_, dlogits_);
    net_.backward(batch.images, dlogits_, profile_);
    return batch_loss;
  }

  std::vector<nn::Param> params() override { return net_.params(); }

  nn::Sequential& net() { return net_; }
  /// Signal-class probability per sample of the latest forward.
  const Tensor& probs() const { return probs_; }

 private:
  nn::Sequential net_;
  nn::SoftmaxCrossEntropy loss_;
  Tensor probs_;
  Tensor dlogits_;
};

/// Climate: semi-supervised detection network + composite loss (§III-B).
class ClimateTrainable final : public TrainableModel {
 public:
  ClimateTrainable(const nn::ClimateConfig& cfg,
                   const nn::ClimateLossConfig& loss_cfg = {})
      : net_(cfg), loss_(loss_cfg) {}

  double train_step(const data::Batch& batch) override {
    std::vector<nn::ClimateTarget> targets(batch.labels.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      targets[i].boxes = batch.boxes[i];
      targets[i].labeled = batch.labeled[i];
    }
    const auto& out = net_.forward(batch.images, profile_);
    last_parts_ = loss_.compute(out, batch.images, targets, grads_);
    net_.backward(batch.images, grads_, profile_);
    return last_parts_.total();
  }

  std::vector<nn::Param> params() override { return net_.params(); }

  nn::ClimateNet& net() { return net_; }
  const nn::ClimateLoss::Parts& last_parts() const { return last_parts_; }

 private:
  nn::ClimateNet net_;
  nn::ClimateLoss loss_;
  nn::ClimateNet::OutputGrads grads_;
  nn::ClimateLoss::Parts last_parts_;
};

}  // namespace pf15::hybrid
