// Hybrid synchronous/asynchronous distributed trainer (§III-E, Fig 2/3).
//
// Worker ranks are partitioned into `num_groups` compute groups. Within a
// group every iteration is synchronous: workers process disjoint
// micro-batches, all-reduce their gradients, and apply the same update.
// Across groups there is no synchronization: each group's root exchanges
// (gradient -> fresh model) with the per-layer parameter servers, so
// groups run at their own pace and see staleness — the knob the paper
// tunes between the fully-synchronous (1 group) and fully-asynchronous
// (1 worker per group) extremes.
//
// num_groups == 1 uses the pure all-reduce path with a local solver on
// every worker (the paper's "synchronous" configuration, §III-D); no PS
// ranks are allocated.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/comm.hpp"
#include "hybrid/trainable.hpp"
#include "obs/flight_recorder.hpp"
#include "perf/json.hpp"
#include "ps/param_server.hpp"
#include "solver/solver.hpp"

namespace pf15::hybrid {

enum class SolverKind { kSgd, kAdam };

struct HybridConfig {
  int num_workers = 4;
  int num_groups = 1;
  /// PS ranks; -1 = one per parameter tensor (the paper's per-layer PS).
  int num_ps = -1;
  std::size_t iterations = 20;
  SolverKind solver = SolverKind::kAdam;
  double learning_rate = 1e-3;
  /// Target *effective* momentum. With tune_momentum the explicit
  /// coefficient is reduced as groups are added ([31], §VI-B4).
  double momentum = 0.9;
  bool tune_momentum = true;
  comm::AllReduceAlgo allreduce = comm::AllReduceAlgo::kRing;
  /// Compression applied to root <-> PS traffic in both directions
  /// (§VIII-A low-precision communication). Lossy codecs quantize the
  /// model copy each group downloads, so kFp16 is the highest-compression
  /// codec that leaves training statistically indistinguishable; kInt8*
  /// are provided for the ablation bench.
  ps::Codec ps_codec = ps::Codec::kFp32;
  /// Inject a fixed delay (seconds) on one worker each iteration to study
  /// straggler effects (0 disables). The delay counts as compute time, so
  /// the flight recorder and straggler analytics see it.
  double straggler_delay = 0.0;
  int straggler_rank = 0;
  /// Rounds of the rank-0 clock-offset handshake run at job start (feeds
  /// obs::trace_set_clock_offset_us / trace merging). 0 disables.
  int clock_sync_rounds = 4;
  /// Per-worker flight-recorder ring depth: the last `flight_capacity`
  /// iterations of each worker survive to the end-of-run gather.
  std::size_t flight_capacity = 1024;
};

/// One synchronous step of one compute group.
struct IterationRecord {
  int group = 0;
  std::size_t iteration = 0;
  double wall_time = 0.0;  // seconds since training start (at step end)
  double step_seconds = 0.0;
  double loss = 0.0;
  std::uint64_t max_staleness = 0;  // over shards, 0 in sync mode
};

struct TrainResult {
  std::vector<IterationRecord> records;
  /// Final parameter values of group 0's model.
  std::vector<Tensor> final_params;
  /// Aggregated PS staleness stats (empty in sync mode).
  ps::StalenessStats staleness;
  /// Every worker's flight-recorder ring, gathered to rank 0 and sorted
  /// by (iteration, rank). Export with obs::flight_records_jsonl().
  std::vector<obs::IterationRecord> flight;
  /// StragglerDetector::summary() over the gathered per-rank compute
  /// times (null when the job has fewer than 2 workers).
  perf::Json straggler;
};

class HybridTrainer {
 public:
  HybridTrainer(const HybridConfig& cfg, ModelFactory factory,
                BatchSource batches);

  /// Runs the full training job on an in-process cluster and returns the
  /// merged per-iteration records (sorted by wall time).
  TrainResult run();

  /// Total ranks (workers + parameter servers) the job will use.
  int total_ranks() const;

 private:
  int ps_count() const;

  HybridConfig cfg_;
  ModelFactory factory_;
  BatchSource batches_;
};

}  // namespace pf15::hybrid
