#include "hybrid/hybrid_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/errors.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pf15::hybrid {

namespace {
constexpr int kRecordsTag = 8 << 20;
constexpr int kStatsTag = 9 << 20;

std::unique_ptr<solver::Solver> make_solver(const HybridConfig& cfg,
                                            std::vector<nn::Param> params) {
  switch (cfg.solver) {
    case SolverKind::kSgd: {
      const double mu =
          cfg.tune_momentum
              ? solver::tuned_momentum_for_groups(
                    cfg.momentum, static_cast<std::size_t>(cfg.num_groups))
              : cfg.momentum;
      return std::make_unique<solver::SgdSolver>(std::move(params),
                                                 cfg.learning_rate, mu);
    }
    case SolverKind::kAdam:
      return std::make_unique<solver::AdamSolver>(std::move(params),
                                                  cfg.learning_rate);
  }
  PF15_CHECK(false);
  return nullptr;
}
}  // namespace

HybridTrainer::HybridTrainer(const HybridConfig& cfg, ModelFactory factory,
                             BatchSource batches)
    : cfg_(cfg), factory_(std::move(factory)), batches_(std::move(batches)) {
  PF15_CHECK(cfg_.num_workers >= 1);
  PF15_CHECK(cfg_.num_groups >= 1);
  PF15_CHECK_MSG(cfg_.num_workers % cfg_.num_groups == 0,
                 "workers (" << cfg_.num_workers
                             << ") must divide evenly into groups ("
                             << cfg_.num_groups << ")");
}

int HybridTrainer::ps_count() const {
  if (cfg_.num_groups == 1) return 0;  // pure synchronous: no PS tier
  if (cfg_.num_ps > 0) return cfg_.num_ps;
  return -1;  // resolved to shard count once the model is known
}

int HybridTrainer::total_ranks() const {
  int ps = ps_count();
  if (ps < 0) {
    // Build a throwaway model to count shards.
    auto model = factory_();
    ps = static_cast<int>(model->params().size());
  }
  return cfg_.num_workers + ps;
}

TrainResult HybridTrainer::run() {
  // Reference model built once on the calling thread: defines shard specs
  // and the initial parameter values every rank starts from.
  auto reference = factory_();
  const std::vector<nn::Param> ref_params = reference->params();
  const std::vector<ps::ShardSpec> specs = ps::shard_specs(ref_params);
  std::vector<Tensor> initial;
  initial.reserve(ref_params.size());
  for (const auto& p : ref_params) initial.push_back(p.value->clone());
  reference.reset();

  const int num_shards = static_cast<int>(specs.size());
  PF15_CHECK(num_shards >= 1);
  int nps = ps_count();
  if (nps < 0) nps = num_shards;
  const int workers = cfg_.num_workers;
  const int world_size = workers + nps;
  const int group_size = workers / cfg_.num_groups;

  std::vector<int> ps_ranks;
  for (int i = 0; i < nps; ++i) ps_ranks.push_back(workers + i);
  const std::vector<int> assignment =
      nps > 0 ? ps::shard_assignment(specs.size(), ps_ranks)
              : std::vector<int>(specs.size(), -1);

  TrainResult result;
  comm::Cluster cluster(world_size);
  cluster.run([&](comm::Communicator& world) {
    const int rank = world.rank();
    const bool is_worker = rank < workers;
    const int group_id = is_worker ? rank / group_size : -1;

    // Collective split: workers by group, PS ranks as singletons.
    comm::Communicator group =
        world.split(is_worker ? group_id : cfg_.num_groups + rank, rank);

    if (!is_worker) {
      // ---------------- parameter-server rank ----------------
      std::map<std::size_t, Tensor> my_initial;
      for (std::size_t id = 0; id < specs.size(); ++id) {
        if (assignment[id] == rank) {
          my_initial.emplace(id, initial[id].clone());
        }
      }
      ps::PsServer server(
          world, specs, assignment, my_initial,
          [&](std::vector<nn::Param> params) {
            return make_solver(cfg_, std::move(params));
          },
          cfg_.num_groups, cfg_.ps_codec);
      world.barrier();  // align the training-start clock
      server.serve();
      // Report staleness stats to world rank 0.
      const auto& st = server.stats();
      std::vector<float> msg{
          static_cast<float>(st.updates),
          static_cast<float>(st.total_staleness),
          static_cast<float>(st.max_staleness),
          static_cast<float>(st.histogram.size())};
      for (const auto& [k, v] : st.histogram) {
        msg.push_back(static_cast<float>(k));
        msg.push_back(static_cast<float>(v));
      }
      world.send(0, kStatsTag, msg);
      return;
    }

    // ---------------- worker rank ----------------
    auto model = factory_();
    std::vector<nn::Param> params = model->params();
    PF15_CHECK(params.size() == specs.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].value->copy_from(initial[i]);
      params[i].grad->zero();
    }

    std::unique_ptr<solver::Solver> local_solver;
    if (cfg_.num_groups == 1) {
      local_solver = make_solver(cfg_, params);
    }
    std::optional<ps::PsClient> client;
    const bool is_root = group.rank() == 0;
    if (cfg_.num_groups > 1 && is_root) {
      client.emplace(world, specs, assignment, group_id, cfg_.ps_codec);
    }

    std::vector<const Tensor*> grad_ptrs;
    std::vector<Tensor*> value_ptrs;
    for (auto& p : params) {
      grad_ptrs.push_back(p.grad);
      value_ptrs.push_back(p.value);
    }

    std::vector<IterationRecord> records;
    world.barrier();
    WallTimer clock;
    const float inv_group = 1.0f / static_cast<float>(group_size);

    // Iteration-phase spans (compute / comm / PS exchange — compression
    // spans come from the ps codec itself) land on each worker's thread:
    // the dormant scaling benches inherit tracing for free, and straggler
    // skew shows up as misaligned compute spans across worker tids.
    static obs::Counter& iteration_counter =
        obs::MetricsRegistry::global().counter(
            "pf15_hybrid_iterations_total",
            "hybrid training iterations completed (all workers)");

    for (std::size_t iter = 0; iter < cfg_.iterations; ++iter) {
      obs::TraceSpan iter_span("hybrid_iteration", "hybrid");
      WallTimer step_timer;
      if (cfg_.straggler_delay > 0.0 && rank == cfg_.straggler_rank) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            cfg_.straggler_delay));
      }
      double loss;
      {
        obs::TraceSpan span("compute", "hybrid");
        loss = model->train_step(batches_(rank, iter));
      }

      std::uint64_t max_staleness = 0;
      {
        // Synchronous phase: group-wide gradient mean, one tensor per
        // trainable layer parameter (the MLSL-style per-layer reduction).
        obs::TraceSpan span("comm_allreduce", "hybrid");
        for (auto& p : params) {
          group.allreduce_sum(p.grad->span(), cfg_.allreduce);
          p.grad->scale(inv_group);
        }
        float loss_buf = static_cast<float>(loss);
        group.allreduce_sum(std::span<float>(&loss_buf, 1), cfg_.allreduce);
        loss = static_cast<double>(loss_buf) * inv_group;
      }

      if (cfg_.num_groups == 1) {
        // Pure synchronous: identical local update on every worker.
        local_solver->step();
      } else {
        if (is_root) {
          obs::TraceSpan span("ps_exchange", "hybrid");
          const auto staleness = client->exchange(grad_ptrs, value_ptrs);
          for (auto s : staleness) {
            max_staleness = std::max(max_staleness, s);
          }
        }
        // Root broadcasts the fresh model; everyone clears gradients.
        obs::TraceSpan span("comm_broadcast", "hybrid");
        for (auto& p : params) {
          group.broadcast(p.value->span(), 0);
          p.grad->zero();
        }
      }
      iteration_counter.add(1);

      if (is_root) {
        IterationRecord rec;
        rec.group = group_id;
        rec.iteration = iter;
        rec.wall_time = clock.seconds();
        rec.step_seconds = step_timer.seconds();
        rec.loss = loss;
        rec.max_staleness = max_staleness;
        records.push_back(rec);
      }
    }

    if (cfg_.num_groups > 1 && is_root) client->stop();

    // Funnel records to world rank 0.
    std::vector<float> msg;
    msg.reserve(records.size() * 6);
    for (const auto& r : records) {
      msg.push_back(static_cast<float>(r.group));
      msg.push_back(static_cast<float>(r.iteration));
      msg.push_back(static_cast<float>(r.wall_time));
      msg.push_back(static_cast<float>(r.step_seconds));
      msg.push_back(static_cast<float>(r.loss));
      msg.push_back(static_cast<float>(r.max_staleness));
    }
    if (rank != 0) {
      world.send(0, kRecordsTag, msg);
      return;
    }

    // ---------------- world rank 0: assemble the result ----------------
    auto decode_records = [&](const std::vector<float>& buf) {
      PF15_CHECK(buf.size() % 6 == 0);
      for (std::size_t i = 0; i < buf.size(); i += 6) {
        IterationRecord r;
        r.group = static_cast<int>(buf[i]);
        r.iteration = static_cast<std::size_t>(buf[i + 1]);
        r.wall_time = buf[i + 2];
        r.step_seconds = buf[i + 3];
        r.loss = buf[i + 4];
        r.max_staleness = static_cast<std::uint64_t>(buf[i + 5]);
        result.records.push_back(r);
      }
    };
    decode_records(msg);
    for (int src = 1; src < workers; ++src) {
      decode_records(world.recv(src, kRecordsTag));
    }
    for (int p = 0; p < nps; ++p) {
      const std::vector<float> st = world.recv(workers + p, kStatsTag);
      PF15_CHECK(st.size() >= 4);
      result.staleness.updates += static_cast<std::uint64_t>(st[0]);
      result.staleness.total_staleness += static_cast<std::uint64_t>(st[1]);
      result.staleness.max_staleness =
          std::max(result.staleness.max_staleness,
                   static_cast<std::uint64_t>(st[2]));
      const auto bins = static_cast<std::size_t>(st[3]);
      PF15_CHECK(st.size() == 4 + 2 * bins);
      for (std::size_t b = 0; b < bins; ++b) {
        result.staleness.histogram[static_cast<std::uint64_t>(
            st[4 + 2 * b])] += static_cast<std::uint64_t>(st[5 + 2 * b]);
      }
    }
    // World rank 0 is group 0's root: its parameters are the final model.
    for (auto& p : params) {
      result.final_params.push_back(p.value->clone());
    }
  });

  std::sort(result.records.begin(), result.records.end(),
            [](const IterationRecord& a, const IterationRecord& b) {
              return a.wall_time < b.wall_time;
            });
  return result;
}

}  // namespace pf15::hybrid
