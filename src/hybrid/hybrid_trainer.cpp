#include "hybrid/hybrid_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <tuple>

#include "common/errors.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/straggler.hpp"
#include "obs/trace.hpp"

namespace pf15::hybrid {

namespace {
constexpr int kRecordsTag = 8 << 20;
constexpr int kStatsTag = 9 << 20;
constexpr int kFlightTag = 10 << 20;

// Byte counters ride the float mailboxes as (hi, lo) base-2^24 digits:
// each digit fits a float mantissa exactly, so values up to 2^48 bytes
// round-trip without loss.
constexpr std::uint64_t kU24 = 1ull << 24;

void push_u64(std::vector<float>& msg, std::uint64_t v) {
  msg.push_back(static_cast<float>(v / kU24));
  msg.push_back(static_cast<float>(v % kU24));
}

std::uint64_t pull_u64(const std::vector<float>& msg, std::size_t i) {
  return static_cast<std::uint64_t>(msg[i]) * kU24 +
         static_cast<std::uint64_t>(msg[i + 1]);
}

constexpr std::size_t kFlightFloats = 12;

void encode_flight(std::vector<float>& msg,
                   const obs::IterationRecord& rec) {
  msg.push_back(static_cast<float>(rec.iteration));
  msg.push_back(static_cast<float>(rec.rank));
  msg.push_back(static_cast<float>(rec.compute_us));
  msg.push_back(static_cast<float>(rec.allreduce_us));
  msg.push_back(static_cast<float>(rec.ps_exchange_us));
  msg.push_back(static_cast<float>(rec.broadcast_us));
  push_u64(msg, rec.payload_bytes);
  push_u64(msg, rec.wire_bytes);
  msg.push_back(static_cast<float>(rec.compression_ratio));
  msg.push_back(static_cast<float>(rec.staleness));
}

obs::IterationRecord decode_flight(const std::vector<float>& msg,
                                   std::size_t i) {
  obs::IterationRecord rec;
  rec.iteration = static_cast<int>(msg[i]);
  rec.rank = static_cast<int>(msg[i + 1]);
  rec.compute_us = msg[i + 2];
  rec.allreduce_us = msg[i + 3];
  rec.ps_exchange_us = msg[i + 4];
  rec.broadcast_us = msg[i + 5];
  rec.payload_bytes = pull_u64(msg, i + 6);
  rec.wire_bytes = pull_u64(msg, i + 8);
  rec.compression_ratio = msg[i + 10];
  rec.staleness = static_cast<int>(msg[i + 11]);
  return rec;
}

std::unique_ptr<solver::Solver> make_solver(const HybridConfig& cfg,
                                            std::vector<nn::Param> params) {
  switch (cfg.solver) {
    case SolverKind::kSgd: {
      const double mu =
          cfg.tune_momentum
              ? solver::tuned_momentum_for_groups(
                    cfg.momentum, static_cast<std::size_t>(cfg.num_groups))
              : cfg.momentum;
      return std::make_unique<solver::SgdSolver>(std::move(params),
                                                 cfg.learning_rate, mu);
    }
    case SolverKind::kAdam:
      return std::make_unique<solver::AdamSolver>(std::move(params),
                                                  cfg.learning_rate);
  }
  PF15_CHECK(false);
  return nullptr;
}
}  // namespace

HybridTrainer::HybridTrainer(const HybridConfig& cfg, ModelFactory factory,
                             BatchSource batches)
    : cfg_(cfg), factory_(std::move(factory)), batches_(std::move(batches)) {
  PF15_CHECK(cfg_.num_workers >= 1);
  PF15_CHECK(cfg_.num_groups >= 1);
  PF15_CHECK_MSG(cfg_.num_workers % cfg_.num_groups == 0,
                 "workers (" << cfg_.num_workers
                             << ") must divide evenly into groups ("
                             << cfg_.num_groups << ")");
}

int HybridTrainer::ps_count() const {
  if (cfg_.num_groups == 1) return 0;  // pure synchronous: no PS tier
  if (cfg_.num_ps > 0) return cfg_.num_ps;
  return -1;  // resolved to shard count once the model is known
}

int HybridTrainer::total_ranks() const {
  int ps = ps_count();
  if (ps < 0) {
    // Build a throwaway model to count shards.
    auto model = factory_();
    ps = static_cast<int>(model->params().size());
  }
  return cfg_.num_workers + ps;
}

TrainResult HybridTrainer::run() {
  // Reference model built once on the calling thread: defines shard specs
  // and the initial parameter values every rank starts from.
  auto reference = factory_();
  const std::vector<nn::Param> ref_params = reference->params();
  const std::vector<ps::ShardSpec> specs = ps::shard_specs(ref_params);
  std::vector<Tensor> initial;
  initial.reserve(ref_params.size());
  for (const auto& p : ref_params) initial.push_back(p.value->clone());
  reference.reset();

  const int num_shards = static_cast<int>(specs.size());
  PF15_CHECK(num_shards >= 1);
  int nps = ps_count();
  if (nps < 0) nps = num_shards;
  const int workers = cfg_.num_workers;
  const int world_size = workers + nps;
  const int group_size = workers / cfg_.num_groups;

  std::vector<int> ps_ranks;
  for (int i = 0; i < nps; ++i) ps_ranks.push_back(workers + i);
  const std::vector<int> assignment =
      nps > 0 ? ps::shard_assignment(specs.size(), ps_ranks)
              : std::vector<int>(specs.size(), -1);

  TrainResult result;
  comm::Cluster cluster(world_size);
  cluster.run([&](comm::Communicator& world) {
    const int rank = world.rank();
    const bool is_worker = rank < workers;
    const int group_id = is_worker ? rank / group_size : -1;

    // Collective split: workers by group, PS ranks as singletons.
    comm::Communicator group =
        world.split(is_worker ? group_id : cfg_.num_groups + rank, rank);

    // Distributed identity: this rank's spans flush on its own pid lane,
    // and its measured offset against rank 0's clock rides in the
    // per-rank trace metadata for obs::merge_traces().
    obs::trace_set_identity(
        rank, is_worker ? "group " + std::to_string(group_id) : "ps");
    if (cfg_.clock_sync_rounds > 0) {
      obs::trace_set_clock_offset_us(
          rank, world.clock_offset_us(0, cfg_.clock_sync_rounds));
    }

    if (!is_worker) {
      // ---------------- parameter-server rank ----------------
      std::map<std::size_t, Tensor> my_initial;
      for (std::size_t id = 0; id < specs.size(); ++id) {
        if (assignment[id] == rank) {
          my_initial.emplace(id, initial[id].clone());
        }
      }
      ps::PsServer server(
          world, specs, assignment, my_initial,
          [&](std::vector<nn::Param> params) {
            return make_solver(cfg_, std::move(params));
          },
          cfg_.num_groups, cfg_.ps_codec);
      world.barrier();  // align the training-start clock
      server.serve();
      // Report staleness stats to world rank 0.
      const auto& st = server.stats();
      std::vector<float> msg{
          static_cast<float>(st.updates),
          static_cast<float>(st.total_staleness),
          static_cast<float>(st.max_staleness),
          static_cast<float>(st.histogram.size())};
      for (const auto& [k, v] : st.histogram) {
        msg.push_back(static_cast<float>(k));
        msg.push_back(static_cast<float>(v));
      }
      world.send(0, kStatsTag, msg);
      return;
    }

    // ---------------- worker rank ----------------
    auto model = factory_();
    std::vector<nn::Param> params = model->params();
    PF15_CHECK(params.size() == specs.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].value->copy_from(initial[i]);
      params[i].grad->zero();
    }

    std::unique_ptr<solver::Solver> local_solver;
    if (cfg_.num_groups == 1) {
      local_solver = make_solver(cfg_, params);
    }
    std::optional<ps::PsClient> client;
    const bool is_root = group.rank() == 0;
    if (cfg_.num_groups > 1 && is_root) {
      client.emplace(world, specs, assignment, group_id, cfg_.ps_codec);
    }

    std::vector<const Tensor*> grad_ptrs;
    std::vector<Tensor*> value_ptrs;
    for (auto& p : params) {
      grad_ptrs.push_back(p.grad);
      value_ptrs.push_back(p.value);
    }

    std::vector<IterationRecord> records;
    obs::FlightRecorder flight(cfg_.flight_capacity);
    comm::IoStats prev_io = world.io_stats();
    ps::PsWireStats prev_ps;
    world.barrier();
    WallTimer clock;
    const float inv_group = 1.0f / static_cast<float>(group_size);

    // Iteration-phase spans (compute / comm / PS exchange — compression
    // spans come from the ps codec itself) land on each worker's thread:
    // the dormant scaling benches inherit tracing for free, and straggler
    // skew shows up as misaligned compute spans across worker tids.
    static obs::Counter& iteration_counter =
        obs::MetricsRegistry::global().counter(
            "pf15_hybrid_iterations_total",
            "hybrid training iterations completed (all workers)");

    for (std::size_t iter = 0; iter < cfg_.iterations; ++iter) {
      obs::TraceSpan iter_span("hybrid_iteration", "hybrid");
      WallTimer step_timer;
      double compute_us = 0.0;
      double allreduce_us = 0.0;
      double ps_exchange_us = 0.0;
      double broadcast_us = 0.0;
      double loss;
      {
        obs::TraceSpan span("compute", "hybrid");
        WallTimer timer;
        // The injected straggler delay is charged to compute on purpose:
        // it models a slow node, and the analytics must see it.
        if (cfg_.straggler_delay > 0.0 && rank == cfg_.straggler_rank) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              cfg_.straggler_delay));
        }
        loss = model->train_step(batches_(rank, iter));
        compute_us = timer.seconds() * 1e6;
      }

      std::uint64_t max_staleness = 0;
      {
        // Synchronous phase: group-wide gradient mean, one tensor per
        // trainable layer parameter (the MLSL-style per-layer reduction).
        obs::TraceSpan span("comm_allreduce", "hybrid");
        WallTimer timer;
        for (auto& p : params) {
          group.allreduce_sum(p.grad->span(), cfg_.allreduce);
          p.grad->scale(inv_group);
        }
        float loss_buf = static_cast<float>(loss);
        group.allreduce_sum(std::span<float>(&loss_buf, 1), cfg_.allreduce);
        loss = static_cast<double>(loss_buf) * inv_group;
        allreduce_us = timer.seconds() * 1e6;
      }

      if (cfg_.num_groups == 1) {
        // Pure synchronous: identical local update on every worker.
        local_solver->step();
      } else {
        if (is_root) {
          obs::TraceSpan span("ps_exchange", "hybrid");
          WallTimer timer;
          const auto staleness = client->exchange(grad_ptrs, value_ptrs);
          for (auto s : staleness) {
            max_staleness = std::max(max_staleness, s);
          }
          ps_exchange_us = timer.seconds() * 1e6;
        }
        // Root broadcasts the fresh model; everyone clears gradients.
        obs::TraceSpan span("comm_broadcast", "hybrid");
        WallTimer timer;
        for (auto& p : params) {
          group.broadcast(p.value->span(), 0);
          p.grad->zero();
        }
        broadcast_us = timer.seconds() * 1e6;
      }
      iteration_counter.add(1);

      // Flight record: phase split plus this iteration's wire traffic.
      // `wire` is what actually crossed (comm counts post-codec bytes);
      // `payload` swaps the PS exchange's encoded bytes for their logical
      // fp32 size, so wire/payload is the effective compression ratio.
      const comm::IoStats io = world.io_stats();
      const ps::PsWireStats pw =
          client.has_value() ? client->wire_stats() : ps::PsWireStats{};
      const std::uint64_t wire = io.bytes_sent - prev_io.bytes_sent;
      const std::uint64_t ps_wire = pw.wire_bytes - prev_ps.wire_bytes;
      const std::uint64_t ps_payload =
          pw.payload_bytes - prev_ps.payload_bytes;
      const std::uint64_t payload = wire - ps_wire + ps_payload;
      prev_io = io;
      prev_ps = pw;

      obs::IterationRecord fr;
      fr.iteration = static_cast<int>(iter);
      fr.rank = rank;
      fr.compute_us = compute_us;
      fr.allreduce_us = allreduce_us;
      fr.ps_exchange_us = ps_exchange_us;
      fr.broadcast_us = broadcast_us;
      fr.payload_bytes = payload;
      fr.wire_bytes = wire;
      fr.compression_ratio =
          payload > 0 ? static_cast<double>(wire) /
                            static_cast<double>(payload)
                      : 0.0;
      fr.staleness = static_cast<int>(max_staleness);
      flight.record(fr);

      if (is_root) {
        IterationRecord rec;
        rec.group = group_id;
        rec.iteration = iter;
        rec.wall_time = clock.seconds();
        rec.step_seconds = step_timer.seconds();
        rec.loss = loss;
        rec.max_staleness = max_staleness;
        records.push_back(rec);
      }
    }

    if (cfg_.num_groups > 1 && is_root) client->stop();

    // Funnel records to world rank 0.
    std::vector<float> msg;
    msg.reserve(records.size() * 6);
    for (const auto& r : records) {
      msg.push_back(static_cast<float>(r.group));
      msg.push_back(static_cast<float>(r.iteration));
      msg.push_back(static_cast<float>(r.wall_time));
      msg.push_back(static_cast<float>(r.step_seconds));
      msg.push_back(static_cast<float>(r.loss));
      msg.push_back(static_cast<float>(r.max_staleness));
    }
    // Flight-recorder gather rides its own tag, every worker to rank 0.
    std::vector<float> flight_msg;
    const std::vector<obs::IterationRecord> flight_records =
        flight.snapshot();
    flight_msg.reserve(flight_records.size() * kFlightFloats);
    for (const auto& fr : flight_records) encode_flight(flight_msg, fr);
    if (rank != 0) {
      world.send(0, kRecordsTag, msg);
      world.send(0, kFlightTag, flight_msg);
      return;
    }

    // ---------------- world rank 0: assemble the result ----------------
    auto decode_records = [&](const std::vector<float>& buf) {
      PF15_CHECK(buf.size() % 6 == 0);
      for (std::size_t i = 0; i < buf.size(); i += 6) {
        IterationRecord r;
        r.group = static_cast<int>(buf[i]);
        r.iteration = static_cast<std::size_t>(buf[i + 1]);
        r.wall_time = buf[i + 2];
        r.step_seconds = buf[i + 3];
        r.loss = buf[i + 4];
        r.max_staleness = static_cast<std::uint64_t>(buf[i + 5]);
        result.records.push_back(r);
      }
    };
    decode_records(msg);
    for (int src = 1; src < workers; ++src) {
      decode_records(world.recv(src, kRecordsTag));
    }
    auto decode_flights = [&](const std::vector<float>& buf) {
      PF15_CHECK(buf.size() % kFlightFloats == 0);
      for (std::size_t i = 0; i < buf.size(); i += kFlightFloats) {
        result.flight.push_back(decode_flight(buf, i));
      }
    };
    decode_flights(flight_msg);
    for (int src = 1; src < workers; ++src) {
      decode_flights(world.recv(src, kFlightTag));
    }
    std::sort(result.flight.begin(), result.flight.end(),
              [](const obs::IterationRecord& a,
                 const obs::IterationRecord& b) {
                return std::tie(a.iteration, a.rank) <
                       std::tie(b.iteration, b.rank);
              });

    // Straggler analytics over iterations every worker still holds (ring
    // overflow can trim the head of a long run).
    if (workers >= 2) {
      std::map<int, std::vector<double>> by_iter;
      for (const auto& fr : result.flight) {
        auto& v = by_iter[fr.iteration];
        if (v.empty()) v.resize(static_cast<std::size_t>(workers), -1.0);
        v[static_cast<std::size_t>(fr.rank)] = fr.compute_us;
      }
      obs::StragglerDetector detector(workers);
      for (const auto& [iter_id, compute] : by_iter) {
        if (std::any_of(compute.begin(), compute.end(),
                        [](double t) { return t < 0.0; })) {
          continue;
        }
        detector.observe(iter_id, compute);
      }
      if (detector.iterations() > 0) result.straggler = detector.summary();
    }
    for (int p = 0; p < nps; ++p) {
      const std::vector<float> st = world.recv(workers + p, kStatsTag);
      PF15_CHECK(st.size() >= 4);
      result.staleness.updates += static_cast<std::uint64_t>(st[0]);
      result.staleness.total_staleness += static_cast<std::uint64_t>(st[1]);
      result.staleness.max_staleness =
          std::max(result.staleness.max_staleness,
                   static_cast<std::uint64_t>(st[2]));
      const auto bins = static_cast<std::size_t>(st[3]);
      PF15_CHECK(st.size() == 4 + 2 * bins);
      for (std::size_t b = 0; b < bins; ++b) {
        result.staleness.histogram[static_cast<std::uint64_t>(
            st[4 + 2 * b])] += static_cast<std::uint64_t>(st[5 + 2 * b]);
      }
    }
    // World rank 0 is group 0's root: its parameters are the final model.
    for (auto& p : params) {
      result.final_params.push_back(p.value->clone());
    }
  });

  std::sort(result.records.begin(), result.records.end(),
            [](const IterationRecord& a, const IterationRecord& b) {
              return a.wall_time < b.wall_time;
            });
  return result;
}

}  // namespace pf15::hybrid
