#include "tune/search.hpp"

#include <algorithm>

namespace pf15::tune {

namespace {

void consider(SearchResult& result, TrialResult trial) {
  if (trial.loss < result.best.loss) result.best = trial;
  result.trials.push_back(std::move(trial));
}

}  // namespace

SearchResult grid_search(const Space& space, const Objective& objective,
                         std::size_t per_dim) {
  SearchResult result;
  for (auto& config : space.grid(per_dim)) {
    TrialResult trial;
    trial.loss = objective(config);
    trial.config = std::move(config);
    consider(result, std::move(trial));
  }
  result.total_budget = result.trials.size();
  return result;
}

SearchResult random_search(const Space& space, const Objective& objective,
                           std::size_t trials, std::uint64_t seed) {
  PF15_CHECK(trials > 0);
  Rng rng(seed);
  SearchResult result;
  for (std::size_t i = 0; i < trials; ++i) {
    TrialResult trial;
    trial.config = space.sample(rng);
    trial.loss = objective(trial.config);
    consider(result, std::move(trial));
  }
  result.total_budget = trials;
  return result;
}

SearchResult successive_halving(const Space& space,
                                const BudgetObjective& objective,
                                const HalvingConfig& cfg) {
  PF15_CHECK(cfg.initial_arms >= 1 && cfg.initial_budget >= 1 &&
             cfg.eta >= 2);
  Rng rng(cfg.seed);
  SearchResult result;

  std::vector<Config> arms;
  arms.reserve(cfg.initial_arms);
  for (std::size_t i = 0; i < cfg.initial_arms; ++i) {
    arms.push_back(space.sample(rng));
  }

  std::size_t budget = cfg.initial_budget;
  while (!arms.empty()) {
    std::vector<TrialResult> rung;
    rung.reserve(arms.size());
    for (auto& config : arms) {
      TrialResult trial;
      trial.loss = objective(config, budget);
      trial.budget = budget;
      trial.config = std::move(config);
      result.total_budget += budget;
      rung.push_back(trial);
      consider(result, std::move(trial));
    }
    if (rung.size() == 1) break;
    // Keep the best ceil(size/eta) arms for the next, eta-times-longer rung.
    std::sort(rung.begin(), rung.end(),
              [](const TrialResult& a, const TrialResult& b) {
                return a.loss < b.loss;
              });
    const std::size_t keep = (rung.size() + cfg.eta - 1) / cfg.eta;
    arms.clear();
    for (std::size_t i = 0; i < keep; ++i) {
      arms.push_back(rung[i].config);
    }
    budget *= cfg.eta;
  }
  return result;
}

}  // namespace pf15::tune
