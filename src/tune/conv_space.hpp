// Convolution-backend selection as a tune::Space problem.
//
// The kernel autotuner (gemm::ConvPlanCache) and the hyper-parameter
// searchers solve the same problem at different altitudes: pick the
// argmin of a measured objective over a discrete space. This adapter
// exposes the backend choice for one convolution problem as a
// one-dimensional Space so the generic searchers (grid, random,
// successive halving) can drive the same micro-benchmark the plan cache
// uses — and so examples/autotune.cpp can demonstrate kernel-level tuning
// next to learning-rate tuning.
#pragma once

#include "gemm/conv_backend.hpp"
#include "tune/search.hpp"
#include "tune/space.hpp"

namespace pf15::tune {

/// Dimension name used by conv_backend_space.
inline constexpr const char* kConvBackendDim = "backend";

/// One discrete dimension "backend" whose choices encode the
/// gemm::ConvBackendKind values applicable to `p` in `phase` (as doubles,
/// the Space currency). Candidates whose analytic FLOPs exceed
/// `opt.flops_cutoff` x im2col's are excluded, mirroring autotune().
Space conv_backend_space(
    const gemm::ConvProblem& p, const gemm::AutotuneOptions& opt = {},
    gemm::ConvPhase phase = gemm::ConvPhase::kForward);

/// Objective: measured per-image microseconds of the encoded backend on
/// `p` in `phase` (lower is better), via gemm::benchmark_backend with the
/// same deterministic operands the plan cache tunes on.
Objective conv_backend_objective(
    const gemm::ConvProblem& p, const gemm::AutotuneOptions& opt = {},
    gemm::ConvPhase phase = gemm::ConvPhase::kForward);

/// Decodes a searcher's winning config back to a backend kind.
gemm::ConvBackendKind decode_backend(const Config& config);

/// Runs grid search over conv_backend_space and installs the winner into
/// `cache` as the plan for `p` in `phase`. Returns the winning plan.
gemm::ConvPlan tune_conv_backend(
    const gemm::ConvProblem& p, gemm::ConvPlanCache& cache,
    const gemm::AutotuneOptions& opt = {},
    gemm::ConvPhase phase = gemm::ConvPhase::kForward);

}  // namespace pf15::tune
