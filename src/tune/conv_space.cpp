#include "tune/conv_space.hpp"

#include <cmath>

namespace pf15::tune {

namespace {

std::vector<double> backend_choices(const gemm::ConvProblem& p,
                                    const gemm::AutotuneOptions& opt,
                                    gemm::ConvPhase phase) {
  std::vector<double> choices;
  for (const gemm::ConvBackend* b :
       gemm::candidate_backends(p, opt, phase)) {
    choices.push_back(static_cast<double>(static_cast<int>(b->kind())));
  }
  return choices;
}

}  // namespace

Space conv_backend_space(const gemm::ConvProblem& p,
                         const gemm::AutotuneOptions& opt,
                         gemm::ConvPhase phase) {
  Space space;
  space.add(
      Dimension::discrete(kConvBackendDim, backend_choices(p, opt, phase)));
  return space;
}

Objective conv_backend_objective(const gemm::ConvProblem& p,
                                 const gemm::AutotuneOptions& opt,
                                 gemm::ConvPhase phase) {
  return [p, opt, phase](const Config& config) {
    const gemm::ConvBackendKind kind = decode_backend(config);
    return gemm::benchmark_backend(gemm::backend(kind), p, opt, phase);
  };
}

gemm::ConvBackendKind decode_backend(const Config& config) {
  const auto it = config.find(kConvBackendDim);
  PF15_CHECK_MSG(it != config.end(),
                 "config lacks a '" << kConvBackendDim << "' dimension");
  const int raw = static_cast<int>(std::lround(it->second));
  PF15_CHECK_MSG(raw >= 0 && raw <= 3, "backend code " << raw
                                                       << " out of range");
  return static_cast<gemm::ConvBackendKind>(raw);
}

gemm::ConvPlan tune_conv_backend(const gemm::ConvProblem& p,
                                 gemm::ConvPlanCache& cache,
                                 const gemm::AutotuneOptions& opt,
                                 gemm::ConvPhase phase) {
  const Space space = conv_backend_space(p, opt, phase);
  const SearchResult result =
      grid_search(space, conv_backend_objective(p, opt, phase),
                  /*per_dim=*/1);
  gemm::ConvPlan plan;
  plan.kind = decode_backend(result.best.config);
  plan.best_us = result.best.loss;
  plan.tuned = true;
  for (const TrialResult& trial : result.trials) {
    if (decode_backend(trial.config) == gemm::ConvBackendKind::kIm2col) {
      plan.im2col_us = trial.loss;
    }
  }
  cache.insert(p, phase, plan);
  return plan;
}

}  // namespace pf15::tune
