// Hyper-parameter search space.
//
// §VIII-B: "it is unreasonable to expect scientists to be conversant in
// the art of hyper-parameter tuning... higher-level libraries such as
// Spearmint [49] can be used for automating the search". This module is
// our Spearmint stand-in: a declarative space of named dimensions
// (continuous, log-continuous, or discrete) that the searchers in
// search.hpp sample, enumerate, or race against each other.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace pf15::tune {

/// One hyper-parameter assignment, by dimension name.
using Config = std::map<std::string, double>;

struct Dimension {
  enum class Kind { kLinear, kLog, kDiscrete };

  std::string name;
  Kind kind = Kind::kLinear;
  double lo = 0.0;  // continuous bounds (kLog requires lo > 0)
  double hi = 1.0;
  std::vector<double> choices;  // kDiscrete only

  static Dimension linear(std::string name, double lo, double hi);
  static Dimension log(std::string name, double lo, double hi);
  static Dimension discrete(std::string name, std::vector<double> choices);

  double sample(Rng& rng) const;
  /// `k` evenly spaced values (in the dimension's natural scale); for
  /// kDiscrete returns the choices regardless of k.
  std::vector<double> grid(std::size_t k) const;
};

class Space {
 public:
  Space& add(Dimension dim);

  std::size_t size() const { return dims_.size(); }
  const std::vector<Dimension>& dimensions() const { return dims_; }

  Config sample(Rng& rng) const;
  /// Full Cartesian grid with `per_dim` points per continuous dimension.
  std::vector<Config> grid(std::size_t per_dim) const;

  /// True if `config` assigns every dimension a value within its bounds.
  bool contains(const Config& config) const;

 private:
  std::vector<Dimension> dims_;
};

}  // namespace pf15::tune
