// Gaussian-process regression and expected-improvement search — the
// actual algorithm behind Spearmint [49], which §VIII-B recommends for
// "automating the search for network architectures". random_search
// (search.hpp) is the strong baseline; this is the sample-efficient
// upgrade for objectives where every evaluation is a training run.
//
// Model: y ~ GP(0, k) + noise, with the squared-exponential (RBF) kernel
//   k(a, b) = signal_var * exp(-0.5 * Σ_d ((a_d - b_d) / length_d)²).
// Inputs are normalized to [0, 1] per dimension (log dimensions in log
// space) so one length scale per dimension is meaningful. The posterior
// is computed through a Cholesky factorization of K + noise·I; expected
// improvement is maximized over a random candidate set (the standard
// budgeted approximation).
#pragma once

#include <cstdint>
#include <vector>

#include "tune/search.hpp"
#include "tune/space.hpp"

namespace pf15::tune {

struct GpConfig {
  double signal_variance = 1.0;
  double length_scale = 0.25;    // in normalized [0,1] coordinates
  double noise_variance = 1e-4;  // observation noise (jitter floor)
};

/// Exact GP regression on a fixed dataset. Dimensions are the caller's
/// (already-normalized) coordinates.
class GaussianProcess {
 public:
  explicit GaussianProcess(const GpConfig& cfg = {});

  /// Replaces the dataset and refactorizes. `x` is row-major
  /// (n points x dim); `y` the observed values (internally centred).
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  std::size_t size() const { return x_.size(); }

  struct Posterior {
    double mean = 0.0;
    double variance = 0.0;
  };
  /// Posterior at a query point (prior if the dataset is empty).
  Posterior predict(const std::vector<double>& x) const;

  double kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

 private:
  GpConfig cfg_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_centered_;
  double y_mean_ = 0.0;
  std::vector<double> chol_;   // lower-triangular Cholesky of K + noise·I
  std::vector<double> alpha_;  // (K + noise·I)^-1 (y - mean)
};

/// Expected improvement of a (minimized) objective at posterior (mu, var)
/// given the incumbent best value. Exposed for tests.
double expected_improvement(double mu, double variance, double best);

struct BayesConfig {
  std::size_t initial_random = 5;  // pure exploration before the GP kicks in
  std::size_t iterations = 25;     // total objective evaluations
  std::size_t candidates = 256;    // EI maximization sample budget
  GpConfig gp;
  std::uint64_t seed = 1;
};

/// GP-EI Bayesian optimization over a Space (objective minimized). The
/// Spearmint-style searcher: evaluations are expensive, so each one is
/// placed where expected improvement over the incumbent is largest.
SearchResult bayesian_search(const Space& space, const Objective& objective,
                             const BayesConfig& cfg);

}  // namespace pf15::tune
