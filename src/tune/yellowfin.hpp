// YellowFin-style automatic momentum/learning-rate tuning.
//
// §VIII-B: hybrid schemes "add an extra parameter to be tuned, which
// stresses the need for principled momentum tuning approaches, an active
// area of research (eg. [25] and recently [48])". [48] is YellowFin
// (Zhang, Mitliagkas & Ré, 2017); this is a faithful single-node
// implementation of its SingleStep rule:
//
//   keep running estimates of
//     (h_min, h_max) — extremal curvature, from a sliding window of
//                      squared gradient norms;
//     C             — gradient variance, from per-coordinate first/second
//                      gradient moments;
//     D             — distance to the optimum, estimated as E||g|| / E h.
//   each step solve for the momentum that makes the noisy heavy-ball
//   contraction optimal: minimise x²D² + (1−x)⁴C/h_min² over x = √μ,
//   whose stationarity condition is the cubic
//     p·x = (1 − x)³,   p = D²·h_min² / (2C),   x ∈ (0, 1)
//   then
//     μ = max( x², ((√κ − 1)/(√κ + 1))² ),  κ = h_max / h_min
//     α = (1 − √μ)² / h_min.
//
// Combined with tuned_momentum_for_groups() (solver.hpp) this closes the
// loop the paper asks for: asynchrony contributes implicit momentum, and
// the explicit coefficient is set from measured statistics instead of a
// grid search.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace pf15::tune {

struct YellowFinOptions {
  double beta = 0.999;            // EWMA smoothing for all estimators
  std::size_t curvature_window = 20;
  double learning_rate_init = 1e-3;  // used until estimators warm up
  double momentum_init = 0.0;
  std::size_t warmup_steps = 10;
  double epsilon = 1e-12;
};

class YellowFin {
 public:
  /// `dim`: number of model parameters (gradient length).
  explicit YellowFin(std::size_t dim, const YellowFinOptions& opt = {});

  /// Feeds one (full, unscaled) gradient; updates all estimators and the
  /// (momentum, learning-rate) outputs.
  void observe(std::span<const float> gradient);

  double momentum() const { return momentum_; }
  double learning_rate() const { return learning_rate_; }
  std::size_t steps() const { return steps_; }

  // Estimator state, exposed for tests and diagnostics.
  double h_min() const { return h_min_; }
  double h_max() const { return h_max_; }
  double gradient_variance() const { return variance_; }
  double distance_to_opt() const { return distance_; }

 private:
  double debias() const;

  YellowFinOptions opt_;
  std::size_t dim_;
  std::size_t steps_ = 0;

  std::deque<double> curvature_window_;  // recent ||g||² values
  double h_min_avg_ = 0.0, h_max_avg_ = 0.0;  // EWMAs of window extrema
  double h_min_ = 0.0, h_max_ = 0.0;          // debiased

  std::vector<double> grad_avg_;    // per-coordinate EWMA of g
  double grad_sq_avg_ = 0.0;        // EWMA of ||g||²
  double variance_ = 0.0;

  double grad_norm_avg_ = 0.0;  // EWMA of ||g||
  double h_avg_ = 0.0;          // EWMA of ||g||²  (curvature proxy)
  double dist_avg_ = 0.0;       // EWMA of ||g||avg / h_avg
  double distance_ = 0.0;

  double momentum_ = 0.0;
  double learning_rate_ = 0.0;
};

/// Solves p·x = (1 − x)³ for the unique root in (0, 1] given
/// p = D²·h_min²/(2C) ≥ 0 — exposed for direct testing of the cubic.
double yellowfin_cubic_root(double p);

}  // namespace pf15::tune
