#include "tune/space.hpp"

#include <algorithm>
#include <cmath>

namespace pf15::tune {

Dimension Dimension::linear(std::string name, double lo, double hi) {
  PF15_CHECK_MSG(lo < hi, name << ": bad bounds [" << lo << ", " << hi << "]");
  Dimension d;
  d.name = std::move(name);
  d.kind = Kind::kLinear;
  d.lo = lo;
  d.hi = hi;
  return d;
}

Dimension Dimension::log(std::string name, double lo, double hi) {
  PF15_CHECK_MSG(0.0 < lo && lo < hi,
                 name << ": log bounds must satisfy 0 < lo < hi");
  Dimension d;
  d.name = std::move(name);
  d.kind = Kind::kLog;
  d.lo = lo;
  d.hi = hi;
  return d;
}

Dimension Dimension::discrete(std::string name, std::vector<double> choices) {
  PF15_CHECK_MSG(!choices.empty(), name << ": empty choice set");
  Dimension d;
  d.name = std::move(name);
  d.kind = Kind::kDiscrete;
  d.choices = std::move(choices);
  return d;
}

double Dimension::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kLinear:
      return lo + rng.uniform() * (hi - lo);
    case Kind::kLog:
      return std::exp(std::log(lo) +
                      rng.uniform() * (std::log(hi) - std::log(lo)));
    case Kind::kDiscrete:
      return choices[rng.uniform_int(choices.size())];
  }
  PF15_CHECK(false);
  return 0.0;
}

std::vector<double> Dimension::grid(std::size_t k) const {
  if (kind == Kind::kDiscrete) return choices;
  PF15_CHECK(k >= 1);
  std::vector<double> out;
  out.reserve(k);
  if (k == 1) {
    out.push_back(kind == Kind::kLog ? std::sqrt(lo * hi)
                                     : 0.5 * (lo + hi));
    return out;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(k - 1);
    if (kind == Kind::kLog) {
      out.push_back(
          std::exp(std::log(lo) + frac * (std::log(hi) - std::log(lo))));
    } else {
      out.push_back(lo + frac * (hi - lo));
    }
  }
  return out;
}

Space& Space::add(Dimension dim) {
  for (const auto& existing : dims_) {
    PF15_CHECK_MSG(existing.name != dim.name,
                   "duplicate dimension " << dim.name);
  }
  dims_.push_back(std::move(dim));
  return *this;
}

Config Space::sample(Rng& rng) const {
  Config c;
  for (const auto& d : dims_) c[d.name] = d.sample(rng);
  return c;
}

std::vector<Config> Space::grid(std::size_t per_dim) const {
  std::vector<Config> configs{Config{}};
  for (const auto& d : dims_) {
    const std::vector<double> values = d.grid(per_dim);
    std::vector<Config> expanded;
    expanded.reserve(configs.size() * values.size());
    for (const auto& base : configs) {
      for (double v : values) {
        Config c = base;
        c[d.name] = v;
        expanded.push_back(std::move(c));
      }
    }
    configs = std::move(expanded);
  }
  return configs;
}

bool Space::contains(const Config& config) const {
  if (config.size() != dims_.size()) return false;
  for (const auto& d : dims_) {
    const auto it = config.find(d.name);
    if (it == config.end()) return false;
    const double v = it->second;
    if (d.kind == Dimension::Kind::kDiscrete) {
      if (std::find(d.choices.begin(), d.choices.end(), v) ==
          d.choices.end()) {
        return false;
      }
    } else if (v < d.lo || v > d.hi) {
      return false;
    }
  }
  return true;
}

}  // namespace pf15::tune
