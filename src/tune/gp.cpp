#include "tune/gp.hpp"

#include <algorithm>
#include <cmath>

namespace pf15::tune {

namespace {

/// Normalizes a config to per-dimension [0, 1] coordinates (log
/// dimensions in log space; discrete by choice index).
std::vector<double> normalize(const Space& space, const Config& config) {
  std::vector<double> x;
  x.reserve(space.size());
  for (const auto& d : space.dimensions()) {
    const double v = config.at(d.name);
    switch (d.kind) {
      case Dimension::Kind::kLinear:
        x.push_back((v - d.lo) / (d.hi - d.lo));
        break;
      case Dimension::Kind::kLog:
        x.push_back((std::log(v) - std::log(d.lo)) /
                    (std::log(d.hi) - std::log(d.lo)));
        break;
      case Dimension::Kind::kDiscrete: {
        const auto it =
            std::find(d.choices.begin(), d.choices.end(), v);
        PF15_CHECK_MSG(it != d.choices.end(),
                       d.name << ": value " << v << " not a choice");
        const double idx = static_cast<double>(it - d.choices.begin());
        x.push_back(d.choices.size() > 1
                        ? idx / static_cast<double>(d.choices.size() - 1)
                        : 0.0);
        break;
      }
    }
  }
  return x;
}

double standard_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
}

double standard_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace

GaussianProcess::GaussianProcess(const GpConfig& cfg) : cfg_(cfg) {
  PF15_CHECK(cfg.signal_variance > 0.0);
  PF15_CHECK(cfg.length_scale > 0.0);
  PF15_CHECK(cfg.noise_variance > 0.0);
}

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  PF15_CHECK(a.size() == b.size());
  double sq = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = (a[d] - b[d]) / cfg_.length_scale;
    sq += diff * diff;
  }
  return cfg_.signal_variance * std::exp(-0.5 * sq);
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  PF15_CHECK(x.size() == y.size());
  x_ = x;
  const std::size_t n = x.size();
  if (n == 0) {
    y_centered_.clear();
    chol_.clear();
    alpha_.clear();
    y_mean_ = 0.0;
    return;
  }

  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);
  y_centered_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_centered_[i] = y[i] - y_mean_;

  // K + noise·I, then in-place Cholesky (lower triangular).
  chol_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      chol_[i * n + j] = kernel(x_[i], x_[j]);
    }
    chol_[i * n + i] += cfg_.noise_variance;
  }
  for (std::size_t j = 0; j < n; ++j) {
    double diag = chol_[j * n + j];
    for (std::size_t k = 0; k < j; ++k) {
      diag -= chol_[j * n + k] * chol_[j * n + k];
    }
    PF15_CHECK_MSG(diag > 0.0, "GP kernel matrix not positive definite");
    const double ljj = std::sqrt(diag);
    chol_[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = chol_[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= chol_[i * n + k] * chol_[j * n + k];
      }
      chol_[i * n + j] = sum / ljj;
    }
  }

  // alpha = K^-1 (y - mean) via two triangular solves.
  alpha_ = y_centered_;
  for (std::size_t i = 0; i < n; ++i) {  // forward: L z = y
    double sum = alpha_[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= chol_[i * n + k] * alpha_[k];
    }
    alpha_[i] = sum / chol_[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {  // backward: L^T alpha = z
    double sum = alpha_[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= chol_[k * n + i] * alpha_[k];
    }
    alpha_[i] = sum / chol_[i * n + i];
  }
}

GaussianProcess::Posterior GaussianProcess::predict(
    const std::vector<double>& x) const {
  const std::size_t n = x_.size();
  if (n == 0) {
    return {0.0, cfg_.signal_variance};
  }
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(x_[i], x);

  double mean = y_mean_;
  for (std::size_t i = 0; i < n; ++i) mean += k_star[i] * alpha_[i];

  // v = L^-1 k_star; var = k(x,x) - v^T v.
  std::vector<double> v = k_star;
  for (std::size_t i = 0; i < n; ++i) {
    double sum = v[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= chol_[i * n + k] * v[k];
    }
    v[i] = sum / chol_[i * n + i];
  }
  double var = kernel(x, x);
  for (double vi : v) var -= vi * vi;
  return {mean, std::max(var, 0.0)};
}

double expected_improvement(double mu, double variance, double best) {
  const double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) {
    return std::max(best - mu, 0.0);
  }
  const double z = (best - mu) / sigma;
  return (best - mu) * standard_normal_cdf(z) +
         sigma * standard_normal_pdf(z);
}

SearchResult bayesian_search(const Space& space, const Objective& objective,
                             const BayesConfig& cfg) {
  PF15_CHECK(cfg.iterations >= cfg.initial_random);
  PF15_CHECK(cfg.initial_random >= 1 && cfg.candidates >= 1);
  Rng rng(cfg.seed);
  SearchResult result;
  GaussianProcess gp(cfg.gp);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  auto evaluate = [&](Config config) {
    TrialResult trial;
    trial.loss = objective(config);
    trial.config = std::move(config);
    xs.push_back(normalize(space, trial.config));
    ys.push_back(trial.loss);
    if (trial.loss < result.best.loss) result.best = trial;
    result.trials.push_back(std::move(trial));
  };

  for (std::size_t i = 0; i < cfg.initial_random; ++i) {
    evaluate(space.sample(rng));
  }

  for (std::size_t i = cfg.initial_random; i < cfg.iterations; ++i) {
    gp.fit(xs, ys);
    Config best_candidate;
    double best_ei = -1.0;
    for (std::size_t c = 0; c < cfg.candidates; ++c) {
      Config candidate = space.sample(rng);
      const auto post = gp.predict(normalize(space, candidate));
      const double ei =
          expected_improvement(post.mean, post.variance, result.best.loss);
      if (ei > best_ei) {
        best_ei = ei;
        best_candidate = std::move(candidate);
      }
    }
    evaluate(std::move(best_candidate));
  }
  result.total_budget = result.trials.size();
  return result;
}

}  // namespace pf15::tune
