// Hyper-parameter searchers over a tune::Space.
//
// Three strategies with increasing sophistication:
//  * GridSearch     — exhaustive Cartesian product (small spaces only);
//  * RandomSearch   — i.i.d. sampling, the standard strong baseline;
//  * SuccessiveHalving — racing: evaluate many configs on a small budget,
//    repeatedly keep the best half on a doubled budget. This is the
//    budget-aware scheme suited to training-loss objectives, where cheap
//    low-fidelity evaluations (few iterations) rank configurations well
//    enough to prune.
//
// Objectives are minimised. All searchers are deterministic given a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "tune/space.hpp"

namespace pf15::tune {

/// Loss of one configuration (lower is better).
using Objective = std::function<double(const Config&)>;
/// Loss of one configuration evaluated at a given budget (e.g. training
/// iterations). Must be monotone-comparable across budgets for halving to
/// prune meaningfully.
using BudgetObjective =
    std::function<double(const Config&, std::size_t budget)>;

struct TrialResult {
  Config config;
  double loss = std::numeric_limits<double>::infinity();
  std::size_t budget = 0;  // budget the loss was measured at (0 = full)
};

struct SearchResult {
  TrialResult best;
  std::vector<TrialResult> trials;  // in evaluation order
  std::size_t total_budget = 0;     // Σ budgets (halving), else #trials
};

SearchResult grid_search(const Space& space, const Objective& objective,
                         std::size_t per_dim);

SearchResult random_search(const Space& space, const Objective& objective,
                           std::size_t trials, std::uint64_t seed = 1);

struct HalvingConfig {
  std::size_t initial_arms = 16;   // configurations in the first rung
  std::size_t initial_budget = 4;  // budget per arm in the first rung
  std::size_t eta = 2;             // keep 1/eta arms, multiply budget by eta
  std::uint64_t seed = 1;
};

SearchResult successive_halving(const Space& space,
                                const BudgetObjective& objective,
                                const HalvingConfig& cfg);

}  // namespace pf15::tune
