#include "tune/yellowfin.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace pf15::tune {

double yellowfin_cubic_root(double p) {
  PF15_CHECK(p >= 0.0);
  // f(x) = p·x − (1−x)³ is strictly increasing on [0, 1] with f(0) = −1
  // and f(1) = p ≥ 0, so bisection is exact and unconditionally stable.
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double one_minus = 1.0 - mid;
    const double f = p * mid - one_minus * one_minus * one_minus;
    if (f < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

YellowFin::YellowFin(std::size_t dim, const YellowFinOptions& opt)
    : opt_(opt),
      dim_(dim),
      grad_avg_(dim, 0.0),
      momentum_(opt.momentum_init),
      learning_rate_(opt.learning_rate_init) {
  PF15_CHECK(dim > 0);
  PF15_CHECK(opt.beta > 0.0 && opt.beta < 1.0);
  PF15_CHECK(opt.curvature_window >= 1);
}

double YellowFin::debias() const {
  return 1.0 - std::pow(opt_.beta, static_cast<double>(steps_));
}

void YellowFin::observe(std::span<const float> gradient) {
  PF15_CHECK_MSG(gradient.size() == dim_,
                 "gradient length " << gradient.size() << " != " << dim_);
  ++steps_;
  const double beta = opt_.beta;
  const double eps = opt_.epsilon;

  double norm_sq = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double g = gradient[i];
    norm_sq += g * g;
    grad_avg_[i] = beta * grad_avg_[i] + (1.0 - beta) * g;
  }
  const double norm = std::sqrt(norm_sq);

  // Curvature range: EWMAs of the sliding-window extrema of ||g||².
  curvature_window_.push_back(norm_sq);
  if (curvature_window_.size() > opt_.curvature_window) {
    curvature_window_.pop_front();
  }
  const auto [min_it, max_it] =
      std::minmax_element(curvature_window_.begin(), curvature_window_.end());
  h_min_avg_ = beta * h_min_avg_ + (1.0 - beta) * *min_it;
  h_max_avg_ = beta * h_max_avg_ + (1.0 - beta) * *max_it;
  const double bias = debias();
  h_min_ = h_min_avg_ / bias;
  h_max_ = h_max_avg_ / bias;

  // Gradient variance: C = E||g||² − ||E g||².
  grad_sq_avg_ = beta * grad_sq_avg_ + (1.0 - beta) * norm_sq;
  double mean_sq = 0.0;
  for (double m : grad_avg_) {
    const double d = m / bias;
    mean_sq += d * d;
  }
  variance_ = std::max(eps, grad_sq_avg_ / bias - mean_sq);

  // Distance to optimum: D = E||g|| / E h.
  grad_norm_avg_ = beta * grad_norm_avg_ + (1.0 - beta) * norm;
  h_avg_ = beta * h_avg_ + (1.0 - beta) * norm_sq;
  const double inst_dist =
      (grad_norm_avg_ / bias) / std::max(eps, h_avg_ / bias);
  dist_avg_ = beta * dist_avg_ + (1.0 - beta) * inst_dist;
  distance_ = dist_avg_ / bias;

  if (steps_ < opt_.warmup_steps || h_min_ <= eps) {
    return;  // keep the init outputs until estimators are meaningful
  }

  const double p =
      distance_ * distance_ * h_min_ * h_min_ / (2.0 * variance_);
  const double x = yellowfin_cubic_root(p);
  const double kappa = h_max_ / std::max(eps, h_min_);
  const double sqrt_kappa = std::sqrt(kappa);
  const double mu_cond =
      ((sqrt_kappa - 1.0) / (sqrt_kappa + 1.0)) *
      ((sqrt_kappa - 1.0) / (sqrt_kappa + 1.0));
  momentum_ = std::min(1.0 - 1e-6, std::max(x * x, mu_cond));
  const double one_minus_sqrt_mu = 1.0 - std::sqrt(momentum_);
  learning_rate_ = one_minus_sqrt_mu * one_minus_sqrt_mu / h_min_;
}

}  // namespace pf15::tune
