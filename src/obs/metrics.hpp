// Process-wide always-on metrics registry.
//
// The perf meters (FlopMeter, LatencyRecorder) answer offline questions —
// how fast was this bench run. The running system needs live counters the
// way a production service does: how many requests the batcher rejected
// since boot, how deep the queue is right now, how many conv-plan lookups
// missed. Metrics here are cheap enough to leave on unconditionally
// (counters are sharded atomics, gauges single atomics, histograms
// fixed-bucket atomic arrays — no locks, no allocation on the hot path)
// and are registered by name exactly once: the first caller creates the
// instrument, later callers get the same instance, so a metric's identity
// is its name, not who holds the reference.
//
// Exposition is pull-based: prometheus_text() renders the classic
// text-format page, to_json() builds a perf::Json snapshot benches embed
// in their records. Neither stops writers — readers see a consistent
// enough point-in-time view (each instrument is read atomically; the set
// of instruments only grows).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "perf/json.hpp"

namespace pf15::obs {

/// Monotonic counter, sharded across cache lines so concurrent writers
/// from different threads don't bounce one hot line. value() sums the
/// shards; it is exact once writers are quiescent and never undercounts
/// a completed add().
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index();

  std::array<Shard, kShards> shards_{};
};

/// Last-writer-wins instantaneous value (queue depth, busy threads).
/// add() is a CAS loop so concurrent increments never lose updates.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }

  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets, one implicit +inf bucket catches the rest. Bucket
/// counts, total count and sum are atomics — observe() is lock-free and
/// allocation-free. Bounds are frozen at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i] (Prometheus `le`
  /// semantics); index bounds().size() is the total count.
  std::uint64_t cumulative(std::size_t i) const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }

  void reset();

  /// `count` bounds growing geometrically from `start` by `factor` —
  /// the default shape for duration metrics spanning decades.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument registry. Creation takes a mutex (cold path, once
/// per metric); the returned references are stable for the process
/// lifetime, so callers hoist them out of hot loops (member or static
/// local). Re-registering a name returns the existing instrument; a name
/// registered as one kind and requested as another throws
/// pf15::ConfigError. Metric names use [a-zA-Z0-9_:] (Prometheus
/// convention, validated at registration).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Bounds matter only on first registration; later callers get the
  /// existing histogram regardless of the bounds they pass.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Prometheus text exposition format (HELP/TYPE lines, histogram
  /// `_bucket`/`_sum`/`_count` series).
  std::string prometheus_text() const;

  /// Snapshot as a perf::Json object keyed by metric name; histograms
  /// render {count, sum, mean, buckets}. Insertion-ordered by name.
  perf::Json to_json() const;

  /// Zeroes every registered instrument (tests; instruments stay
  /// registered so hoisted references remain valid).
  void reset_all();

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, Kind kind,
                        const std::string& help) PF15_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ PF15_GUARDED_BY(mutex_);
};

}  // namespace pf15::obs
