// Per-iteration flight recorder for distributed training.
//
// Spans answer "when did this happen"; metrics answer "how many in
// total". The flight recorder answers the question a scaling debug
// session actually starts from: "show me iteration 37 on rank 2" — one
// structured record per (iteration, rank) with the per-phase split
// (compute / allreduce / PS exchange / broadcast), the bytes that
// crossed the wire before and after the paper's k-bit compression, and
// the sync-group staleness the parameter server reported.
//
// Each worker rank owns one FlightRecorder — a bounded ring, so a
// million-iteration run costs constant memory and degrades by
// forgetting the oldest iterations, never by stalling training.
// HybridTrainer gathers every rank's ring to rank 0 through the comm
// groups at the end of a run; flight_records_jsonl() renders the merged
// set as JSON Lines (one object per line — greppable, streamable, and
// loadable row-by-row without parsing a giant array).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "perf/json.hpp"

namespace pf15::obs {

/// One training iteration as seen by one worker rank. Microsecond phase
/// durations; byte counts are what the rank itself sent (payload =
/// logical fp32 bytes, wire = post-codec bytes actually transported).
struct IterationRecord {
  int iteration = 0;
  int rank = 0;
  double compute_us = 0.0;
  double allreduce_us = 0.0;
  double ps_exchange_us = 0.0;
  double broadcast_us = 0.0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  double compression_ratio = 0.0;  ///< wire/payload; 0 when nothing sent
  int staleness = 0;               ///< PS staleness seen this iteration
};

/// Renders one record as a compact single-line JSON object.
perf::Json flight_record_json(const IterationRecord& rec);

/// Parses flight_record_json() output back (merge tools, tests).
IterationRecord flight_record_from_json(const perf::Json& doc);

/// JSON Lines export: one flight_record_json() line per record.
std::string flight_records_jsonl(const std::vector<IterationRecord>& recs);

/// Bounded ring of IterationRecords. Thread-safe: the owning rank
/// records while an observer (rank 0's gather, a test) snapshots.
/// On overflow the oldest record is overwritten and counted — the ring
/// keeps the most recent `capacity` iterations.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  void record(const IterationRecord& rec);

  /// Records currently held (≤ capacity).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Total record() calls, and how many old records overflow discarded.
  std::uint64_t total_recorded() const;
  std::uint64_t overwritten() const;

  /// Held records, oldest first.
  std::vector<IterationRecord> snapshot() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  const std::size_t capacity_;
  std::vector<IterationRecord> ring_;
  std::size_t next_ = 0;  // overwrite position once full
  std::uint64_t total_ = 0;
};

}  // namespace pf15::obs
