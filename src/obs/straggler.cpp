#include "obs/straggler.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "obs/metrics.hpp"

namespace pf15::obs {

namespace {

double median_of(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    m = (m + *std::max_element(v.begin(), v.begin() + mid)) / 2.0;
  }
  return m;
}

}  // namespace

StragglerDetector::StragglerDetector(int num_ranks, StragglerConfig cfg)
    : num_ranks_(num_ranks),
      cfg_(cfg),
      sum_compute_(static_cast<std::size_t>(num_ranks), 0.0),
      sum_z_(static_cast<std::size_t>(num_ranks), 0.0),
      sum_lag_(static_cast<std::size_t>(num_ranks), 0.0) {
  PF15_CHECK_MSG(num_ranks >= 2, "StragglerDetector: needs >= 2 ranks");
}

StragglerStats StragglerDetector::observe(
    int iteration, const std::vector<double>& compute_us) {
  PF15_CHECK_MSG(
      compute_us.size() == static_cast<std::size_t>(num_ranks_),
      "StragglerDetector: got " << compute_us.size() << " timings for "
                                << num_ranks_ << " ranks");
  StragglerStats stats;
  stats.iteration = iteration;
  stats.median_us = median_of(compute_us);
  auto slowest = std::max_element(compute_us.begin(), compute_us.end());
  stats.max_us = *slowest;
  stats.slowest_rank =
      static_cast<int>(std::distance(compute_us.begin(), slowest));
  stats.lag_ratio =
      stats.median_us > 0.0 ? stats.max_us / stats.median_us : 1.0;

  double total = 0.0;
  for (double t : compute_us) total += t;
  for (int r = 0; r < num_ranks_; ++r) {
    const double x = compute_us[static_cast<std::size_t>(r)];
    const double peer_mean = (total - x) / (num_ranks_ - 1);
    double peer_var = 0.0;
    for (int o = 0; o < num_ranks_; ++o) {
      if (o == r) continue;
      const double d = compute_us[static_cast<std::size_t>(o)] - peer_mean;
      peer_var += d * d;
    }
    peer_var /= (num_ranks_ - 1);
    const double sigma = std::max(std::sqrt(peer_var),
                                  cfg_.sigma_floor_frac * peer_mean);
    const double z = sigma > 0.0 ? (x - peer_mean) / sigma : 0.0;
    stats.max_z = std::max(stats.max_z, z);
    sum_z_[static_cast<std::size_t>(r)] += z;
    sum_lag_[static_cast<std::size_t>(r)] +=
        peer_mean > 0.0 ? x / peer_mean : 1.0;
    sum_compute_[static_cast<std::size_t>(r)] += x;
  }

  ++iterations_;
  sum_lag_ratio_ += stats.lag_ratio;
  max_lag_ratio_ = std::max(max_lag_ratio_, stats.lag_ratio);

  static Gauge& lag_gauge = MetricsRegistry::global().gauge(
      "pf15_straggler_lag_ratio",
      "Max-over-median compute lag of the last observed iteration");
  static Gauge& z_gauge = MetricsRegistry::global().gauge(
      "pf15_straggler_max_z",
      "Worst leave-one-out compute z-score of the last observed iteration");
  static Counter& flagged_total = MetricsRegistry::global().counter(
      "pf15_straggler_flagged_total",
      "Iterations whose slowest rank crossed the straggler thresholds");
  lag_gauge.set(stats.lag_ratio);
  z_gauge.set(stats.max_z);
  if (stats.max_z > cfg_.z_threshold &&
      stats.lag_ratio > cfg_.min_lag_ratio) {
    flagged_total.add(1);
  }
  return stats;
}

std::vector<double> StragglerDetector::rank_z_scores() const {
  std::vector<double> out(sum_z_.size(), 0.0);
  if (iterations_ == 0) return out;
  for (std::size_t r = 0; r < out.size(); ++r) {
    out[r] = sum_z_[r] / static_cast<double>(iterations_);
  }
  return out;
}

std::vector<double> StragglerDetector::rank_lag_ratios() const {
  std::vector<double> out(sum_lag_.size(), 1.0);
  if (iterations_ == 0) return out;
  for (std::size_t r = 0; r < out.size(); ++r) {
    out[r] = sum_lag_[r] / static_cast<double>(iterations_);
  }
  return out;
}

std::vector<int> StragglerDetector::flagged_ranks() const {
  std::vector<int> out;
  const std::vector<double> z = rank_z_scores();
  const std::vector<double> lag = rank_lag_ratios();
  for (int r = 0; r < num_ranks_; ++r) {
    if (z[static_cast<std::size_t>(r)] > cfg_.z_threshold &&
        lag[static_cast<std::size_t>(r)] > cfg_.min_lag_ratio) {
      out.push_back(r);
    }
  }
  return out;
}

double StragglerDetector::mean_lag_ratio() const {
  return iterations_ > 0 ? sum_lag_ratio_ / static_cast<double>(iterations_)
                         : 1.0;
}

perf::Json StragglerDetector::summary() const {
  perf::Json doc = perf::Json::object();
  doc.set("iterations", static_cast<double>(iterations_));
  doc.set("ranks", num_ranks_);
  doc.set("mean_lag_ratio", mean_lag_ratio());
  doc.set("max_lag_ratio", max_lag_ratio_);
  const std::vector<double> z = rank_z_scores();
  const std::vector<double> lag = rank_lag_ratios();
  perf::Json per_rank = perf::Json::array();
  for (int r = 0; r < num_ranks_; ++r) {
    perf::Json row = perf::Json::object();
    row.set("rank", r);
    row.set("mean_compute_us",
            iterations_ > 0
                ? sum_compute_[static_cast<std::size_t>(r)] /
                      static_cast<double>(iterations_)
                : 0.0);
    row.set("z", z[static_cast<std::size_t>(r)]);
    row.set("lag", lag[static_cast<std::size_t>(r)]);
    per_rank.push_back(std::move(row));
  }
  doc.set("per_rank", std::move(per_rank));
  perf::Json flagged = perf::Json::array();
  for (int r : flagged_ranks()) flagged.push_back(r);
  doc.set("flagged", std::move(flagged));
  return doc;
}

}  // namespace pf15::obs
