// Merging per-rank chrome://tracing files into one aligned timeline.
//
// A distributed run produces one trace document per rank (see
// trace_dump_rank()): spans in that rank's local clock domain, plus a
// "pf15" metadata object carrying the rank number, comm-group label and
// the clock offset measured against rank 0 by
// comm::Communicator::clock_offset_us(). merge_traces() shifts every
// span by its rank's offset, re-stamps pid = rank (so files written
// without an in-process identity still land in the right lane), drops
// the per-file metadata events and regenerates one process_name event
// per rank, and returns a single document sorted by aligned timestamp —
// the N-rank timeline chrome://tracing renders with one lane per rank.
//
// The library is deliberately independent of the tracer's process-wide
// state: inputs are parsed JSON documents (or file paths), so the
// pf15_merge_traces tool can align traces from runs it never observed.
#pragma once

#include <string>
#include <vector>

#include "perf/json.hpp"

namespace pf15::obs {

/// Merges per-rank trace documents (trace_dump_rank() shape: a
/// chrome://tracing object with a top-level "pf15" {rank, group,
/// clock_offset_us} block) into one timeline. Each input's "X" events are
/// shifted by that rank's clock offset and re-stamped with pid = rank;
/// the output carries one process_name metadata event per rank, the
/// merged events sorted by aligned timestamp, and a "pf15" summary
/// {ranks: [...], events: N}. Throws pf15::ConfigError on a document
/// missing "traceEvents"/"pf15" or on two documents claiming the same
/// rank.
perf::Json merge_traces(const std::vector<perf::Json>& per_rank);

/// read_file() + merge_traces() over `paths`. Throws pf15::IoError on an
/// unreadable/unparseable file, pf15::ConfigError on shape violations.
perf::Json merge_trace_files(const std::vector<std::string>& paths);

}  // namespace pf15::obs
