// Straggler analytics over per-rank compute timings.
//
// The paper's hybrid sync/async design exists because synchronous
// allreduce makes every sync group exactly as fast as its slowest
// member. This detector quantifies that: fed the per-rank compute time
// of each iteration (from the flight recorder gather), it tracks
//
//   * per-iteration lag: max-over-median compute time — the factor the
//     group lost to its slowest rank this iteration, and
//   * rolling per-rank z-scores: is a *specific* rank consistently
//     slow, or does the straggler move around (OS jitter)?
//
// The z-score is leave-one-out — each rank is scored against the mean/σ
// of the *other* ranks. The textbook within-group z maxes out at
// √(n−1) (≈1.7 for a 4-rank group), too low to ever cross a sane
// threshold; leave-one-out scores an outlier against a population that
// excludes it, so a persistent straggler scores arbitrarily high. σ is
// floored at a fraction of the peers' mean so near-uniform timings
// (σ→0) don't explode the score, and a flag additionally requires the
// rank's mean lag over its peers to exceed min_lag_ratio — a rank must
// be *slower*, not merely *consistent*, to be called a straggler.
//
// observe() mirrors the current lag and worst z-score into the metrics
// registry (pf15_straggler_lag_ratio, pf15_straggler_max_z,
// pf15_straggler_flagged_total); summary() renders the rollup embedded
// in BENCH_scaling.json.
#pragma once

#include <cstdint>
#include <vector>

#include "perf/json.hpp"

namespace pf15::obs {

struct StragglerConfig {
  double z_threshold = 2.5;      ///< rolling mean leave-one-out z to flag
  double min_lag_ratio = 1.25;   ///< and mean lag over peers must exceed
  double sigma_floor_frac = 0.05;  ///< σ floor as a fraction of peer mean
};

/// One iteration's cross-rank view.
struct StragglerStats {
  int iteration = 0;
  double median_us = 0.0;
  double max_us = 0.0;
  int slowest_rank = -1;
  double lag_ratio = 1.0;  ///< max / median (1 when median is 0)
  double max_z = 0.0;      ///< worst leave-one-out z this iteration
};

class StragglerDetector {
 public:
  explicit StragglerDetector(int num_ranks, StragglerConfig cfg = {});

  /// Feeds one iteration's per-rank compute times (compute_us[r] = rank
  /// r). Returns that iteration's stats and updates the rolling state +
  /// registry metrics. compute_us.size() must equal num_ranks.
  StragglerStats observe(int iteration,
                         const std::vector<double>& compute_us);

  int num_ranks() const { return num_ranks_; }
  std::uint64_t iterations() const { return iterations_; }

  /// Rolling mean leave-one-out z-score per rank (0 before any observe).
  std::vector<double> rank_z_scores() const;

  /// Rolling mean lag of each rank over its peers' mean compute time.
  std::vector<double> rank_lag_ratios() const;

  /// Ranks whose rolling z exceeds z_threshold AND rolling lag exceeds
  /// min_lag_ratio.
  std::vector<int> flagged_ranks() const;

  /// Mean and max of the per-iteration max-over-median lag so far.
  double mean_lag_ratio() const;
  double max_lag_ratio() const { return max_lag_ratio_; }

  /// Rollup for BENCH_scaling.json: {iterations, ranks, mean/max lag,
  /// per_rank: [{rank, mean_compute_us, z, lag}], flagged: [...]}.
  perf::Json summary() const;

 private:
  const int num_ranks_;
  const StragglerConfig cfg_;
  std::uint64_t iterations_ = 0;
  std::vector<double> sum_compute_;  // per rank
  std::vector<double> sum_z_;        // per rank, leave-one-out
  std::vector<double> sum_lag_;      // per rank, over peer mean
  double sum_lag_ratio_ = 0.0;       // per-iteration max/median
  double max_lag_ratio_ = 0.0;
};

}  // namespace pf15::obs
