#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "common/errors.hpp"
#include "obs/metrics.hpp"
#include "perf/json.hpp"

namespace pf15::obs {

namespace detail {
std::atomic<int> g_trace_state{0};
}  // namespace detail

namespace {

/// Default chrome://tracing process lane for threads that never claimed a
/// rank identity (single-process tracing).
constexpr int kDefaultPid = 1;

/// One recorded span. Names are owned strings: spans outlive the plans,
/// layers and threads whose names they carry. `pid` holds the recording
/// thread's rank identity, or -1 for unidentified threads — the render
/// maps -1 to kDefaultPid, but trace_dump_rank() filters on the raw
/// value so anonymous spans never leak into a real rank's document.
struct Span {
  std::string name;
  const char* category;
  int pid;
  int tid;
  double ts_us;
  double dur_us;
};

/// Distributed identity of one rank (registered via trace_set_identity).
struct RankMeta {
  std::string group;
  double clock_offset_us = 0.0;
};

/// The calling thread's claimed rank (-1 = none): stamped onto every span
/// the thread records, read without any lock.
thread_local int t_identity_rank = -1;

constexpr std::size_t kRingCapacity = 1 << 16;

struct ThreadRing;

/// Process-wide tracer state. Meyers singleton so trace calls are safe at
/// any point of static init/teardown order.
struct TracerState {
  std::mutex mutex;
  std::string path;
  std::vector<ThreadRing*> rings;        // live threads
  std::vector<Span> retired;             // spans of exited threads
  std::vector<Span> flushed;             // everything already collected
  std::map<int, RankMeta> ranks;         // registered rank identities
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<int> next_tid{1};
  bool atexit_registered = false;
};

TracerState& state() {
  static TracerState* s = new TracerState();  // never destroyed: threads
                                              // may outlive static dtors
  return *s;
}

/// Per-thread span ring. record() takes the ring's own mutex — owned by
/// one writer, contended only by a concurrent flush, so the lock is
/// uncontended in steady state and only ever taken when tracing is on.
struct ThreadRing {
  std::mutex mutex;
  std::vector<Span> spans;
  std::size_t next = 0;  // ring write position once full
  int tid;

  ThreadRing() : tid(state().next_tid.fetch_add(1)) {
    spans.reserve(1024);
    std::lock_guard<std::mutex> lock(state().mutex);
    state().rings.push_back(this);
  }

  ~ThreadRing() {
    TracerState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    st.rings.erase(std::remove(st.rings.begin(), st.rings.end(), this),
                   st.rings.end());
    std::lock_guard<std::mutex> ring_lock(mutex);
    st.retired.insert(st.retired.end(),
                      std::make_move_iterator(spans.begin()),
                      std::make_move_iterator(spans.end()));
  }

  void record(Span&& span) {
    // Registry mirrors live outside the ring lock: counter adds are
    // sharded atomics, and keeping them out of the critical section keeps
    // a concurrent flush from observing them under two mutexes.
    bool overwrote = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      span.pid = t_identity_rank;  // -1 when this thread has no identity
      span.tid = tid;
      if (spans.size() < kRingCapacity) {
        spans.push_back(std::move(span));
      } else {
        spans[next] = std::move(span);
        next = (next + 1) % kRingCapacity;
        overwrote = true;
        state().dropped.fetch_add(1, std::memory_order_relaxed);
      }
      state().recorded.fetch_add(1, std::memory_order_relaxed);
    }
    static Counter& spans_total = MetricsRegistry::global().counter(
        "pf15_trace_spans_total", "Spans recorded by the tracer");
    static Counter& dropped_total = MetricsRegistry::global().counter(
        "pf15_trace_dropped_total",
        "Trace spans lost to per-thread ring overflow");
    spans_total.add(1);
    if (overwrote) dropped_total.add(1);
  }

  /// Moves every buffered span out (called under state().mutex by flush).
  void drain_into(std::vector<Span>& out) {
    std::lock_guard<std::mutex> lock(mutex);
    out.insert(out.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.end()));
    spans.clear();
    next = 0;
  }
};

ThreadRing& thread_ring() {
  thread_local ThreadRing ring;
  return ring;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Collects every span recorded so far into state().flushed and returns a
/// copy sorted by timestamp. Caller must NOT hold state().mutex.
std::vector<Span> collect_sorted() {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  for (ThreadRing* ring : st.rings) ring->drain_into(st.flushed);
  st.flushed.insert(st.flushed.end(),
                    std::make_move_iterator(st.retired.begin()),
                    std::make_move_iterator(st.retired.end()));
  st.retired.clear();
  std::vector<Span> sorted(st.flushed.begin(), st.flushed.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Span& a, const Span& b) {
                     return a.ts_us < b.ts_us;
                   });
  return sorted;
}

/// "M"-phase process_name event labelling one rank's pid lane.
perf::Json rank_metadata_event(int rank, const RankMeta& meta) {
  perf::Json args = perf::Json::object();
  args.set("name", "rank " + std::to_string(rank) + " (" + meta.group + ")");
  perf::Json ev = perf::Json::object();
  ev.set("name", "process_name");
  ev.set("ph", "M");
  ev.set("pid", rank);
  ev.set("tid", 0);
  ev.set("args", std::move(args));
  return ev;
}

perf::Json render_trace(const std::vector<Span>& spans,
                        const std::map<int, RankMeta>& ranks) {
  perf::Json events = perf::Json::array();
  for (const auto& [rank, meta] : ranks) {
    events.push_back(rank_metadata_event(rank, meta));
  }
  for (const Span& s : spans) {
    perf::Json ev = perf::Json::object();
    ev.set("name", s.name);
    ev.set("cat", s.category);
    ev.set("ph", "X");
    ev.set("ts", s.ts_us);
    ev.set("dur", s.dur_us);
    ev.set("pid", s.pid >= 0 ? s.pid : kDefaultPid);
    ev.set("tid", s.tid);
    events.push_back(std::move(ev));
  }
  perf::Json doc = perf::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

std::map<int, RankMeta> snapshot_ranks() {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.ranks;
}

void flush_at_exit() {
  if (detail::g_trace_state.load(std::memory_order_relaxed) != 2) return;
  try {
    trace_flush();
  } catch (const Error&) {
    // Exit-path best effort: a failed flush must not turn a clean exit
    // into an abort.
  }
}

}  // namespace

namespace detail {

bool trace_init_from_env() {
  // First call wins; concurrent initialisers agree because the decision
  // is a pure function of the environment.
  const char* env = std::getenv("PF15_TRACE");
  if (env != nullptr && env[0] != '\0') {
    trace_enable(env);
    return true;
  }
  int expected = 0;
  g_trace_state.compare_exchange_strong(expected, 1,
                                        std::memory_order_relaxed);
  return g_trace_state.load(std::memory_order_relaxed) == 2;
}

}  // namespace detail

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void trace_enable(const std::string& path) {
  PF15_CHECK_MSG(!path.empty(), "trace_enable: empty path");
  TracerState& st = state();
  (void)trace_epoch();  // pin the epoch no later than enablement
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.path = path;
    if (!st.atexit_registered) {
      st.atexit_registered = true;
      std::atexit(flush_at_exit);
    }
  }
  detail::g_trace_state.store(2, std::memory_order_relaxed);
}

void trace_disable() {
  detail::g_trace_state.store(1, std::memory_order_relaxed);
}

void trace_resume() {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (!st.path.empty()) {
    detail::g_trace_state.store(2, std::memory_order_relaxed);
  }
}

void trace_record(std::string name, const char* category, double ts_us,
                  double dur_us) {
  if (!trace_enabled()) return;
  Span span;
  span.name = std::move(name);
  span.category = category;
  span.ts_us = ts_us;
  span.dur_us = dur_us;
  thread_ring().record(std::move(span));
}

void TraceSpan::finish() {
  // Tracing may have been disabled mid-span; record anyway — the span
  // started under an enabled tracer and dropping it would leave a
  // misleading hole rather than save measurable work.
  Span span;
  span.name = name_ != nullptr ? std::string(name_) : std::move(owned_name_);
  span.category = category_;
  span.ts_us = start_us_;
  span.dur_us = trace_now_us() - start_us_;
  thread_ring().record(std::move(span));
}

void trace_flush() {
  std::string path;
  {
    TracerState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    path = st.path;
  }
  if (path.empty()) {
    throw IoError("trace_flush: no trace path configured");
  }
  const std::vector<Span> spans = collect_sorted();
  render_trace(spans, snapshot_ranks()).write_file(path, /*indent=*/0);
}

std::string trace_dump() {
  return render_trace(collect_sorted(), snapshot_ranks()).dump(/*indent=*/0);
}

std::string trace_dump_rank(int rank) {
  PF15_CHECK_MSG(rank >= 0, "trace_dump_rank: negative rank");
  std::vector<Span> mine;
  for (Span& s : collect_sorted()) {
    if (s.pid == rank) mine.push_back(std::move(s));
  }
  RankMeta meta;
  {
    TracerState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    auto it = st.ranks.find(rank);
    if (it != st.ranks.end()) meta = it->second;
  }
  perf::Json doc = render_trace(mine, {{rank, meta}});
  perf::Json pf15 = perf::Json::object();
  pf15.set("rank", rank);
  pf15.set("group", meta.group);
  pf15.set("clock_offset_us", meta.clock_offset_us);
  doc.set("pf15", std::move(pf15));
  return doc.dump(/*indent=*/0);
}

void trace_set_identity(int rank, const std::string& group) {
  PF15_CHECK_MSG(rank >= 0, "trace_set_identity: negative rank");
  t_identity_rank = rank;
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.ranks[rank].group = group;
}

void trace_set_clock_offset_us(int rank, double offset_us) {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.ranks[rank].clock_offset_us = offset_us;
}

void trace_clear_identity() { t_identity_rank = -1; }

int trace_identity_rank() { return t_identity_rank; }

void trace_clear() {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  for (ThreadRing* ring : st.rings) {
    std::vector<Span> dropped;
    ring->drain_into(dropped);
  }
  st.retired.clear();
  st.flushed.clear();
  st.ranks.clear();
  st.dropped.store(0, std::memory_order_relaxed);
  st.recorded.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_span_count() {
  return state().recorded.load(std::memory_order_relaxed);
}

std::uint64_t trace_dropped_count() {
  return state().dropped.load(std::memory_order_relaxed);
}

}  // namespace pf15::obs
