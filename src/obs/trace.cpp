#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/errors.hpp"
#include "perf/json.hpp"

namespace pf15::obs {

namespace detail {
std::atomic<int> g_trace_state{0};
}  // namespace detail

namespace {

/// One recorded span. Names are owned strings: spans outlive the plans,
/// layers and threads whose names they carry.
struct Span {
  std::string name;
  const char* category;
  int tid;
  double ts_us;
  double dur_us;
};

constexpr std::size_t kRingCapacity = 1 << 16;

struct ThreadRing;

/// Process-wide tracer state. Meyers singleton so trace calls are safe at
/// any point of static init/teardown order.
struct TracerState {
  std::mutex mutex;
  std::string path;
  std::vector<ThreadRing*> rings;        // live threads
  std::vector<Span> retired;             // spans of exited threads
  std::vector<Span> flushed;             // everything already collected
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<int> next_tid{1};
  bool atexit_registered = false;
};

TracerState& state() {
  static TracerState* s = new TracerState();  // never destroyed: threads
                                              // may outlive static dtors
  return *s;
}

/// Per-thread span ring. record() takes the ring's own mutex — owned by
/// one writer, contended only by a concurrent flush, so the lock is
/// uncontended in steady state and only ever taken when tracing is on.
struct ThreadRing {
  std::mutex mutex;
  std::vector<Span> spans;
  std::size_t next = 0;  // ring write position once full
  int tid;

  ThreadRing() : tid(state().next_tid.fetch_add(1)) {
    spans.reserve(1024);
    std::lock_guard<std::mutex> lock(state().mutex);
    state().rings.push_back(this);
  }

  ~ThreadRing() {
    TracerState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    st.rings.erase(std::remove(st.rings.begin(), st.rings.end(), this),
                   st.rings.end());
    std::lock_guard<std::mutex> ring_lock(mutex);
    st.retired.insert(st.retired.end(),
                      std::make_move_iterator(spans.begin()),
                      std::make_move_iterator(spans.end()));
  }

  void record(Span&& span) {
    std::lock_guard<std::mutex> lock(mutex);
    span.tid = tid;
    if (spans.size() < kRingCapacity) {
      spans.push_back(std::move(span));
    } else {
      spans[next] = std::move(span);
      next = (next + 1) % kRingCapacity;
      state().dropped.fetch_add(1, std::memory_order_relaxed);
    }
    state().recorded.fetch_add(1, std::memory_order_relaxed);
  }

  /// Moves every buffered span out (called under state().mutex by flush).
  void drain_into(std::vector<Span>& out) {
    std::lock_guard<std::mutex> lock(mutex);
    out.insert(out.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.end()));
    spans.clear();
    next = 0;
  }
};

ThreadRing& thread_ring() {
  thread_local ThreadRing ring;
  return ring;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Collects every span recorded so far into state().flushed and returns a
/// copy sorted by timestamp. Caller must NOT hold state().mutex.
std::vector<Span> collect_sorted() {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  for (ThreadRing* ring : st.rings) ring->drain_into(st.flushed);
  st.flushed.insert(st.flushed.end(),
                    std::make_move_iterator(st.retired.begin()),
                    std::make_move_iterator(st.retired.end()));
  st.retired.clear();
  std::vector<Span> sorted(st.flushed.begin(), st.flushed.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Span& a, const Span& b) {
                     return a.ts_us < b.ts_us;
                   });
  return sorted;
}

perf::Json render_trace(const std::vector<Span>& spans) {
  perf::Json events = perf::Json::array();
  for (const Span& s : spans) {
    perf::Json ev = perf::Json::object();
    ev.set("name", s.name);
    ev.set("cat", s.category);
    ev.set("ph", "X");
    ev.set("ts", s.ts_us);
    ev.set("dur", s.dur_us);
    ev.set("pid", 1);
    ev.set("tid", s.tid);
    events.push_back(std::move(ev));
  }
  perf::Json doc = perf::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

void flush_at_exit() {
  if (detail::g_trace_state.load(std::memory_order_relaxed) != 2) return;
  try {
    trace_flush();
  } catch (const Error&) {
    // Exit-path best effort: a failed flush must not turn a clean exit
    // into an abort.
  }
}

}  // namespace

namespace detail {

bool trace_init_from_env() {
  // First call wins; concurrent initialisers agree because the decision
  // is a pure function of the environment.
  const char* env = std::getenv("PF15_TRACE");
  if (env != nullptr && env[0] != '\0') {
    trace_enable(env);
    return true;
  }
  int expected = 0;
  g_trace_state.compare_exchange_strong(expected, 1,
                                        std::memory_order_relaxed);
  return g_trace_state.load(std::memory_order_relaxed) == 2;
}

}  // namespace detail

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void trace_enable(const std::string& path) {
  PF15_CHECK_MSG(!path.empty(), "trace_enable: empty path");
  TracerState& st = state();
  (void)trace_epoch();  // pin the epoch no later than enablement
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.path = path;
    if (!st.atexit_registered) {
      st.atexit_registered = true;
      std::atexit(flush_at_exit);
    }
  }
  detail::g_trace_state.store(2, std::memory_order_relaxed);
}

void trace_disable() {
  detail::g_trace_state.store(1, std::memory_order_relaxed);
}

void trace_resume() {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (!st.path.empty()) {
    detail::g_trace_state.store(2, std::memory_order_relaxed);
  }
}

void trace_record(std::string name, const char* category, double ts_us,
                  double dur_us) {
  if (!trace_enabled()) return;
  Span span;
  span.name = std::move(name);
  span.category = category;
  span.ts_us = ts_us;
  span.dur_us = dur_us;
  thread_ring().record(std::move(span));
}

void TraceSpan::finish() {
  // Tracing may have been disabled mid-span; record anyway — the span
  // started under an enabled tracer and dropping it would leave a
  // misleading hole rather than save measurable work.
  Span span;
  span.name = name_ != nullptr ? std::string(name_) : std::move(owned_name_);
  span.category = category_;
  span.ts_us = start_us_;
  span.dur_us = trace_now_us() - start_us_;
  thread_ring().record(std::move(span));
}

void trace_flush() {
  std::string path;
  {
    TracerState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    path = st.path;
  }
  if (path.empty()) {
    throw IoError("trace_flush: no trace path configured");
  }
  const std::vector<Span> spans = collect_sorted();
  render_trace(spans).write_file(path, /*indent=*/0);
}

std::string trace_dump() {
  return render_trace(collect_sorted()).dump(/*indent=*/0);
}

void trace_clear() {
  TracerState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  for (ThreadRing* ring : st.rings) {
    std::vector<Span> dropped;
    ring->drain_into(dropped);
  }
  st.retired.clear();
  st.flushed.clear();
  st.dropped.store(0, std::memory_order_relaxed);
  st.recorded.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_span_count() {
  return state().recorded.load(std::memory_order_relaxed);
}

std::uint64_t trace_dropped_count() {
  return state().dropped.load(std::memory_order_relaxed);
}

}  // namespace pf15::obs
