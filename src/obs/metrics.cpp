#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/errors.hpp"

namespace pf15::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return !std::isdigit(static_cast<unsigned char>(name[0]));
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

/// Renders a double the way Prometheus clients do: integral values
/// without a fractional part, everything else with enough digits to
/// round-trip.
std::string render_number(double v) {
  std::ostringstream os;
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(17);
    os << v;
  }
  return os.str();
}

}  // namespace

// ---- Counter ---------------------------------------------------------------

std::size_t Counter::shard_index() {
  // One shard per thread, assigned round-robin at first use: threads
  // created together land on different cache lines.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PF15_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be sorted ascending");
  PF15_CHECK_MSG(
      std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
      "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // +inf = size()
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  PF15_CHECK_MSG(i <= bounds_.size(),
                 "histogram bucket index " << i << " out of range");
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b <= i; ++b) {
    sum += buckets_[b].load(std::memory_order_relaxed);
  }
  return sum;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  PF15_CHECK_MSG(start > 0.0 && factor > 1.0 && count >= 1,
                 "exponential_bounds needs start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Heap-allocated and never destroyed: pool workers touch hoisted
  // instrument references in their post-task epilogue, which can race a
  // normal static destructor once main() has returned (the waiter of a
  // task future unblocks before the worker finishes its loop iteration).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, Kind kind, const std::string& help) {
  // Caller holds mutex_.
  PF15_CHECK_MSG(valid_metric_name(name),
                 "invalid metric name \"" << name
                                          << "\" (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw ConfigError("metric \"" + name + "\" already registered as " +
                        kind_name(static_cast<int>(it->second.kind)) +
                        ", requested as " + kind_name(static_cast<int>(kind)));
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  return entries_.emplace(name, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mutex_);
  Entry& e = find_or_create(name, Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mutex_);
  Entry& e = find_or_create(name, Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  MutexLock lock(mutex_);
  Entry& e = find_or_create(name, Kind::kHistogram, help);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

std::string MetricsRegistry::prometheus_text() const {
  MutexLock lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) os << "# HELP " << name << " " << e.help << "\n";
    os << "# TYPE " << name << " " << kind_name(static_cast<int>(e.kind))
       << "\n";
    switch (e.kind) {
      case Kind::kCounter:
        os << name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << name << " " << render_number(e.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          os << name << "_bucket{le=\"" << render_number(h.bounds()[i])
             << "\"} " << h.cumulative(i) << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        os << name << "_sum " << render_number(h.sum()) << "\n";
        os << name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

perf::Json MetricsRegistry::to_json() const {
  MutexLock lock(mutex_);
  perf::Json doc = perf::Json::object();
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        doc.set(name, static_cast<double>(e.counter->value()));
        break;
      case Kind::kGauge:
        doc.set(name, e.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        perf::Json hist = perf::Json::object();
        hist.set("count", static_cast<double>(h.count()));
        hist.set("sum", h.sum());
        hist.set("mean", h.mean());
        perf::Json buckets = perf::Json::array();
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          perf::Json b = perf::Json::object();
          b.set("le", h.bounds()[i]);
          b.set("count", static_cast<double>(h.cumulative(i)));
          buckets.push_back(std::move(b));
        }
        hist.set("buckets", std::move(buckets));
        doc.set(name, std::move(hist));
        break;
      }
    }
  }
  return doc;
}

void MetricsRegistry::reset_all() {
  MutexLock lock(mutex_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->reset();
        break;
      case Kind::kGauge:
        e.gauge->set(0.0);
        break;
      case Kind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace pf15::obs
