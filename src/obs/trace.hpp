// Low-overhead span tracer with chrome://tracing / Perfetto output.
//
// Tracing answers the question the metrics registry can't: not "how many"
// but "when, on which thread, nested inside what". Spans are (name,
// category, tid, start, duration) records pushed into thread-local ring
// buffers; flush() merges every thread's buffer into one
// chrome://tracing-format JSON file ({"traceEvents": [...]}, "X" complete
// events, microsecond timestamps) that chrome://tracing and Perfetto load
// directly.
//
// Off by default, and the disabled cost is one relaxed atomic load and a
// predictable branch — cheap enough to leave TraceSpan declarations
// compiled into the hottest paths (the compiled executor's per-node loop,
// the thread pool's task dispatch). Enable with the env var
//
//   PF15_TRACE=/path/to/trace.json
//
// (flushed automatically at process exit) or programmatically with
// trace_enable(path) + trace_flush(). Dynamic span names cost a string
// construction even when tracing is off, so hot paths guard them:
//
//   if (obs::trace_enabled()) {
//     obs::TraceSpan span(node_name, "graph");
//     ...
//   }
//
// Buffers are bounded (64K spans per thread); when a thread overflows,
// the oldest spans of that thread are overwritten and the drop is counted
// (trace_dropped_count()) — tracing degrades by forgetting history, never
// by stalling the traced code. Both totals are mirrored into the metrics
// registry (`pf15_trace_spans_total`, `pf15_trace_dropped_total`) so ring
// overflow shows up in a Prometheus snapshot, not only via this API.
//
// Distributed runs: a rank thread claims its identity with
// trace_set_identity(rank, group) — spans recorded on that thread flush
// with `pid = rank` (plus a process_name metadata event naming the rank
// and its comm group), so a multi-rank in-process job renders as one
// per-rank-lane timeline. trace_merge.hpp turns per-rank trace *files*
// (the real-MPI shape, one process per rank) back into that single
// timeline, aligning clocks via the offsets measured by
// comm::Communicator::clock_offset_us().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pf15::obs {

namespace detail {
/// 0 = uninitialised (consult PF15_TRACE), 1 = off, 2 = on. Constant
/// initialisation, so trace_enabled() is safe during static init.
extern std::atomic<int> g_trace_state;
bool trace_init_from_env();
}  // namespace detail

/// True when spans are being recorded. The fast path is one relaxed load.
inline bool trace_enabled() {
  const int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s == 1) return false;
  if (s == 2) return true;
  return detail::trace_init_from_env();
}

/// Starts recording spans; flush goes to `path`. Registers an atexit
/// flush the first time tracing is enabled in the process.
void trace_enable(const std::string& path);

/// Stops recording. Already-buffered spans are kept for the next flush.
void trace_disable();

/// Re-enables recording to the previously configured path (pairs with
/// trace_disable() for overhead A/B measurements). No-op when no path was
/// ever configured.
void trace_resume();

/// Microseconds since the process trace epoch — the `ts` domain of every
/// span.
double trace_now_us();

/// Claims a distributed-rank identity for the *calling thread*: spans it
/// records from now on flush with `pid = rank`, and the flushed document
/// carries a process_name metadata event "rank <rank> (<group>)". Threads
/// that never claim an identity keep the default pid (1). Identities are
/// process-wide bookkeeping: two threads may claim the same rank (e.g. a
/// rank thread across two training runs), but a single flush then merges
/// their lanes.
void trace_set_identity(int rank, const std::string& group);

/// Records the clock-offset estimate (microseconds to ADD to this rank's
/// trace_now_us() domain to land on the reference rank's clock — see
/// comm::Communicator::clock_offset_us). The offset is NOT applied to
/// spans at record or flush time; it is embedded in trace_dump_rank()'s
/// metadata so obs::merge_traces() can align per-rank files.
void trace_set_clock_offset_us(int rank, double offset_us);

/// Drops the calling thread's rank identity (new spans revert to pid 1).
/// Registered rank metadata stays until trace_clear().
void trace_clear_identity();

/// The calling thread's claimed rank, or -1 when none.
int trace_identity_rank();

/// Records one complete span explicitly (for cross-thread intervals like
/// queue wait, where the observer is not the thread that started the
/// interval — the span lands on the calling thread's track).
void trace_record(std::string name, const char* category, double ts_us,
                  double dur_us);

/// Writes everything recorded so far to the configured path as
/// chrome://tracing JSON, events sorted by timestamp. Safe to call while
/// other threads keep recording (their in-flight spans land in the next
/// flush). Throws pf15::IoError when no path is configured or the write
/// fails.
void trace_flush();

/// The same JSON document trace_flush() writes, as a string (tests, and
/// callers embedding the trace elsewhere).
std::string trace_dump();

/// A per-rank trace document: only the spans stamped with `pid == rank`,
/// that rank's process_name metadata, and a top-level "pf15" object
/// {rank, group, clock_offset_us} consumed by obs::merge_traces(). This
/// is the shape a real one-process-per-rank run would write to its own
/// file; in-process multi-rank runs use it to exercise the same merge
/// workflow.
std::string trace_dump_rank(int rank);

/// Drops every buffered span and resets the drop counter (tests).
void trace_clear();

/// Spans recorded and dropped (ring overwrites) so far, process-wide.
std::uint64_t trace_span_count();
std::uint64_t trace_dropped_count();

/// RAII span: construction stamps the start, destruction records
/// (name, category, tid, start, duration) into the calling thread's ring.
/// When tracing is disabled, construction is a branch and destruction a
/// branch — no clock reads, no allocation.
class TraceSpan {
 public:
  /// Static-name fast path: no string copy until the span is recorded.
  TraceSpan(const char* name, const char* category)
      : armed_(trace_enabled()), name_(name), category_(category) {
    if (armed_) start_us_ = trace_now_us();
  }

  /// Dynamic-name form; the string is constructed by the caller, so guard
  /// call sites with trace_enabled() when the name is built per call.
  TraceSpan(std::string name, const char* category)
      : armed_(trace_enabled()),
        owned_name_(std::move(name)),
        name_(nullptr),
        category_(category) {
    if (armed_) start_us_ = trace_now_us();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (armed_) finish();
  }

 private:
  void finish();

  bool armed_;
  std::string owned_name_;  // dynamic-name form
  const char* name_;        // static-name form (nullptr when owned)
  const char* category_;
  double start_us_ = 0.0;
};

}  // namespace pf15::obs
