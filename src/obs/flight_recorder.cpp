#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace pf15::obs {

perf::Json flight_record_json(const IterationRecord& rec) {
  perf::Json doc = perf::Json::object();
  doc.set("iteration", rec.iteration);
  doc.set("rank", rec.rank);
  doc.set("compute_us", rec.compute_us);
  doc.set("allreduce_us", rec.allreduce_us);
  doc.set("ps_exchange_us", rec.ps_exchange_us);
  doc.set("broadcast_us", rec.broadcast_us);
  doc.set("payload_bytes", static_cast<double>(rec.payload_bytes));
  doc.set("wire_bytes", static_cast<double>(rec.wire_bytes));
  doc.set("compression_ratio", rec.compression_ratio);
  doc.set("staleness", rec.staleness);
  return doc;
}

IterationRecord flight_record_from_json(const perf::Json& doc) {
  PF15_CHECK_MSG(doc.is_object(), "flight record: not a JSON object");
  IterationRecord rec;
  rec.iteration = static_cast<int>(doc.get("iteration").as_number());
  rec.rank = static_cast<int>(doc.get("rank").as_number());
  rec.compute_us = doc.get("compute_us").as_number();
  rec.allreduce_us = doc.get("allreduce_us").as_number();
  rec.ps_exchange_us = doc.get("ps_exchange_us").as_number();
  rec.broadcast_us = doc.get("broadcast_us").as_number();
  rec.payload_bytes =
      static_cast<std::uint64_t>(doc.get("payload_bytes").as_number());
  rec.wire_bytes =
      static_cast<std::uint64_t>(doc.get("wire_bytes").as_number());
  rec.compression_ratio = doc.get("compression_ratio").as_number();
  rec.staleness = static_cast<int>(doc.get("staleness").as_number());
  return rec;
}

std::string flight_records_jsonl(const std::vector<IterationRecord>& recs) {
  std::string out;
  for (const IterationRecord& rec : recs) {
    out += flight_record_json(rec).dump(/*indent=*/0);
    out += '\n';
  }
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  PF15_CHECK_MSG(capacity > 0, "FlightRecorder: zero capacity");
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

void FlightRecorder::record(const IterationRecord& rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  ring_[next_] = rec;
  next_ = (next_ + 1) % capacity_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<IterationRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<IterationRecord> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

}  // namespace pf15::obs
