#include "obs/trace_merge.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/errors.hpp"

namespace pf15::obs {

namespace {

/// One rank's contribution, pulled out of its document.
struct RankTrace {
  int rank;
  std::string group;
  double offset_us;
  std::vector<perf::Json> events;  // "X" events, already shifted+stamped
};

RankTrace extract(const perf::Json& doc, std::size_t index) {
  if (!doc.is_object() || doc.find("traceEvents") == nullptr) {
    throw ConfigError("merge_traces: input " + std::to_string(index) +
                      " is not a chrome://tracing document");
  }
  const perf::Json* pf15 = doc.find("pf15");
  if (pf15 == nullptr || pf15->find("rank") == nullptr) {
    throw ConfigError("merge_traces: input " + std::to_string(index) +
                      " has no pf15 rank metadata (not written by "
                      "trace_dump_rank?)");
  }
  RankTrace out;
  out.rank = static_cast<int>(pf15->get("rank").as_number());
  const perf::Json* group = pf15->find("group");
  out.group = group != nullptr && group->is_string() ? group->as_string()
                                                     : std::string();
  const perf::Json* offset = pf15->find("clock_offset_us");
  out.offset_us = offset != nullptr ? offset->as_number() : 0.0;

  const perf::Json& events = doc.get("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const perf::Json& ev = events.at(i);
    const perf::Json* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
      continue;  // metadata events are regenerated from the pf15 block
    }
    perf::Json shifted = ev;
    shifted.set("ts", ev.get("ts").as_number() + out.offset_us);
    shifted.set("pid", out.rank);
    out.events.push_back(std::move(shifted));
  }
  return out;
}

perf::Json process_name_event(int rank, const std::string& group) {
  perf::Json args = perf::Json::object();
  args.set("name", "rank " + std::to_string(rank) + " (" + group + ")");
  perf::Json ev = perf::Json::object();
  ev.set("name", "process_name");
  ev.set("ph", "M");
  ev.set("pid", rank);
  ev.set("tid", 0);
  ev.set("args", std::move(args));
  return ev;
}

}  // namespace

perf::Json merge_traces(const std::vector<perf::Json>& per_rank) {
  std::vector<RankTrace> traces;
  traces.reserve(per_rank.size());
  std::set<int> seen;
  for (std::size_t i = 0; i < per_rank.size(); ++i) {
    RankTrace t = extract(per_rank[i], i);
    if (!seen.insert(t.rank).second) {
      throw ConfigError("merge_traces: two inputs claim rank " +
                        std::to_string(t.rank));
    }
    traces.push_back(std::move(t));
  }
  std::sort(traces.begin(), traces.end(),
            [](const RankTrace& a, const RankTrace& b) {
              return a.rank < b.rank;
            });

  // Gather + sort by aligned timestamp. stable_sort keeps same-ts events
  // in rank order, so the merge is deterministic across runs.
  std::vector<perf::Json> merged;
  for (RankTrace& t : traces) {
    merged.insert(merged.end(), std::make_move_iterator(t.events.begin()),
                  std::make_move_iterator(t.events.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const perf::Json& a, const perf::Json& b) {
                     return a.get("ts").as_number() < b.get("ts").as_number();
                   });

  perf::Json events = perf::Json::array();
  perf::Json ranks = perf::Json::array();
  for (const RankTrace& t : traces) {
    events.push_back(process_name_event(t.rank, t.group));
    ranks.push_back(t.rank);
  }
  const std::size_t span_count = merged.size();
  for (perf::Json& ev : merged) events.push_back(std::move(ev));

  perf::Json doc = perf::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  perf::Json summary = perf::Json::object();
  summary.set("ranks", std::move(ranks));
  summary.set("events", span_count);
  doc.set("pf15", std::move(summary));
  return doc;
}

perf::Json merge_trace_files(const std::vector<std::string>& paths) {
  std::vector<perf::Json> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    docs.push_back(perf::Json::read_file(path));
  }
  return merge_traces(docs);
}

}  // namespace pf15::obs
