#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

namespace pf15 {

Tensor::Tensor(const Shape& shape) : shape_(shape), buf_(shape.numel()) {
  zero();
}

Tensor Tensor::clone() const {
  Tensor out(shape_);
  if (numel() > 0) {
    std::memcpy(out.data(), data(), numel() * sizeof(float));
  }
  return out;
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) {
  PF15_CHECK(shape_.rank() == 4);
  PF15_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] &&
             w < shape_[3]);
  return buf_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

void Tensor::fill(float value) {
  std::fill_n(buf_.data(), numel(), value);
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (std::size_t i = 0; i < numel(); ++i) {
    buf_[i] = static_cast<float>(rng.normal(mean, stddev));
  }
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (std::size_t i = 0; i < numel(); ++i) buf_[i] = rng.uniform(lo, hi);
}

void Tensor::fill_he(Rng& rng, std::size_t fan_in) {
  PF15_CHECK(fan_in > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  fill_normal(rng, 0.0f, stddev);
}

void Tensor::fill_xavier(Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  PF15_CHECK(fan_in + fan_out > 0);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  fill_uniform(rng, -limit, limit);
}

void Tensor::axpy(float alpha, const Tensor& other) {
  PF15_CHECK_MSG(shape_ == other.shape_, "axpy shape mismatch: "
                                             << shape_ << " vs "
                                             << other.shape_);
  float* __restrict__ dst = buf_.data();
  const float* __restrict__ src = other.data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale(float alpha) {
  float* __restrict__ dst = buf_.data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i) dst[i] *= alpha;
}

void Tensor::copy_from(const Tensor& other) {
  PF15_CHECK_MSG(shape_ == other.shape_, "copy_from shape mismatch: "
                                             << shape_ << " vs "
                                             << other.shape_);
  if (numel() > 0) {
    std::memcpy(buf_.data(), other.data(), numel() * sizeof(float));
  }
}

void Tensor::copy_or_assign_from(const Tensor& other) {
  if (!defined() || shape_ != other.shape()) {
    *this = other.clone();
  } else {
    copy_from(other);
  }
}

float Tensor::sum() const {
  double s = 0.0;
  for (std::size_t i = 0; i < numel(); ++i) s += buf_[i];
  return static_cast<float>(s);
}

float Tensor::min() const {
  PF15_CHECK(numel() > 0);
  return *std::min_element(buf_.data(), buf_.data() + numel());
}

float Tensor::max() const {
  PF15_CHECK(numel() > 0);
  return *std::max_element(buf_.data(), buf_.data() + numel());
}

double Tensor::sumsq() const {
  double s = 0.0;
  for (std::size_t i = 0; i < numel(); ++i) {
    s += static_cast<double>(buf_[i]) * static_cast<double>(buf_[i]);
  }
  return s;
}

double Tensor::norm2() const { return std::sqrt(sumsq()); }

bool Tensor::all_finite() const {
  for (std::size_t i = 0; i < numel(); ++i) {
    if (!std::isfinite(buf_[i])) return false;
  }
  return true;
}

void Tensor::save(std::ostream& os) const {
  const std::uint32_t rank = static_cast<std::uint32_t>(shape_.rank());
  os.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (std::size_t i = 0; i < rank; ++i) {
    const std::uint64_t dim = shape_[i];
    os.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  os.write(reinterpret_cast<const char*>(data()),
           static_cast<std::streamsize>(numel() * sizeof(float)));
  if (!os) throw IoError("Tensor::save: stream write failed");
}

Tensor Tensor::load(std::istream& is) {
  std::uint32_t rank = 0;
  is.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!is || rank > Shape::kMaxRank) {
    throw IoError("Tensor::load: bad header");
  }
  std::vector<std::uint64_t> dims(rank);
  for (auto& dim : dims) {
    is.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    if (!is) throw IoError("Tensor::load: truncated dims");
  }
  Shape shape;
  switch (rank) {
    case 0:
      break;
    case 1:
      shape = Shape{dims[0]};
      break;
    case 2:
      shape = Shape{dims[0], dims[1]};
      break;
    case 3:
      shape = Shape{dims[0], dims[1], dims[2]};
      break;
    case 4:
      shape = Shape{dims[0], dims[1], dims[2], dims[3]};
      break;
    default:
      throw IoError("Tensor::load: unsupported rank");
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw IoError("Tensor::load: truncated payload");
  return t;
}

Tensor stack_samples(const std::vector<const Tensor*>& samples) {
  PF15_CHECK_MSG(!samples.empty(), "stack_samples: empty sample list");
  const Shape& sample_shape = samples[0]->shape();
  Tensor out(with_batch(sample_shape, samples.size()));
  const std::size_t sample_numel = sample_shape.numel();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    PF15_CHECK_MSG(samples[i]->shape() == sample_shape,
                   "stack_samples: sample " << i << " has shape "
                                            << samples[i]->shape()
                                            << ", expected "
                                            << sample_shape);
    std::memcpy(out.data() + i * sample_numel, samples[i]->data(),
                sample_numel * sizeof(float));
  }
  return out;
}

Tensor extract_sample(const Tensor& batched, std::size_t index) {
  const Shape& bs = batched.shape();
  PF15_CHECK_MSG(bs.rank() >= 1 && index < bs[0],
                 "extract_sample: index " << index << " out of batch "
                                          << bs);
  Tensor out(strip_batch(bs));
  const std::size_t sample_numel = out.numel();
  std::memcpy(out.data(), batched.data() + index * sample_numel,
              sample_numel * sizeof(float));
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  PF15_CHECK(a.shape() == b.shape());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace pf15
