// Tensor shape: a small fixed-capacity vector of extents with NCHW helpers.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>

#include "common/errors.hpp"

namespace pf15 {

/// Shape of a dense tensor. Rank up to 4 covers everything in this codebase
/// (NCHW activations, OIHW weights, vectors, scalars).
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;

  Shape(std::initializer_list<std::size_t> dims) {
    PF15_CHECK(dims.size() <= kMaxRank);
    for (std::size_t d : dims) dims_[rank_++] = d;
  }

  static Shape scalar() { return Shape{1}; }

  std::size_t rank() const { return rank_; }

  std::size_t operator[](std::size_t i) const {
    PF15_CHECK_MSG(i < rank_, "axis " << i << " out of rank " << rank_);
    return dims_[i];
  }

  std::size_t& operator[](std::size_t i) {
    PF15_CHECK_MSG(i < rank_, "axis " << i << " out of rank " << rank_);
    return dims_[i];
  }

  /// Total number of elements (1 for rank-0).
  std::size_t numel() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // NCHW accessors; valid for rank-4 shapes.
  std::size_t n() const { return (*this)[0]; }
  std::size_t c() const { return (*this)[1]; }
  std::size_t h() const { return (*this)[2]; }
  std::size_t w() const { return (*this)[3]; }

  std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.str();
}

}  // namespace pf15
