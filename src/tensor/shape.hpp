// Tensor shape: a small fixed-capacity vector of extents with NCHW helpers.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>

#include "common/errors.hpp"

namespace pf15 {

/// Shape of a dense tensor. Rank up to 4 covers everything in this codebase
/// (NCHW activations, OIHW weights, vectors, scalars).
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;

  Shape(std::initializer_list<std::size_t> dims) {
    PF15_CHECK(dims.size() <= kMaxRank);
    for (std::size_t d : dims) dims_[rank_++] = d;
  }

  static Shape scalar() { return Shape{1}; }

  std::size_t rank() const { return rank_; }

  std::size_t operator[](std::size_t i) const {
    PF15_CHECK_MSG(i < rank_, "axis " << i << " out of rank " << rank_);
    return dims_[i];
  }

  std::size_t& operator[](std::size_t i) {
    PF15_CHECK_MSG(i < rank_, "axis " << i << " out of rank " << rank_);
    return dims_[i];
  }

  /// Total number of elements (1 for rank-0).
  std::size_t numel() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // NCHW accessors; valid for rank-4 shapes.
  std::size_t n() const { return (*this)[0]; }
  std::size_t c() const { return (*this)[1]; }
  std::size_t h() const { return (*this)[2]; }
  std::size_t w() const { return (*this)[3]; }

  std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.str();
}

/// Returns `sample` with a leading batch dimension prepended, e.g.
/// (C, H, W) -> (batch, C, H, W). The sample must leave room for it.
inline Shape with_batch(const Shape& sample, std::size_t batch) {
  PF15_CHECK_MSG(sample.rank() < Shape::kMaxRank,
                 "shape " << sample << " cannot take a batch dimension");
  switch (sample.rank()) {
    case 0:
      return Shape{batch};
    case 1:
      return Shape{batch, sample[0]};
    case 2:
      return Shape{batch, sample[0], sample[1]};
    default:
      return Shape{batch, sample[0], sample[1], sample[2]};
  }
}

/// Returns `batched` with its leading (batch) dimension stripped, e.g.
/// (N, C, H, W) -> (C, H, W).
inline Shape strip_batch(const Shape& batched) {
  PF15_CHECK_MSG(batched.rank() >= 1,
                 "shape " << batched << " has no batch dimension to strip");
  switch (batched.rank()) {
    case 1:
      return Shape{};
    case 2:
      return Shape{batched[1]};
    case 3:
      return Shape{batched[1], batched[2]};
    default:
      return Shape{batched[1], batched[2], batched[3]};
  }
}

}  // namespace pf15
