// Dense single-precision tensor with owned, 64-byte-aligned storage.
//
// All activations, weights, and gradients in pf15 are Tensors. Layout is
// row-major over the shape (NCHW for rank-4). The paper's entire workload
// is single precision (§V), so we commit to float storage and keep the
// class small; double accumulation happens inside kernels where it matters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace pf15 {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates zero-initialised storage of the given shape.
  explicit Tensor(const Shape& shape);

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  // Deep copies are explicit via clone(); accidental copies of multi-MB
  // activations are a classic performance bug.
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  Tensor clone() const;

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return shape_.numel(); }
  bool defined() const { return buf_.size() > 0; }

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }

  std::span<float> span() { return {buf_.data(), buf_.size()}; }
  std::span<const float> span() const { return {buf_.data(), buf_.size()}; }

  float& at(std::size_t i) {
    PF15_CHECK(i < numel());
    return buf_[i];
  }
  float at(std::size_t i) const {
    PF15_CHECK(i < numel());
    return buf_[i];
  }

  /// NCHW element access (rank-4 only); bounds-checked.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  // ---- mutation helpers ------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }

  /// i.i.d. N(mean, stddev).
  void fill_normal(Rng& rng, float mean, float stddev);
  /// i.i.d. U[lo, hi).
  void fill_uniform(Rng& rng, float lo, float hi);
  /// He/Kaiming-normal init for a weight with the given fan-in.
  void fill_he(Rng& rng, std::size_t fan_in);
  /// Xavier/Glorot-uniform init.
  void fill_xavier(Rng& rng, std::size_t fan_in, std::size_t fan_out);

  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale(float alpha);
  /// this = other (shapes must match).
  void copy_from(const Tensor& other);
  /// this = other, reallocating if shapes differ (deep copy either way).
  void copy_or_assign_from(const Tensor& other);

  // ---- reductions ------------------------------------------------------
  float sum() const;
  float min() const;
  float max() const;
  /// Sum of squares (double accumulation).
  double sumsq() const;
  /// L2 norm.
  double norm2() const;
  /// True if every element is finite.
  bool all_finite() const;

  // ---- (de)serialization ----------------------------------------------
  /// Raw little-endian dump: rank, dims, then floats.
  void save(std::ostream& os) const;
  static Tensor load(std::istream& is);

 private:
  Shape shape_;
  AlignedBuffer<float> buf_;
};

/// Max absolute elementwise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Stacks equally-shaped samples along a new leading batch dimension:
/// k tensors of shape (C, H, W) become one (k, C, H, W). The serving
/// batcher's coalescing step.
Tensor stack_samples(const std::vector<const Tensor*>& samples);

/// Deep-copies sample `index` out of a batched tensor; the result's shape
/// is the batched shape with its leading dimension stripped.
Tensor extract_sample(const Tensor& batched, std::size_t index);

}  // namespace pf15
