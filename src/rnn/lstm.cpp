#include "rnn/lstm.hpp"

#include <cmath>

#include "gemm/gemm.hpp"

namespace pf15::rnn {

namespace {

inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Lstm::Lstm(std::string name, const LstmConfig& cfg, Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      w_(Shape{4 * cfg.hidden_size, cfg.input_size}),
      u_(Shape{4 * cfg.hidden_size, cfg.hidden_size}),
      b_(Shape{4 * cfg.hidden_size}),
      w_grad_(w_.shape()),
      u_grad_(u_.shape()),
      b_grad_(b_.shape()) {
  PF15_CHECK(cfg.input_size > 0 && cfg.hidden_size > 0);
  w_.fill_xavier(rng, cfg.input_size, cfg.hidden_size);
  u_.fill_xavier(rng, cfg.hidden_size, cfg.hidden_size);
  b_.zero();
  // Forget-gate bias (slice [H, 2H)) starts positive so cell state is
  // retained early in training ([52]).
  for (std::size_t j = cfg.hidden_size; j < 2 * cfg.hidden_size; ++j) {
    b_.data()[j] = cfg.forget_bias;
  }
}

void Lstm::check_input(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 3 && in[2] == cfg_.input_size,
                 name_ << ": expected (N, T, " << cfg_.input_size
                       << "), got " << in);
  PF15_CHECK(in[0] > 0 && in[1] > 0);
}

Shape Lstm::output_shape(const Shape& in) const {
  check_input(in);
  return Shape{in[0], in[1], cfg_.hidden_size};
}

void Lstm::forward(const Tensor& in, Tensor& out) {
  check_input(in.shape());
  const std::size_t n = in.shape()[0];
  const std::size_t t_len = in.shape()[1];
  const std::size_t d = cfg_.input_size;
  const std::size_t h = cfg_.hidden_size;
  const std::size_t g4 = 4 * h;

  nn::ensure_shape(out, Shape{n, t_len, h});
  nn::ensure_shape(hidden_, Shape{n, t_len, h});
  cached_n_ = n;
  cached_t_ = t_len;
  gates_.resize(t_len);
  cells_.resize(t_len);
  tanhc_.resize(t_len);

  for (std::size_t t = 0; t < t_len; ++t) {
    nn::ensure_shape(gates_[t], Shape{n, g4});
    nn::ensure_shape(cells_[t], Shape{n, h});
    nn::ensure_shape(tanhc_[t], Shape{n, h});
    Tensor& z = gates_[t];

    // z = x_t W^T; x_t is the (N x D) slice at time t with row stride T*D.
    gemm::sgemm_parallel(false, true, n, g4, d, 1.0f, in.data() + t * d,
                         t_len * d, w_.data(), d, 0.0f, z.data(), g4);
    if (t > 0) {
      // z += h_{t-1} U^T; h_{t-1} has row stride T*H inside hidden_.
      gemm::sgemm_parallel(false, true, n, g4, h, 1.0f,
                           hidden_.data() + (t - 1) * h, t_len * h,
                           u_.data(), h, 1.0f, z.data(), g4);
    }

    for (std::size_t b = 0; b < n; ++b) {
      float* zb = z.data() + b * g4;
      const float* c_prev =
          t > 0 ? cells_[t - 1].data() + b * h : nullptr;
      float* c = cells_[t].data() + b * h;
      float* tc = tanhc_[t].data() + b * h;
      float* hb = hidden_.data() + (b * t_len + t) * h;
      for (std::size_t j = 0; j < h; ++j) {
        const float i_g = sigmoid(zb[j] + b_.data()[j]);
        const float f_g = sigmoid(zb[h + j] + b_.data()[h + j]);
        const float g_g = std::tanh(zb[2 * h + j] + b_.data()[2 * h + j]);
        const float o_g = sigmoid(zb[3 * h + j] + b_.data()[3 * h + j]);
        zb[j] = i_g;
        zb[h + j] = f_g;
        zb[2 * h + j] = g_g;
        zb[3 * h + j] = o_g;
        c[j] = (c_prev ? f_g * c_prev[j] : 0.0f) + i_g * g_g;
        tc[j] = std::tanh(c[j]);
        hb[j] = o_g * tc[j];
      }
    }
  }
  out.copy_from(hidden_);
}

void Lstm::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  check_input(in.shape());
  const std::size_t n = in.shape()[0];
  const std::size_t t_len = in.shape()[1];
  const std::size_t d = cfg_.input_size;
  const std::size_t h = cfg_.hidden_size;
  const std::size_t g4 = 4 * h;
  PF15_CHECK_MSG(cached_n_ == n && cached_t_ == t_len,
                 name_ << ": backward without a matching forward");
  PF15_CHECK((dout.shape() == Shape{n, t_len, h}));

  nn::ensure_shape(din, in.shape());
  nn::ensure_shape(dgates_, Shape{n, g4});
  nn::ensure_shape(dh_, Shape{n, h});
  nn::ensure_shape(dc_, Shape{n, h});
  dh_.zero();
  dc_.zero();

  for (std::size_t t = t_len; t-- > 0;) {
    const Tensor& z = gates_[t];
    for (std::size_t b = 0; b < n; ++b) {
      const float* zb = z.data() + b * g4;
      const float* tc = tanhc_[t].data() + b * h;
      const float* c_prev = t > 0 ? cells_[t - 1].data() + b * h : nullptr;
      const float* dy = dout.data() + (b * t_len + t) * h;
      float* dhb = dh_.data() + b * h;
      float* dcb = dc_.data() + b * h;
      float* dzb = dgates_.data() + b * g4;
      for (std::size_t j = 0; j < h; ++j) {
        const float i_g = zb[j], f_g = zb[h + j], g_g = zb[2 * h + j],
                    o_g = zb[3 * h + j];
        const float dh_total = dy[j] + dhb[j];
        const float dc_total =
            dcb[j] + dh_total * o_g * (1.0f - tc[j] * tc[j]);
        const float di = dc_total * g_g;
        const float df = c_prev ? dc_total * c_prev[j] : 0.0f;
        const float dg = dc_total * i_g;
        const float do_ = dh_total * tc[j];
        dzb[j] = di * i_g * (1.0f - i_g);
        dzb[h + j] = df * f_g * (1.0f - f_g);
        dzb[2 * h + j] = dg * (1.0f - g_g * g_g);
        dzb[3 * h + j] = do_ * o_g * (1.0f - o_g);
        dcb[j] = dc_total * f_g;  // becomes dc_{t-1}
      }
    }

    // Parameter gradients: dW += dz^T x_t, dU += dz^T h_{t-1}, db += Σ dz.
    gemm::sgemm_parallel(true, false, g4, d, n, 1.0f, dgates_.data(), g4,
                         in.data() + t * d, t_len * d, 1.0f, w_grad_.data(),
                         d);
    if (t > 0) {
      gemm::sgemm_parallel(true, false, g4, h, n, 1.0f, dgates_.data(), g4,
                           hidden_.data() + (t - 1) * h, t_len * h, 1.0f,
                           u_grad_.data(), h);
    }
    for (std::size_t b = 0; b < n; ++b) {
      const float* dzb = dgates_.data() + b * g4;
      for (std::size_t j = 0; j < g4; ++j) b_grad_.data()[j] += dzb[j];
    }

    // Input and recurrent gradients: dx_t = dz W, dh_{t-1} = dz U.
    gemm::sgemm_parallel(false, false, n, d, g4, 1.0f, dgates_.data(), g4,
                         w_.data(), d, 0.0f, din.data() + t * d, t_len * d);
    if (t > 0) {
      gemm::sgemm_parallel(false, false, n, h, g4, 1.0f, dgates_.data(), g4,
                           u_.data(), h, 0.0f, dh_.data(), h);
    }
  }
}

std::vector<Param> Lstm::params() {
  return {{name_ + ".w", &w_, &w_grad_},
          {name_ + ".u", &u_, &u_grad_},
          {name_ + ".b", &b_, &b_grad_}};
}

std::uint64_t Lstm::forward_flops(const Shape& in) const {
  check_input(in);
  const std::uint64_t n = in[0], t = in[1];
  const std::uint64_t d = cfg_.input_size, h = cfg_.hidden_size;
  const std::uint64_t gemms =
      t * (gemm::flops(n, 4 * h, d) + gemm::flops(n, 4 * h, h));
  return gemms + t * n * h * 12;  // gate nonlinearities + cell update
}

std::uint64_t Lstm::backward_flops(const Shape& in) const {
  check_input(in);
  const std::uint64_t n = in[0], t = in[1];
  const std::uint64_t d = cfg_.input_size, h = cfg_.hidden_size;
  const std::uint64_t gemms =
      2 * t * (gemm::flops(n, 4 * h, d) + gemm::flops(n, 4 * h, h));
  return gemms + t * n * h * 20;
}

Shape LastStep::output_shape(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 3, name_ << ": expected (N, T, H), got " << in);
  return Shape{in[0], in[2]};
}

void LastStep::forward(const Tensor& in, Tensor& out) {
  const Shape& s = in.shape();
  nn::ensure_shape(out, output_shape(s));
  const std::size_t n = s[0], t_len = s[1], h = s[2];
  for (std::size_t b = 0; b < n; ++b) {
    const float* src = in.data() + (b * t_len + (t_len - 1)) * h;
    float* dst = out.data() + b * h;
    for (std::size_t j = 0; j < h; ++j) dst[j] = src[j];
  }
}

void LastStep::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  const Shape& s = in.shape();
  PF15_CHECK(dout.shape() == output_shape(s));
  nn::ensure_shape(din, s);
  din.zero();
  const std::size_t n = s[0], t_len = s[1], h = s[2];
  for (std::size_t b = 0; b < n; ++b) {
    const float* src = dout.data() + b * h;
    float* dst = din.data() + (b * t_len + (t_len - 1)) * h;
    for (std::size_t j = 0; j < h; ++j) dst[j] = src[j];
  }
}

}  // namespace pf15::rnn
