// LSTM layer — the second model family §IX names as a target for the
// hybrid architecture ("they extend to other kinds of models such as
// ResNets [50] and LSTM [51], [52]").
//
// Standard LSTM with forget gate (Gers et al. [52]):
//   gates  z_t = W x_t + U h_{t-1} + b,   z in R^{4H} = [i | f | g | o]
//   i, f, o = sigmoid;  g = tanh
//   c_t = f ⊙ c_{t-1} + i ⊙ g
//   h_t = o ⊙ tanh(c_t)
// The layer consumes a full sequence (N, T, D) and emits every hidden
// state (N, T, H); backward is full BPTT. Compute is dominated by the two
// tall-skinny GEMMs per timestep, which is why the small-minibatch
// efficiency cliff of §II-A hits recurrent models even harder than CNNs —
// the per-GEMM N equals the minibatch and cannot be amortised over
// spatial positions.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace pf15::rnn {

using nn::Param;
using pf15::Tensor;

struct LstmConfig {
  std::size_t input_size = 0;   // D
  std::size_t hidden_size = 0;  // H
  /// Initial forget-gate bias; > 0 keeps early gradients flowing ([52]).
  float forget_bias = 1.0f;
};

class Lstm final : public nn::Layer {
 public:
  Lstm(std::string name, const LstmConfig& cfg, Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "lstm"; }
  /// (N, T, D) -> (N, T, H).
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  const LstmConfig& config() const { return cfg_; }

 private:
  void check_input(const Shape& in) const;

  std::string name_;
  LstmConfig cfg_;

  Tensor w_;  // (4H, D): input weights, gate order [i f g o]
  Tensor u_;  // (4H, H): recurrent weights
  Tensor b_;  // (4H)
  Tensor w_grad_;
  Tensor u_grad_;
  Tensor b_grad_;

  // Forward caches (per run): activations needed by BPTT.
  std::size_t cached_n_ = 0, cached_t_ = 0;
  std::vector<Tensor> gates_;  // T tensors (N, 4H), post-nonlinearity
  std::vector<Tensor> cells_;  // T tensors (N, H), c_t
  std::vector<Tensor> tanhc_;  // T tensors (N, H), tanh(c_t)
  Tensor hidden_;              // (N, T, H) copy of the outputs

  // Backward scratch.
  Tensor dgates_;  // (N, 4H) for the current timestep
  Tensor dh_;      // (N, H)
  Tensor dc_;      // (N, H)
};

/// Final-hidden-state extractor: (N, T, H) -> (N, H). Pairs an Lstm with a
/// Dense head for sequence classification.
class LastStep final : public nn::Layer {
 public:
  explicit LastStep(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::string kind() const override { return "laststep"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::uint64_t forward_flops(const Shape& /*in*/) const override {
    return 0;
  }
  std::uint64_t backward_flops(const Shape& in) const override {
    return in.numel();
  }

 private:
  std::string name_;
};

}  // namespace pf15::rnn
