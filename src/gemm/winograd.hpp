// Winograd fast convolution F(2x2, 3x3) — the paper's explicitly named
// future-work direction (§VIII-A: "the state of the art in deep learning
// kernel implementations is rapidly evolving with new algorithms like
// Winograd [43]...; studying the impact on per-node performance ... is a
// direction for future research").
//
// For 3x3 kernels with stride 1, each 2x2 output tile costs 16 multiplies
// in the transform domain instead of 36 — a 2.25x arithmetic reduction.
// The multi-channel formulation batches the 16 transform positions into 16
// (OC x IC) x (IC x tiles) GEMMs, which is how production libraries
// implement it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pf15::gemm {

/// Geometry restrictions of this implementation: kernel 3x3, stride 1,
/// arbitrary padding. Returns whether the fast path applies.
bool winograd_applicable(std::size_t kernel, std::size_t stride);

/// Computes one image's convolution via Winograd F(2x2, 3x3):
///   output(OC, OH, OW) = weight(OC, IC, 3, 3) * image(IC, H, W), `pad`
/// zeros on each border, stride 1, OH = H + 2*pad - 2, OW likewise.
/// `bias` may be null. Ragged right/bottom edges (odd OH/OW) are handled
/// by padding the tile grid internally.
void winograd_conv3x3(const float* image, std::size_t in_c, std::size_t h,
                      std::size_t w, const float* weight,
                      std::size_t out_c, std::size_t pad,
                      const float* bias, float* output);

/// Multiplies in the transform domain for a given geometry — used for
/// flop accounting and the direct-vs-Winograd ablation. Counts one
/// multiply-add as two FLOPs.
std::uint64_t winograd_flops(std::size_t in_c, std::size_t out_c,
                             std::size_t h, std::size_t w, std::size_t pad);

}  // namespace pf15::gemm
