// Winograd fast convolution — the paper's explicitly named future-work
// direction (§VIII-A: "the state of the art in deep learning kernel
// implementations is rapidly evolving with new algorithms like Winograd
// [43]...; studying the impact on per-node performance ... is a direction
// for future research").
//
// Two tile sizes of the Lavin & Gray formulation are implemented for 3x3
// stride-1 kernels:
//   F(2x2, 3x3): 16 multiplies per 2x2 output tile instead of 36 (2.25x),
//   F(4x4, 3x3): 36 multiplies per 4x4 output tile instead of 144 (4x).
// The multi-channel formulation batches the transform positions into
// (OC x IC) x (IC x tiles) GEMMs, which is how production libraries
// implement it. Transforms process tiles in blocks of kWinoBlock laid out
// structure-of-arrays, so the transform arithmetic runs over contiguous
// lanes and auto-vectorizes.
//
// Training support: the filter gradient has its own transform-domain
// kernel (dg = G^T [(A dY A^T) ⊙ (B^T d B)] G, accumulated over tiles);
// the data gradient of a stride-1 3x3 convolution is itself a stride-1
// 3x3 convolution of the output gradient with the channel-transposed,
// 180°-rotated filter bank, so it reuses the forward kernel (the
// gemm::ConvBackend adapter performs that swap).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pf15::gemm {

/// Output-tile size of the Winograd formulation.
enum class WinogradTile : int {
  kF2x2 = 0,  // F(2x2,3x3): 4x4 transforms, best for small output grids
  kF4x4 = 1,  // F(4x4,3x3): 6x6 transforms, higher arithmetic reduction
};

/// Stable lower-case name ("f2x2", "f4x4").
const char* to_string(WinogradTile tile);

/// Geometry restrictions of this implementation: kernel 3x3, stride 1,
/// arbitrary padding. Returns whether the fast path applies.
bool winograd_applicable(std::size_t kernel, std::size_t stride);

/// The tile the auto-dispatching callers use for an (out_h x out_w)
/// output grid: F(4x4,3x3) once the grid is large enough to fill 4x4
/// tiles, F(2x2,3x3) below that.
WinogradTile winograd_pick_tile(std::size_t out_h, std::size_t out_w);

/// Computes one image's convolution via Winograd:
///   output(OC, OH, OW) = weight(OC, IC, 3, 3) * image(IC, H, W), `pad`
/// zeros on each border, stride 1, OH = H + 2*pad - 2, OW likewise.
/// `bias` may be null. Ragged right/bottom edges are handled by padding
/// the tile grid internally. `parallel_ok` permits the transform-domain
/// GEMMs to fan out on the global task scheduler — legal at any nesting
/// depth (the scheduler's waits help); false keeps the call strictly
/// serial (tests and mode-controlled timing).
void winograd_conv3x3(const float* image, std::size_t in_c, std::size_t h,
                      std::size_t w, const float* weight,
                      std::size_t out_c, std::size_t pad,
                      const float* bias, float* output,
                      WinogradTile tile = WinogradTile::kF2x2,
                      bool parallel_ok = false);

/// Floats in the transformed filter bank U for the given tile: T*T
/// transform positions of an (out_c x in_c) matrix each.
std::size_t winograd_filter_xform_floats(std::size_t in_c,
                                         std::size_t out_c,
                                         WinogradTile tile);

/// Pre-computes U = G g G^T for every (oc, ic) filter into `u`
/// (winograd_filter_xform_floats floats, position-major — the layout the
/// transform-domain GEMMs consume). U depends only on the weights, so a
/// batch loop computes it once and shares it read-only across images
/// (and pool threads) via winograd_conv3x3_pre.
void winograd_transform_filters(const float* weight, std::size_t in_c,
                                std::size_t out_c, WinogradTile tile,
                                float* u);

/// winograd_conv3x3 with a pre-transformed filter bank `u` (from
/// winograd_transform_filters with the same channels and tile) — the
/// per-batch filter-transform hoist.
void winograd_conv3x3_pre(const float* image, std::size_t in_c,
                          std::size_t h, std::size_t w, const float* u,
                          std::size_t out_c, std::size_t pad,
                          const float* bias, float* output,
                          WinogradTile tile = WinogradTile::kF2x2,
                          bool parallel_ok = false);

/// Filter gradient in the transform domain, accumulated (+=) into
/// `dweight` (OC, IC, 3, 3): image (IC, H, W) is the layer input, dout
/// (OC, OH, OW) the output gradient of the same geometry as
/// winograd_conv3x3 above.
void winograd_backward_filter3x3(const float* image, std::size_t in_c,
                                 std::size_t h, std::size_t w,
                                 const float* dout, std::size_t out_c,
                                 std::size_t pad, float* dweight,
                                 WinogradTile tile = WinogradTile::kF2x2,
                                 bool parallel_ok = false);

/// Multiplies in the transform domain for a given geometry — used for
/// flop accounting and the direct-vs-Winograd ablation. Counts one
/// multiply-add as two FLOPs.
std::uint64_t winograd_flops(std::size_t in_c, std::size_t out_c,
                             std::size_t h, std::size_t w, std::size_t pad,
                             WinogradTile tile = WinogradTile::kF2x2);

/// Transform-domain cost of winograd_backward_filter3x3 (same GEMM
/// shapes as the forward, plus the dY and inverse-filter transforms).
std::uint64_t winograd_backward_filter_flops(
    std::size_t in_c, std::size_t out_c, std::size_t h, std::size_t w,
    std::size_t pad, WinogradTile tile = WinogradTile::kF2x2);

}  // namespace pf15::gemm
