// AVX2+FMA kernel tier. This is the ONLY translation unit compiled with
// -mavx2 -mfma (per-file, see CMakeLists.txt); nothing in it executes
// until src/gemm/simd.cpp's cpuid probe has confirmed the hardware, so
// the binary stays runnable on baseline x86-64.
//
// The GEMM microkernel is hand-written intrinsics; the pack routines and
// Winograd block transforms are the generic implementations from the
// shared headers, which the compiler auto-vectorizes under this TU's
// flags (the SoA layouts were designed for exactly that). On a build
// without AVX2 support (non-x86, or the CMake gate off) the whole file
// degrades to a second copy of the generic kernels and
// avx2_kernels_compiled() reports false, which clamps detection.
#include "gemm/simd.hpp"

#include "gemm/kernels_generic.hpp"
#include "gemm/winograd_blocks.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace pf15::gemm {
namespace detail {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

// 6x16 microkernel as 12 ymm accumulators: each of the 6 rows of C keeps
// two 8-float halves resident, A broadcasts one element per (row, k) and
// both halves advance with a single fused multiply-add. 12 accumulators
// + 2 B registers + 1 broadcast = 15 of the 16 ymm registers live.
//
// Contract matches the generic kernel: acc (row-major 6x16) accumulates
// += pa_panel * pb_panel over kc. FMA skips the intermediate rounding of
// a*b, so results differ from the scalar tier in the last bits — that is
// the documented tolerance in the cross-tier tests.
void avx2_microkernel(std::size_t kc, const float* __restrict__ pa,
                      const float* __restrict__ pb,
                      float* __restrict__ acc) {
  constexpr std::size_t MR = kGemmMR;
  constexpr std::size_t NR = kGemmNR;
  static_assert(MR == 6 && NR == 16, "kernel is tiled for 6x16");

  __m256 c00 = _mm256_loadu_ps(acc + 0 * NR);
  __m256 c01 = _mm256_loadu_ps(acc + 0 * NR + 8);
  __m256 c10 = _mm256_loadu_ps(acc + 1 * NR);
  __m256 c11 = _mm256_loadu_ps(acc + 1 * NR + 8);
  __m256 c20 = _mm256_loadu_ps(acc + 2 * NR);
  __m256 c21 = _mm256_loadu_ps(acc + 2 * NR + 8);
  __m256 c30 = _mm256_loadu_ps(acc + 3 * NR);
  __m256 c31 = _mm256_loadu_ps(acc + 3 * NR + 8);
  __m256 c40 = _mm256_loadu_ps(acc + 4 * NR);
  __m256 c41 = _mm256_loadu_ps(acc + 4 * NR + 8);
  __m256 c50 = _mm256_loadu_ps(acc + 5 * NR);
  __m256 c51 = _mm256_loadu_ps(acc + 5 * NR + 8);

  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = pa + p * MR;
    const float* brow = pb + p * NR;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 a = _mm256_broadcast_ss(arow + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(arow + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(arow + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(arow + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(arow + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(arow + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
  }

  _mm256_storeu_ps(acc + 0 * NR, c00);
  _mm256_storeu_ps(acc + 0 * NR + 8, c01);
  _mm256_storeu_ps(acc + 1 * NR, c10);
  _mm256_storeu_ps(acc + 1 * NR + 8, c11);
  _mm256_storeu_ps(acc + 2 * NR, c20);
  _mm256_storeu_ps(acc + 2 * NR + 8, c21);
  _mm256_storeu_ps(acc + 3 * NR, c30);
  _mm256_storeu_ps(acc + 3 * NR + 8, c31);
  _mm256_storeu_ps(acc + 4 * NR, c40);
  _mm256_storeu_ps(acc + 4 * NR + 8, c41);
  _mm256_storeu_ps(acc + 5 * NR, c50);
  _mm256_storeu_ps(acc + 5 * NR + 8, c51);
}

}  // namespace

bool avx2_kernels_compiled() { return true; }

const GemmKernels& avx2_gemm_kernels() {
  static const GemmKernels table = {
      &avx2_microkernel,
      &generic_pack_a,  // auto-vectorized under this TU's -mavx2
      &generic_pack_b,
      SimdLevel::kAvx2,
  };
  return table;
}

const WinogradBlockKernels& avx2_winograd_block_kernels() {
  static const WinogradBlockKernels table = {
      &wino_f2_input_block, &wino_f2_output_block, &wino_f2_dy_block,
      &wino_f4_input_block, &wino_f4_output_block, &wino_f4_dy_block,
      SimdLevel::kAvx2,
  };
  return table;
}

#else  // !(__AVX2__ && __FMA__)

bool avx2_kernels_compiled() { return false; }

// Unreachable through dispatch (detection clamps to scalar when this TU
// lacks AVX2 codegen) but kept callable so gemm_kernels_for(kAvx2) is
// always safe: it just runs a second generic build.
const GemmKernels& avx2_gemm_kernels() {
  static const GemmKernels table = {
      &generic_microkernel,
      &generic_pack_a,
      &generic_pack_b,
      SimdLevel::kScalar,
  };
  return table;
}

const WinogradBlockKernels& avx2_winograd_block_kernels() {
  static const WinogradBlockKernels table = {
      &wino_f2_input_block, &wino_f2_output_block, &wino_f2_dy_block,
      &wino_f4_input_block, &wino_f4_output_block, &wino_f4_dy_block,
      SimdLevel::kScalar,
  };
  return table;
}

#endif

}  // namespace detail
}  // namespace pf15::gemm
