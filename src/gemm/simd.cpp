// SIMD feature detection and kernel-table dispatch (portable TU).
//
// This file is compiled with the project's baseline flags only — it must
// be safe to execute every instruction here on a CPU without AVX2,
// because this is the code that decides whether AVX2 exists. The AVX2
// kernel tables live in src/gemm/simd_avx2.cpp (per-file -mavx2 -mfma)
// and are only ever *called* after the probe below says yes.
#include "gemm/simd.hpp"

#include <cstdlib>
#include <cstring>

#include "gemm/kernels_generic.hpp"
#include "gemm/winograd_blocks.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace pf15::gemm {

// Implemented in simd_avx2.cpp. avx2_kernels_compiled() reports whether
// that TU was actually built with AVX2 codegen (false on non-x86 or a
// toolchain without the flags), in which case its tables forward to
// generic code and detection clamps to scalar.
namespace detail {
const GemmKernels& avx2_gemm_kernels();
const WinogradBlockKernels& avx2_winograd_block_kernels();
bool avx2_kernels_compiled();
}  // namespace detail

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

namespace {

// CPUID probe: AVX2 + FMA instruction sets, plus OSXSAVE/XGETBV proof
// that the OS saves YMM state on context switch — without the latter the
// instructions exist but executing them faults.
bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx || !fma) return false;
  // XCR0 bits 1 (XMM) and 2 (YMM) must both be enabled by the OS.
  unsigned xcr0_lo = 0, xcr0_hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  if ((xcr0_lo & 0x6u) != 0x6u) return false;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  return (ebx & (1u << 5)) != 0;  // CPUID.7.0:EBX bit 5 = AVX2
#else
  return false;
#endif
}

const GemmKernels& scalar_gemm_kernels() {
  static const GemmKernels table = {
      &generic_microkernel,
      &generic_pack_a,
      &generic_pack_b,
      SimdLevel::kScalar,
  };
  return table;
}

const WinogradBlockKernels& scalar_winograd_block_kernels() {
  static const WinogradBlockKernels table = {
      &wino_f2_input_block, &wino_f2_output_block, &wino_f2_dy_block,
      &wino_f4_input_block, &wino_f4_output_block, &wino_f4_dy_block,
      SimdLevel::kScalar,
  };
  return table;
}

}  // namespace

SimdLevel simd_detected_level() {
  static const SimdLevel level =
      (cpu_supports_avx2_fma() && detail::avx2_kernels_compiled())
          ? SimdLevel::kAvx2
          : SimdLevel::kScalar;
  return level;
}

SimdLevel simd_resolve(SimdLevel detected, const char* env) {
  if (env == nullptr) return detected;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return SimdLevel::kScalar;
  }
  // "avx2" requests the level but can never exceed the hardware; "",
  // "on", "auto" and anything unrecognized keep the detected level.
  return detected;
}

SimdLevel simd_level() {
  static const SimdLevel level =
      simd_resolve(simd_detected_level(), std::getenv("PF15_SIMD"));
  return level;
}

std::string simd_isa_string() { return to_string(simd_level()); }

const GemmKernels& gemm_kernels_for(SimdLevel level) {
  return level == SimdLevel::kAvx2 ? detail::avx2_gemm_kernels()
                                   : scalar_gemm_kernels();
}

const GemmKernels& gemm_kernels() { return gemm_kernels_for(simd_level()); }

const WinogradBlockKernels& winograd_block_kernels_for(SimdLevel level) {
  return level == SimdLevel::kAvx2 ? detail::avx2_winograd_block_kernels()
                                   : scalar_winograd_block_kernels();
}

const WinogradBlockKernels& winograd_block_kernels() {
  return winograd_block_kernels_for(simd_level());
}

}  // namespace pf15::gemm
