#include "gemm/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/aligned.hpp"
#include "common/errors.hpp"
#include "common/thread_pool.hpp"
#include "gemm/simd.hpp"

namespace pf15::gemm {

namespace {

// Blocking parameters (floats). MR x NR is the register tile (fixed by
// the kernel tier, see simd.hpp); KC sizes the packed-A panel for L2, NC
// the packed-B panel for L3. MR must divide MC.
constexpr std::size_t MR = kGemmMR;
constexpr std::size_t NR = kGemmNR;
constexpr std::size_t MC = 96;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 2048;

std::atomic<std::uint64_t> g_flops{0};

// Computes one mc x nc block of C from packed panels through the given
// kernel table. `first_k_block` selects beta-handling: the first K block
// applies beta, later ones accumulate.
void macro_block(const GemmKernels& ker, std::size_t mc, std::size_t nc,
                 std::size_t kc, float alpha, const float* packed_a,
                 const float* packed_b, float beta, bool first_k_block,
                 float* c, std::size_t ldc) {
  for (std::size_t j0 = 0; j0 < nc; j0 += NR) {
    const std::size_t nr = std::min(NR, nc - j0);
    const float* pb = packed_b + (j0 / NR) * (kc * NR);
    for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
      const std::size_t mr = std::min(MR, mc - i0);
      const float* pa = packed_a + (i0 / MR) * (kc * MR);
      alignas(kCacheLineBytes) float acc[MR * NR] = {};
      ker.microkernel(kc, pa, pb, acc);
      float* cblk = c + i0 * ldc + j0;
      if (first_k_block) {
        if (beta == 0.0f) {
          for (std::size_t i = 0; i < mr; ++i) {
            for (std::size_t j = 0; j < nr; ++j) {
              cblk[i * ldc + j] = alpha * acc[i * NR + j];
            }
          }
        } else {
          for (std::size_t i = 0; i < mr; ++i) {
            for (std::size_t j = 0; j < nr; ++j) {
              cblk[i * ldc + j] =
                  beta * cblk[i * ldc + j] + alpha * acc[i * NR + j];
            }
          }
        }
      } else {
        for (std::size_t i = 0; i < mr; ++i) {
          for (std::size_t j = 0; j < nr; ++j) {
            cblk[i * ldc + j] += alpha * acc[i * NR + j];
          }
        }
      }
    }
  }
}

// Serial blocked GEMM over a row-range [m0, m1) of C. Thread-safe as long
// as row ranges are disjoint.
void sgemm_rows(const GemmKernels& ker, bool trans_a, bool trans_b,
                std::size_t m0, std::size_t m1, std::size_t n, std::size_t k,
                float alpha, const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float beta, float* c, std::size_t ldc) {
  AlignedBuffer<float> packed_a(MC * KC);
  AlignedBuffer<float> packed_b(KC * NC);
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      const bool first_k_block = (pc == 0);
      ker.pack_b(b, ldb, trans_b, pc, jc, kc, nc, packed_b.data());
      for (std::size_t ic = m0; ic < m1; ic += MC) {
        const std::size_t mc = std::min(MC, m1 - ic);
        ker.pack_a(a, lda, trans_a, ic, pc, mc, kc, packed_a.data());
        macro_block(ker, mc, nc, kc, alpha, packed_a.data(), packed_b.data(),
                    beta, first_k_block, c + ic * ldc + jc, ldc);
      }
    }
  }
}

// Shared degenerate-product handling: C = beta * C when no multiply will
// run. Returns true if the caller is done.
bool handle_degenerate(std::size_t m, std::size_t n, std::size_t k,
                       float alpha, float beta, float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return true;
  if (k == 0 || alpha == 0.0f) {
    for (std::size_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      if (beta == 0.0f) {
        std::memset(row, 0, n * sizeof(float));
      } else if (beta != 1.0f) {
        for (std::size_t j = 0; j < n; ++j) row[j] *= beta;
      }
    }
    return true;
  }
  return false;
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc) {
  if (handle_degenerate(m, n, k, alpha, beta, c, ldc)) return;
  sgemm_rows(gemm_kernels(), trans_a, trans_b, 0, m, n, k, alpha, a, lda, b,
             ldb, beta, c, ldc);
  g_flops.fetch_add(flops(m, n, k), std::memory_order_relaxed);
}

void sgemm_at(SimdLevel level, bool trans_a, bool trans_b, std::size_t m,
              std::size_t n, std::size_t k, float alpha, const float* a,
              std::size_t lda, const float* b, std::size_t ldb, float beta,
              float* c, std::size_t ldc) {
  if (handle_degenerate(m, n, k, alpha, beta, c, ldc)) return;
  sgemm_rows(gemm_kernels_for(level), trans_a, trans_b, 0, m, n, k, alpha, a,
             lda, b, ldb, beta, c, ldc);
  g_flops.fetch_add(flops(m, n, k), std::memory_order_relaxed);
}

void sgemm_parallel(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                    std::size_t k, float alpha, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb,
                    float beta, float* c, std::size_t ldc) {
  const std::uint64_t work = flops(m, n, k);
  ThreadPool& pool = ThreadPool::global();
  // Below ~8 MFLOP the packing + scheduling overhead dominates.
  if (pool.size() <= 1 || work < (8ull << 20) || m < 2 * MC) {
    sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  if (m == 0 || n == 0) return;
  const GemmKernels& ker = gemm_kernels();
  const std::size_t blocks = (m + MC - 1) / MC;
  const std::size_t per_task =
      std::max<std::size_t>(1, blocks / (pool.size() * 2));
  const std::size_t tasks = (blocks + per_task - 1) / per_task;
  pool.parallel_for(0, tasks, [&](std::size_t t) {
    const std::size_t m0 = t * per_task * MC;
    const std::size_t m1 = std::min(m, (t + 1) * per_task * MC);
    if (m0 < m1) {
      sgemm_rows(ker, trans_a, trans_b, m0, m1, n, k, alpha, a, lda, b, ldb,
                 beta, c, ldc);
    }
  });
  g_flops.fetch_add(work, std::memory_order_relaxed);
}

void sgemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float beta, float* c,
                 std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * ldc + j] = alpha * static_cast<float>(acc) +
                       (beta == 0.0f ? 0.0f : beta * c[i * ldc + j]);
    }
  }
}

std::uint64_t executed_flops() {
  return g_flops.load(std::memory_order_relaxed);
}

void reset_executed_flops() { g_flops.store(0, std::memory_order_relaxed); }

}  // namespace pf15::gemm
