// Single-precision GEMM substrate.
//
// The paper's kernels run on MKL 2017's deep-learning primitives; we build
// our own: a cache-blocked, register-tiled SGEMM with operand packing
// (Goto/BLIS style) and an optional thread-parallel driver. Deep-learning
// GEMMs are often "tall-skinny" (large M·K, small N = minibatch), which is
// exactly the regime DeepBench highlights (§II-A); the blocking parameters
// below are chosen so small-N problems still fill registers reasonably.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gemm/simd.hpp"

namespace pf15::gemm {

/// C (MxN) = alpha * op(A) (MxK) * op(B) (KxN) + beta * C.
/// Row-major storage with explicit leading dimensions. Runs through the
/// runtime-dispatched kernel tier (simd.hpp): AVX2+FMA where the cpuid
/// probe confirms it, the scalar tier otherwise or under PF15_SIMD=off.
void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc);

/// sgemm pinned to an explicit kernel tier, bypassing the runtime
/// dispatch. Benches and tests use this to race tiers against each other
/// in one process; production code should call sgemm.
void sgemm_at(SimdLevel level, bool trans_a, bool trans_b, std::size_t m,
              std::size_t n, std::size_t k, float alpha, const float* a,
              std::size_t lda, const float* b, std::size_t ldb, float beta,
              float* c, std::size_t ldc);

/// Same contract as sgemm but parallelised over row blocks of C using the
/// global thread pool. Falls back to the serial path for small problems.
void sgemm_parallel(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                    std::size_t k, float alpha, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb,
                    float beta, float* c, std::size_t ldc);

/// Triple-loop reference implementation used by tests as ground truth.
void sgemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float beta, float* c,
                 std::size_t ldc);

/// Number of fused multiply-add FLOPs a GEMM of this size performs
/// (counting one FMA as two FLOPs, the SDE convention from §V).
inline std::uint64_t flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2ull * m * n * k;
}

/// Cumulative FLOPs executed by sgemm/sgemm_parallel on this thread's
/// view since process start. The perf module uses this as our stand-in
/// for Intel SDE instruction counting (§V): tests assert the analytic
/// per-layer formulas against this instrumented count.
std::uint64_t executed_flops();
void reset_executed_flops();

}  // namespace pf15::gemm
