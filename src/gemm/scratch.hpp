// Per-thread kernel scratch buffers with a high-water-mark shrink policy.
//
// The convolution backends are stateless; their per-call scratch
// (lowered matrices, transform-domain tiles) lives in thread_local
// vectors so one backend instance can serve a batch-parallel loop. The
// buffers are reused across calls, and shrunk when the high-water mark
// dwarfs the current problem, so a one-off giant lowering
// (full-resolution climate encoder: ~0.2 GB) doesn't pin that much
// memory per pool thread for the rest of the process.
#pragma once

#include <cstddef>
#include <vector>

namespace pf15::gemm {

/// Returns a pointer to at least `need` floats in `buf`, growing or
/// shrinking it per the policy above. The small slack term keeps tiny
/// problems from re-allocating on every size wiggle.
inline float* thread_scratch(std::vector<float>& buf, std::size_t need) {
  if (buf.size() < need || buf.capacity() > 4 * need + 1024) {
    buf.clear();
    buf.shrink_to_fit();
    buf.resize(need);
  }
  return buf.data();
}

}  // namespace pf15::gemm
