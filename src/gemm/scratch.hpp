// Per-thread kernel scratch with a checkout/return pool.
//
// The convolution backends are stateless; their per-call scratch
// (lowered matrices, transform-domain tiles) comes from a thread-local
// pool of float buffers. A plain `thread_local std::vector` — the
// pre-scheduler design — is NOT safe any more: waits on the
// work-stealing scheduler are help-first, so a kernel that fans out and
// waits (Winograd's transform-domain GEMMs, a parallel im2col GEMM) can
// execute *another* task nested on the same thread, and if that task
// grabbed the same thread_local vector it would resize the buffer out
// from under the suspended caller. ScratchLease checks a buffer *out*
// of the pool instead: a nested task on the same thread gets a
// different buffer, and the lease returns it when the call unwinds.
// Pool depth therefore equals the deepest nesting ever reached on the
// thread (small), not the task count.
//
// Buffers keep their capacity across checkouts and are shrunk at
// checkout when the high-water mark dwarfs the current problem, so a
// one-off giant lowering (full-resolution climate encoder: ~0.2 GB)
// doesn't pin that much memory per worker thread for the rest of the
// process.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace pf15::gemm {

namespace detail {
inline std::vector<std::unique_ptr<std::vector<float>>>& scratch_pool() {
  thread_local std::vector<std::unique_ptr<std::vector<float>>> pool;
  return pool;
}
}  // namespace detail

/// RAII checkout of at least `need` floats from the calling thread's
/// scratch pool. The lease (and every pointer from data()) stays valid
/// across nested scheduler waits — helping tasks on this thread check
/// out different buffers. Construct and destroy on the same thread (a
/// task executes wholly on one thread, so this is automatic).
class ScratchLease {
 public:
  explicit ScratchLease(std::size_t need) {
    auto& pool = detail::scratch_pool();
    if (pool.empty()) {
      buf_ = std::make_unique<std::vector<float>>();
    } else {
      buf_ = std::move(pool.back());
      pool.pop_back();
    }
    // The small slack term keeps tiny problems from re-allocating on
    // every size wiggle.
    if (buf_->size() < need || buf_->capacity() > 4 * need + 1024) {
      buf_->clear();
      buf_->shrink_to_fit();
      buf_->resize(need);
    }
  }
  ~ScratchLease() {
    detail::scratch_pool().push_back(std::move(buf_));
  }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  float* data() { return buf_->data(); }

 private:
  std::unique_ptr<std::vector<float>> buf_;
};

}  // namespace pf15::gemm
