// im2col / col2im lowering for convolution-as-GEMM.
//
// Convolution forward lowers the input into a (C·KH·KW) x (OH·OW) matrix so
// the filter bank (OC x C·KH·KW) multiplies it in one GEMM; col2im is the
// adjoint used by the data-gradient pass. Deconvolution (§III-C) reuses
// these: the paper's observation that "convolutions in the backward pass
// can be used to compute the deconvolutions of the forward pass" is exactly
// swapping which of {im2col-GEMM, GEMM-col2im} runs in which direction.
#pragma once

#include <cstddef>

namespace pf15::gemm {

/// Geometry of a 2-D convolution (square-independent: H and W separate).
struct ConvGeom {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kernel_h = 0, kernel_w = 0;
  std::size_t stride_h = 1, stride_w = 1;
  std::size_t pad_h = 0, pad_w = 0;

  std::size_t out_h() const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  std::size_t out_w() const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  /// Rows of the lowered matrix: C * KH * KW.
  std::size_t lowered_rows() const { return in_c * kernel_h * kernel_w; }
  /// Columns of the lowered matrix: OH * OW.
  std::size_t lowered_cols() const { return out_h() * out_w(); }
};

/// Lower one image (CHW, contiguous) into `col` with layout
/// (C*KH*KW) x (OH*OW), row-major. Out-of-bounds taps contribute zero.
void im2col(const ConvGeom& g, const float* image, float* col);

/// Adjoint of im2col: scatter-add `col` back into `image` (CHW).
/// `image` must be zeroed by the caller if overwrite semantics are wanted.
void col2im(const ConvGeom& g, const float* col, float* image);

}  // namespace pf15::gemm
