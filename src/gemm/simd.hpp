// Runtime SIMD dispatch for the kernel tier.
//
// One binary runs everywhere: the packed-GEMM microkernel, the operand
// pack routines and the Winograd SoA block transforms each exist in a
// portable scalar build and (on x86) an AVX2+FMA build compiled in its
// own translation unit with per-file `-mavx2 -mfma` (see CMakeLists.txt).
// CPU features are probed once via cpuid — AVX2 and FMA instruction
// bits plus the OSXSAVE/XCR0 check that the OS actually saves YMM state
// — and the winning kernel table is selected through function pointers.
// Nothing outside the AVX2 TU is ever compiled with AVX2 flags, so no
// wide instruction can execute before (or without) the dispatch.
//
// `PF15_SIMD=off` (also `scalar`/`0`) forces the scalar tier at runtime;
// the scalar kernels are the pre-dispatch implementations compiled with
// portable flags, so the override reproduces the old numerics bit for
// bit. FMA changes rounding (a*b+c in one rounding step), so AVX2 and
// scalar results legitimately differ in the last bits — comparisons
// across tiers must be tolerance-based (see tests/test_simd.cpp).
#pragma once

#include <cstddef>
#include <string>

namespace pf15::gemm {

enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
};

const char* to_string(SimdLevel level);

/// Register tile of the packed SGEMM (rows x columns of C per microkernel
/// call). Shared by every tier: the pack layouts are tier-independent.
inline constexpr std::size_t kGemmMR = 6;
inline constexpr std::size_t kGemmNR = 16;

/// Lane count of the Winograd SoA block transforms: element (pos, lane)
/// of a block lives at [pos * kWinoBlockLanes + lane]. Eight floats is
/// exactly one ymm register.
inline constexpr std::size_t kWinoBlockLanes = 8;

/// What the cpuid probe found (cached after the first call). Reports
/// kAvx2 only when the hardware, the OS and this binary's AVX2 TU all
/// support it.
SimdLevel simd_detected_level();

/// The level dispatch actually runs at: the detected level clamped by the
/// PF15_SIMD environment override. Cached after the first call — set the
/// variable before the first kernel runs.
SimdLevel simd_level();

/// Pure resolution rule behind simd_level(), separated for testing:
/// `env` is the raw PF15_SIMD value (null = unset). "off"/"scalar"/"0"
/// force kScalar; ""/"on"/"auto" (and unknown values) keep the detected
/// level; "avx2" requests AVX2 but never exceeds what was detected.
SimdLevel simd_resolve(SimdLevel detected, const char* env);

/// The active level's name — folded into the conv plan cache's hardware
/// signature so plans tuned under one ISA are re-tuned, not trusted,
/// under another.
std::string simd_isa_string();

/// Kernel table for the packed SGEMM. `microkernel` accumulates a
/// kGemmMR x kGemmNR row-major tile: acc += pa_panel * pb_panel over kc.
/// `pack_a` packs an mc x kc block of op(A) into MR-row panels, `pack_b`
/// a kc x nc block of op(B) into NR-column panels (zero-padded ragged
/// edges; layouts documented at the implementations).
struct GemmKernels {
  void (*microkernel)(std::size_t kc, const float* pa, const float* pb,
                      float* acc);
  void (*pack_a)(const float* a, std::size_t lda, bool trans,
                 std::size_t row0, std::size_t col0, std::size_t mc,
                 std::size_t kc, float* dst);
  void (*pack_b)(const float* b, std::size_t ldb, bool trans,
                 std::size_t row0, std::size_t col0, std::size_t kc,
                 std::size_t nc, float* dst);
  SimdLevel level;
};

/// The table for simd_level() (what sgemm runs), and the explicit
/// accessor benches and tests use to race tiers against each other.
const GemmKernels& gemm_kernels();
const GemmKernels& gemm_kernels_for(SimdLevel level);

/// Winograd SoA block transforms (kWinoBlockLanes tiles per call) for the
/// F(2x2,3x3) and F(4x4,3x3) tile sets: input = B^T d B, output =
/// A^T m A, dy = A dY A^T. Same SoA contracts as src/gemm/winograd.cpp.
struct WinogradBlockKernels {
  void (*f2_input)(const float* d, float* v);
  void (*f2_output)(const float* m, float* y);
  void (*f2_dy)(const float* dy, float* dm);
  void (*f4_input)(const float* d, float* v);
  void (*f4_output)(const float* m, float* y);
  void (*f4_dy)(const float* dy, float* dm);
  SimdLevel level;
};

const WinogradBlockKernels& winograd_block_kernels();
const WinogradBlockKernels& winograd_block_kernels_for(SimdLevel level);

}  // namespace pf15::gemm
