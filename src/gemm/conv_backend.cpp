#include "gemm/conv_backend.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>
#include <tuple>
#include <unistd.h>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gemm/fft_conv.hpp"
#include "gemm/gemm.hpp"
#include "gemm/scratch.hpp"
#include "gemm/simd.hpp"
#include "gemm/winograd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/json.hpp"

namespace pf15::gemm {

const char* to_string(ConvBackendKind kind) {
  switch (kind) {
    case ConvBackendKind::kIm2col:
      return "im2col";
    case ConvBackendKind::kWinograd:
      return "winograd";
    case ConvBackendKind::kFft:
      return "fft";
    case ConvBackendKind::kDirect:
      return "direct";
  }
  return "unknown";
}

std::optional<ConvBackendKind> parse_backend(const std::string& name) {
  if (name == "im2col") return ConvBackendKind::kIm2col;
  if (name == "winograd") return ConvBackendKind::kWinograd;
  if (name == "fft") return ConvBackendKind::kFft;
  if (name == "direct") return ConvBackendKind::kDirect;
  return std::nullopt;
}

const char* to_string(ConvPhase phase) {
  switch (phase) {
    case ConvPhase::kForward:
      return "forward";
    case ConvPhase::kBackwardData:
      return "backward_data";
    case ConvPhase::kBackwardFilter:
      return "backward_filter";
  }
  return "unknown";
}

std::optional<ConvPhase> parse_phase(const std::string& name) {
  if (name == "forward") return ConvPhase::kForward;
  if (name == "backward_data") return ConvPhase::kBackwardData;
  if (name == "backward_filter") return ConvPhase::kBackwardFilter;
  return std::nullopt;
}

namespace {

auto key_tuple(const ConvProblem& p) {
  return std::make_tuple(p.geom.in_c, p.geom.in_h, p.geom.in_w,
                         p.geom.kernel_h, p.geom.kernel_w, p.geom.stride_h,
                         p.geom.stride_w, p.geom.pad_h, p.geom.pad_w,
                         p.out_c);
}

}  // namespace

bool ConvProblem::operator<(const ConvProblem& other) const {
  return key_tuple(*this) < key_tuple(other);
}

bool ConvProblem::operator==(const ConvProblem& other) const {
  return key_tuple(*this) == key_tuple(other);
}

void ConvBackend::backward_data(const ConvProblem&, const float*,
                                const float*, float*, bool) const {
  PF15_CHECK_MSG(false, name() << " declines the backward_data phase");
}

void ConvBackend::backward_filter(const ConvProblem&, const float*,
                                  const float*, float*, bool) const {
  PF15_CHECK_MSG(false, name() << " declines the backward_filter phase");
}

namespace {

void add_bias(const float* bias, std::size_t out_c, std::size_t plane,
              float* out) {
  if (bias == nullptr) return;
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const float b = bias[oc];
    float* dst = out + oc * plane;
    for (std::size_t i = 0; i < plane; ++i) dst[i] += b;
  }
}

// ---- im2col + GEMM ---------------------------------------------------------

class Im2colBackend final : public ConvBackend {
 public:
  ConvBackendKind kind() const override { return ConvBackendKind::kIm2col; }

  bool applicable(const ConvProblem&, ConvPhase) const override {
    return true;
  }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool parallel_ok) const override {
    const std::size_t m = p.out_c;
    const std::size_t n = p.geom.lowered_cols();
    const std::size_t k = p.geom.lowered_rows();
    ScratchLease col_lease(k * n);
    float* col = col_lease.data();
    im2col(p.geom, image, col);
    if (parallel_ok) {
      sgemm_parallel(false, false, m, n, k, 1.0f, weight, k, col, n, 0.0f,
                     out, n);
    } else {
      sgemm(false, false, m, n, k, 1.0f, weight, k, col, n, 0.0f, out, n);
    }
    add_bias(bias, m, n, out);
  }

  void backward_data(const ConvProblem& p, const float* dout,
                     const float* weight, float* din,
                     bool parallel_ok) const override {
    const std::size_t m = p.out_c;
    const std::size_t n = p.geom.lowered_cols();
    const std::size_t k = p.geom.lowered_rows();
    ScratchLease dcol_lease(k * n);
    float* dcol = dcol_lease.data();
    // dcol = W^T (k x m) * dout (m x n); din = col2im(dcol).
    if (parallel_ok) {
      sgemm_parallel(true, false, k, n, m, 1.0f, weight, k, dout, n, 0.0f,
                     dcol, n);
    } else {
      sgemm(true, false, k, n, m, 1.0f, weight, k, dout, n, 0.0f, dcol, n);
    }
    std::memset(din, 0,
                p.geom.in_c * p.geom.in_h * p.geom.in_w * sizeof(float));
    col2im(p.geom, dcol, din);
  }

  void backward_filter(const ConvProblem& p, const float* image,
                       const float* dout, float* dweight,
                       bool parallel_ok) const override {
    const std::size_t m = p.out_c;
    const std::size_t n = p.geom.lowered_cols();
    const std::size_t k = p.geom.lowered_rows();
    ScratchLease col_lease(k * n);
    float* col = col_lease.data();
    // dW += dout (m x n) * col^T (n x k); recompute col from the input
    // rather than caching it across the batch.
    im2col(p.geom, image, col);
    if (parallel_ok) {
      sgemm_parallel(false, true, m, k, n, 1.0f, dout, n, col, n, 1.0f,
                     dweight, k);
    } else {
      sgemm(false, true, m, k, n, 1.0f, dout, n, col, n, 1.0f, dweight, k);
    }
  }

  std::uint64_t flops(const ConvProblem& p, ConvPhase) const override {
    // Forward, dX and dW are the three GEMM transposes of the same
    // (OC) x (OH·OW) x (C·KH·KW) product — identical FLOP count.
    return gemm::flops(p.out_c, p.geom.lowered_cols(),
                       p.geom.lowered_rows());
  }
};

// ---- Winograd F(2x2/4x4, 3x3) ----------------------------------------------

/// (OC, IC, 3, 3) -> (IC, OC, 3, 3) with each 3x3 tap rotated 180° — the
/// filter bank of the adjoint (backward-data) convolution.
void rotate_swap_filters(const float* weight, std::size_t in_c,
                         std::size_t out_c, float* wt) {
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      const float* src = weight + (oc * in_c + ic) * 9;
      float* dst = wt + (ic * out_c + oc) * 9;
      for (int i = 0; i < 9; ++i) dst[i] = src[8 - i];
    }
  }
}

class WinogradBackend final : public ConvBackend {
 public:
  /// The transformed filter bank U, computed once per (weights, geometry)
  /// and shared read-only by every image of a batch.
  struct Prep final : ConvPrep {
    std::vector<float> u;
    WinogradTile tile = WinogradTile::kF2x2;
  };

  ConvBackendKind kind() const override {
    return ConvBackendKind::kWinograd;
  }

  bool applicable(const ConvProblem& p, ConvPhase phase) const override {
    const bool fwd = winograd_applicable(p.geom.kernel_h, p.geom.stride_h) &&
                     p.geom.kernel_w == 3 && p.geom.stride_w == 1 &&
                     p.geom.pad_h == p.geom.pad_w;
    if (phase != ConvPhase::kBackwardData) return fwd;
    // Backward-data runs as a forward convolution of dout with the
    // rotated, channel-transposed filters at padding 2 - pad, so the
    // original padding must not exceed the kernel radius times two.
    return fwd && p.geom.pad_h <= 2;
  }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool parallel_ok) const override {
    winograd_conv3x3(image, p.geom.in_c, p.geom.in_h, p.geom.in_w, weight,
                     p.out_c, p.geom.pad_h, bias, out,
                     winograd_pick_tile(p.geom.out_h(), p.geom.out_w()),
                     parallel_ok);
  }

  std::unique_ptr<ConvPrep> prepare_forward(
      const ConvProblem& p, const float* weight) const override {
    auto prep = std::make_unique<Prep>();
    prep->tile = winograd_pick_tile(p.geom.out_h(), p.geom.out_w());
    prep->u.resize(
        winograd_filter_xform_floats(p.geom.in_c, p.out_c, prep->tile));
    winograd_transform_filters(weight, p.geom.in_c, p.out_c, prep->tile,
                               prep->u.data());
    return prep;
  }

  void forward_prepared(const ConvProblem& p, const ConvPrep* prep,
                        const float* image, const float* weight,
                        const float* bias, float* out,
                        bool parallel_ok) const override {
    if (prep == nullptr) {
      forward(p, image, weight, bias, out, parallel_ok);
      return;
    }
    const auto& wp = static_cast<const Prep&>(*prep);
    winograd_conv3x3_pre(image, p.geom.in_c, p.geom.in_h, p.geom.in_w,
                         wp.u.data(), p.out_c, p.geom.pad_h, bias, out,
                         wp.tile, parallel_ok);
  }

  void backward_data(const ConvProblem& p, const float* dout,
                     const float* weight, float* din,
                     bool parallel_ok) const override {
    // din = dout * rot180(W)^T(channels): a stride-1 3x3 convolution of
    // the (OC, OH, OW) gradient at padding 2 - pad producing (C, H, W).
    const ConvGeom& g = p.geom;
    const std::size_t in_c = g.in_c;
    const std::size_t out_c = p.out_c;
    ScratchLease wt_lease(in_c * out_c * 9);
    float* wt = wt_lease.data();
    rotate_swap_filters(weight, in_c, out_c, wt);
    winograd_conv3x3(dout, out_c, g.out_h(), g.out_w(), wt, in_c,
                     2 - g.pad_h, nullptr, din,
                     winograd_pick_tile(g.in_h, g.in_w), parallel_ok);
  }

  std::unique_ptr<ConvPrep> prepare_backward_data(
      const ConvProblem& p, const float* weight) const override {
    // The adjoint convolution's filter bank — rot180, channels swapped —
    // and its Winograd transform depend only on the weights: build both
    // once here instead of per image inside the batch loop.
    const ConvGeom& g = p.geom;
    auto prep = std::make_unique<Prep>();
    prep->tile = winograd_pick_tile(g.in_h, g.in_w);
    std::vector<float> wt(g.in_c * p.out_c * 9);
    rotate_swap_filters(weight, g.in_c, p.out_c, wt.data());
    // Adjoint conv: IC = out_c (dout channels), OC = in_c.
    prep->u.resize(
        winograd_filter_xform_floats(p.out_c, g.in_c, prep->tile));
    winograd_transform_filters(wt.data(), p.out_c, g.in_c, prep->tile,
                               prep->u.data());
    return prep;
  }

  void backward_data_prepared(const ConvProblem& p, const ConvPrep* prep,
                              const float* dout, const float* weight,
                              float* din, bool parallel_ok) const override {
    if (prep == nullptr) {
      backward_data(p, dout, weight, din, parallel_ok);
      return;
    }
    const ConvGeom& g = p.geom;
    const auto& wp = static_cast<const Prep&>(*prep);
    winograd_conv3x3_pre(dout, p.out_c, g.out_h(), g.out_w(), wp.u.data(),
                         g.in_c, 2 - g.pad_h, nullptr, din, wp.tile,
                         parallel_ok);
  }

  void backward_filter(const ConvProblem& p, const float* image,
                       const float* dout, float* dweight,
                       bool parallel_ok) const override {
    const ConvGeom& g = p.geom;
    winograd_backward_filter3x3(image, g.in_c, g.in_h, g.in_w, dout, p.out_c,
                                g.pad_h, dweight,
                                winograd_pick_tile(g.out_h(), g.out_w()),
                                parallel_ok);
  }

  std::uint64_t flops(const ConvProblem& p, ConvPhase phase) const override {
    const ConvGeom& g = p.geom;
    switch (phase) {
      case ConvPhase::kBackwardData:
        return winograd_flops(p.out_c, g.in_c, g.out_h(), g.out_w(),
                              2 - std::min<std::size_t>(g.pad_h, 2),
                              winograd_pick_tile(g.in_h, g.in_w));
      case ConvPhase::kBackwardFilter:
        return winograd_backward_filter_flops(
            g.in_c, p.out_c, g.in_h, g.in_w, g.pad_h,
            winograd_pick_tile(g.out_h(), g.out_w()));
      case ConvPhase::kForward:
        break;
    }
    return winograd_flops(g.in_c, p.out_c, g.in_h, g.in_w, g.pad_h,
                          winograd_pick_tile(g.out_h(), g.out_w()));
  }
};

// ---- FFT -------------------------------------------------------------------

class FftBackend final : public ConvBackend {
 public:
  ConvBackendKind kind() const override { return ConvBackendKind::kFft; }

  bool applicable(const ConvProblem& p, ConvPhase) const override {
    // The spectral kernels take one kernel/stride/pad per problem
    // (square taps); within that shape every phase is implemented — the
    // gradients are exact adjoints in the transform domain
    // (fft_conv2d_backward_*), so FFT races im2col/Winograd/direct in
    // the backward autotunes too.
    return p.geom.kernel_h == p.geom.kernel_w &&
           p.geom.stride_h == p.geom.stride_w &&
           p.geom.pad_h == p.geom.pad_w;
  }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool /*parallel_ok*/) const override {
    fft_conv2d(image, p.geom.in_c, p.geom.in_h, p.geom.in_w, weight,
               p.out_c, p.geom.kernel_h, p.geom.stride_h, p.geom.pad_h,
               bias, out);
  }

  void backward_data(const ConvProblem& p, const float* dout,
                     const float* weight, float* din,
                     bool /*parallel_ok*/) const override {
    fft_conv2d_backward_data(dout, p.geom.in_c, p.geom.in_h, p.geom.in_w,
                             weight, p.out_c, p.geom.kernel_h,
                             p.geom.stride_h, p.geom.pad_h, din);
  }

  void backward_filter(const ConvProblem& p, const float* image,
                       const float* dout, float* dweight,
                       bool /*parallel_ok*/) const override {
    fft_conv2d_backward_filter(image, p.geom.in_c, p.geom.in_h, p.geom.in_w,
                               dout, p.out_c, p.geom.kernel_h,
                               p.geom.stride_h, p.geom.pad_h, dweight);
  }

  std::uint64_t flops(const ConvProblem& p, ConvPhase) const override {
    // Every phase moves the same transform count and pointwise work
    // (see fft_conv.hpp), so the model is phase-independent.
    return fft_conv_flops(p.geom.in_c, p.out_c, p.geom.in_h, p.geom.in_w,
                          p.geom.kernel_h, p.geom.pad_h);
  }
};

// ---- direct (small-spatial) ------------------------------------------------

// Plain nested loops, no lowering and no transform. Arithmetic equals the
// GEMM path's, but for tiny output grids (detection heads on a coarse
// grid, the last layers of a pooled stack) skipping the (C·K²) x (OH·OW)
// materialisation beats both GEMM setup and transform overhead.
class DirectBackend final : public ConvBackend {
 public:
  ConvBackendKind kind() const override { return ConvBackendKind::kDirect; }

  bool applicable(const ConvProblem&, ConvPhase) const override {
    return true;
  }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool /*parallel_ok*/) const override {
    const ConvGeom& g = p.geom;
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t taps = g.kernel_h * g.kernel_w;
    // Interior output range on each axis: every kernel tap lands in
    // bounds, so the tap loops run branch-free and vectorize. Border
    // rows/columns (only where pad > 0) keep the per-tap bounds checks.
    // The accumulation order matches the branchy path exactly — for
    // interior pixels the skipped branches were never taken — so the
    // split changes no results, only the inner-loop shape.
    const std::size_t oy_lo =
        std::min(oh, (g.pad_h + g.stride_h - 1) / g.stride_h);
    const std::size_t oy_hi =
        (g.in_h + g.pad_h >= g.kernel_h)
            ? std::min(oh, (g.in_h + g.pad_h - g.kernel_h) / g.stride_h + 1)
            : oy_lo;
    const std::size_t ox_lo =
        std::min(ow, (g.pad_w + g.stride_w - 1) / g.stride_w);
    const std::size_t ox_hi = std::max(
        ox_lo,
        (g.in_w + g.pad_w >= g.kernel_w)
            ? std::min(ow, (g.in_w + g.pad_w - g.kernel_w) / g.stride_w + 1)
            : ox_lo);

    const auto border_pixel = [&](std::size_t oc, std::size_t oy,
                                  std::size_t ox, float b) {
      const std::ptrdiff_t iy0 =
          static_cast<std::ptrdiff_t>(oy * g.stride_h) -
          static_cast<std::ptrdiff_t>(g.pad_h);
      const std::ptrdiff_t ix0 =
          static_cast<std::ptrdiff_t>(ox * g.stride_w) -
          static_cast<std::ptrdiff_t>(g.pad_w);
      float acc = b;
      for (std::size_t ic = 0; ic < g.in_c; ++ic) {
        const float* plane = image + ic * g.in_h * g.in_w;
        const float* w = weight + (oc * g.in_c + ic) * taps;
        for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
          const std::ptrdiff_t sy = iy0 + static_cast<std::ptrdiff_t>(ky);
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            continue;
          }
          const float* row = plane + static_cast<std::size_t>(sy) * g.in_w;
          const float* wrow = w + ky * g.kernel_w;
          for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
            const std::ptrdiff_t sx = ix0 + static_cast<std::ptrdiff_t>(kx);
            if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w)) {
              continue;
            }
            acc += row[static_cast<std::size_t>(sx)] * wrow[kx];
          }
        }
      }
      return acc;
    };

    for (std::size_t oc = 0; oc < p.out_c; ++oc) {
      float* dst = out + oc * oh * ow;
      const float b = bias != nullptr ? bias[oc] : 0.0f;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        const bool row_interior = oy >= oy_lo && oy < oy_hi;
        if (!row_interior) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            dst[oy * ow + ox] = border_pixel(oc, oy, ox, b);
          }
          continue;
        }
        for (std::size_t ox = 0; ox < ox_lo; ++ox) {
          dst[oy * ow + ox] = border_pixel(oc, oy, ox, b);
        }
        const std::size_t iy0 = oy * g.stride_h - g.pad_h;
        for (std::size_t ox = ox_lo; ox < ox_hi; ++ox) {
          const std::size_t ix0 = ox * g.stride_w - g.pad_w;
          float acc = b;
          for (std::size_t ic = 0; ic < g.in_c; ++ic) {
            const float* plane = image + ic * g.in_h * g.in_w;
            const float* w = weight + (oc * g.in_c + ic) * taps;
            for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
              const float* row = plane + (iy0 + ky) * g.in_w + ix0;
              const float* wrow = w + ky * g.kernel_w;
              for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
                acc += row[kx] * wrow[kx];
              }
            }
          }
          dst[oy * ow + ox] = acc;
        }
        for (std::size_t ox = ox_hi; ox < ow; ++ox) {
          dst[oy * ow + ox] = border_pixel(oc, oy, ox, b);
        }
      }
    }
  }

  void backward_data(const ConvProblem& p, const float* dout,
                     const float* weight, float* din,
                     bool /*parallel_ok*/) const override {
    const ConvGeom& g = p.geom;
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t taps = g.kernel_h * g.kernel_w;
    std::memset(din, 0, g.in_c * g.in_h * g.in_w * sizeof(float));
    for (std::size_t oc = 0; oc < p.out_c; ++oc) {
      const float* dplane = dout + oc * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        const std::ptrdiff_t iy0 =
            static_cast<std::ptrdiff_t>(oy * g.stride_h) -
            static_cast<std::ptrdiff_t>(g.pad_h);
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const std::ptrdiff_t ix0 =
              static_cast<std::ptrdiff_t>(ox * g.stride_w) -
              static_cast<std::ptrdiff_t>(g.pad_w);
          const float dv = dplane[oy * ow + ox];
          for (std::size_t ic = 0; ic < g.in_c; ++ic) {
            float* plane = din + ic * g.in_h * g.in_w;
            const float* w = weight + (oc * g.in_c + ic) * taps;
            for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
              const std::ptrdiff_t sy = iy0 + static_cast<std::ptrdiff_t>(ky);
              if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) {
                continue;
              }
              float* row = plane + static_cast<std::size_t>(sy) * g.in_w;
              const float* wrow = w + ky * g.kernel_w;
              for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
                const std::ptrdiff_t sx =
                    ix0 + static_cast<std::ptrdiff_t>(kx);
                if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w)) {
                  continue;
                }
                row[static_cast<std::size_t>(sx)] += dv * wrow[kx];
              }
            }
          }
        }
      }
    }
  }

  void backward_filter(const ConvProblem& p, const float* image,
                       const float* dout, float* dweight,
                       bool /*parallel_ok*/) const override {
    const ConvGeom& g = p.geom;
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t taps = g.kernel_h * g.kernel_w;
    for (std::size_t oc = 0; oc < p.out_c; ++oc) {
      const float* dplane = dout + oc * oh * ow;
      for (std::size_t ic = 0; ic < g.in_c; ++ic) {
        const float* plane = image + ic * g.in_h * g.in_w;
        float* dw = dweight + (oc * g.in_c + ic) * taps;
        for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
          for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
            double acc = 0.0;
            for (std::size_t oy = 0; oy < oh; ++oy) {
              const std::ptrdiff_t sy =
                  static_cast<std::ptrdiff_t>(oy * g.stride_h + ky) -
                  static_cast<std::ptrdiff_t>(g.pad_h);
              if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) {
                continue;
              }
              const float* row =
                  plane + static_cast<std::size_t>(sy) * g.in_w;
              const float* drow = dplane + oy * ow;
              for (std::size_t ox = 0; ox < ow; ++ox) {
                const std::ptrdiff_t sx =
                    static_cast<std::ptrdiff_t>(ox * g.stride_w + kx) -
                    static_cast<std::ptrdiff_t>(g.pad_w);
                if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w)) {
                  continue;
                }
                acc += static_cast<double>(row[static_cast<std::size_t>(sx)]) *
                       drow[ox];
              }
            }
            dw[ky * g.kernel_w + kx] += static_cast<float>(acc);
          }
        }
      }
    }
  }

  std::uint64_t flops(const ConvProblem& p, ConvPhase) const override {
    // Same multiply-add count as the GEMM formulation, every phase.
    return gemm::flops(p.out_c, p.geom.lowered_cols(),
                       p.geom.lowered_rows());
  }
};

}  // namespace

const ConvBackend& backend(ConvBackendKind kind) {
  static const Im2colBackend im2col_backend;
  static const WinogradBackend winograd_backend;
  static const FftBackend fft_backend;
  static const DirectBackend direct_backend;
  switch (kind) {
    case ConvBackendKind::kIm2col:
      return im2col_backend;
    case ConvBackendKind::kWinograd:
      return winograd_backend;
    case ConvBackendKind::kFft:
      return fft_backend;
    case ConvBackendKind::kDirect:
      return direct_backend;
  }
  PF15_CHECK_MSG(false, "unknown ConvBackendKind "
                            << static_cast<int>(kind));
  return im2col_backend;  // unreachable
}

const std::vector<const ConvBackend*>& all_backends() {
  static const std::vector<const ConvBackend*> table = {
      &backend(ConvBackendKind::kIm2col),
      &backend(ConvBackendKind::kWinograd),
      &backend(ConvBackendKind::kFft),
      &backend(ConvBackendKind::kDirect),
  };
  return table;
}

std::vector<const ConvBackend*> applicable_backends(const ConvProblem& p,
                                                    ConvPhase phase) {
  std::vector<const ConvBackend*> out;
  for (const ConvBackend* b : all_backends()) {
    if (b->applicable(p, phase)) out.push_back(b);
  }
  return out;
}

std::vector<const ConvBackend*> candidate_backends(
    const ConvProblem& p, const AutotuneOptions& opt, ConvPhase phase) {
  const double ref_flops = static_cast<double>(
      backend(ConvBackendKind::kIm2col).flops(p, phase));
  std::vector<const ConvBackend*> out;
  for (const ConvBackend* b : applicable_backends(p, phase)) {
    // Reject hopeless candidates on the analytic cost model alone: timing
    // FFT on a 3x3 problem would cost orders of magnitude more than the
    // convolution it is supposed to speed up. The direct backend's flops
    // equal im2col's, so it is never rejected — intentional: on this
    // code's scalar SGEMM it *wins* big geometries outright (e.g. the
    // 512->768 5x5 climate encoder stage measured), and timing it costs
    // the same order as timing im2col.
    if (b->kind() != ConvBackendKind::kIm2col &&
        static_cast<double>(b->flops(p, phase)) >
            opt.flops_cutoff * ref_flops) {
      continue;
    }
    out.push_back(b);
  }
  return out;
}

double benchmark_backend(const ConvBackend& b, const ConvProblem& p,
                         const AutotuneOptions& opt, ConvPhase phase,
                         bool parallel_ok) {
  PF15_CHECK_MSG(b.applicable(p, phase),
                 "benchmark_backend: " << b.name() << " not applicable to "
                                       << to_string(phase));
  const ConvGeom& g = p.geom;
  // Deterministic synthetic operands: the same (problem, phase) always
  // tunes on the same data, so timings (and in quiet conditions, winners)
  // are reproducible across processes.
  std::uint64_t stream = static_cast<std::uint64_t>(phase) + 1;
  for (auto v : {g.in_c, g.in_h, g.in_w, g.kernel_h, g.kernel_w, g.stride_h,
                 g.stride_w, g.pad_h, g.pad_w, p.out_c}) {
    stream = stream * 0x100000001b3ULL + v;
  }
  Rng rng(opt.seed, stream);
  const std::size_t image_n = g.in_c * g.in_h * g.in_w;
  const std::size_t out_n = p.out_c * g.lowered_cols();
  std::vector<float> image(image_n);
  for (auto& v : image) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> weight(p.out_c * g.lowered_rows());
  for (auto& v : weight) v = rng.uniform(-0.5f, 0.5f);
  std::vector<float> bias(p.out_c);
  for (auto& v : bias) v = rng.uniform(-0.2f, 0.2f);
  std::vector<float> dout;
  if (phase != ConvPhase::kForward) {
    dout.resize(out_n);
    for (auto& v : dout) v = rng.uniform(-1.0f, 1.0f);
  }

  std::vector<float> result(phase == ConvPhase::kForward  ? out_n
                            : phase == ConvPhase::kBackwardData
                                ? image_n
                                : weight.size(),
                            0.0f);
  const auto run = [&] {
    switch (phase) {
      case ConvPhase::kForward:
        b.forward(p, image.data(), weight.data(), bias.data(), result.data(),
                  parallel_ok);
        break;
      case ConvPhase::kBackwardData:
        b.backward_data(p, dout.data(), weight.data(), result.data(),
                        parallel_ok);
        break;
      case ConvPhase::kBackwardFilter:
        b.backward_filter(p, image.data(), dout.data(), result.data(),
                          parallel_ok);
        break;
    }
  };

  for (std::size_t i = 0; i < opt.warmup; ++i) run();
  double best = 0.0;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, opt.reps); ++i) {
    WallTimer timer;
    run();
    const double us = timer.seconds() * 1e6;
    if (i == 0 || us < best) best = us;
  }
  return best;
}

ConvPlan autotune(const ConvProblem& p, const AutotuneOptions& opt,
                  ConvPhase phase, bool parallel_ok) {
  const ConvBackend& reference = backend(ConvBackendKind::kIm2col);
  ConvPlan plan;
  plan.tuned = true;
  plan.im2col_us = benchmark_backend(reference, p, opt, phase, parallel_ok);
  plan.kind = ConvBackendKind::kIm2col;
  plan.best_us = plan.im2col_us;
  for (const ConvBackend* b : candidate_backends(p, opt, phase)) {
    if (b->kind() == ConvBackendKind::kIm2col) continue;
    const double us = benchmark_backend(*b, p, opt, phase, parallel_ok);
    if (us < plan.best_us) {
      plan.best_us = us;
      plan.kind = b->kind();
    }
  }
  return plan;
}

// ---- plan cache ------------------------------------------------------------

namespace {

constexpr const char* kCacheFormat = "pf15.conv_plan_cache";

/// Hardware signature stored in the cache header: plans are timings, so a
/// file tuned on a different machine shape must not silently win here.
/// The active SIMD tier is part of the shape — an AVX2-tuned file names
/// winners that a scalar-only host (or a PF15_SIMD=off run) would pick
/// differently, and vice versa, so a mismatch re-tunes from scratch.
perf::Json hardware_signature() {
  perf::Json hw = perf::Json::object();
  hw.set("threads",
         static_cast<std::size_t>(std::thread::hardware_concurrency()));
  hw.set("pointer_bits", 8 * sizeof(void*));
  hw.set("isa", simd_isa_string());
  return hw;
}

/// RAII holder for the global cache: loads the persisted plans on first
/// use, writes them back when the process exits normally.
struct GlobalConvPlanCache {
  ConvPlanCache cache;

  GlobalConvPlanCache() {
    const std::string path = ConvPlanCache::persist_path();
    if (path.empty()) return;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return;  // cold start is normal
    try {
      cache.load(path);
      PF15_DEBUG("conv plan cache: warm start with " << cache.size()
                                                     << " plans from "
                                                     << path);
    } catch (const Error& e) {
      PF15_WARN("conv plan cache: ignoring " << path << " (" << e.what()
                                             << "); tuning from scratch");
    }
  }

  ~GlobalConvPlanCache() {
    const std::string path = ConvPlanCache::persist_path();
    // Nothing measured this run (e.g. a test that only forced overrides):
    // leave whatever is on disk alone rather than clobbering real plans.
    if (path.empty() || cache.tuned_size() == 0) return;
    try {
      cache.save(path);  // save() merges with the file; see its contract
    } catch (...) {
      // Destructor during process teardown: nothing sane left to do.
    }
  }
};

/// One record of the on-disk format, decoupled from the cache's private
/// key type so parsing is shared by load() and save()'s disk merge.
struct StoredPlan {
  ConvProblem problem;
  ConvPhase phase = ConvPhase::kForward;
  bool parallel_ok = false;
  std::size_t batch = 1;  // bucket (power of two)
  ConvPlan plan;
};

/// Reads and validates a parsed plan-cache document: header (format name,
/// version, hardware signature) and every entry. Throws IoError on any
/// defect; `origin` names the file or stream in the message.
std::vector<StoredPlan> parse_plan_doc(const perf::Json& doc,
                                       const std::string& origin) {
  const auto reject = [&](const std::string& why) -> IoError {
    return IoError("conv plan cache: " + origin + ": " + why);
  };
  try {
    if (doc.get("format").as_string() != kCacheFormat) {
      throw reject("not a conv plan cache file");
    }
    const int version = static_cast<int>(doc.get("version").as_number());
    if (version != kConvPlanCacheVersion) {
      throw reject("format version " + std::to_string(version) +
                   " != expected " +
                   std::to_string(kConvPlanCacheVersion));
    }
    const perf::Json& hw = doc.get("hardware");
    const perf::Json current = hardware_signature();
    if (hw.get("threads").as_number() !=
            current.get("threads").as_number() ||
        hw.get("pointer_bits").as_number() !=
            current.get("pointer_bits").as_number() ||
        hw.get("isa").as_string() != current.get("isa").as_string()) {
      throw reject("hardware signature mismatch (plans are timings; "
                   "re-tune on this machine)");
    }
    const perf::Json& entries = doc.get("plans");
    if (!entries.is_array()) throw reject("'plans' is not an array");
    std::vector<StoredPlan> out;
    out.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const perf::Json& entry = entries.at(i);
      StoredPlan stored;
      ConvGeom& g = stored.problem.geom;
      const auto field = [&](const char* name) {
        return static_cast<std::size_t>(entry.get(name).as_number());
      };
      g.in_c = field("in_c");
      g.in_h = field("in_h");
      g.in_w = field("in_w");
      g.kernel_h = field("kernel_h");
      g.kernel_w = field("kernel_w");
      g.stride_h = field("stride_h");
      g.stride_w = field("stride_w");
      g.pad_h = field("pad_h");
      g.pad_w = field("pad_w");
      stored.problem.out_c = field("out_c");
      const auto phase = parse_phase(entry.get("phase").as_string());
      if (!phase.has_value()) {
        throw reject("unknown phase '" + entry.get("phase").as_string() +
                     "'");
      }
      stored.phase = *phase;
      stored.parallel_ok = entry.get("parallel_ok").as_bool();
      stored.batch = conv_batch_bucket(field("batch"));
      const auto kind = parse_backend(entry.get("backend").as_string());
      if (!kind.has_value()) {
        throw reject("unknown backend '" + entry.get("backend").as_string() +
                     "'");
      }
      stored.plan.kind = *kind;
      // A plan naming a backend that cannot run its (problem, phase) —
      // hand-edited or corrupted file — must never reach dispatch: the
      // kernels trust applicability (e.g. Winograd reads weights as 3x3).
      if (!backend(*kind).applicable(stored.problem, *phase)) {
        throw reject(std::string("backend '") + to_string(*kind) +
                     "' not applicable to stored problem in phase " +
                     to_string(*phase));
      }
      stored.plan.best_us = entry.get("best_us").as_number();
      stored.plan.im2col_us = entry.get("im2col_us").as_number();
      stored.plan.tuned = entry.get("tuned").as_bool();
      out.push_back(stored);
    }
    return out;
  } catch (const IoError&) {
    throw;
  } catch (const Error& e) {
    throw reject(e.what());
  }
}

std::vector<StoredPlan> parse_plan_file(const std::string& path) {
  return parse_plan_doc(perf::Json::read_file(path), path);
}

}  // namespace

std::size_t conv_batch_bucket(std::size_t n) {
  if (n <= 1) return 1;
  std::size_t bucket = 1;
  while (bucket < n) {
    // Saturate at the largest representable power of two: doubling again
    // would wrap to 0 and loop forever on absurd n (e.g. a corrupted
    // "batch" field in a plan-cache document).
    if (bucket > std::numeric_limits<std::size_t>::max() / 2) return bucket;
    bucket <<= 1;
  }
  return bucket;
}

ConvPlanCache& ConvPlanCache::global() {
  static GlobalConvPlanCache holder;
  return holder.cache;
}

std::string ConvPlanCache::persist_path() {
  const char* env = std::getenv("PF15_CONV_PLAN_CACHE");
  if (env == nullptr) return "pf15_conv_plans.json";
  const std::string value = env;
  if (value.empty() || value == "off" || value == "0" || value == "none") {
    return "";
  }
  return value;
}

namespace {

/// Registry counters the plan cache feeds. First-sight tunes are the
/// expensive event (a micro-benchmark race per miss), so they also carry
/// a duration histogram and a trace span — the warm-start story is now
/// checkable from a metrics snapshot: a warm process shows zero misses.
struct CacheMetrics {
  obs::Counter& hits = obs::MetricsRegistry::global().counter(
      "pf15_convplan_hits_total", "plan cache lookups answered from memory");
  obs::Counter& misses = obs::MetricsRegistry::global().counter(
      "pf15_convplan_misses_total", "plan cache first-sight tunes");
  obs::Histogram& tune_seconds = obs::MetricsRegistry::global().histogram(
      "pf15_convplan_tune_seconds",
      obs::Histogram::exponential_bounds(1e-4, 4.0, 12),
      "autotune micro-benchmark wall time per miss");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

ConvPlan ConvPlanCache::plan(const ConvProblem& p, ConvPhase phase,
                             bool parallel_ok, std::size_t batch) {
  const Key key{p, phase, parallel_ok, conv_batch_bucket(batch)};
  UniqueLock lock(mutex_);
  for (;;) {
    auto ov = overrides_.find(OverrideKey{p, phase});
    if (ov != overrides_.end()) {
      ++hits_;
      cache_metrics().hits.add(1);
      return ov->second;
    }
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      cache_metrics().hits.add(1);
      return it->second;
    }
    // Dedupe concurrent first sights of the same key: exactly one thread
    // tunes it (racing duplicate micro-benchmarks would distort each
    // other's timings), the rest wait for the result. Distinct keys tune
    // concurrently, and cache hits never block behind a tuning miss.
    if (tuning_.insert(key).second) break;
    tuning_cv_.wait(lock);
  }
  ++misses_;
  cache_metrics().misses.add(1);
  lock.unlock();
  ConvPlan tuned;
  WallTimer tune_timer;
  try {
    // Dynamic span name: the tuned geometry, so a trace shows *which*
    // first sight cost the time. Built only under an enabled tracer.
    obs::TraceSpan tune_span(
        obs::trace_enabled()
            ? "conv_tune " + std::string(to_string(phase)) + " " +
                  std::to_string(p.geom.in_c) + "x" +
                  std::to_string(p.geom.in_h) + "x" +
                  std::to_string(p.geom.in_w) + "->" +
                  std::to_string(p.out_c) + " k" +
                  std::to_string(p.geom.kernel_h) + " b" +
                  std::to_string(conv_batch_bucket(batch))
            : std::string(),
        "tune");
    tuned = autotune(p, opt_, phase, parallel_ok);
  } catch (...) {
    lock.lock();
    tuning_.erase(key);
    tuning_cv_.notify_all();
    throw;
  }
  cache_metrics().tune_seconds.observe(tune_timer.seconds());
  lock.lock();
  plans_.emplace(key, tuned);
  tuning_.erase(key);
  tuning_cv_.notify_all();
  // An insert() that landed while we were timing is an operator override
  // and must win over the tuned result.
  auto ov = overrides_.find(OverrideKey{p, phase});
  if (ov != overrides_.end()) return ov->second;
  return plans_.find(key)->second;
}

std::optional<ConvPlan> ConvPlanCache::lookup(const ConvProblem& p,
                                              ConvPhase phase,
                                              bool parallel_ok,
                                              std::size_t batch) const {
  MutexLock lock(mutex_);
  auto ov = overrides_.find(OverrideKey{p, phase});
  if (ov != overrides_.end()) return ov->second;
  auto it = plans_.find(Key{p, phase, parallel_ok, conv_batch_bucket(batch)});
  if (it == plans_.end()) return std::nullopt;
  return it->second;
}

void ConvPlanCache::insert(const ConvProblem& p, const ConvPlan& plan) {
  insert(p, ConvPhase::kForward, plan);
}

void ConvPlanCache::insert(const ConvProblem& p, ConvPhase phase,
                           const ConvPlan& plan) {
  MutexLock lock(mutex_);
  overrides_[OverrideKey{p, phase}] = plan;
}

namespace {

/// Renders a set of keyed plans as the canonical cache document.
perf::Json render_plan_doc(
    const std::map<std::tuple<ConvProblem, ConvPhase, bool, std::size_t>,
                   ConvPlan>& plans) {
  perf::Json doc = perf::Json::object();
  doc.set("format", kCacheFormat);
  doc.set("version", kConvPlanCacheVersion);
  doc.set("hardware", hardware_signature());
  perf::Json entries = perf::Json::array();
  for (const auto& [key, plan] : plans) {
    const auto& [problem, phase, parallel_ok, batch] = key;
    const ConvGeom& g = problem.geom;
    perf::Json entry = perf::Json::object();
    entry.set("in_c", g.in_c);
    entry.set("in_h", g.in_h);
    entry.set("in_w", g.in_w);
    entry.set("kernel_h", g.kernel_h);
    entry.set("kernel_w", g.kernel_w);
    entry.set("stride_h", g.stride_h);
    entry.set("stride_w", g.stride_w);
    entry.set("pad_h", g.pad_h);
    entry.set("pad_w", g.pad_w);
    entry.set("out_c", problem.out_c);
    entry.set("phase", to_string(phase));
    entry.set("parallel_ok", parallel_ok);
    entry.set("batch", batch);
    entry.set("backend", to_string(plan.kind));
    entry.set("best_us", plan.best_us);
    entry.set("im2col_us", plan.im2col_us);
    entry.set("tuned", plan.tuned);
    entries.push_back(std::move(entry));
  }
  doc.set("plans", std::move(entries));
  return doc;
}

}  // namespace

void ConvPlanCache::save(const std::string& path) const {
  // Start from what is already on disk, if anything valid is there:
  // another process may have tuned geometries this one never saw, and a
  // plain rewrite from the in-memory view would drop their measurements
  // (the lost-update race between a long-lived trainer and short bench
  // runs sharing a path).
  std::map<Key, ConvPlan> merged;
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      for (const StoredPlan& s : parse_plan_file(path)) {
        merged[Key{s.problem, s.phase, s.parallel_ok, s.batch}] = s.plan;
      }
    } catch (const Error&) {
      // Unreadable or mismatched file: rewrite it from scratch below.
    }
  }
  {
    MutexLock lock(mutex_);
    for (const auto& [key, plan] : plans_) {
      // Persist measurements only (see the header contract); our own
      // measurements beat whatever the file had for the same key.
      if (plan.tuned) merged[key] = plan;
    }
  }

  const perf::Json doc = render_plan_doc(merged);
  // Atomic publish: concurrent processes saving the same path each write
  // their own temp file; rename makes the last writer win with no torn
  // reads for concurrent loaders.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<unsigned>(::getpid()));
  doc.write_file(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("ConvPlanCache::save: cannot rename " + tmp + " to " +
                  path);
  }
}

std::string ConvPlanCache::dump() const {
  std::map<Key, ConvPlan> tuned;
  {
    MutexLock lock(mutex_);
    for (const auto& [key, plan] : plans_) {
      if (plan.tuned) tuned[key] = plan;
    }
  }
  return render_plan_doc(tuned).dump();
}

void ConvPlanCache::load(const std::string& path) {
  const std::vector<StoredPlan> stored = parse_plan_file(path);
  MutexLock lock(mutex_);
  // emplace: entries already in memory win — they are this process's
  // freshest measurements (or explicit overrides).
  for (const StoredPlan& s : stored) {
    plans_.emplace(Key{s.problem, s.phase, s.parallel_ok, s.batch}, s.plan);
  }
}

void ConvPlanCache::load_document(const std::string& text,
                                  const std::string& origin) {
  const std::vector<StoredPlan> stored =
      parse_plan_doc(perf::Json::parse(text), origin);
  MutexLock lock(mutex_);
  for (const StoredPlan& s : stored) {
    plans_.emplace(Key{s.problem, s.phase, s.parallel_ok, s.batch}, s.plan);
  }
}

void ConvPlanCache::clear() {
  MutexLock lock(mutex_);
  plans_.clear();
  overrides_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::size_t ConvPlanCache::size() const {
  MutexLock lock(mutex_);
  return plans_.size() + overrides_.size();
}

std::size_t ConvPlanCache::tuned_size() const {
  MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, plan] : plans_) {
    if (plan.tuned) ++n;
  }
  return n;
}

std::uint64_t ConvPlanCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t ConvPlanCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

}  // namespace pf15::gemm
