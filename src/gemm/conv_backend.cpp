#include "gemm/conv_backend.hpp"

#include <algorithm>
#include <tuple>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gemm/fft_conv.hpp"
#include "gemm/gemm.hpp"
#include "gemm/winograd.hpp"

namespace pf15::gemm {

const char* to_string(ConvBackendKind kind) {
  switch (kind) {
    case ConvBackendKind::kIm2col:
      return "im2col";
    case ConvBackendKind::kWinograd:
      return "winograd";
    case ConvBackendKind::kFft:
      return "fft";
    case ConvBackendKind::kDirect:
      return "direct";
  }
  return "unknown";
}

std::optional<ConvBackendKind> parse_backend(const std::string& name) {
  if (name == "im2col") return ConvBackendKind::kIm2col;
  if (name == "winograd") return ConvBackendKind::kWinograd;
  if (name == "fft") return ConvBackendKind::kFft;
  if (name == "direct") return ConvBackendKind::kDirect;
  return std::nullopt;
}

namespace {

auto key_tuple(const ConvProblem& p) {
  return std::make_tuple(p.geom.in_c, p.geom.in_h, p.geom.in_w,
                         p.geom.kernel_h, p.geom.kernel_w, p.geom.stride_h,
                         p.geom.stride_w, p.geom.pad_h, p.geom.pad_w,
                         p.out_c);
}

}  // namespace

bool ConvProblem::operator<(const ConvProblem& other) const {
  return key_tuple(*this) < key_tuple(other);
}

bool ConvProblem::operator==(const ConvProblem& other) const {
  return key_tuple(*this) == key_tuple(other);
}

namespace {

void add_bias(const float* bias, std::size_t out_c, std::size_t plane,
              float* out) {
  if (bias == nullptr) return;
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const float b = bias[oc];
    float* dst = out + oc * plane;
    for (std::size_t i = 0; i < plane; ++i) dst[i] += b;
  }
}

// ---- im2col + GEMM ---------------------------------------------------------

class Im2colBackend final : public ConvBackend {
 public:
  ConvBackendKind kind() const override { return ConvBackendKind::kIm2col; }

  bool applicable(const ConvProblem&) const override { return true; }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool parallel_ok) const override {
    const std::size_t m = p.out_c;
    const std::size_t n = p.geom.lowered_cols();
    const std::size_t k = p.geom.lowered_rows();
    // Per-thread scratch: one backend instance serves a batch-parallel
    // loop, each pool thread lowers into its own buffer. Shrink when the
    // high-water mark dwarfs the current problem, so a one-off giant
    // lowering (full-resolution climate encoder: ~0.2 GB) doesn't pin
    // that much memory per pool thread for the rest of the process.
    thread_local std::vector<float> col;
    const std::size_t need = k * n;
    if (col.size() < need || col.capacity() > 4 * need) {
      col.clear();
      col.shrink_to_fit();
      col.resize(need);
    }
    im2col(p.geom, image, col.data());
    if (parallel_ok) {
      sgemm_parallel(false, false, m, n, k, 1.0f, weight, k, col.data(), n,
                     0.0f, out, n);
    } else {
      sgemm(false, false, m, n, k, 1.0f, weight, k, col.data(), n, 0.0f,
            out, n);
    }
    add_bias(bias, m, n, out);
  }

  std::uint64_t flops(const ConvProblem& p) const override {
    return gemm::flops(p.out_c, p.geom.lowered_cols(),
                       p.geom.lowered_rows());
  }
};

// ---- Winograd F(2x2, 3x3) --------------------------------------------------

class WinogradBackend final : public ConvBackend {
 public:
  ConvBackendKind kind() const override {
    return ConvBackendKind::kWinograd;
  }

  bool applicable(const ConvProblem& p) const override {
    return winograd_applicable(p.geom.kernel_h, p.geom.stride_h) &&
           p.geom.kernel_w == 3 && p.geom.stride_w == 1 &&
           p.geom.pad_h == p.geom.pad_w;
  }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool /*parallel_ok*/) const override {
    winograd_conv3x3(image, p.geom.in_c, p.geom.in_h, p.geom.in_w, weight,
                     p.out_c, p.geom.pad_h, bias, out);
  }

  std::uint64_t flops(const ConvProblem& p) const override {
    return winograd_flops(p.geom.in_c, p.out_c, p.geom.in_h, p.geom.in_w,
                          p.geom.pad_h);
  }
};

// ---- FFT -------------------------------------------------------------------

class FftBackend final : public ConvBackend {
 public:
  ConvBackendKind kind() const override { return ConvBackendKind::kFft; }

  bool applicable(const ConvProblem& p) const override {
    // fft_conv2d takes one kernel/stride/pad per problem (square taps).
    return p.geom.kernel_h == p.geom.kernel_w &&
           p.geom.stride_h == p.geom.stride_w &&
           p.geom.pad_h == p.geom.pad_w;
  }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool /*parallel_ok*/) const override {
    fft_conv2d(image, p.geom.in_c, p.geom.in_h, p.geom.in_w, weight,
               p.out_c, p.geom.kernel_h, p.geom.stride_h, p.geom.pad_h,
               bias, out);
  }

  std::uint64_t flops(const ConvProblem& p) const override {
    return fft_conv_flops(p.geom.in_c, p.out_c, p.geom.in_h, p.geom.in_w,
                          p.geom.kernel_h, p.geom.pad_h);
  }
};

// ---- direct (small-spatial) ------------------------------------------------

// Plain nested loops, no lowering and no transform. Arithmetic equals the
// GEMM path's, but for tiny output grids (detection heads on a coarse
// grid, the last layers of a pooled stack) skipping the (C·K²) x (OH·OW)
// materialisation beats both GEMM setup and transform overhead.
class DirectBackend final : public ConvBackend {
 public:
  ConvBackendKind kind() const override { return ConvBackendKind::kDirect; }

  bool applicable(const ConvProblem&) const override { return true; }

  void forward(const ConvProblem& p, const float* image, const float* weight,
               const float* bias, float* out,
               bool /*parallel_ok*/) const override {
    const ConvGeom& g = p.geom;
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t taps = g.kernel_h * g.kernel_w;
    for (std::size_t oc = 0; oc < p.out_c; ++oc) {
      float* dst = out + oc * oh * ow;
      const float b = bias != nullptr ? bias[oc] : 0.0f;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        const std::ptrdiff_t iy0 =
            static_cast<std::ptrdiff_t>(oy * g.stride_h) -
            static_cast<std::ptrdiff_t>(g.pad_h);
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const std::ptrdiff_t ix0 =
              static_cast<std::ptrdiff_t>(ox * g.stride_w) -
              static_cast<std::ptrdiff_t>(g.pad_w);
          float acc = b;
          for (std::size_t ic = 0; ic < g.in_c; ++ic) {
            const float* plane = image + ic * g.in_h * g.in_w;
            const float* w = weight + (oc * g.in_c + ic) * taps;
            for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
              const std::ptrdiff_t sy = iy0 + static_cast<std::ptrdiff_t>(ky);
              if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) {
                continue;
              }
              const float* row =
                  plane + static_cast<std::size_t>(sy) * g.in_w;
              const float* wrow = w + ky * g.kernel_w;
              for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
                const std::ptrdiff_t sx =
                    ix0 + static_cast<std::ptrdiff_t>(kx);
                if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w)) {
                  continue;
                }
                acc += row[static_cast<std::size_t>(sx)] * wrow[kx];
              }
            }
          }
          dst[oy * ow + ox] = acc;
        }
      }
    }
  }

  std::uint64_t flops(const ConvProblem& p) const override {
    // Same multiply-add count as the GEMM formulation.
    return gemm::flops(p.out_c, p.geom.lowered_cols(),
                       p.geom.lowered_rows());
  }
};

}  // namespace

const ConvBackend& backend(ConvBackendKind kind) {
  static const Im2colBackend im2col_backend;
  static const WinogradBackend winograd_backend;
  static const FftBackend fft_backend;
  static const DirectBackend direct_backend;
  switch (kind) {
    case ConvBackendKind::kIm2col:
      return im2col_backend;
    case ConvBackendKind::kWinograd:
      return winograd_backend;
    case ConvBackendKind::kFft:
      return fft_backend;
    case ConvBackendKind::kDirect:
      return direct_backend;
  }
  PF15_CHECK_MSG(false, "unknown ConvBackendKind "
                            << static_cast<int>(kind));
  return im2col_backend;  // unreachable
}

const std::vector<const ConvBackend*>& all_backends() {
  static const std::vector<const ConvBackend*> table = {
      &backend(ConvBackendKind::kIm2col),
      &backend(ConvBackendKind::kWinograd),
      &backend(ConvBackendKind::kFft),
      &backend(ConvBackendKind::kDirect),
  };
  return table;
}

std::vector<const ConvBackend*> applicable_backends(const ConvProblem& p) {
  std::vector<const ConvBackend*> out;
  for (const ConvBackend* b : all_backends()) {
    if (b->applicable(p)) out.push_back(b);
  }
  return out;
}

std::vector<const ConvBackend*> candidate_backends(
    const ConvProblem& p, const AutotuneOptions& opt) {
  const double ref_flops =
      static_cast<double>(backend(ConvBackendKind::kIm2col).flops(p));
  std::vector<const ConvBackend*> out;
  for (const ConvBackend* b : applicable_backends(p)) {
    // Reject hopeless candidates on the analytic cost model alone: timing
    // FFT on a 3x3 problem would cost orders of magnitude more than the
    // convolution it is supposed to speed up. The direct backend's flops
    // equal im2col's, so it is never rejected — intentional: on this
    // code's scalar SGEMM it *wins* big geometries outright (e.g. the
    // 512->768 5x5 climate encoder stage: 306ms direct vs 507ms im2col
    // measured), and timing it costs the same order as timing im2col.
    if (b->kind() != ConvBackendKind::kIm2col &&
        static_cast<double>(b->flops(p)) > opt.flops_cutoff * ref_flops) {
      continue;
    }
    out.push_back(b);
  }
  return out;
}

double benchmark_backend(const ConvBackend& b, const ConvProblem& p,
                         const AutotuneOptions& opt, bool parallel_ok) {
  PF15_CHECK_MSG(b.applicable(p),
                 "benchmark_backend: " << b.name()
                                       << " not applicable to problem");
  const ConvGeom& g = p.geom;
  // Deterministic synthetic operands: the same problem always tunes on
  // the same data, so timings (and in quiet conditions, winners) are
  // reproducible across processes.
  std::uint64_t stream = 0;
  for (auto v : {g.in_c, g.in_h, g.in_w, g.kernel_h, g.kernel_w, g.stride_h,
                 g.stride_w, g.pad_h, g.pad_w, p.out_c}) {
    stream = stream * 0x100000001b3ULL + v;
  }
  Rng rng(opt.seed, stream);
  std::vector<float> image(g.in_c * g.in_h * g.in_w);
  for (auto& v : image) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> weight(p.out_c * g.lowered_rows());
  for (auto& v : weight) v = rng.uniform(-0.5f, 0.5f);
  std::vector<float> bias(p.out_c);
  for (auto& v : bias) v = rng.uniform(-0.2f, 0.2f);
  std::vector<float> out(p.out_c * g.lowered_cols());

  for (std::size_t i = 0; i < opt.warmup; ++i) {
    b.forward(p, image.data(), weight.data(), bias.data(), out.data(),
              parallel_ok);
  }
  double best = 0.0;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, opt.reps); ++i) {
    WallTimer timer;
    b.forward(p, image.data(), weight.data(), bias.data(), out.data(),
              parallel_ok);
    const double us = timer.seconds() * 1e6;
    if (i == 0 || us < best) best = us;
  }
  return best;
}

ConvPlan autotune(const ConvProblem& p, const AutotuneOptions& opt,
                  bool parallel_ok) {
  const ConvBackend& reference = backend(ConvBackendKind::kIm2col);
  ConvPlan plan;
  plan.tuned = true;
  plan.im2col_us = benchmark_backend(reference, p, opt, parallel_ok);
  plan.kind = ConvBackendKind::kIm2col;
  plan.best_us = plan.im2col_us;
  for (const ConvBackend* b : candidate_backends(p, opt)) {
    if (b->kind() == ConvBackendKind::kIm2col) continue;
    const double us = benchmark_backend(*b, p, opt, parallel_ok);
    if (us < plan.best_us) {
      plan.best_us = us;
      plan.kind = b->kind();
    }
  }
  return plan;
}

ConvPlanCache& ConvPlanCache::global() {
  static ConvPlanCache cache;
  return cache;
}

ConvPlan ConvPlanCache::plan(const ConvProblem& p, bool parallel_ok) {
  const Key key{p, parallel_ok};
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      return it->second;
    }
    // Dedupe concurrent first sights of the same key: exactly one thread
    // tunes it (racing duplicate micro-benchmarks would distort each
    // other's timings), the rest wait for the result. Distinct keys tune
    // concurrently, and cache hits never block behind a tuning miss.
    if (tuning_.insert(key).second) break;
    tuning_cv_.wait(lock);
  }
  ++misses_;
  lock.unlock();
  ConvPlan tuned;
  try {
    tuned = autotune(p, opt_, parallel_ok);
  } catch (...) {
    lock.lock();
    tuning_.erase(key);
    tuning_cv_.notify_all();
    throw;
  }
  lock.lock();
  // emplace, not operator[]: an insert() that landed while we were timing
  // is an operator override and must win over the tuned result.
  plans_.emplace(key, tuned);
  tuning_.erase(key);
  tuning_cv_.notify_all();
  return plans_.find(key)->second;
}

std::optional<ConvPlan> ConvPlanCache::lookup(const ConvProblem& p,
                                              bool parallel_ok) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(Key{p, parallel_ok});
  if (it == plans_.end()) return std::nullopt;
  return it->second;
}

void ConvPlanCache::insert(const ConvProblem& p, const ConvPlan& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_[Key{p, false}] = plan;
  plans_[Key{p, true}] = plan;
}

void ConvPlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::size_t ConvPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

std::uint64_t ConvPlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ConvPlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace pf15::gemm
