#include "gemm/winograd.hpp"

#include <vector>

#include "common/aligned.hpp"
#include "common/errors.hpp"
#include "gemm/gemm.hpp"

namespace pf15::gemm {

bool winograd_applicable(std::size_t kernel, std::size_t stride) {
  return kernel == 3 && stride == 1;
}

namespace {

// F(2x2, 3x3) transforms.
//   Input:  V = B^T d B, d a 4x4 input tile.
//   Filter: U = G g G^T, g the 3x3 kernel.
//   Output: Y = A^T M A,  M the 4x4 elementwise product accumulated
//           over input channels.

// B^T d B computed directly (B^T rows: [1,0,-1,0],[0,1,1,0],[0,-1,1,0],
// [0,1,0,-1]).
inline void transform_input_tile(const float d[4][4], float v[16]) {
  float t[4][4];
  for (int col = 0; col < 4; ++col) {
    t[0][col] = d[0][col] - d[2][col];
    t[1][col] = d[1][col] + d[2][col];
    t[2][col] = d[2][col] - d[1][col];
    t[3][col] = d[1][col] - d[3][col];
  }
  for (int row = 0; row < 4; ++row) {
    v[row * 4 + 0] = t[row][0] - t[row][2];
    v[row * 4 + 1] = t[row][1] + t[row][2];
    v[row * 4 + 2] = t[row][2] - t[row][1];
    v[row * 4 + 3] = t[row][1] - t[row][3];
  }
}

// G g G^T with G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]].
inline void transform_filter(const float g[9], float u[16]) {
  float t[4][3];
  for (int col = 0; col < 3; ++col) {
    const float g0 = g[0 * 3 + col];
    const float g1 = g[1 * 3 + col];
    const float g2 = g[2 * 3 + col];
    t[0][col] = g0;
    t[1][col] = 0.5f * (g0 + g1 + g2);
    t[2][col] = 0.5f * (g0 - g1 + g2);
    t[3][col] = g2;
  }
  for (int row = 0; row < 4; ++row) {
    const float t0 = t[row][0];
    const float t1 = t[row][1];
    const float t2 = t[row][2];
    u[row * 4 + 0] = t0;
    u[row * 4 + 1] = 0.5f * (t0 + t1 + t2);
    u[row * 4 + 2] = 0.5f * (t0 - t1 + t2);
    u[row * 4 + 3] = t2;
  }
}

// A^T m A with A^T = [[1,1,1,0],[0,1,-1,-1]].
inline void transform_output_tile(const float m[16], float y[2][2]) {
  float t[2][4];
  for (int col = 0; col < 4; ++col) {
    t[0][col] = m[0 * 4 + col] + m[1 * 4 + col] + m[2 * 4 + col];
    t[1][col] = m[1 * 4 + col] - m[2 * 4 + col] - m[3 * 4 + col];
  }
  for (int row = 0; row < 2; ++row) {
    y[row][0] = t[row][0] + t[row][1] + t[row][2];
    y[row][1] = t[row][1] - t[row][2] - t[row][3];
  }
}

}  // namespace

void winograd_conv3x3(const float* image, std::size_t in_c, std::size_t h,
                      std::size_t w, const float* weight,
                      std::size_t out_c, std::size_t pad,
                      const float* bias, float* output) {
  PF15_CHECK(in_c > 0 && out_c > 0);
  PF15_CHECK(h + 2 * pad >= 3 && w + 2 * pad >= 3);
  const std::size_t oh = h + 2 * pad - 2;
  const std::size_t ow = w + 2 * pad - 2;
  const std::size_t tiles_y = (oh + 1) / 2;
  const std::size_t tiles_x = (ow + 1) / 2;
  const std::size_t tiles = tiles_y * tiles_x;

  // U[k]: (out_c x in_c) for each of 16 transform positions.
  std::vector<float> u(16 * out_c * in_c);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      float u_tile[16];
      transform_filter(weight + (oc * in_c + ic) * 9, u_tile);
      for (int k = 0; k < 16; ++k) {
        u[static_cast<std::size_t>(k) * out_c * in_c + oc * in_c + ic] =
            u_tile[k];
      }
    }
  }

  // V[k]: (in_c x tiles).
  std::vector<float> v(16 * in_c * tiles);
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    const float* plane = image + ic * h * w;
    for (std::size_t ty = 0; ty < tiles_y; ++ty) {
      for (std::size_t tx = 0; tx < tiles_x; ++tx) {
        float d[4][4];
        for (int dy = 0; dy < 4; ++dy) {
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(2 * ty + dy) -
              static_cast<std::ptrdiff_t>(pad);
          for (int dx = 0; dx < 4; ++dx) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(2 * tx + dx) -
                static_cast<std::ptrdiff_t>(pad);
            d[dy][dx] =
                (sy < 0 || sy >= static_cast<std::ptrdiff_t>(h) || sx < 0 ||
                 sx >= static_cast<std::ptrdiff_t>(w))
                    ? 0.0f
                    : plane[static_cast<std::size_t>(sy) * w +
                            static_cast<std::size_t>(sx)];
          }
        }
        float v_tile[16];
        transform_input_tile(d, v_tile);
        const std::size_t tile = ty * tiles_x + tx;
        for (int k = 0; k < 16; ++k) {
          v[static_cast<std::size_t>(k) * in_c * tiles + ic * tiles +
            tile] = v_tile[k];
        }
      }
    }
  }

  // M[k] = U[k] (out_c x in_c) * V[k] (in_c x tiles): 16 GEMMs.
  std::vector<float> m(16 * out_c * tiles);
  for (int k = 0; k < 16; ++k) {
    sgemm(false, false, out_c, tiles, in_c, 1.0f,
          u.data() + static_cast<std::size_t>(k) * out_c * in_c, in_c,
          v.data() + static_cast<std::size_t>(k) * in_c * tiles, tiles,
          0.0f, m.data() + static_cast<std::size_t>(k) * out_c * tiles,
          tiles);
  }

  // Inverse transform + scatter into the output (crop ragged edges).
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    float* out_plane = output + oc * oh * ow;
    const float b = bias != nullptr ? bias[oc] : 0.0f;
    for (std::size_t ty = 0; ty < tiles_y; ++ty) {
      for (std::size_t tx = 0; tx < tiles_x; ++tx) {
        const std::size_t tile = ty * tiles_x + tx;
        float m_tile[16];
        for (int k = 0; k < 16; ++k) {
          m_tile[k] = m[static_cast<std::size_t>(k) * out_c * tiles +
                        oc * tiles + tile];
        }
        float y[2][2];
        transform_output_tile(m_tile, y);
        for (int dy = 0; dy < 2; ++dy) {
          const std::size_t oy = 2 * ty + static_cast<std::size_t>(dy);
          if (oy >= oh) continue;
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t ox = 2 * tx + static_cast<std::size_t>(dx);
            if (ox >= ow) continue;
            out_plane[oy * ow + ox] = y[dy][dx] + b;
          }
        }
      }
    }
  }
}

std::uint64_t winograd_flops(std::size_t in_c, std::size_t out_c,
                             std::size_t h, std::size_t w,
                             std::size_t pad) {
  const std::size_t oh = h + 2 * pad - 2;
  const std::size_t ow = w + 2 * pad - 2;
  const std::uint64_t tiles =
      ((oh + 1) / 2) * ((ow + 1) / 2);
  // Dominant term: 16 GEMMs of (out_c x in_c x tiles) multiply-adds.
  // Transforms add ~(32+24) adds per tile per channel; we include them.
  return 16ull * flops(out_c, tiles, in_c) +
         tiles * (in_c * 56ull + out_c * 24ull);
}

}  // namespace pf15::gemm
