#include "gemm/winograd.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/errors.hpp"
#include "common/thread_pool.hpp"
#include "gemm/gemm.hpp"
#include "gemm/scratch.hpp"
#include "gemm/simd.hpp"

namespace pf15::gemm {

const char* to_string(WinogradTile tile) {
  switch (tile) {
    case WinogradTile::kF2x2:
      return "f2x2";
    case WinogradTile::kF4x4:
      return "f4x4";
  }
  return "unknown";
}

bool winograd_applicable(std::size_t kernel, std::size_t stride) {
  return kernel == 3 && stride == 1;
}

WinogradTile winograd_pick_tile(std::size_t out_h, std::size_t out_w) {
  // F(4x4) quadruples the per-tile output, so ragged edges waste more of
  // the grid; only switch once the output comfortably fills 4x4 tiles.
  return (out_h >= 6 && out_w >= 6) ? WinogradTile::kF4x4
                                    : WinogradTile::kF2x2;
}

namespace {

// Transforms process kWinoBlock tiles at once in structure-of-arrays
// layout: element (pos, lane) lives at [pos * kWinoBlock + lane]. The
// block-transform arithmetic itself lives behind the runtime SIMD
// dispatch (simd.hpp): the AVX2 tier's build vectorizes each unit-stride
// lane loop into ymm fused multiply-adds, the scalar tier keeps portable
// codegen. BlockFns<M> maps the tile size to its table entries.
constexpr std::size_t kWinoBlock = kWinoBlockLanes;

template <int M>
struct BlockFns;

template <>
struct BlockFns<2> {
  static auto input(const WinogradBlockKernels& wk) { return wk.f2_input; }
  static auto output(const WinogradBlockKernels& wk) { return wk.f2_output; }
  static auto dy(const WinogradBlockKernels& wk) { return wk.f2_dy; }
};

template <>
struct BlockFns<4> {
  static auto input(const WinogradBlockKernels& wk) { return wk.f4_input; }
  static auto output(const WinogradBlockKernels& wk) { return wk.f4_output; }
  static auto dy(const WinogradBlockKernels& wk) { return wk.f4_dy; }
};

// Traits<M>: the F(MxM, 3x3) transform set. T = M + 2 is the transform
// size, P = T*T the number of transform-domain positions (= GEMMs).
//
// Forward:  Y = A^T [ (G g G^T) ⊙ (B^T d B) ] A
// Filter gradient: dg = G^T [ (A dY A^T) ⊙ (B^T d B) ] G, summed over
// tiles — the exact adjoint of the forward map with respect to g.
template <int M>
struct Traits;

// ---- F(2x2, 3x3) -----------------------------------------------------------
// B^T = [1,0,-1,0; 0,1,1,0; 0,-1,1,0; 0,1,0,-1]
// G   = [1,0,0; .5,.5,.5; .5,-.5,.5; 0,0,1]
// A^T = [1,1,1,0; 0,1,-1,-1]
template <>
struct Traits<2> {
  static constexpr int kM = 2;
  static constexpr int kT = 4;
  // Approximate per-tile transform adds for the analytic cost model.
  static constexpr std::uint64_t kInXformFlops = 56;    // per input channel
  static constexpr std::uint64_t kOutXformFlops = 24;   // per output channel
  static constexpr std::uint64_t kDyXformFlops = 24;    // per output channel
  static constexpr std::uint64_t kInvFilterFlops = 32;  // per (oc, ic) pair

  static void filter(const float* g, float* u) {
    float t[4][3];
    for (int c = 0; c < 3; ++c) {
      const float g0 = g[0 * 3 + c];
      const float g1 = g[1 * 3 + c];
      const float g2 = g[2 * 3 + c];
      t[0][c] = g0;
      t[1][c] = 0.5f * (g0 + g1 + g2);
      t[2][c] = 0.5f * (g0 - g1 + g2);
      t[3][c] = g2;
    }
    for (int r = 0; r < 4; ++r) {
      const float t0 = t[r][0];
      const float t1 = t[r][1];
      const float t2 = t[r][2];
      u[r * 4 + 0] = t0;
      u[r * 4 + 1] = 0.5f * (t0 + t1 + t2);
      u[r * 4 + 2] = 0.5f * (t0 - t1 + t2);
      u[r * 4 + 3] = t2;
    }
  }

  // dg += G^T du G with G^T = [1,.5,.5,0; 0,.5,-.5,0; 0,.5,.5,1].
  static void filter_grad(const float* du, float* dg) {
    float t[3][4];
    for (int c = 0; c < 4; ++c) {
      const float a0 = du[0 * 4 + c];
      const float a1 = du[1 * 4 + c];
      const float a2 = du[2 * 4 + c];
      const float a3 = du[3 * 4 + c];
      t[0][c] = a0 + 0.5f * (a1 + a2);
      t[1][c] = 0.5f * (a1 - a2);
      t[2][c] = 0.5f * (a1 + a2) + a3;
    }
    for (int r = 0; r < 3; ++r) {
      const float a0 = t[r][0];
      const float a1 = t[r][1];
      const float a2 = t[r][2];
      const float a3 = t[r][3];
      dg[r * 3 + 0] += a0 + 0.5f * (a1 + a2);
      dg[r * 3 + 1] += 0.5f * (a1 - a2);
      dg[r * 3 + 2] += 0.5f * (a1 + a2) + a3;
    }
  }
};

// ---- F(4x4, 3x3) -----------------------------------------------------------
// Lavin & Gray matrices:
// B^T = [4, 0,-5, 0,1,0;  0,-4,-4, 1,1,0;  0, 4,-4,-1,1,0;
//        0,-2,-1, 2,1,0;  0, 2,-1,-2,1,0;  0, 4, 0,-5,0,1]
// G   = [1/4,0,0; -1/6,-1/6,-1/6; -1/6,1/6,-1/6;
//        1/24,1/12,1/6; 1/24,-1/12,1/6; 0,0,1]
// A^T = [1,1,1,1,1,0; 0,1,-1,2,-2,0; 0,1,1,4,4,0; 0,1,-1,8,-8,1]
template <>
struct Traits<4> {
  static constexpr int kM = 4;
  static constexpr int kT = 6;
  // Approximate per-tile transform adds for the analytic cost model.
  static constexpr std::uint64_t kInXformFlops = 144;
  static constexpr std::uint64_t kOutXformFlops = 84;
  static constexpr std::uint64_t kDyXformFlops = 100;
  static constexpr std::uint64_t kInvFilterFlops = 90;

  static void filter(const float* g, float* u) {
    float t[6][3];
    for (int c = 0; c < 3; ++c) {
      const float g0 = g[0 * 3 + c];
      const float g1 = g[1 * 3 + c];
      const float g2 = g[2 * 3 + c];
      t[0][c] = 0.25f * g0;
      t[1][c] = (-g0 - g1 - g2) * (1.0f / 6.0f);
      t[2][c] = (-g0 + g1 - g2) * (1.0f / 6.0f);
      t[3][c] = g0 * (1.0f / 24.0f) + g1 * (1.0f / 12.0f) + g2 * (1.0f / 6.0f);
      t[4][c] = g0 * (1.0f / 24.0f) - g1 * (1.0f / 12.0f) + g2 * (1.0f / 6.0f);
      t[5][c] = g2;
    }
    for (int r = 0; r < 6; ++r) {
      const float g0 = t[r][0];
      const float g1 = t[r][1];
      const float g2 = t[r][2];
      u[r * 6 + 0] = 0.25f * g0;
      u[r * 6 + 1] = (-g0 - g1 - g2) * (1.0f / 6.0f);
      u[r * 6 + 2] = (-g0 + g1 - g2) * (1.0f / 6.0f);
      u[r * 6 + 3] = g0 * (1.0f / 24.0f) + g1 * (1.0f / 12.0f) + g2 * (1.0f / 6.0f);
      u[r * 6 + 4] = g0 * (1.0f / 24.0f) - g1 * (1.0f / 12.0f) + g2 * (1.0f / 6.0f);
      u[r * 6 + 5] = g2;
    }
  }

  // dg += G^T du G.
  static void filter_grad(const float* du, float* dg) {
    float t[3][6];
    for (int c = 0; c < 6; ++c) {
      const float a0 = du[0 * 6 + c];
      const float a1 = du[1 * 6 + c];
      const float a2 = du[2 * 6 + c];
      const float a3 = du[3 * 6 + c];
      const float a4 = du[4 * 6 + c];
      const float a5 = du[5 * 6 + c];
      t[0][c] = 0.25f * a0 - (a1 + a2) * (1.0f / 6.0f) +
                (a3 + a4) * (1.0f / 24.0f);
      t[1][c] = (a2 - a1) * (1.0f / 6.0f) + (a3 - a4) * (1.0f / 12.0f);
      t[2][c] = -(a1 + a2) * (1.0f / 6.0f) + (a3 + a4) * (1.0f / 6.0f) + a5;
    }
    for (int r = 0; r < 3; ++r) {
      const float a0 = t[r][0];
      const float a1 = t[r][1];
      const float a2 = t[r][2];
      const float a3 = t[r][3];
      const float a4 = t[r][4];
      const float a5 = t[r][5];
      dg[r * 3 + 0] += 0.25f * a0 - (a1 + a2) * (1.0f / 6.0f) +
                       (a3 + a4) * (1.0f / 24.0f);
      dg[r * 3 + 1] += (a2 - a1) * (1.0f / 6.0f) + (a3 - a4) * (1.0f / 12.0f);
      dg[r * 3 + 2] += -(a1 + a2) * (1.0f / 6.0f) + (a3 + a4) * (1.0f / 6.0f) +
                       a5;
    }
  }
};

struct TileGrid {
  std::size_t oh, ow, tiles_y, tiles_x, tiles;
};

template <int M>
TileGrid tile_grid(std::size_t h, std::size_t w, std::size_t pad) {
  PF15_CHECK(h + 2 * pad >= 3 && w + 2 * pad >= 3);
  TileGrid g;
  g.oh = h + 2 * pad - 2;
  g.ow = w + 2 * pad - 2;
  g.tiles_y = (g.oh + M - 1) / M;
  g.tiles_x = (g.ow + M - 1) / M;
  g.tiles = g.tiles_y * g.tiles_x;
  return g;
}

/// Filter transform into U[k]: (out_c x in_c) per position.
template <int M>
void transform_filters(const float* weight, std::size_t in_c,
                       std::size_t out_c, float* u) {
  constexpr int P = Traits<M>::kT * Traits<M>::kT;
  const std::size_t uk = out_c * in_c;
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      float u_tile[P];
      Traits<M>::filter(weight + (oc * in_c + ic) * 9, u_tile);
      for (int k = 0; k < P; ++k) {
        u[static_cast<std::size_t>(k) * uk + oc * in_c + ic] = u_tile[k];
      }
    }
  }
}

/// Input transform into V[k]: (in_c x tiles) per position, tile blocks of
/// kWinoBlock transformed SoA so the arithmetic vectorizes.
template <int M>
void transform_inputs(const float* image, std::size_t in_c, std::size_t h,
                      std::size_t w, std::size_t pad, const TileGrid& tg,
                      float* v) {
  constexpr int T = Traits<M>::kT;
  constexpr int P = T * T;
  constexpr std::size_t B = kWinoBlock;
  const auto input_block = BlockFns<M>::input(winograd_block_kernels());
  float d[P * B];
  float vt[P * B];
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    const float* plane = image + ic * h * w;
    for (std::size_t t0 = 0; t0 < tg.tiles; t0 += B) {
      const std::size_t nb = std::min(B, tg.tiles - t0);
      for (std::size_t l = 0; l < nb; ++l) {
        const std::size_t tile = t0 + l;
        const std::size_t ty = tile / tg.tiles_x;
        const std::size_t tx = tile % tg.tiles_x;
        for (int dy = 0; dy < T; ++dy) {
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(M * ty + static_cast<std::size_t>(dy)) -
              static_cast<std::ptrdiff_t>(pad);
          const bool row_ok = sy >= 0 && sy < static_cast<std::ptrdiff_t>(h);
          for (int dx = 0; dx < T; ++dx) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(M * tx +
                                            static_cast<std::size_t>(dx)) -
                static_cast<std::ptrdiff_t>(pad);
            d[(dy * T + dx) * B + l] =
                (!row_ok || sx < 0 || sx >= static_cast<std::ptrdiff_t>(w))
                    ? 0.0f
                    : plane[static_cast<std::size_t>(sy) * w +
                            static_cast<std::size_t>(sx)];
          }
        }
      }
      for (int k = 0; k < P; ++k) {
        for (std::size_t l = nb; l < B; ++l) d[k * B + l] = 0.0f;
      }
      input_block(d, vt);
      for (int k = 0; k < P; ++k) {
        std::memcpy(v + static_cast<std::size_t>(k) * in_c * tg.tiles +
                        ic * tg.tiles + t0,
                    vt + k * B, nb * sizeof(float));
      }
    }
  }
}

/// The P transform-domain GEMMs, optionally fanned out on the task
/// scheduler (safe under a batch-parallel loop: nested waits help).
template <typename Fn>
void for_each_position(int positions, bool parallel_ok, const Fn& fn) {
  if (parallel_ok) {
    ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(positions),
        [&](std::size_t k) { fn(static_cast<int>(k)); });
  } else {
    for (int k = 0; k < positions; ++k) fn(k);
  }
}

/// `weight` xor `u_pre`: when `u_pre` is non-null it is the caller's
/// pre-transformed filter bank (shared read-only across a batch) and the
/// raw weights are not touched.
template <int M>
void wino_forward(const float* image, std::size_t in_c, std::size_t h,
                  std::size_t w, const float* weight, const float* u_pre,
                  std::size_t out_c, std::size_t pad, const float* bias,
                  float* output, bool parallel_ok) {
  constexpr int T = Traits<M>::kT;
  constexpr int P = T * T;
  constexpr std::size_t B = kWinoBlock;
  PF15_CHECK(in_c > 0 && out_c > 0);
  const TileGrid tg = tile_grid<M>(h, w, pad);

  // Leased, not thread_local: v and m stay live across the fanned-out
  // GEMM wait below, and helping tasks on this thread must not touch
  // them (see scratch.hpp).
  ScratchLease u_lease(u_pre == nullptr
                           ? static_cast<std::size_t>(P) * out_c * in_c
                           : 0);
  const float* u = u_pre;
  if (u == nullptr) {
    transform_filters<M>(weight, in_c, out_c, u_lease.data());
    u = u_lease.data();
  }
  ScratchLease v_lease(static_cast<std::size_t>(P) * in_c * tg.tiles);
  ScratchLease m_lease(static_cast<std::size_t>(P) * out_c * tg.tiles);
  float* v = v_lease.data();
  float* m = m_lease.data();

  transform_inputs<M>(image, in_c, h, w, pad, tg, v);

  // M[k] = U[k] (out_c x in_c) * V[k] (in_c x tiles).
  for_each_position(P, parallel_ok, [&](int k) {
    sgemm(false, false, out_c, tg.tiles, in_c, 1.0f,
          u + static_cast<std::size_t>(k) * out_c * in_c, in_c,
          v + static_cast<std::size_t>(k) * in_c * tg.tiles, tg.tiles, 0.0f,
          m + static_cast<std::size_t>(k) * out_c * tg.tiles, tg.tiles);
  });

  // Inverse transform + scatter (crop ragged edges). The gather over k is
  // unit-stride in the tile index, so blocks load contiguously.
  const auto output_block = BlockFns<M>::output(winograd_block_kernels());
  float mt[P * B];
  float yt[M * M * B];
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    float* out_plane = output + oc * tg.oh * tg.ow;
    const float b = bias != nullptr ? bias[oc] : 0.0f;
    for (std::size_t t0 = 0; t0 < tg.tiles; t0 += B) {
      const std::size_t nb = std::min(B, tg.tiles - t0);
      for (int k = 0; k < P; ++k) {
        std::memcpy(mt + k * B,
                    m + static_cast<std::size_t>(k) * out_c * tg.tiles +
                        oc * tg.tiles + t0,
                    nb * sizeof(float));
      }
      output_block(mt, yt);
      for (std::size_t l = 0; l < nb; ++l) {
        const std::size_t tile = t0 + l;
        const std::size_t ty = tile / tg.tiles_x;
        const std::size_t tx = tile % tg.tiles_x;
        for (int dy = 0; dy < M; ++dy) {
          const std::size_t oy = M * ty + static_cast<std::size_t>(dy);
          if (oy >= tg.oh) continue;
          for (int dx = 0; dx < M; ++dx) {
            const std::size_t ox = M * tx + static_cast<std::size_t>(dx);
            if (ox >= tg.ow) continue;
            out_plane[oy * tg.ow + ox] = yt[(dy * M + dx) * B + l] + b;
          }
        }
      }
    }
  }
}

template <int M>
void wino_backward_filter(const float* image, std::size_t in_c,
                          std::size_t h, std::size_t w, const float* dout,
                          std::size_t out_c, std::size_t pad, float* dweight,
                          bool parallel_ok) {
  constexpr int T = Traits<M>::kT;
  constexpr int P = T * T;
  constexpr std::size_t B = kWinoBlock;
  PF15_CHECK(in_c > 0 && out_c > 0);
  const TileGrid tg = tile_grid<M>(h, w, pad);

  ScratchLease v_lease(static_cast<std::size_t>(P) * in_c * tg.tiles);
  ScratchLease dy_lease(static_cast<std::size_t>(P) * out_c * tg.tiles);
  ScratchLease du_lease(static_cast<std::size_t>(P) * out_c * in_c);
  float* v = v_lease.data();
  float* dyt = dy_lease.data();
  float* du = du_lease.data();

  transform_inputs<M>(image, in_c, h, w, pad, tg, v);

  // dM[k]: (out_c x tiles), the A dY A^T transform of the output-gradient
  // tiles; ragged positions gather zero — the adjoint of the forward crop.
  const auto dy_block = BlockFns<M>::dy(winograd_block_kernels());
  float dy[M * M * B];
  float dmt[P * B];
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const float* dplane = dout + oc * tg.oh * tg.ow;
    for (std::size_t t0 = 0; t0 < tg.tiles; t0 += B) {
      const std::size_t nb = std::min(B, tg.tiles - t0);
      for (std::size_t l = 0; l < nb; ++l) {
        const std::size_t tile = t0 + l;
        const std::size_t ty = tile / tg.tiles_x;
        const std::size_t tx = tile % tg.tiles_x;
        for (int dyi = 0; dyi < M; ++dyi) {
          const std::size_t oy = M * ty + static_cast<std::size_t>(dyi);
          for (int dxi = 0; dxi < M; ++dxi) {
            const std::size_t ox = M * tx + static_cast<std::size_t>(dxi);
            dy[(dyi * M + dxi) * B + l] =
                (oy >= tg.oh || ox >= tg.ow)
                    ? 0.0f
                    : dplane[oy * tg.ow + ox];
          }
        }
      }
      for (int k = 0; k < M * M; ++k) {
        for (std::size_t l = nb; l < B; ++l) dy[k * B + l] = 0.0f;
      }
      dy_block(dy, dmt);
      for (int k = 0; k < P; ++k) {
        std::memcpy(dyt + static_cast<std::size_t>(k) * out_c * tg.tiles +
                        oc * tg.tiles + t0,
                    dmt + k * B, nb * sizeof(float));
      }
    }
  }

  // dU[k] (out_c x in_c) = dM[k] (out_c x tiles) * V[k]^T (tiles x in_c).
  for_each_position(P, parallel_ok, [&](int k) {
    sgemm(false, true, out_c, in_c, tg.tiles, 1.0f,
          dyt + static_cast<std::size_t>(k) * out_c * tg.tiles, tg.tiles,
          v + static_cast<std::size_t>(k) * in_c * tg.tiles, tg.tiles, 0.0f,
          du + static_cast<std::size_t>(k) * out_c * in_c, in_c);
  });

  // dg += G^T dU G per filter.
  const std::size_t uk = out_c * in_c;
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      float du_tile[P];
      for (int k = 0; k < P; ++k) {
        du_tile[k] = du[static_cast<std::size_t>(k) * uk + oc * in_c + ic];
      }
      Traits<M>::filter_grad(du_tile, dweight + (oc * in_c + ic) * 9);
    }
  }
}

}  // namespace

void winograd_conv3x3(const float* image, std::size_t in_c, std::size_t h,
                      std::size_t w, const float* weight, std::size_t out_c,
                      std::size_t pad, const float* bias, float* output,
                      WinogradTile tile, bool parallel_ok) {
  if (tile == WinogradTile::kF4x4) {
    wino_forward<4>(image, in_c, h, w, weight, nullptr, out_c, pad, bias,
                    output, parallel_ok);
  } else {
    wino_forward<2>(image, in_c, h, w, weight, nullptr, out_c, pad, bias,
                    output, parallel_ok);
  }
}

std::size_t winograd_filter_xform_floats(std::size_t in_c,
                                         std::size_t out_c,
                                         WinogradTile tile) {
  const std::size_t t = tile == WinogradTile::kF4x4
                            ? static_cast<std::size_t>(Traits<4>::kT)
                            : static_cast<std::size_t>(Traits<2>::kT);
  return t * t * in_c * out_c;
}

void winograd_transform_filters(const float* weight, std::size_t in_c,
                                std::size_t out_c, WinogradTile tile,
                                float* u) {
  PF15_CHECK(in_c > 0 && out_c > 0);
  if (tile == WinogradTile::kF4x4) {
    transform_filters<4>(weight, in_c, out_c, u);
  } else {
    transform_filters<2>(weight, in_c, out_c, u);
  }
}

void winograd_conv3x3_pre(const float* image, std::size_t in_c,
                          std::size_t h, std::size_t w, const float* u,
                          std::size_t out_c, std::size_t pad,
                          const float* bias, float* output,
                          WinogradTile tile, bool parallel_ok) {
  PF15_CHECK(u != nullptr);
  if (tile == WinogradTile::kF4x4) {
    wino_forward<4>(image, in_c, h, w, nullptr, u, out_c, pad, bias, output,
                    parallel_ok);
  } else {
    wino_forward<2>(image, in_c, h, w, nullptr, u, out_c, pad, bias, output,
                    parallel_ok);
  }
}

void winograd_backward_filter3x3(const float* image, std::size_t in_c,
                                 std::size_t h, std::size_t w,
                                 const float* dout, std::size_t out_c,
                                 std::size_t pad, float* dweight,
                                 WinogradTile tile, bool parallel_ok) {
  if (tile == WinogradTile::kF4x4) {
    wino_backward_filter<4>(image, in_c, h, w, dout, out_c, pad, dweight,
                            parallel_ok);
  } else {
    wino_backward_filter<2>(image, in_c, h, w, dout, out_c, pad, dweight,
                            parallel_ok);
  }
}

namespace {

// The cost models share the exact tile grid and position count the
// kernels run with (Traits<M>/tile_grid<M>), so the autotune flops
// cutoff can never drift from the implementation.
template <int M>
std::uint64_t wino_forward_flops(std::size_t in_c, std::size_t out_c,
                                 std::size_t h, std::size_t w,
                                 std::size_t pad) {
  constexpr std::uint64_t p = static_cast<std::uint64_t>(Traits<M>::kT) *
                              Traits<M>::kT;
  const std::uint64_t tiles = tile_grid<M>(h, w, pad).tiles;
  // Dominant term: P GEMMs of (out_c x in_c x tiles) multiply-adds, plus
  // the per-tile input / output transform adds (approximate counts).
  return p * flops(out_c, tiles, in_c) +
         tiles * (in_c * Traits<M>::kInXformFlops +
                  out_c * Traits<M>::kOutXformFlops);
}

template <int M>
std::uint64_t wino_bwd_filter_flops(std::size_t in_c, std::size_t out_c,
                                    std::size_t h, std::size_t w,
                                    std::size_t pad) {
  constexpr std::uint64_t p = static_cast<std::uint64_t>(Traits<M>::kT) *
                              Traits<M>::kT;
  const std::uint64_t tiles = tile_grid<M>(h, w, pad).tiles;
  return p * flops(out_c, in_c, tiles) +
         tiles * (in_c * Traits<M>::kInXformFlops +
                  out_c * Traits<M>::kDyXformFlops) +
         static_cast<std::uint64_t>(out_c) * in_c *
             Traits<M>::kInvFilterFlops;
}

}  // namespace

std::uint64_t winograd_flops(std::size_t in_c, std::size_t out_c,
                             std::size_t h, std::size_t w, std::size_t pad,
                             WinogradTile tile) {
  return tile == WinogradTile::kF4x4
             ? wino_forward_flops<4>(in_c, out_c, h, w, pad)
             : wino_forward_flops<2>(in_c, out_c, h, w, pad);
}

std::uint64_t winograd_backward_filter_flops(std::size_t in_c,
                                             std::size_t out_c,
                                             std::size_t h, std::size_t w,
                                             std::size_t pad,
                                             WinogradTile tile) {
  return tile == WinogradTile::kF4x4
             ? wino_bwd_filter_flops<4>(in_c, out_c, h, w, pad)
             : wino_bwd_filter_flops<2>(in_c, out_c, h, w, pad);
}

}  // namespace pf15::gemm
