// FFT-based convolution — with Winograd, the second "rapidly evolving"
// kernel algorithm §VIII-A defers to future work ("new algorithms like
// Winograd [43] and FFT based algorithms. We did not experiment with such
// algorithms in this work; studying the impact on per-node performance
// ... is a direction for future research"). This module studies it.
//
// Method: pad image and flipped kernel to a common power-of-two grid,
// multiply their 2-D DFTs, inverse-transform, and crop the valid window.
// Cross-correlation (the DL "convolution") of a (H x W) image with a
// (K x K) kernel costs O(P² log P) with P = next_pow2(H + K - 1) per
// (input-channel, output-channel) pair instead of O(H·W·K²) — profitable
// for large kernels, clearly unprofitable at the 3x3 the paper's networks
// use, which the algorithm ablation in bench_extensions quantifies.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pf15::gemm {

/// In-place radix-2 Cooley-Tukey FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform *and* the 1/N scale.
void fft1d(std::vector<std::complex<double>>& data, bool inverse);

/// In-place 2-D FFT over a row-major (n x n) complex grid (n a power of
/// two): rows then columns.
void fft2d(std::vector<std::complex<double>>& grid, std::size_t n,
           bool inverse);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// Multi-channel 2-D cross-correlation via FFT, matching the im2col
/// convolution contract exactly:
///   output(OC, OH, OW), OH = (H + 2·pad - K) / stride + 1.
/// Strides > 1 are computed at stride 1 and subsampled (the standard
/// trick; FFT cannot exploit stride). `bias` may be null.
void fft_conv2d(const float* image, std::size_t in_c, std::size_t h,
                std::size_t w, const float* weight, std::size_t out_c,
                std::size_t kernel, std::size_t stride, std::size_t pad,
                const float* bias, float* output);

/// Spectral backward-data: the adjoint of fft_conv2d with respect to the
/// image. The output gradient is stride-upsampled onto the transform
/// grid, multiplied (UNconjugated — the adjoint of cross-correlation is
/// convolution) against each kernel spectrum, summed over output
/// channels, inverse-transformed and cropped at the pad offset.
///   din(in_c, H, W) from dout(out_c, OH, OW); din is overwritten.
void fft_conv2d_backward_data(const float* dout, std::size_t in_c,
                              std::size_t h, std::size_t w,
                              const float* weight, std::size_t out_c,
                              std::size_t kernel, std::size_t stride,
                              std::size_t pad, float* din);

/// Spectral backward-filter: dW(oc,ic)(τ) is the cross-correlation of the
/// padded image with the stride-upsampled output gradient, read at lags
/// τ in [0,K)² — computed as image_hat ⊙ conj(dout_hat) per channel
/// pair. ACCUMULATES into dweight (+=), matching the backend contract.
void fft_conv2d_backward_filter(const float* image, std::size_t in_c,
                                std::size_t h, std::size_t w,
                                const float* dout, std::size_t out_c,
                                std::size_t kernel, std::size_t stride,
                                std::size_t pad, float* dweight);

/// Arithmetic cost model of fft_conv2d (complex FLOPs folded to real, the
/// §V two-flops-per-multiply-add convention) — used by the algorithm
/// crossover ablation. The backward phases share the model: each moves
/// the same transform count (in_c + out_c one-sided transforms plus one
/// per channel pair) and the same pointwise complex work, only the
/// direction of the per-pair transform flips.
std::uint64_t fft_conv_flops(std::size_t in_c, std::size_t out_c,
                             std::size_t h, std::size_t w,
                             std::size_t kernel, std::size_t pad);

}  // namespace pf15::gemm
