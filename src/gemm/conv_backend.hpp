// Runtime convolution-backend dispatch + autotune plan cache.
//
// The paper's sustained-PF claim rests on convolution being the dominant
// hot path of both networks (§V), and §VIII-A names Winograd and FFT as
// the algorithm directions to study. This module turns those one-off
// kernels into a *subsystem*: every convolution algorithm implements the
// ConvBackend interface, registers in a process-wide table, and a plan
// cache micro-benchmarks the applicable backends the first time a
// (geometry, channels) problem is seen, remembering the winner. Layers ask
// for a plan instead of hardcoding a lowering; benches and the tune::Space
// integration sweep the same table, so every path is exercised and
// measured, not just the default one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gemm/im2col.hpp"

namespace pf15::gemm {

/// Identity of a convolution algorithm in the dispatch table. Values are
/// stable (they appear in perf records and tune::Space encodings).
enum class ConvBackendKind : int {
  kIm2col = 0,    // lowering + GEMM, the always-applicable reference
  kWinograd = 1,  // F(2x2,3x3): 3x3 stride-1 only
  kFft = 2,       // spectral: profitable for large kernels
  kDirect = 3,    // naive loops: wins when the lowered matrix is tiny
};

/// Stable lower-case name ("im2col", "winograd", "fft", "direct").
const char* to_string(ConvBackendKind kind);
/// Inverse of to_string; nullopt for unknown names.
std::optional<ConvBackendKind> parse_backend(const std::string& name);

/// One per-image convolution problem: geometry plus the filter count.
/// This is the plan-cache key — bias presence does not affect algorithm
/// choice and is deliberately excluded.
struct ConvProblem {
  ConvGeom geom;
  std::size_t out_c = 0;

  /// Strict-weak order over every field that affects algorithm choice.
  bool operator<(const ConvProblem& other) const;
  bool operator==(const ConvProblem& other) const;
};

/// A convolution algorithm. Implementations are stateless and immutable
/// after registration; per-call scratch lives in thread-local storage so
/// one backend instance can serve a batch-parallel loop.
class ConvBackend {
 public:
  virtual ~ConvBackend() = default;

  virtual ConvBackendKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Whether this algorithm can compute `p` at all (e.g. Winograd is
  /// 3x3 stride-1 only).
  virtual bool applicable(const ConvProblem& p) const = 0;

  /// One image forward: image (C,H,W) -> out (OC,OH,OW), `bias` may be
  /// null. `parallel_ok` permits internal use of the global thread pool;
  /// callers running inside a pool task must pass false (the pool does not
  /// support nested waits).
  virtual void forward(const ConvProblem& p, const float* image,
                       const float* weight, const float* bias, float* out,
                       bool parallel_ok) const = 0;

  /// Analytic per-image FLOP count (§V accounting: one multiply-add is
  /// two FLOPs).
  virtual std::uint64_t flops(const ConvProblem& p) const = 0;
};

/// The registered backend for `kind`. Never null; registration happens at
/// static-init-free first use.
const ConvBackend& backend(ConvBackendKind kind);

/// All registered backends, in ConvBackendKind order.
const std::vector<const ConvBackend*>& all_backends();

/// The subset of all_backends() whose applicable(p) holds, same order.
std::vector<const ConvBackend*> applicable_backends(const ConvProblem& p);

struct AutotuneOptions;

/// The candidates autotune() actually races for `p`: applicable_backends
/// minus those the analytic flops cutoff rejects (im2col itself is never
/// rejected). The tune::Space adapter and the sweep bench share this, so
/// every consumer sees the same candidate policy.
std::vector<const ConvBackend*> candidate_backends(
    const ConvProblem& p, const AutotuneOptions& opt);

/// Knobs of the first-sight micro-benchmark.
struct AutotuneOptions {
  std::size_t warmup = 1;  // untimed runs per candidate
  std::size_t reps = 3;    // timed runs; the minimum is kept
  /// Seed for the synthetic image/weights the candidates are timed on;
  /// mixed with the problem geometry so every problem sees the same data
  /// across runs (deterministic tuning inputs).
  std::uint64_t seed = 0x9f15c0deULL;
  /// Candidates whose analytic FLOPs exceed this multiple of im2col's are
  /// rejected without timing (keeps e.g. FFT-at-3x3 from burning seconds
  /// in a first-touch forward pass).
  double flops_cutoff = 8.0;
};

/// Measured per-image wall microseconds of `b` on `p` (min over reps,
/// deterministic synthetic operands). `parallel_ok` must match how the
/// plan will execute: false for the batch-parallel loop (per-image serial
/// work), true for single-image forwards where the backend may use the
/// pool internally.
double benchmark_backend(const ConvBackend& b, const ConvProblem& p,
                         const AutotuneOptions& opt = {},
                         bool parallel_ok = false);

/// The remembered winner for one problem.
struct ConvPlan {
  ConvBackendKind kind = ConvBackendKind::kIm2col;
  double best_us = 0.0;    // winner's measured per-image microseconds
  double im2col_us = 0.0;  // im2col reference measured in the same sweep
  bool tuned = false;      // true: micro-benchmarked; false: forced/default
};

/// Races every applicable (and cutoff-surviving) backend on `p` in the
/// given execution mode and returns the fastest. im2col is always among
/// the candidates, so the winner is never slower than the reference as
/// measured. Note the flops cutoff cannot reject the direct backend (its
/// analytic flops equal im2col's by construction); that is deliberate —
/// direct is a frequent winner and timing it costs the same order as
/// timing im2col.
ConvPlan autotune(const ConvProblem& p, const AutotuneOptions& opt = {},
                  bool parallel_ok = false);

/// Process-wide memo of autotune() results, keyed by
/// (ConvProblem, execution mode). Thread safe; the first thread to see a
/// shape pays the tuning cost *outside* the cache lock (an in-flight set
/// dedupes concurrent first sights), so hits never wait behind a miss
/// being tuned. insert() lets callers (tests, the tune::Space driver,
/// operators forcing a layout) override a plan — for both modes.
class ConvPlanCache {
 public:
  explicit ConvPlanCache(AutotuneOptions opt = {}) : opt_(opt) {}

  static ConvPlanCache& global();

  /// The plan for `p` executed with `parallel_ok`, tuning on first sight.
  /// Backends are timed in the mode they will run in: a plan for the
  /// batch-parallel loop (parallel_ok=false) is decided on single-thread
  /// times, a single-image plan (parallel_ok=true) lets candidates use
  /// the pool, so e.g. parallel im2col can beat a serial-only winner.
  ConvPlan plan(const ConvProblem& p, bool parallel_ok = false);

  /// The cached plan, if any — never tunes.
  std::optional<ConvPlan> lookup(const ConvProblem& p,
                                 bool parallel_ok = false) const;

  /// Forces the plan for `p` in both execution modes (an override states
  /// "use this backend", independent of how the layer batches).
  void insert(const ConvProblem& p, const ConvPlan& plan);

  void clear();
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  const AutotuneOptions& options() const { return opt_; }

 private:
  using Key = std::pair<ConvProblem, bool>;

  mutable std::mutex mutex_;
  std::condition_variable tuning_cv_;
  std::map<Key, ConvPlan> plans_;
  std::set<Key> tuning_;  // keys being autotuned right now
  AutotuneOptions opt_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pf15::gemm
