// Runtime convolution-backend dispatch + autotune plan cache.
//
// The paper's sustained-PF claim rests on convolution being the dominant
// hot path of both networks (§V) — and it is a *training* claim, so the
// backward convolutions (data and filter gradients, roughly two thirds of
// the FLOPs) matter as much as forward. This module turns the one-off
// kernels into a subsystem: every convolution algorithm implements the
// ConvBackend interface for three phases (forward, backward-data,
// backward-filter, the cuDNN-style per-op-phase split), registers in a
// process-wide table, and a plan cache micro-benchmarks the applicable
// backends the first time a (problem, phase) is seen, remembering the
// winner. Layers ask for a plan per phase instead of hardcoding a
// lowering; benches and the tune::Space integration sweep the same table.
//
// Plans persist: ConvPlanCache has a versioned on-disk JSON format
// (save/load with a header carrying the cache version and a hardware
// signature), and the global cache auto-loads it at startup and writes it
// back at exit (path from $PF15_CONV_PLAN_CACHE, default
// "pf15_conv_plans.json"; set the variable to "off" to disable), so
// training and serving stop paying first-sight tuning on every run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "gemm/im2col.hpp"

namespace pf15::gemm {

/// Identity of a convolution algorithm in the dispatch table. Values are
/// stable (they appear in perf records, plan-cache files and tune::Space
/// encodings).
enum class ConvBackendKind : int {
  kIm2col = 0,    // lowering + GEMM, the always-applicable reference
  kWinograd = 1,  // F(2x2,3x3)/F(4x4,3x3): 3x3 stride-1 only
  kFft = 2,       // spectral: profitable for large kernels, forward-only
  kDirect = 3,    // naive loops: wins when the lowered matrix is tiny
};

/// The three convolution operations of a training step. Each phase tunes
/// and dispatches independently (the cuDNN model: the best forward
/// algorithm is routinely not the best backward one).
enum class ConvPhase : int {
  kForward = 0,
  kBackwardData = 1,    // dX from dY and W
  kBackwardFilter = 2,  // dW from X and dY
};

/// Stable lower-case name ("im2col", "winograd", "fft", "direct").
const char* to_string(ConvBackendKind kind);
/// Inverse of to_string; nullopt for unknown names.
std::optional<ConvBackendKind> parse_backend(const std::string& name);

/// Stable name ("forward", "backward_data", "backward_filter").
const char* to_string(ConvPhase phase);
/// Inverse of to_string; nullopt for unknown names.
std::optional<ConvPhase> parse_phase(const std::string& name);

/// All phases, in enum order — for sweeps.
inline constexpr ConvPhase kAllConvPhases[] = {
    ConvPhase::kForward, ConvPhase::kBackwardData,
    ConvPhase::kBackwardFilter};

/// One per-image convolution problem: geometry plus the filter count.
/// This is the plan-cache key — bias presence does not affect algorithm
/// choice and is deliberately excluded.
struct ConvProblem {
  ConvGeom geom;
  std::size_t out_c = 0;

  /// Strict-weak order over every field that affects algorithm choice.
  bool operator<(const ConvProblem& other) const;
  bool operator==(const ConvProblem& other) const;
};

/// Opaque weight-derived state shared by many forward() or
/// backward_data() calls over one (problem, weights) pair — e.g.
/// Winograd's transformed filter bank U, which depends only on the
/// weights and would otherwise be recomputed per image inside a batch
/// loop. Produced by ConvBackend::prepare_forward /
/// prepare_backward_data on the caller's thread, consumed read-only by
/// the *_prepared entry points (safe to share across pool threads).
class ConvPrep {
 public:
  virtual ~ConvPrep() = default;
};

/// A convolution algorithm. Implementations are stateless and immutable
/// after registration; per-call scratch lives in thread-local storage so
/// one backend instance can serve a batch-parallel loop.
///
/// All entry points take `parallel_ok`: it permits internal fan-out on
/// the global task scheduler. Nested waits are legal on the scheduler
/// (waiting executes pending work), so parallel_ok=true is safe at any
/// nesting depth — the hot paths pass true everywhere; false forces a
/// strictly serial call (tests, mode-controlled timing).
class ConvBackend {
 public:
  virtual ~ConvBackend() = default;

  virtual ConvBackendKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Whether this algorithm can compute `p` in `phase` (e.g. Winograd is
  /// 3x3 stride-1 only; FFT declines the backward phases entirely).
  virtual bool applicable(const ConvProblem& p,
                          ConvPhase phase = ConvPhase::kForward) const = 0;

  /// One image forward: image (C,H,W) -> out (OC,OH,OW), `bias` may be
  /// null.
  virtual void forward(const ConvProblem& p, const float* image,
                       const float* weight, const float* bias, float* out,
                       bool parallel_ok) const = 0;

  /// Hoists weight-only work (filter transforms) out of a batch loop.
  /// Returns null when the backend has nothing to precompute — the
  /// default; forward_prepared then falls back to plain forward().
  virtual std::unique_ptr<ConvPrep> prepare_forward(
      const ConvProblem& p, const float* weight) const {
    (void)p;
    (void)weight;
    return nullptr;
  }

  /// forward() that may consume `prep` (from this backend's
  /// prepare_forward on the same problem and weights; null is allowed and
  /// means "no prep"). The base implementation ignores prep.
  virtual void forward_prepared(const ConvProblem& p, const ConvPrep* prep,
                                const float* image, const float* weight,
                                const float* bias, float* out,
                                bool parallel_ok) const {
    (void)prep;
    forward(p, image, weight, bias, out, parallel_ok);
  }

  /// One image data gradient: dout (OC,OH,OW) and weight -> din (C,H,W).
  /// Overwrite semantics: the backend fully computes the din image.
  /// Only valid when applicable(p, kBackwardData).
  virtual void backward_data(const ConvProblem& p, const float* dout,
                             const float* weight, float* din,
                             bool parallel_ok) const;

  /// Hoists weight-only backward-data work out of a batch loop —
  /// Winograd's rotated/channel-transposed filter bank and its transform,
  /// which would otherwise be rebuilt per image. Returns null when the
  /// backend has nothing to precompute (the default);
  /// backward_data_prepared then falls back to plain backward_data().
  /// Only valid when applicable(p, kBackwardData).
  virtual std::unique_ptr<ConvPrep> prepare_backward_data(
      const ConvProblem& p, const float* weight) const {
    (void)p;
    (void)weight;
    return nullptr;
  }

  /// backward_data() that may consume `prep` (from this backend's
  /// prepare_backward_data on the same problem and weights; null is
  /// allowed and means "no prep"). The base implementation ignores prep.
  virtual void backward_data_prepared(const ConvProblem& p,
                                      const ConvPrep* prep,
                                      const float* dout, const float* weight,
                                      float* din, bool parallel_ok) const {
    (void)prep;
    backward_data(p, dout, weight, din, parallel_ok);
  }

  /// One image filter gradient: image and dout -> dweight
  /// (OC,C,KH,KW), *accumulated* (+=) so a batch loop sums over images.
  /// Only valid when applicable(p, kBackwardFilter).
  virtual void backward_filter(const ConvProblem& p, const float* image,
                               const float* dout, float* dweight,
                               bool parallel_ok) const;

  /// Analytic per-image FLOP count for `phase` (§V accounting: one
  /// multiply-add is two FLOPs).
  virtual std::uint64_t flops(const ConvProblem& p,
                              ConvPhase phase = ConvPhase::kForward) const = 0;
};

/// The registered backend for `kind`. Never null; registration happens at
/// static-init-free first use.
const ConvBackend& backend(ConvBackendKind kind);

/// All registered backends, in ConvBackendKind order.
const std::vector<const ConvBackend*>& all_backends();

/// The subset of all_backends() whose applicable(p, phase) holds, same
/// order.
std::vector<const ConvBackend*> applicable_backends(
    const ConvProblem& p, ConvPhase phase = ConvPhase::kForward);

struct AutotuneOptions;

/// The candidates autotune() actually races for `p` in `phase`:
/// applicable_backends minus those the analytic flops cutoff rejects
/// (im2col itself is never rejected). The tune::Space adapter and the
/// sweep bench share this, so every consumer sees the same candidate
/// policy.
std::vector<const ConvBackend*> candidate_backends(
    const ConvProblem& p, const AutotuneOptions& opt,
    ConvPhase phase = ConvPhase::kForward);

/// Knobs of the first-sight micro-benchmark.
struct AutotuneOptions {
  std::size_t warmup = 1;  // untimed runs per candidate
  std::size_t reps = 3;    // timed runs; the minimum is kept
  /// Seed for the synthetic operands the candidates are timed on; mixed
  /// with the problem geometry and phase so every problem sees the same
  /// data across runs (deterministic tuning inputs).
  std::uint64_t seed = 0x9f15c0deULL;
  /// Candidates whose analytic FLOPs exceed this multiple of im2col's are
  /// rejected without timing (keeps e.g. FFT-at-3x3 from burning seconds
  /// in a first-touch forward pass).
  double flops_cutoff = 8.0;
};

/// Measured per-image wall microseconds of `b` on `p` in `phase` (min
/// over reps, deterministic synthetic operands). `parallel_ok` must match
/// how the plan will execute: true lets the candidate fan out on the task
/// scheduler (the hot-path mode — legal even beneath a batch-parallel
/// loop, since nested waits help), false times it strictly serially.
double benchmark_backend(const ConvBackend& b, const ConvProblem& p,
                         const AutotuneOptions& opt = {},
                         ConvPhase phase = ConvPhase::kForward,
                         bool parallel_ok = false);

/// The remembered winner for one (problem, phase).
struct ConvPlan {
  ConvBackendKind kind = ConvBackendKind::kIm2col;
  double best_us = 0.0;    // winner's measured per-image microseconds
  double im2col_us = 0.0;  // im2col reference measured in the same sweep
  bool tuned = false;      // true: micro-benchmarked; false: forced/default
};

/// Races every applicable (and cutoff-surviving) backend on `p` in the
/// given phase and execution mode and returns the fastest. im2col is
/// always among the candidates, so the winner is never slower than the
/// reference as measured.
ConvPlan autotune(const ConvProblem& p, const AutotuneOptions& opt = {},
                  ConvPhase phase = ConvPhase::kForward,
                  bool parallel_ok = false);

/// On-disk plan-cache format version; bumped whenever the schema or the
/// meaning of a field changes. Files with a different version are
/// rejected (and re-tuned from scratch). v2 added the batch bucket;
/// v3 added the SIMD tier ("isa") to the hardware signature.
inline constexpr int kConvPlanCacheVersion = 3;

/// The power-of-two batch bucket a convolution executes under: 1 for
/// single-image calls (n <= 1), otherwise the next power of two >= n.
/// Plans are keyed per bucket, so a dynamic batcher's ragged last batches
/// (e.g. 13 requests against a max_batch of 16) land in the full-batch
/// bucket and reuse its plan instead of re-tuning per distinct N.
std::size_t conv_batch_bucket(std::size_t n);

/// Process-wide memo of autotune() results, keyed by
/// (ConvProblem, phase, execution mode, batch bucket). Thread safe; the
/// first thread to see a key pays the tuning cost *outside* the cache
/// lock (an in-flight set dedupes concurrent first sights), so hits never
/// wait behind a miss being tuned. insert() lets callers (tests, the
/// tune::Space driver, operators forcing a layout) override a plan — the
/// override applies to every execution mode and batch bucket of its
/// (problem, phase).
///
/// save()/load() give the cache a versioned on-disk JSON format whose
/// header records the format name, kConvPlanCacheVersion and a hardware
/// signature; load() rejects corrupt or mismatched files with IoError.
/// The global() instance auto-loads at first use and saves at process
/// exit (see ConvPlanCache::persist_path()).
class ConvPlanCache {
 public:
  explicit ConvPlanCache(AutotuneOptions opt = {}) : opt_(opt) {}

  static ConvPlanCache& global();

  /// The persistence path of the global cache: $PF15_CONV_PLAN_CACHE when
  /// set, else "pf15_conv_plans.json" in the working directory. Empty
  /// when persistence is disabled ($PF15_CONV_PLAN_CACHE set to "" ,
  /// "off" or "0").
  static std::string persist_path();

  /// The plan for `p` in `phase` executed with `parallel_ok` at batch
  /// size `batch` (bucketed via conv_batch_bucket), tuning on first
  /// sight. Backends are timed in the mode they will run in: the hot
  /// paths use parallel_ok=true (candidates may fan out on the task
  /// scheduler, legal at any nesting depth); parallel_ok=false decides
  /// on strictly serial times and remains a distinct cache key for
  /// tests and mode-controlled timing.
  ConvPlan plan(const ConvProblem& p, ConvPhase phase = ConvPhase::kForward,
                bool parallel_ok = false, std::size_t batch = 1);

  /// The cached plan, if any — never tunes.
  std::optional<ConvPlan> lookup(const ConvProblem& p,
                                 ConvPhase phase = ConvPhase::kForward,
                                 bool parallel_ok = false,
                                 std::size_t batch = 1) const;

  /// Forces the forward plan for `p`: an override states "use this
  /// backend" independent of how the layer batches, so it applies to both
  /// execution modes and every batch bucket.
  void insert(const ConvProblem& p, const ConvPlan& plan);
  /// Per-phase override, same mode/bucket-independent semantics.
  void insert(const ConvProblem& p, ConvPhase phase, const ConvPlan& plan);

  /// Writes every *tuned* cached plan to `path` (atomically: temp file +
  /// rename), first merging in any valid plans already stored there, so
  /// concurrent processes sharing a path accumulate measurements instead
  /// of overwriting each other (this cache's entries win per key).
  /// insert() overrides are per-process decisions, not measurements, and
  /// are deliberately not persisted: a later process must not inherit a
  /// forced backend as if it had won a race. Throws IoError on I/O
  /// failure.
  void save(const std::string& path) const;

  /// Merges the plans stored at `path` into this cache; entries already
  /// in memory win (they are this process's freshest measurements or
  /// explicit overrides). Throws IoError when the file cannot be read,
  /// is not a plan-cache document, carries a different format version,
  /// or was recorded under a different hardware signature — the cache is
  /// left untouched in every failure case.
  void load(const std::string& path);

  /// Renders every tuned plan as the same JSON document save() writes —
  /// without the disk merge. This is the payload checkpoints embed so a
  /// cold serving process starts with warm plans.
  std::string dump() const;

  /// Merges a dump()/save() document into this cache with the same
  /// validation and precedence as load(); `origin` names the source in
  /// error messages.
  void load_document(const std::string& text,
                     const std::string& origin = "<document>");

  void clear();
  std::size_t size() const;
  /// Entries that came from a real micro-benchmark (what save() writes).
  std::size_t tuned_size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  const AutotuneOptions& options() const { return opt_; }

 private:
  using Key = std::tuple<ConvProblem, ConvPhase, bool, std::size_t>;
  using OverrideKey = std::pair<ConvProblem, ConvPhase>;

  mutable Mutex mutex_;
  CondVar tuning_cv_;
  std::map<Key, ConvPlan> plans_ PF15_GUARDED_BY(mutex_);
  /// insert() overrides, consulted before plans_: one entry covers every
  /// (mode, bucket) of its (problem, phase).
  std::map<OverrideKey, ConvPlan> overrides_ PF15_GUARDED_BY(mutex_);
  /// Keys being autotuned right now.
  std::set<Key> tuning_ PF15_GUARDED_BY(mutex_);
  AutotuneOptions opt_;
  std::uint64_t hits_ PF15_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ PF15_GUARDED_BY(mutex_) = 0;
};

}  // namespace pf15::gemm
