// Winograd SoA block transforms, shared by the SIMD dispatch TUs.
//
// These are the arithmetic bodies of the F(2x2,3x3) and F(4x4,3x3)
// input/output/dy transforms, processing kWinoBlockLanes tiles at once
// in structure-of-arrays layout: element (pos, lane) lives at
// [pos * kWinoBlockLanes + lane]. The per-lane inner loops are
// unit-stride over exactly one ymm worth of floats, so the AVX2 TU's
// auto-vectorizer turns each statement into a handful of fused
// multiply-adds while the portable TU keeps the original scalar codegen.
//
// Anonymous namespace for the same reason as kernels_generic.hpp: both
// dispatch TUs include this header and each must keep its own codegen —
// COMDAT folding would let AVX2 instructions leak into the scalar table.
//
// Transform matrices (Lavin & Gray):
//   F(2x2): B^T = [1,0,-1,0; 0,1,1,0; 0,-1,1,0; 0,1,0,-1]
//           A^T = [1,1,1,0; 0,1,-1,-1]
//   F(4x4): B^T = [4,0,-5,0,1,0; 0,-4,-4,1,1,0; 0,4,-4,-1,1,0;
//                  0,-2,-1,2,1,0; 0,2,-1,-2,1,0; 0,4,0,-5,0,1]
//           A^T = [1,1,1,1,1,0; 0,1,-1,2,-2,0; 0,1,1,4,4,0;
//                  0,1,-1,8,-8,1]
#pragma once

#include <cstddef>

#include "gemm/simd.hpp"

namespace pf15::gemm {
namespace {

// ---- F(2x2, 3x3) -----------------------------------------------------------

// V = B^T d B over a 4x4 block.
void wino_f2_input_block(const float* d, float* v) {
  constexpr std::size_t B = kWinoBlockLanes;
  float t[4][4][B];
  for (int c = 0; c < 4; ++c) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = d[(0 * 4 + c) * B + l];
      const float a1 = d[(1 * 4 + c) * B + l];
      const float a2 = d[(2 * 4 + c) * B + l];
      const float a3 = d[(3 * 4 + c) * B + l];
      t[0][c][l] = a0 - a2;
      t[1][c][l] = a1 + a2;
      t[2][c][l] = a2 - a1;
      t[3][c][l] = a1 - a3;
    }
  }
  for (int r = 0; r < 4; ++r) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = t[r][0][l];
      const float a1 = t[r][1][l];
      const float a2 = t[r][2][l];
      const float a3 = t[r][3][l];
      v[(r * 4 + 0) * B + l] = a0 - a2;
      v[(r * 4 + 1) * B + l] = a1 + a2;
      v[(r * 4 + 2) * B + l] = a2 - a1;
      v[(r * 4 + 3) * B + l] = a1 - a3;
    }
  }
}

// Y = A^T m A: 4x4 transform-domain block to 2x2 output.
void wino_f2_output_block(const float* m, float* y) {
  constexpr std::size_t B = kWinoBlockLanes;
  float t[2][4][B];
  for (int c = 0; c < 4; ++c) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = m[(0 * 4 + c) * B + l];
      const float a1 = m[(1 * 4 + c) * B + l];
      const float a2 = m[(2 * 4 + c) * B + l];
      const float a3 = m[(3 * 4 + c) * B + l];
      t[0][c][l] = a0 + a1 + a2;
      t[1][c][l] = a1 - a2 - a3;
    }
  }
  for (int r = 0; r < 2; ++r) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = t[r][0][l];
      const float a1 = t[r][1][l];
      const float a2 = t[r][2][l];
      const float a3 = t[r][3][l];
      y[(r * 2 + 0) * B + l] = a0 + a1 + a2;
      y[(r * 2 + 1) * B + l] = a1 - a2 - a3;
    }
  }
}

// dM = A dY A^T with A = (A^T)^T (4x2): 2x2 gradient to 4x4 block.
void wino_f2_dy_block(const float* dy, float* dm) {
  constexpr std::size_t B = kWinoBlockLanes;
  float t[4][2][B];
  for (int c = 0; c < 2; ++c) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = dy[(0 * 2 + c) * B + l];
      const float a1 = dy[(1 * 2 + c) * B + l];
      t[0][c][l] = a0;
      t[1][c][l] = a0 + a1;
      t[2][c][l] = a0 - a1;
      t[3][c][l] = -a1;
    }
  }
  for (int r = 0; r < 4; ++r) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = t[r][0][l];
      const float a1 = t[r][1][l];
      dm[(r * 4 + 0) * B + l] = a0;
      dm[(r * 4 + 1) * B + l] = a0 + a1;
      dm[(r * 4 + 2) * B + l] = a0 - a1;
      dm[(r * 4 + 3) * B + l] = -a1;
    }
  }
}

// ---- F(4x4, 3x3) -----------------------------------------------------------

void wino_f4_input_block(const float* d, float* v) {
  constexpr std::size_t B = kWinoBlockLanes;
  float t[6][6][B];
  for (int c = 0; c < 6; ++c) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = d[(0 * 6 + c) * B + l];
      const float a1 = d[(1 * 6 + c) * B + l];
      const float a2 = d[(2 * 6 + c) * B + l];
      const float a3 = d[(3 * 6 + c) * B + l];
      const float a4 = d[(4 * 6 + c) * B + l];
      const float a5 = d[(5 * 6 + c) * B + l];
      t[0][c][l] = 4.0f * a0 - 5.0f * a2 + a4;
      t[1][c][l] = -4.0f * a1 - 4.0f * a2 + a3 + a4;
      t[2][c][l] = 4.0f * a1 - 4.0f * a2 - a3 + a4;
      t[3][c][l] = -2.0f * a1 - a2 + 2.0f * a3 + a4;
      t[4][c][l] = 2.0f * a1 - a2 - 2.0f * a3 + a4;
      t[5][c][l] = 4.0f * a1 - 5.0f * a3 + a5;
    }
  }
  for (int r = 0; r < 6; ++r) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = t[r][0][l];
      const float a1 = t[r][1][l];
      const float a2 = t[r][2][l];
      const float a3 = t[r][3][l];
      const float a4 = t[r][4][l];
      const float a5 = t[r][5][l];
      v[(r * 6 + 0) * B + l] = 4.0f * a0 - 5.0f * a2 + a4;
      v[(r * 6 + 1) * B + l] = -4.0f * a1 - 4.0f * a2 + a3 + a4;
      v[(r * 6 + 2) * B + l] = 4.0f * a1 - 4.0f * a2 - a3 + a4;
      v[(r * 6 + 3) * B + l] = -2.0f * a1 - a2 + 2.0f * a3 + a4;
      v[(r * 6 + 4) * B + l] = 2.0f * a1 - a2 - 2.0f * a3 + a4;
      v[(r * 6 + 5) * B + l] = 4.0f * a1 - 5.0f * a3 + a5;
    }
  }
}

void wino_f4_output_block(const float* m, float* y) {
  constexpr std::size_t B = kWinoBlockLanes;
  float t[4][6][B];
  for (int c = 0; c < 6; ++c) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = m[(0 * 6 + c) * B + l];
      const float a1 = m[(1 * 6 + c) * B + l];
      const float a2 = m[(2 * 6 + c) * B + l];
      const float a3 = m[(3 * 6 + c) * B + l];
      const float a4 = m[(4 * 6 + c) * B + l];
      const float a5 = m[(5 * 6 + c) * B + l];
      t[0][c][l] = a0 + a1 + a2 + a3 + a4;
      t[1][c][l] = a1 - a2 + 2.0f * a3 - 2.0f * a4;
      t[2][c][l] = a1 + a2 + 4.0f * a3 + 4.0f * a4;
      t[3][c][l] = a1 - a2 + 8.0f * a3 - 8.0f * a4 + a5;
    }
  }
  for (int r = 0; r < 4; ++r) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = t[r][0][l];
      const float a1 = t[r][1][l];
      const float a2 = t[r][2][l];
      const float a3 = t[r][3][l];
      const float a4 = t[r][4][l];
      const float a5 = t[r][5][l];
      y[(r * 4 + 0) * B + l] = a0 + a1 + a2 + a3 + a4;
      y[(r * 4 + 1) * B + l] = a1 - a2 + 2.0f * a3 - 2.0f * a4;
      y[(r * 4 + 2) * B + l] = a1 + a2 + 4.0f * a3 + 4.0f * a4;
      y[(r * 4 + 3) * B + l] = a1 - a2 + 8.0f * a3 - 8.0f * a4 + a5;
    }
  }
}

// dM = A dY A^T with A = (A^T)^T (6x4).
void wino_f4_dy_block(const float* dy, float* dm) {
  constexpr std::size_t B = kWinoBlockLanes;
  float t[6][4][B];
  for (int c = 0; c < 4; ++c) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = dy[(0 * 4 + c) * B + l];
      const float a1 = dy[(1 * 4 + c) * B + l];
      const float a2 = dy[(2 * 4 + c) * B + l];
      const float a3 = dy[(3 * 4 + c) * B + l];
      t[0][c][l] = a0;
      t[1][c][l] = a0 + a1 + a2 + a3;
      t[2][c][l] = a0 - a1 + a2 - a3;
      t[3][c][l] = a0 + 2.0f * a1 + 4.0f * a2 + 8.0f * a3;
      t[4][c][l] = a0 - 2.0f * a1 + 4.0f * a2 - 8.0f * a3;
      t[5][c][l] = a3;
    }
  }
  for (int r = 0; r < 6; ++r) {
    for (std::size_t l = 0; l < B; ++l) {
      const float a0 = t[r][0][l];
      const float a1 = t[r][1][l];
      const float a2 = t[r][2][l];
      const float a3 = t[r][3][l];
      dm[(r * 6 + 0) * B + l] = a0;
      dm[(r * 6 + 1) * B + l] = a0 + a1 + a2 + a3;
      dm[(r * 6 + 2) * B + l] = a0 - a1 + a2 - a3;
      dm[(r * 6 + 3) * B + l] = a0 + 2.0f * a1 + 4.0f * a2 + 8.0f * a3;
      dm[(r * 6 + 4) * B + l] = a0 - 2.0f * a1 + 4.0f * a2 - 8.0f * a3;
      dm[(r * 6 + 5) * B + l] = a3;
    }
  }
}

}  // namespace
}  // namespace pf15::gemm
