#include "gemm/im2col.hpp"

#include <cstring>

namespace pf15::gemm {

void im2col(const ConvGeom& g, const float* image, float* col) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t plane = g.in_h * g.in_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    const float* src_plane = image + c * plane;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = col + row * (oh * ow);
        for (std::size_t y = 0; y < oh; ++y) {
          // Input row index for this output row / kernel tap, before
          // padding adjustment; may be out of bounds.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride_h + kh) -
              static_cast<std::ptrdiff_t>(g.pad_h);
          float* dst_row = dst + y * ow;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            std::memset(dst_row, 0, ow * sizeof(float));
            continue;
          }
          const float* src_row = src_plane + static_cast<std::size_t>(iy) *
                                                 g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride_w + kw) -
                static_cast<std::ptrdiff_t>(g.pad_w);
            dst_row[x] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w))
                    ? 0.0f
                    : src_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const ConvGeom& g, const float* col, float* image) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t plane = g.in_h * g.in_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    float* dst_plane = image + c * plane;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * (oh * ow);
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride_h + kh) -
              static_cast<std::ptrdiff_t>(g.pad_h);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* dst_row = dst_plane + static_cast<std::size_t>(iy) * g.in_w;
          const float* src_row = src + y * ow;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride_w + kw) -
                static_cast<std::ptrdiff_t>(g.pad_w);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            dst_row[static_cast<std::size_t>(ix)] += src_row[x];
          }
        }
      }
    }
  }
}

}  // namespace pf15::gemm
