#include "gemm/fft_conv.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace pf15::gemm {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft1d(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  PF15_CHECK_MSG(n > 0 && (n & (n - 1)) == 0,
                 "fft1d: size " << n << " is not a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Iterative butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi /
                         static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& z : data) z *= scale;
  }
}

void fft2d(std::vector<std::complex<double>>& grid, std::size_t n,
           bool inverse) {
  PF15_CHECK(grid.size() == n * n);
  std::vector<std::complex<double>> line(n);
  for (std::size_t r = 0; r < n; ++r) {  // rows
    std::copy(grid.begin() + static_cast<long>(r * n),
              grid.begin() + static_cast<long>((r + 1) * n), line.begin());
    fft1d(line, inverse);
    std::copy(line.begin(), line.end(),
              grid.begin() + static_cast<long>(r * n));
  }
  for (std::size_t c = 0; c < n; ++c) {  // columns
    for (std::size_t r = 0; r < n; ++r) line[r] = grid[r * n + c];
    fft1d(line, inverse);
    for (std::size_t r = 0; r < n; ++r) grid[r * n + c] = line[r];
  }
}

void fft_conv2d(const float* image, std::size_t in_c, std::size_t h,
                std::size_t w, const float* weight, std::size_t out_c,
                std::size_t kernel, std::size_t stride, std::size_t pad,
                const float* bias, float* output) {
  PF15_CHECK(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0);
  const std::size_t hp = h + 2 * pad;
  const std::size_t wp = w + 2 * pad;
  PF15_CHECK_MSG(hp >= kernel && wp >= kernel,
                 "fft_conv2d: kernel larger than padded input");
  const std::size_t out_h = (hp - kernel) / stride + 1;
  const std::size_t out_w = (wp - kernel) / stride + 1;
  // One square grid covers both axes; circular correlation is alias-free
  // for output indices <= padded_size - kernel as long as P >= padded.
  const std::size_t p = next_pow2(std::max({hp, wp, kernel}));
  const std::size_t p2 = p * p;

  // Image spectra, one per input channel (computed once, reused by every
  // output channel — the FFT algorithm's main amortization).
  std::vector<std::vector<std::complex<double>>> image_hat(in_c);
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    auto& grid = image_hat[ic];
    grid.assign(p2, {0.0, 0.0});
    const float* src = image + ic * h * w;
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        grid[(r + pad) * p + (c + pad)] = src[r * w + c];
      }
    }
    fft2d(grid, p, /*inverse=*/false);
  }

  std::vector<std::complex<double>> acc(p2);
  std::vector<std::complex<double>> ker(p2);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    std::fill(acc.begin(), acc.end(), std::complex<double>(0.0, 0.0));
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      std::fill(ker.begin(), ker.end(), std::complex<double>(0.0, 0.0));
      const float* kw = weight + (oc * in_c + ic) * kernel * kernel;
      for (std::size_t r = 0; r < kernel; ++r) {
        for (std::size_t c = 0; c < kernel; ++c) {
          ker[r * p + c] = kw[r * kernel + c];
        }
      }
      fft2d(ker, p, /*inverse=*/false);
      // Cross-correlation: conjugate the kernel spectrum.
      const auto& img = image_hat[ic];
      for (std::size_t i = 0; i < p2; ++i) {
        acc[i] += img[i] * std::conj(ker[i]);
      }
    }
    fft2d(acc, p, /*inverse=*/true);
    float* dst = output + oc * out_h * out_w;
    const float b = bias ? bias[oc] : 0.0f;
    for (std::size_t r = 0; r < out_h; ++r) {
      for (std::size_t c = 0; c < out_w; ++c) {
        dst[r * out_w + c] =
            static_cast<float>(acc[r * stride * p + c * stride].real()) + b;
      }
    }
  }
}

// Shared geometry for the backward phases. Index conventions: `u` is a
// padded-image coordinate (u = y + pad), `t` a transform-grid position.
// The forward pass computes out(o) = Σ_τ imge(o·s + τ) · ker(τ) on the
// p×p circular grid with imge embedded at offset pad; both gradients are
// exact adjoints of that map. Circular wraparound never reaches the read
// windows because every support sum stays below p (p >= padded size).
namespace {

struct FftGeom {
  std::size_t hp, wp, out_h, out_w, p, p2;
};

FftGeom fft_backward_geom(std::size_t h, std::size_t w, std::size_t kernel,
                          std::size_t stride, std::size_t pad) {
  FftGeom g;
  g.hp = h + 2 * pad;
  g.wp = w + 2 * pad;
  PF15_CHECK_MSG(g.hp >= kernel && g.wp >= kernel,
                 "fft_conv2d backward: kernel larger than padded input");
  g.out_h = (g.hp - kernel) / stride + 1;
  g.out_w = (g.wp - kernel) / stride + 1;
  g.p = next_pow2(std::max({g.hp, g.wp, kernel}));
  g.p2 = g.p * g.p;
  return g;
}

/// dout(oc) stride-upsampled onto the transform grid and transformed:
/// due(oy·s, ox·s) = dout(oy, ox), zero elsewhere.
std::vector<std::complex<double>> upsampled_dout_hat(
    const float* dout, std::size_t oc, const FftGeom& g,
    std::size_t stride) {
  std::vector<std::complex<double>> grid(g.p2, {0.0, 0.0});
  const float* src = dout + oc * g.out_h * g.out_w;
  for (std::size_t oy = 0; oy < g.out_h; ++oy) {
    for (std::size_t ox = 0; ox < g.out_w; ++ox) {
      grid[oy * stride * g.p + ox * stride] = src[oy * g.out_w + ox];
    }
  }
  fft2d(grid, g.p, /*inverse=*/false);
  return grid;
}

}  // namespace

void fft_conv2d_backward_data(const float* dout, std::size_t in_c,
                              std::size_t h, std::size_t w,
                              const float* weight, std::size_t out_c,
                              std::size_t kernel, std::size_t stride,
                              std::size_t pad, float* din) {
  PF15_CHECK(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0);
  const FftGeom g = fft_backward_geom(h, w, kernel, stride, pad);

  // Output-gradient spectra, one per output channel (computed once,
  // reused by every input channel — the same amortization as forward).
  std::vector<std::vector<std::complex<double>>> du_hat(out_c);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    du_hat[oc] = upsampled_dout_hat(dout, oc, g, stride);
  }

  // d_imge = Σ_oc due(oc) ∗ ker(oc,ic): circular CONVOLUTION, hence the
  // unconjugated product — the adjoint of the forward pass's conjugated
  // (correlation) product. din is the pad-offset crop of d_imge.
  std::vector<std::complex<double>> acc(g.p2);
  std::vector<std::complex<double>> ker(g.p2);
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    std::fill(acc.begin(), acc.end(), std::complex<double>(0.0, 0.0));
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      std::fill(ker.begin(), ker.end(), std::complex<double>(0.0, 0.0));
      const float* kw = weight + (oc * in_c + ic) * kernel * kernel;
      for (std::size_t r = 0; r < kernel; ++r) {
        for (std::size_t c = 0; c < kernel; ++c) {
          ker[r * g.p + c] = kw[r * kernel + c];
        }
      }
      fft2d(ker, g.p, /*inverse=*/false);
      const auto& du = du_hat[oc];
      for (std::size_t i = 0; i < g.p2; ++i) {
        acc[i] += du[i] * ker[i];
      }
    }
    fft2d(acc, g.p, /*inverse=*/true);
    float* dst = din + ic * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        dst[y * w + x] =
            static_cast<float>(acc[(y + pad) * g.p + (x + pad)].real());
      }
    }
  }
}

void fft_conv2d_backward_filter(const float* image, std::size_t in_c,
                                std::size_t h, std::size_t w,
                                const float* dout, std::size_t out_c,
                                std::size_t kernel, std::size_t stride,
                                std::size_t pad, float* dweight) {
  PF15_CHECK(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0);
  const FftGeom g = fft_backward_geom(h, w, kernel, stride, pad);

  // Padded-image spectra per input channel.
  std::vector<std::vector<std::complex<double>>> image_hat(in_c);
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    auto& grid = image_hat[ic];
    grid.assign(g.p2, {0.0, 0.0});
    const float* src = image + ic * h * w;
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        grid[(r + pad) * g.p + (c + pad)] = src[r * w + c];
      }
    }
    fft2d(grid, g.p, /*inverse=*/false);
  }
  // Upsampled output-gradient spectra per output channel.
  std::vector<std::vector<std::complex<double>>> du_hat(out_c);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    du_hat[oc] = upsampled_dout_hat(dout, oc, g, stride);
  }

  // dW(oc,ic)(τ) = Σ_t imge(τ + t) · due(t): cross-correlation of the
  // padded image against the upsampled gradient, read at lags τ < K.
  std::vector<std::complex<double>> acc(g.p2);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const auto& du = du_hat[oc];
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      const auto& img = image_hat[ic];
      for (std::size_t i = 0; i < g.p2; ++i) {
        acc[i] = img[i] * std::conj(du[i]);
      }
      fft2d(acc, g.p, /*inverse=*/true);
      float* dw = dweight + (oc * in_c + ic) * kernel * kernel;
      for (std::size_t r = 0; r < kernel; ++r) {
        for (std::size_t c = 0; c < kernel; ++c) {
          dw[r * kernel + c] +=
              static_cast<float>(acc[r * g.p + c].real());
        }
      }
    }
  }
}

std::uint64_t fft_conv_flops(std::size_t in_c, std::size_t out_c,
                             std::size_t h, std::size_t w,
                             std::size_t kernel, std::size_t pad) {
  const std::size_t p =
      next_pow2(std::max({h + 2 * pad, w + 2 * pad, kernel}));
  const double n = static_cast<double>(p * p);
  // Complex FFT: ~5 N log2 N real flops per 2-D transform.
  const double per_fft = 5.0 * n * std::log2(n);
  const double transforms =
      static_cast<double>(in_c + in_c * out_c + out_c);
  // Pointwise complex multiply-accumulate: 8 real flops per point.
  const double pointwise = 8.0 * n * static_cast<double>(in_c * out_c);
  return static_cast<std::uint64_t>(transforms * per_fft + pointwise);
}

}  // namespace pf15::gemm
