// Generic (portable C++) implementations of the packed-GEMM kernel set:
// the pack routines and the scalar MR x NR microkernel. This header is
// included by BOTH dispatch TUs — src/gemm/simd.cpp (portable flags; the
// scalar tier, numerically identical to the pre-dispatch kernels) and
// src/gemm/simd_avx2.cpp (per-file -mavx2 -mfma; the compiler
// auto-vectorizes the pack copies and the same loops become the AVX2
// tier's fallbacks where no hand-written kernel exists).
//
// Everything here lives in an anonymous namespace ON PURPOSE: each TU
// must keep its own copy with its own codegen. With external (inline/
// COMDAT) linkage the linker would fold the two builds into one — and if
// it kept the AVX2 build, the "portable" scalar table would execute AVX2
// instructions on hardware the dispatch just rejected.
#pragma once

#include <algorithm>
#include <cstddef>

#include "gemm/simd.hpp"

namespace pf15::gemm {
namespace {

inline float kernel_load_a(const float* a, std::size_t lda, bool trans,
                           std::size_t row, std::size_t col) {
  return trans ? a[col * lda + row] : a[row * lda + col];
}

inline float kernel_load_b(const float* b, std::size_t ldb, bool trans,
                           std::size_t row, std::size_t col) {
  return trans ? b[col * ldb + row] : b[row * ldb + col];
}

// Pack an mc x kc block of op(A) into panels of MR rows:
// dst layout: ceil(mc/MR) panels, each kc columns of MR contiguous rows.
void generic_pack_a(const float* a, std::size_t lda, bool trans,
                    std::size_t row0, std::size_t col0, std::size_t mc,
                    std::size_t kc, float* dst) {
  constexpr std::size_t MR = kGemmMR;
  for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
    const std::size_t mr = std::min(MR, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        *dst++ = kernel_load_a(a, lda, trans, row0 + i0 + i, col0 + p);
      }
      for (std::size_t i = mr; i < MR; ++i) *dst++ = 0.0f;
    }
  }
}

// Pack a kc x nc block of op(B) into panels of NR columns:
// dst layout: ceil(nc/NR) panels, each kc rows of NR contiguous columns.
// The non-transposed full-panel case is a straight row copy — split out
// so it compiles to vector moves instead of a gather loop.
void generic_pack_b(const float* b, std::size_t ldb, bool trans,
                    std::size_t row0, std::size_t col0, std::size_t kc,
                    std::size_t nc, float* dst) {
  constexpr std::size_t NR = kGemmNR;
  for (std::size_t j0 = 0; j0 < nc; j0 += NR) {
    const std::size_t nr = std::min(NR, nc - j0);
    if (!trans && nr == NR) {
      const float* src = b + row0 * ldb + col0 + j0;
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t j = 0; j < NR; ++j) dst[j] = src[j];
        dst += NR;
        src += ldb;
      }
      continue;
    }
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < nr; ++j) {
        *dst++ = kernel_load_b(b, ldb, trans, row0 + p, col0 + j0 + j);
      }
      for (std::size_t j = nr; j < NR; ++j) *dst++ = 0.0f;
    }
  }
}

// MR x NR microkernel: acc += packed_a_panel * packed_b_panel over kc.
// Plain scalar code with fixed trip counts; GCC vectorises the NR loop.
// `acc` is the row-major MR x NR tile. ([[maybe_unused]]: the AVX2 TU
// includes this header for the pack routines but supersedes the
// microkernel with hand-written intrinsics.)
[[maybe_unused]] void generic_microkernel(std::size_t kc, const float* __restrict__ pa,
                         const float* __restrict__ pb,
                         float* __restrict__ acc) {
  constexpr std::size_t MR = kGemmMR;
  constexpr std::size_t NR = kGemmNR;
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict__ arow = pa + p * MR;
    const float* __restrict__ brow = pb + p * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      const float aval = arow[i];
      for (std::size_t j = 0; j < NR; ++j) {
        acc[i * NR + j] += aval * brow[j];
      }
    }
  }
}

}  // namespace
}  // namespace pf15::gemm
