// Pooling layers: max pooling (first four HEP units) and global average
// pooling (last HEP unit) per §III-A.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace pf15::nn {

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, std::size_t kernel, std::size_t stride);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "pool"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }

 private:
  std::string name_;
  std::size_t kernel_;
  std::size_t stride_;
  // Flat input index of the max element for every output element of the
  // latest forward() — consumed by backward().
  std::vector<std::size_t> argmax_;
};

/// Collapses each channel plane to its mean: (N, C, H, W) -> (N, C, 1, 1).
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "gap"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

 private:
  std::string name_;
};

}  // namespace pf15::nn
