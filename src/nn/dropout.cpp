#include "nn/dropout.hpp"

namespace pf15::nn {

Dropout::Dropout(std::string name, float drop_prob, std::uint64_t seed)
    : name_(std::move(name)), drop_prob_(drop_prob), rng_(seed) {
  PF15_CHECK_MSG(drop_prob >= 0.0f && drop_prob < 1.0f,
                 name_ << ": drop_prob " << drop_prob << " out of [0, 1)");
}

void Dropout::forward(const Tensor& in, Tensor& out) {
  ensure_shape(out, in.shape());
  if (!training_ || drop_prob_ == 0.0f) {
    out.copy_from(in);
    return;
  }
  const bool reuse =
      mask_frozen_ && mask_.defined() && mask_.shape() == in.shape();
  if (!reuse) {
    ensure_shape(mask_, in.shape());
    const float keep_inv = 1.0f / (1.0f - drop_prob_);
    for (std::size_t i = 0; i < mask_.numel(); ++i) {
      mask_.data()[i] = rng_.bernoulli(drop_prob_) ? 0.0f : keep_inv;
    }
  }
  for (std::size_t i = 0; i < in.numel(); ++i) {
    out.data()[i] = in.data()[i] * mask_.data()[i];
  }
}

void Dropout::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  PF15_CHECK(dout.shape() == in.shape());
  ensure_shape(din, in.shape());
  if (!training_ || drop_prob_ == 0.0f) {
    din.copy_from(dout);
    return;
  }
  PF15_CHECK_MSG(mask_.defined() && mask_.shape() == in.shape(),
                 name_ << ": backward without a matching forward");
  for (std::size_t i = 0; i < din.numel(); ++i) {
    din.data()[i] = dout.data()[i] * mask_.data()[i];
  }
}

}  // namespace pf15::nn
