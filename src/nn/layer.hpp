// Layer abstraction.
//
// A Layer is a differentiable function of one input tensor plus owned
// parameters. The enclosing container (Sequential or a composite model)
// owns the activations and hands the forward input back to backward, so
// layers only cache cheap auxiliary state (e.g. pooling argmax indices).
//
// Gradient semantics: backward *accumulates* (+=) into parameter gradient
// tensors; the solver/trainer zeroes them between iterations. This is what
// lets a compute group process several micro-batches before one reduction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace pf15::nn {

/// A named (value, gradient) pair exposed by a layer. Pointers remain valid
/// for the lifetime of the layer.
struct Param {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer name ("conv1", "pool3", ...).
  virtual const std::string& name() const = 0;
  /// Short kind tag ("conv", "pool", "relu", ...), used by the profiler.
  virtual std::string kind() const = 0;

  /// Output shape produced for a given input shape. Must not depend on
  /// parameter values. PF15_CHECKs on incompatible input.
  virtual Shape output_shape(const Shape& in) const = 0;

  /// out = f(in). `out` is (re)allocated by the callee if its shape is
  /// wrong. A layer instance is not re-entrant: one forward/backward pair
  /// in flight at a time.
  virtual void forward(const Tensor& in, Tensor& out) = 0;

  /// din = df/din^T · dout; parameter gradients accumulate. `in` must be
  /// the exact tensor passed to the latest forward().
  virtual void backward(const Tensor& in, const Tensor& dout,
                        Tensor& din) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// Non-trainable state tensors that must survive a checkpoint round trip
  /// (e.g. BatchNorm running statistics). Returned as Params with a null
  /// grad. Pointers remain valid for the lifetime of the layer.
  virtual std::vector<Param> state() { return {}; }

  /// Switches between training behaviour (batch statistics, dropout masks)
  /// and inference behaviour (running estimates, identity dropout).
  /// Composite layers must propagate to children. No-op for layers whose
  /// forward is mode-independent.
  virtual void set_training(bool training) { (void)training; }

  /// Whether this layer still runs training behaviour. Layers whose
  /// forward is mode-independent report false; composites report true
  /// when any child does. The graph compiler uses this to name the
  /// offending layer when refusing a training-mode capture.
  virtual bool training() const { return false; }

  /// Opt-in for the compiled executor's wide levels: return true when
  /// forward() may run inside a task of common::task_scheduler,
  /// concurrently with other graph nodes. The contract: forward must not
  /// touch state shared with other layers, and any internal parallelism
  /// must go through the task scheduler (TaskScheduler / ThreadPool
  /// parallel_for — nested waits are legal there) rather than blocking
  /// on primitives the scheduler cannot help with. Layers the compiler
  /// lowers to known kinds never consult this; it only gates *opaque*
  /// extension nodes, which otherwise schedule serially between levels.
  virtual bool parallel_ok() const { return false; }

  /// Analytic FLOP counts (the §V accounting). Counts multiply-adds as two
  /// FLOPs; elementwise ops as one per element.
  virtual std::uint64_t forward_flops(const Shape& in) const = 0;
  virtual std::uint64_t backward_flops(const Shape& in) const = 0;

  /// Total number of trainable scalars.
  std::size_t param_count() {
    std::size_t n = 0;
    for (const auto& p : params()) n += p.value->numel();
    return n;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Ensures `t` has shape `s`, reallocating when needed (contents undefined
/// after reallocation).
inline void ensure_shape(Tensor& t, const Shape& s) {
  if (!t.defined() || t.shape() != s) t = Tensor(s);
}

}  // namespace pf15::nn
