// The supervised HEP architecture of §III-A:
//
//   5 × [conv 3x3/1 (128 filters) + ReLU + pool] + FC(128 -> 2) + softmax-CE
//
// Max pooling 2x2/2 after the first four conv units, global average pooling
// after the fifth; the FC projects the pooled 128-vector to two class
// logits. With the paper's 224x224x3 input this yields 594,178 parameters
// = 2.27 MiB, matching Table II's 2.3 MiB.
#pragma once

#include "nn/conv2d.hpp"
#include "nn/network.hpp"

namespace pf15::nn {

struct HepConfig {
  std::size_t image = 224;    // square input size
  std::size_t channels = 3;   // calorimeter EM / hadronic / track channels
  std::size_t filters = 128;  // filters per conv layer
  std::size_t conv_units = 5;
  std::size_t classes = 2;  // signal vs background
  std::uint64_t seed = 1234;
  /// Convolution dispatch. kAuto by default: the paper model inherits the
  /// plan cache's measured per-(geometry, phase) backend wins — warm from
  /// the first batch when a persisted cache or a plan-carrying checkpoint
  /// is present. Force kIm2col for the bit-stable reference baseline.
  ConvAlgo algo = ConvAlgo::kAuto;

  /// A reduced configuration that trains in seconds; used by tests and the
  /// functional (non-simulated) hybrid-training demos.
  static HepConfig tiny() {
    HepConfig c;
    c.image = 32;
    c.filters = 8;
    c.conv_units = 3;
    return c;
  }
};

/// Builds the HEP network. The final layer outputs (batch, classes) logits;
/// pair with SoftmaxCrossEntropy.
Sequential build_hep_network(const HepConfig& cfg);

}  // namespace pf15::nn
