#include "nn/residual.hpp"

#include <memory>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace pf15::nn {

ResidualBlock::ResidualBlock(std::string name, const ResidualConfig& cfg,
                             Rng& rng)
    : name_(std::move(name)), cfg_(cfg) {
  PF15_CHECK(cfg.in_channels > 0 && cfg.out_channels > 0);
  PF15_CHECK(cfg.stride >= 1);

  Conv2dConfig c1;
  c1.in_channels = cfg.in_channels;
  c1.out_channels = cfg.out_channels;
  c1.kernel = 3;
  c1.stride = cfg.stride;
  c1.pad = 1;
  c1.algo = cfg.algo;
  main_.push_back(std::make_unique<Conv2d>(name_ + ".conv1", c1, rng));
  if (cfg.batchnorm) {
    BatchNormConfig bn;
    bn.channels = cfg.out_channels;
    main_.push_back(std::make_unique<BatchNorm2d>(name_ + ".bn1", bn));
  }
  main_.push_back(std::make_unique<ReLU>(name_ + ".relu1"));

  Conv2dConfig c2;
  c2.in_channels = cfg.out_channels;
  c2.out_channels = cfg.out_channels;
  c2.kernel = 3;
  c2.stride = 1;
  c2.pad = 1;
  c2.algo = cfg.algo;
  main_.push_back(std::make_unique<Conv2d>(name_ + ".conv2", c2, rng));
  if (cfg.batchnorm) {
    BatchNormConfig bn;
    bn.channels = cfg.out_channels;
    main_.push_back(std::make_unique<BatchNorm2d>(name_ + ".bn2", bn));
  }

  if (cfg.in_channels != cfg.out_channels || cfg.stride != 1) {
    Conv2dConfig proj;
    proj.in_channels = cfg.in_channels;
    proj.out_channels = cfg.out_channels;
    proj.kernel = 1;
    proj.stride = cfg.stride;
    proj.pad = 0;
    proj.bias = false;
    proj.algo = cfg.algo;
    projection_ = std::make_unique<Conv2d>(name_ + ".proj", proj, rng);
  }

  acts_.resize(main_.size());
  grads_.resize(main_.size());
}

Shape ResidualBlock::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : main_) s = layer->output_shape(s);
  if (projection_) {
    PF15_CHECK_MSG(projection_->output_shape(in) == s,
                   name_ << ": branch/shortcut shape mismatch");
  } else {
    PF15_CHECK_MSG(s == in,
                   name_ << ": identity shortcut requires matching shapes");
  }
  return s;
}

void ResidualBlock::forward(const Tensor& in, Tensor& out) {
  const Tensor* x = &in;
  for (std::size_t i = 0; i < main_.size(); ++i) {
    main_[i]->forward(*x, acts_[i]);
    x = &acts_[i];
  }
  const Tensor& branch = acts_.back();

  const Tensor* shortcut = &in;
  if (projection_) {
    projection_->forward(in, shortcut_out_);
    shortcut = &shortcut_out_;
  }
  PF15_CHECK(branch.shape() == shortcut->shape());

  ensure_shape(sum_, branch.shape());
  ensure_shape(out, branch.shape());
  for (std::size_t i = 0; i < sum_.numel(); ++i) {
    sum_.data()[i] = branch.data()[i] + shortcut->data()[i];
    out.data()[i] = sum_.data()[i] > 0.0f ? sum_.data()[i] : 0.0f;
  }
}

void ResidualBlock::backward(const Tensor& in, const Tensor& dout,
                             Tensor& din) {
  PF15_CHECK_MSG(sum_.defined() && dout.shape() == sum_.shape(),
                 name_ << ": backward without a matching forward");
  ensure_shape(dsum_, sum_.shape());
  for (std::size_t i = 0; i < dsum_.numel(); ++i) {
    dsum_.data()[i] = sum_.data()[i] > 0.0f ? dout.data()[i] : 0.0f;
  }

  // Branch path, in reverse; the gradient w.r.t. layer i's input lands in
  // grads_[i].
  const Tensor* dy = &dsum_;
  for (std::size_t i = main_.size(); i-- > 0;) {
    const Tensor& x = (i == 0) ? in : acts_[i - 1];
    main_[i]->backward(x, *dy, grads_[i]);
    dy = &grads_[i];
  }

  ensure_shape(din, in.shape());
  if (projection_) {
    projection_->backward(in, dsum_, dshortcut_);
    for (std::size_t i = 0; i < din.numel(); ++i) {
      din.data()[i] = grads_[0].data()[i] + dshortcut_.data()[i];
    }
  } else {
    for (std::size_t i = 0; i < din.numel(); ++i) {
      din.data()[i] = grads_[0].data()[i] + dsum_.data()[i];
    }
  }
}

std::vector<Param> ResidualBlock::params() {
  std::vector<Param> all;
  for (auto& layer : main_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  if (projection_) {
    for (auto& p : projection_->params()) all.push_back(p);
  }
  return all;
}

std::uint64_t ResidualBlock::forward_flops(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& layer : main_) {
    total += layer->forward_flops(s);
    s = layer->output_shape(s);
  }
  if (projection_) total += projection_->forward_flops(in);
  total += 2 * s.numel();  // add + ReLU
  return total;
}

std::uint64_t ResidualBlock::backward_flops(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& layer : main_) {
    total += layer->backward_flops(s);
    s = layer->output_shape(s);
  }
  if (projection_) total += projection_->backward_flops(in);
  total += 2 * s.numel();
  return total;
}

std::vector<Param> ResidualBlock::state() {
  std::vector<Param> all;
  for (auto& layer : main_) {
    for (auto& p : layer->state()) all.push_back(p);
  }
  if (projection_) {
    for (auto& p : projection_->state()) all.push_back(p);
  }
  return all;
}

void ResidualBlock::set_training(bool training) {
  for (auto& layer : main_) layer->set_training(training);
  if (projection_) projection_->set_training(training);
}

bool ResidualBlock::training() const {
  for (const auto& layer : main_) {
    if (layer->training()) return true;
  }
  return projection_ != nullptr && projection_->training();
}

Sequential build_resnet(const ResNetConfig& cfg) {
  PF15_CHECK(!cfg.stage_channels.empty());
  PF15_CHECK(cfg.blocks_per_stage >= 1);
  Rng rng(cfg.seed);
  Sequential net;

  Conv2dConfig stem;
  stem.in_channels = cfg.in_channels;
  stem.out_channels = cfg.stage_channels.front();
  stem.kernel = 3;
  stem.stride = 1;
  stem.pad = 1;
  stem.algo = cfg.algo;
  net.add(std::make_unique<Conv2d>("stem", stem, rng));
  net.add(std::make_unique<ReLU>("stem.relu"));

  std::size_t in_c = cfg.stage_channels.front();
  for (std::size_t s = 0; s < cfg.stage_channels.size(); ++s) {
    const std::size_t out_c = cfg.stage_channels[s];
    for (std::size_t b = 0; b < cfg.blocks_per_stage; ++b) {
      ResidualConfig rc;
      rc.in_channels = in_c;
      rc.out_channels = out_c;
      rc.stride = (s > 0 && b == 0) ? 2 : 1;
      rc.batchnorm = cfg.batchnorm;
      rc.algo = cfg.algo;
      const std::string name =
          "res" + std::to_string(s + 1) + "_" + std::to_string(b + 1);
      net.add(std::make_unique<ResidualBlock>(name, rc, rng));
      in_c = out_c;
    }
  }

  net.add(std::make_unique<GlobalAvgPool>("gap"));
  net.add(std::make_unique<Dense>("fc", in_c, cfg.num_classes, rng));
  return net;
}

}  // namespace pf15::nn
