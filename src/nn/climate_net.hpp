// Semi-supervised climate architecture (§III-B, Table II).
//
// A shared strided-convolution encoder produces a coarse feature grid. Four
// small convolution heads predict, at every grid cell, the paper's four
// scores: box confidence, class, (x, y) of the bottom-left corner, and
// (w, h). A deconvolutional decoder reconstructs the input from the same
// coarse features, so unlabeled images still train the encoder through the
// reconstruction term — that is the semi-supervised coupling.
//
// With the paper's 768x768x16 input and our width schedule
// {128, 256, 512, 768, 1024} (5x5/2 encoder convs, 6x6/2 decoder deconvs)
// the model has ~82M parameters ≈ 313 MiB, reproducing the scale of
// Table II's 302.1 MiB (the paper does not publish exact widths; see
// DESIGN.md).
#pragma once

#include <memory>
#include <vector>

#include "nn/boxes.hpp"
#include "nn/conv2d.hpp"
#include "nn/deconv2d.hpp"
#include "nn/network.hpp"

namespace pf15::nn {

struct ClimateConfig {
  std::size_t image = 768;   // square input
  std::size_t channels = 16; // climate variables (TMQ, U850, ...)
  std::size_t classes = 4;   // TC, ETC, AR, TD
  std::vector<std::size_t> widths = {128, 256, 512, 768, 1024};
  std::size_t enc_kernel = 5;  // stride-2, pad (k-1)/2
  std::size_t dec_kernel = 6;  // stride-2, pad 2 -> exact doubling
  std::size_t head_kernel = 3;
  std::uint64_t seed = 4321;
  /// Convolution dispatch for the encoder, heads and decoder. kAuto by
  /// default (see HepConfig::algo); force kIm2col for the bit-stable
  /// reference baseline.
  ConvAlgo algo = ConvAlgo::kAuto;

  /// Downscaled config for tests and laptop-speed training.
  static ClimateConfig tiny() {
    ClimateConfig c;
    c.image = 32;
    c.channels = 4;
    c.classes = 2;
    c.widths = {8, 12, 16};
    return c;
  }

  std::size_t levels() const { return widths.size(); }
  /// Side of the coarse feature grid (image / 2^levels).
  std::size_t grid() const { return image >> levels(); }
};

/// Ground truth for one climate image. `labeled == false` marks the
/// unlabeled stream: only the reconstruction term applies.
struct ClimateTarget {
  std::vector<Box> boxes;
  bool labeled = true;
};

class ClimateNet {
 public:
  /// Network outputs for one forward pass. All detection maps live on the
  /// (grid x grid) coarse resolution; recon matches the input.
  struct Outputs {
    Tensor conf;   // (N, 1, G, G) confidence logits
    Tensor cls;    // (N, classes, G, G) class logits
    Tensor xy;     // (N, 2, G, G) corner-offset logits
    Tensor wh;     // (N, 2, G, G) size logits (sigmoid -> sqrt scale)
    Tensor recon;  // (N, channels, H, W) reconstruction
  };

  /// Gradients w.r.t. every output, same shapes as Outputs.
  struct OutputGrads {
    Tensor conf, cls, xy, wh, recon;
  };

  explicit ClimateNet(const ClimateConfig& cfg);

  const ClimateConfig& config() const { return cfg_; }

  const Outputs& forward(const Tensor& input, bool profile = false);
  /// Backprop through heads + decoder into the shared encoder. Parameter
  /// gradients accumulate; input gradient is discarded (inputs are data).
  void backward(const Tensor& input, const OutputGrads& grads,
                bool profile = false);

  std::vector<Param> params();
  /// Non-trainable state across all parts, in the same part order as
  /// params() (encoder, heads, decoder).
  std::vector<Param> state();
  /// params() followed by state() — the canonical checkpoint entry order.
  std::vector<Param> params_and_state();
  std::size_t param_count();
  std::size_t param_bytes() { return param_count() * sizeof(float); }
  void zero_grad();

  /// Propagates training/inference mode to the encoder, heads and decoder.
  void set_training(bool training);

  std::uint64_t forward_flops(const Shape& in) const;
  std::uint64_t backward_flops(const Shape& in) const;

  /// Per-layer profiles spanning encoder, heads and decoder.
  std::vector<LayerProfile> profiles() const;

  void save_params(std::ostream& os);
  void load_params(std::istream& is);

  Sequential& encoder() { return encoder_; }
  Sequential& decoder() { return decoder_; }
  Sequential& conf_head() { return conf_head_; }
  Sequential& cls_head() { return cls_head_; }
  Sequential& xy_head() { return xy_head_; }
  Sequential& wh_head() { return wh_head_; }
  /// True when *any* part still runs training behaviour — the mutable
  /// part accessors above can desynchronise the parts, and consumers
  /// gating on inference mode (the graph compiler) must refuse a
  /// partially-training net.
  bool training() const {
    return encoder_.training() || decoder_.training() ||
           conf_head_.training() || cls_head_.training() ||
           xy_head_.training() || wh_head_.training();
  }

 private:
  ClimateConfig cfg_;
  Sequential encoder_;
  Sequential decoder_;
  // Heads are one conv each (the paper: "a convolution layer for each
  // score"). Kept as Sequentials so they self-manage activations.
  Sequential conf_head_, cls_head_, xy_head_, wh_head_;
  Outputs outputs_;
  Tensor features_;       // encoder output (copy; heads read it)
  Tensor dfeatures_;      // accumulated gradient at the feature grid
};

/// Weights of the five loss terms in the §III-B objective.
struct ClimateLossConfig {
  float lambda_obj = 5.0f;     // confidence at object cells
  float lambda_noobj = 0.5f;   // confidence elsewhere
  float lambda_class = 1.0f;   // class CE at object cells
  float lambda_geom = 5.0f;    // corner + size regression
  float lambda_recon = 1.0f;   // autoencoder term
};

/// Computes the combined loss and all output gradients for a batch.
class ClimateLoss {
 public:
  explicit ClimateLoss(const ClimateLossConfig& cfg = {}) : cfg_(cfg) {}

  struct Parts {
    double obj = 0, noobj = 0, cls = 0, geom = 0, recon = 0;
    double total() const { return obj + noobj + cls + geom + recon; }
  };

  /// `input` is the original image batch (reconstruction target).
  Parts compute(const ClimateNet::Outputs& out, const Tensor& input,
                const std::vector<ClimateTarget>& targets,
                ClimateNet::OutputGrads& grads) const;

  const ClimateLossConfig& config() const { return cfg_; }

 private:
  ClimateLossConfig cfg_;
};

/// Decode per-image box predictions from network outputs: keep cells with
/// sigmoid(confidence) > threshold (the paper keeps > 0.8 at inference).
std::vector<std::vector<Box>> decode_boxes(const ClimateNet::Outputs& out,
                                           float threshold);

}  // namespace pf15::nn
