#include "nn/deconv2d.hpp"

#include "common/thread_pool.hpp"
#include "gemm/gemm.hpp"
#include "gemm/winograd.hpp"

namespace pf15::nn {

using gemm::ConvPhase;

Deconv2d::Deconv2d(std::string name, const Deconv2dConfig& cfg, Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(Shape{cfg.in_channels, cfg.out_channels, cfg.kernel,
                    cfg.kernel}),
      bias_(Shape{cfg.out_channels}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  PF15_CHECK(cfg.in_channels > 0 && cfg.out_channels > 0 && cfg.kernel > 0 &&
             cfg.stride > 0);
  if (cfg.algo == ConvAlgo::kWinograd) {
    // Same construction-time semantics as Conv2d: a forced backend that
    // can never run this geometry is refused loudly, not silently
    // downgraded (the per-phase im2col fallback covers declined phases,
    // not wholly inapplicable configurations).
    PF15_CHECK_MSG(gemm::winograd_applicable(cfg.kernel, cfg.stride),
                   name_ << ": Winograd requires 3x3 stride-1");
  }
  // Fan-in of the adjoint convolution: each output pixel receives
  // contributions from ~OC * (K/stride)^2 taps; use the conv-style fan-in
  // of the transposed kernel for a comparable scale.
  weight_.fill_he(rng, cfg.in_channels * cfg.kernel * cfg.kernel);
  bias_.zero();
}

gemm::ConvGeom Deconv2d::geom(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4 && in.c() == cfg_.in_channels,
                 name_ << ": bad input shape " << in);
  PF15_CHECK_MSG((in.h() - 1) * cfg_.stride + cfg_.kernel > 2 * cfg_.pad,
                 name_ << ": degenerate output for input " << in);
  gemm::ConvGeom g;
  g.in_c = cfg_.out_channels;  // conv "input" is the deconv output
  g.in_h = (in.h() - 1) * cfg_.stride + cfg_.kernel - 2 * cfg_.pad;
  g.in_w = (in.w() - 1) * cfg_.stride + cfg_.kernel - 2 * cfg_.pad;
  g.kernel_h = g.kernel_w = cfg_.kernel;
  g.stride_h = g.stride_w = cfg_.stride;
  g.pad_h = g.pad_w = cfg_.pad;
  // By construction the conv geometry maps back onto the deconv input.
  PF15_CHECK(g.out_h() == in.h() && g.out_w() == in.w());
  return g;
}

gemm::ConvProblem Deconv2d::problem(const Shape& in) const {
  gemm::ConvProblem p;
  p.geom = geom(in);
  p.out_c = cfg_.in_channels;  // conv output channels = deconv input
  return p;
}

gemm::ConvBackendKind Deconv2d::resolve_backend(const Shape& in,
                                                ConvPhase phase,
                                                bool parallel_ok) const {
  return resolve_conv_backend(cfg_.algo, problem(in), phase, parallel_ok,
                              in.n());
}

gemm::ConvBackendKind Deconv2d::phase_backend(const Shape& in,
                                              ConvPhase phase) const {
  // One execution mode: nested waits are legal on the task scheduler,
  // so backends may always fan out internally.
  return resolve_backend(in, phase, /*parallel_ok=*/true);
}

Shape Deconv2d::output_shape(const Shape& in) const {
  const auto g = geom(in);
  return Shape{in.n(), cfg_.out_channels, g.in_h, g.in_w};
}

void Deconv2d::forward(const Tensor& in, Tensor& out) {
  // Deconv forward == conv backward-data: the layer input plays the
  // conv's output gradient, the result is the conv's input image.
  const gemm::ConvProblem p = problem(in.shape());
  ensure_shape(out, output_shape(in.shape()));
  const gemm::ConvBackendKind kind =
      phase_backend(in.shape(), ConvPhase::kBackwardData);
  const gemm::ConvBackend& be = gemm::backend(kind);
  const std::size_t n_img = in.shape().n();
  const std::size_t in_img =
      cfg_.in_channels * in.shape().h() * in.shape().w();
  const std::size_t out_img =
      cfg_.out_channels * p.geom.in_h * p.geom.in_w;
  // Weight-only work (Winograd's rotated/transformed filter bank) hoists
  // out of the batch loop — the decoder's stride-2 deconvs never hit it,
  // but 3x3 stride-1 upsampling heads do.
  const std::unique_ptr<gemm::ConvPrep> prep =
      be.prepare_backward_data(p, weight_.data());
  const auto one_image = [&](std::size_t img) {
    be.backward_data_prepared(p, prep.get(), in.data() + img * in_img,
                              weight_.data(), out.data() + img * out_img,
                              /*parallel_ok=*/true);
    if (cfg_.bias) {
      float* dst = out.data() + img * out_img;
      const std::size_t plane = p.geom.in_h * p.geom.in_w;
      for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
        const float b = bias_.data()[oc];
        float* row = dst + oc * plane;
        for (std::size_t i = 0; i < plane; ++i) row[i] += b;
      }
    }
  };
  // Images fan across the scheduler; each backend may fan out further
  // beneath its image (nested waits are legal).
  ThreadPool::global().parallel_for(
      0, n_img, [&](std::size_t img) { one_image(img); });
}

void Deconv2d::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  const gemm::ConvProblem p = problem(in.shape());
  PF15_CHECK(dout.shape() == output_shape(in.shape()));
  ensure_shape(din, in.shape());
  const std::size_t n_img = in.shape().n();
  const std::size_t in_img =
      cfg_.in_channels * in.shape().h() * in.shape().w();
  const std::size_t out_img =
      cfg_.out_channels * p.geom.in_h * p.geom.in_w;

  // din == conv forward of the output gradient.
  const gemm::ConvBackendKind dkind =
      phase_backend(in.shape(), ConvPhase::kForward);
  const gemm::ConvBackend& dbe = gemm::backend(dkind);
  ThreadPool::global().parallel_for(0, n_img, [&](std::size_t img) {
    dbe.forward(p, dout.data() + img * out_img, weight_.data(), nullptr,
                din.data() + img * in_img, /*parallel_ok=*/true);
  });

  // dW == conv backward-filter with the conv's (image, dout) =
  // (deconv output gradient, deconv input). Accumulates, so serial.
  const gemm::ConvBackendKind fkind =
      phase_backend(in.shape(), ConvPhase::kBackwardFilter);
  const gemm::ConvBackend& fbe = gemm::backend(fkind);
  const std::size_t plane = p.geom.in_h * p.geom.in_w;
  for (std::size_t img = 0; img < n_img; ++img) {
    const float* dout_img = dout.data() + img * out_img;
    fbe.backward_filter(p, dout_img, in.data() + img * in_img,
                        weight_grad_.data(), /*parallel_ok=*/true);
    if (cfg_.bias) {
      for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
        double s = 0.0;
        const float* row = dout_img + oc * plane;
        for (std::size_t i = 0; i < plane; ++i) s += row[i];
        bias_grad_.data()[oc] += static_cast<float>(s);
      }
    }
  }
}

std::vector<Param> Deconv2d::params() {
  std::vector<Param> out;
  out.push_back({name_ + ".weight", &weight_, &weight_grad_});
  if (cfg_.bias) out.push_back({name_ + ".bias", &bias_, &bias_grad_});
  return out;
}

std::uint64_t Deconv2d::forward_flops(const Shape& in) const {
  const gemm::ConvProblem p = problem(in);
  const gemm::ConvBackendKind kind = planned_conv_backend(
      cfg_.algo, p, ConvPhase::kBackwardData, true, in.n());
  const std::uint64_t per_img =
      gemm::backend(kind).flops(p, ConvPhase::kBackwardData) +
      (cfg_.bias ? cfg_.out_channels * p.geom.in_h * p.geom.in_w : 0);
  return per_img * in.n();
}

std::uint64_t Deconv2d::backward_flops(const Shape& in) const {
  const gemm::ConvProblem p = problem(in);
  const gemm::ConvBackendKind dkind = planned_conv_backend(
      cfg_.algo, p, ConvPhase::kForward, true, in.n());
  const gemm::ConvBackendKind fkind = planned_conv_backend(
      cfg_.algo, p, ConvPhase::kBackwardFilter, true, in.n());
  const std::uint64_t per_img =
      gemm::backend(dkind).flops(p, ConvPhase::kForward) +
      gemm::backend(fkind).flops(p, ConvPhase::kBackwardFilter) +
      (cfg_.bias ? cfg_.out_channels * p.geom.in_h * p.geom.in_w : 0);
  return per_img * in.n();
}

}  // namespace pf15::nn
