#include "nn/deconv2d.hpp"

#include <cstring>

#include "gemm/gemm.hpp"

namespace pf15::nn {

Deconv2d::Deconv2d(std::string name, const Deconv2dConfig& cfg, Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(Shape{cfg.in_channels, cfg.out_channels, cfg.kernel,
                    cfg.kernel}),
      bias_(Shape{cfg.out_channels}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  PF15_CHECK(cfg.in_channels > 0 && cfg.out_channels > 0 && cfg.kernel > 0 &&
             cfg.stride > 0);
  // Fan-in of the adjoint convolution: each output pixel receives
  // contributions from ~OC * (K/stride)^2 taps; use the conv-style fan-in
  // of the transposed kernel for a comparable scale.
  weight_.fill_he(rng, cfg.in_channels * cfg.kernel * cfg.kernel);
  bias_.zero();
}

gemm::ConvGeom Deconv2d::geom(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4 && in.c() == cfg_.in_channels,
                 name_ << ": bad input shape " << in);
  PF15_CHECK_MSG((in.h() - 1) * cfg_.stride + cfg_.kernel > 2 * cfg_.pad,
                 name_ << ": degenerate output for input " << in);
  gemm::ConvGeom g;
  g.in_c = cfg_.out_channels;  // conv "input" is the deconv output
  g.in_h = (in.h() - 1) * cfg_.stride + cfg_.kernel - 2 * cfg_.pad;
  g.in_w = (in.w() - 1) * cfg_.stride + cfg_.kernel - 2 * cfg_.pad;
  g.kernel_h = g.kernel_w = cfg_.kernel;
  g.stride_h = g.stride_w = cfg_.stride;
  g.pad_h = g.pad_w = cfg_.pad;
  // By construction the conv geometry maps back onto the deconv input.
  PF15_CHECK(g.out_h() == in.h() && g.out_w() == in.w());
  return g;
}

Shape Deconv2d::output_shape(const Shape& in) const {
  const auto g = geom(in);
  return Shape{in.n(), cfg_.out_channels, g.in_h, g.in_w};
}

void Deconv2d::forward(const Tensor& in, Tensor& out) {
  const auto g = geom(in.shape());
  ensure_shape(out, output_shape(in.shape()));
  out.zero();
  const std::size_t k = g.lowered_rows();   // OC*KH*KW
  const std::size_t n = g.lowered_cols();   // in_h*in_w
  const std::size_t ic = cfg_.in_channels;
  ensure_shape(col_, Shape{k, n});
  const std::size_t in_img = ic * in.shape().h() * in.shape().w();
  const std::size_t out_img = cfg_.out_channels * g.in_h * g.in_w;
  for (std::size_t img = 0; img < in.shape().n(); ++img) {
    // col = W^T (k x ic) * x (ic x n); scatter into the output image.
    gemm::sgemm_parallel(true, false, k, n, ic, 1.0f, weight_.data(), k,
                         in.data() + img * in_img, n, 0.0f, col_.data(), n);
    gemm::col2im(g, col_.data(), out.data() + img * out_img);
    if (cfg_.bias) {
      float* dst = out.data() + img * out_img;
      const std::size_t plane = g.in_h * g.in_w;
      for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
        const float b = bias_.data()[oc];
        float* p = dst + oc * plane;
        for (std::size_t i = 0; i < plane; ++i) p[i] += b;
      }
    }
  }
}

void Deconv2d::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  const auto g = geom(in.shape());
  PF15_CHECK(dout.shape() == output_shape(in.shape()));
  ensure_shape(din, in.shape());
  const std::size_t k = g.lowered_rows();
  const std::size_t n = g.lowered_cols();
  const std::size_t ic = cfg_.in_channels;
  ensure_shape(col_, Shape{k, n});
  const std::size_t in_img = ic * in.shape().h() * in.shape().w();
  const std::size_t out_img = cfg_.out_channels * g.in_h * g.in_w;
  const std::size_t plane = g.in_h * g.in_w;
  for (std::size_t img = 0; img < in.shape().n(); ++img) {
    const float* dout_img = dout.data() + img * out_img;
    // Lower the output gradient; this is the conv-forward direction.
    gemm::im2col(g, dout_img, col_.data());
    // din = W (ic x k) * col (k x n).
    gemm::sgemm_parallel(false, false, ic, n, k, 1.0f, weight_.data(), k,
                         col_.data(), n, 0.0f, din.data() + img * in_img,
                         n);
    // dW += x (ic x n) * col^T (n x k).
    gemm::sgemm_parallel(false, true, ic, k, n, 1.0f,
                         in.data() + img * in_img, n, col_.data(), n, 1.0f,
                         weight_grad_.data(), k);
    if (cfg_.bias) {
      for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
        double s = 0.0;
        const float* p = dout_img + oc * plane;
        for (std::size_t i = 0; i < plane; ++i) s += p[i];
        bias_grad_.data()[oc] += static_cast<float>(s);
      }
    }
  }
}

std::vector<Param> Deconv2d::params() {
  std::vector<Param> out;
  out.push_back({name_ + ".weight", &weight_, &weight_grad_});
  if (cfg_.bias) out.push_back({name_ + ".bias", &bias_, &bias_grad_});
  return out;
}

std::uint64_t Deconv2d::forward_flops(const Shape& in) const {
  const auto g = geom(in);
  const std::uint64_t per_img =
      gemm::flops(g.lowered_rows(), g.lowered_cols(), cfg_.in_channels) +
      (cfg_.bias ? cfg_.out_channels * g.in_h * g.in_w : 0);
  return per_img * in.n();
}

std::uint64_t Deconv2d::backward_flops(const Shape& in) const {
  const auto g = geom(in);
  const std::uint64_t per_img =
      gemm::flops(cfg_.in_channels, g.lowered_cols(), g.lowered_rows()) +
      gemm::flops(cfg_.in_channels, g.lowered_rows(), g.lowered_cols()) +
      (cfg_.bias ? cfg_.out_channels * g.in_h * g.in_w : 0);
  return per_img * in.n();
}

}  // namespace pf15::nn
