#include "nn/losses.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "nn/layer.hpp"

namespace pf15::nn {

namespace {
void softmax_into(const float* logits, std::size_t classes, float* probs) {
  float m = logits[0];
  for (std::size_t c = 1; c < classes; ++c) m = std::max(m, logits[c]);
  double denom = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    probs[c] = std::exp(logits[c] - m);
    denom += probs[c];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (std::size_t c = 0; c < classes; ++c) probs[c] *= inv;
}
}  // namespace

double SoftmaxCrossEntropy::forward_backward(
    const Tensor& logits, const std::vector<std::int32_t>& labels,
    Tensor& probs, Tensor& dlogits) const {
  const double loss = forward(logits, labels, probs);
  ensure_shape(dlogits, logits.shape());
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* p = probs.data() + b * classes;
    float* g = dlogits.data() + b * classes;
    for (std::size_t c = 0; c < classes; ++c) g[c] = p[c] * inv_batch;
    g[static_cast<std::size_t>(labels[b])] -= inv_batch;
  }
  return loss;
}

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<std::int32_t>& labels,
                                    Tensor& probs) const {
  PF15_CHECK(logits.shape().rank() == 2);
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  PF15_CHECK_MSG(labels.size() == batch, "labels/batch mismatch");
  ensure_shape(probs, logits.shape());
  double loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    PF15_CHECK(labels[b] >= 0 &&
               static_cast<std::size_t>(labels[b]) < classes);
    const float* row = logits.data() + b * classes;
    float* p = probs.data() + b * classes;
    softmax_into(row, classes, p);
    loss -= std::log(
        std::max(1e-12, static_cast<double>(
                            p[static_cast<std::size_t>(labels[b])])));
  }
  return loss / static_cast<double>(batch);
}

double mse_loss(const Tensor& pred, const Tensor& target, float weight,
                Tensor& dpred) {
  PF15_CHECK(pred.shape() == target.shape());
  ensure_shape(dpred, pred.shape());
  const std::size_t n = pred.numel();
  PF15_CHECK(n > 0);
  const float scale = 2.0f * weight / static_cast<float>(n);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred.data()[i] - target.data()[i];
    loss += static_cast<double>(d) * static_cast<double>(d);
    dpred.data()[i] = scale * d;
  }
  return weight * loss / static_cast<double>(n);
}

void softmax_rows(Tensor& t, std::size_t rows, std::size_t cols) {
  PF15_CHECK(t.numel() == rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    softmax_into(t.data() + r * cols, cols, t.data() + r * cols);
  }
}

}  // namespace pf15::nn
