#include "nn/dense.hpp"

#include "gemm/gemm.hpp"

namespace pf15::nn {

Dense::Dense(std::string name, std::size_t in_features,
             std::size_t out_features, Rng& rng)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  PF15_CHECK(in_features > 0 && out_features > 0);
  weight_.fill_xavier(rng, in_features, out_features);
  bias_.zero();
}

std::size_t Dense::batch_of(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() >= 1 && in.numel() % in_features_ == 0 &&
                     in.numel() / in[0] == in_features_,
                 name_ << ": input " << in << " not flattenable to "
                       << in_features_ << " features");
  return in[0];
}

Shape Dense::output_shape(const Shape& in) const {
  return Shape{batch_of(in), out_features_};
}

void Dense::forward(const Tensor& in, Tensor& out) {
  const std::size_t batch = batch_of(in.shape());
  ensure_shape(out, Shape{batch, out_features_});
  // out (batch x OF) = in (batch x IF) * W^T (IF x OF).
  gemm::sgemm_parallel(false, true, batch, out_features_, in_features_, 1.0f,
                       in.data(), in_features_, weight_.data(), in_features_,
                       0.0f, out.data(), out_features_);
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = out.data() + b * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j) row[j] += bias_.data()[j];
  }
}

void Dense::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  const std::size_t batch = batch_of(in.shape());
  PF15_CHECK((dout.shape() == Shape{batch, out_features_}));
  ensure_shape(din, in.shape());
  // dW += dout^T (OF x batch) * in (batch x IF).
  gemm::sgemm_parallel(true, false, out_features_, in_features_, batch, 1.0f,
                       dout.data(), out_features_, in.data(), in_features_,
                       1.0f, weight_grad_.data(), in_features_);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = dout.data() + b * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j) {
      bias_grad_.data()[j] += row[j];
    }
  }
  // din (batch x IF) = dout (batch x OF) * W (OF x IF).
  gemm::sgemm_parallel(false, false, batch, in_features_, out_features_,
                       1.0f, dout.data(), out_features_, weight_.data(),
                       in_features_, 0.0f, din.data(), in_features_);
}

std::vector<Param> Dense::params() {
  return {{name_ + ".weight", &weight_, &weight_grad_},
          {name_ + ".bias", &bias_, &bias_grad_}};
}

std::uint64_t Dense::forward_flops(const Shape& in) const {
  const std::size_t batch = batch_of(in);
  return gemm::flops(batch, out_features_, in_features_) +
         batch * out_features_;
}

std::uint64_t Dense::backward_flops(const Shape& in) const {
  const std::size_t batch = batch_of(in);
  return gemm::flops(out_features_, in_features_, batch) +
         gemm::flops(batch, in_features_, out_features_) +
         batch * out_features_;
}

}  // namespace pf15::nn
