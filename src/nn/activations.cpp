#include "nn/activations.hpp"

#include <cmath>

namespace pf15::nn {

void ReLU::forward(const Tensor& in, Tensor& out) {
  ensure_shape(out, in.shape());
  const float* __restrict__ src = in.data();
  float* __restrict__ dst = out.data();
  const std::size_t n = in.numel();
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void ReLU::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  PF15_CHECK(dout.shape() == in.shape());
  ensure_shape(din, in.shape());
  const float* __restrict__ x = in.data();
  const float* __restrict__ g = dout.data();
  float* __restrict__ dst = din.data();
  const std::size_t n = in.numel();
  for (std::size_t i = 0; i < n; ++i) dst[i] = x[i] > 0.0f ? g[i] : 0.0f;
}

void Sigmoid::forward(const Tensor& in, Tensor& out) {
  ensure_shape(out, in.shape());
  ensure_shape(out_cache_, in.shape());
  const std::size_t n = in.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float y = 1.0f / (1.0f + std::exp(-in.data()[i]));
    out.data()[i] = y;
    out_cache_.data()[i] = y;
  }
}

void Sigmoid::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  PF15_CHECK(dout.shape() == in.shape());
  PF15_CHECK_MSG(out_cache_.defined() && out_cache_.shape() == in.shape(),
                 name_ << ": backward without matching forward");
  ensure_shape(din, in.shape());
  const std::size_t n = in.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float y = out_cache_.data()[i];
    din.data()[i] = dout.data()[i] * y * (1.0f - y);
  }
}

void Tanh::forward(const Tensor& in, Tensor& out) {
  ensure_shape(out, in.shape());
  ensure_shape(out_cache_, in.shape());
  const std::size_t n = in.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float y = std::tanh(in.data()[i]);
    out.data()[i] = y;
    out_cache_.data()[i] = y;
  }
}

void Tanh::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  PF15_CHECK(dout.shape() == in.shape());
  PF15_CHECK_MSG(out_cache_.defined() && out_cache_.shape() == in.shape(),
                 name_ << ": backward without matching forward");
  ensure_shape(din, in.shape());
  const std::size_t n = in.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float y = out_cache_.data()[i];
    din.data()[i] = dout.data()[i] * (1.0f - y * y);
  }
}

}  // namespace pf15::nn
