#include "nn/climate_net.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/losses.hpp"

namespace pf15::nn {

namespace {
/// sigmoid as a free function; heads emit logits, the loss and the decoder
/// of predictions squash them.
inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

Sequential make_head(const std::string& name, std::size_t in_c,
                     std::size_t out_c, std::size_t kernel, ConvAlgo algo,
                     Rng& rng) {
  PF15_CHECK(kernel % 2 == 1);
  Conv2dConfig cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel = kernel;
  cfg.stride = 1;
  cfg.pad = kernel / 2;
  cfg.algo = algo;
  Sequential head;
  head.add(std::make_unique<Conv2d>(name, cfg, rng));
  return head;
}
}  // namespace

ClimateNet::ClimateNet(const ClimateConfig& cfg) : cfg_(cfg) {
  PF15_CHECK(!cfg.widths.empty());
  PF15_CHECK_MSG(cfg.image % (1ull << cfg.levels()) == 0,
                 "image size must be divisible by 2^levels");
  PF15_CHECK_MSG(cfg.enc_kernel % 2 == 1, "encoder kernel must be odd");
  PF15_CHECK_MSG(cfg.dec_kernel % 2 == 0, "decoder kernel must be even for "
                                          "exact stride-2 upsampling");
  Rng rng(cfg.seed);

  // Encoder: strided convs halving the resolution at each level (§III-B
  // "a series of strided convolutions to learn coarse, downsampled
  // features").
  std::size_t in_c = cfg.channels;
  for (std::size_t level = 0; level < cfg.levels(); ++level) {
    Conv2dConfig conv;
    conv.in_channels = in_c;
    conv.out_channels = cfg.widths[level];
    conv.kernel = cfg.enc_kernel;
    conv.stride = 2;
    conv.pad = (cfg.enc_kernel - 1) / 2;
    conv.algo = cfg.algo;
    const std::string idx = std::to_string(level + 1);
    encoder_.add(std::make_unique<Conv2d>("enc_conv" + idx, conv, rng));
    encoder_.add(std::make_unique<ReLU>("enc_relu" + idx));
    in_c = cfg.widths[level];
  }
  const std::size_t feat_c = cfg.widths.back();

  // Four per-score heads.
  conf_head_ =
      make_head("head_conf", feat_c, 1, cfg.head_kernel, cfg.algo, rng);
  cls_head_ = make_head("head_class", feat_c, cfg.classes, cfg.head_kernel,
                        cfg.algo, rng);
  xy_head_ = make_head("head_xy", feat_c, 2, cfg.head_kernel, cfg.algo, rng);
  wh_head_ = make_head("head_wh", feat_c, 2, cfg.head_kernel, cfg.algo, rng);

  // Decoder: mirror of the encoder with stride-2 deconvolutions back to
  // the input resolution; final layer is linear (reconstruction).
  std::size_t dec_in = feat_c;
  for (std::size_t level = cfg.levels(); level-- > 0;) {
    const std::size_t out_c =
        (level == 0) ? cfg.channels : cfg.widths[level - 1];
    Deconv2dConfig dc;
    dc.in_channels = dec_in;
    dc.out_channels = out_c;
    dc.kernel = cfg.dec_kernel;
    dc.stride = 2;
    dc.pad = (cfg.dec_kernel - 2) / 2;
    dc.algo = cfg.algo;
    const std::string idx = std::to_string(cfg.levels() - level);
    decoder_.add(std::make_unique<Deconv2d>("dec_deconv" + idx, dc, rng));
    if (level != 0) {
      decoder_.add(std::make_unique<ReLU>("dec_relu" + idx));
    }
    dec_in = out_c;
  }
}

const ClimateNet::Outputs& ClimateNet::forward(const Tensor& input,
                                               bool profile) {
  PF15_CHECK_MSG(input.shape().rank() == 4 &&
                     input.shape().c() == cfg_.channels &&
                     input.shape().h() == cfg_.image &&
                     input.shape().w() == cfg_.image,
                 "climate input shape " << input.shape());
  const Tensor& feats = encoder_.forward(input, profile);
  ensure_shape(features_, feats.shape());
  features_.copy_from(feats);

  outputs_.conf.copy_or_assign_from(conf_head_.forward(features_, profile));
  outputs_.cls.copy_or_assign_from(cls_head_.forward(features_, profile));
  outputs_.xy.copy_or_assign_from(xy_head_.forward(features_, profile));
  outputs_.wh.copy_or_assign_from(wh_head_.forward(features_, profile));
  outputs_.recon.copy_or_assign_from(decoder_.forward(features_, profile));
  return outputs_;
}

void ClimateNet::backward(const Tensor& input, const OutputGrads& grads,
                          bool profile) {
  ensure_shape(dfeatures_, features_.shape());
  dfeatures_.zero();
  dfeatures_.axpy(1.0f, conf_head_.backward(features_, grads.conf, profile));
  dfeatures_.axpy(1.0f, cls_head_.backward(features_, grads.cls, profile));
  dfeatures_.axpy(1.0f, xy_head_.backward(features_, grads.xy, profile));
  dfeatures_.axpy(1.0f, wh_head_.backward(features_, grads.wh, profile));
  dfeatures_.axpy(1.0f,
                  decoder_.backward(features_, grads.recon, profile));
  encoder_.backward(input, dfeatures_, profile);
}

std::vector<Param> ClimateNet::params() {
  std::vector<Param> all;
  for (Sequential* part : {&encoder_, &conf_head_, &cls_head_, &xy_head_,
                           &wh_head_, &decoder_}) {
    for (auto& p : part->params()) all.push_back(p);
  }
  return all;
}

std::vector<Param> ClimateNet::state() {
  std::vector<Param> all;
  for (Sequential* part : {&encoder_, &conf_head_, &cls_head_, &xy_head_,
                           &wh_head_, &decoder_}) {
    for (auto& p : part->state()) all.push_back(p);
  }
  return all;
}

std::vector<Param> ClimateNet::params_and_state() {
  std::vector<Param> all = params();
  for (auto& p : state()) all.push_back(p);
  return all;
}

std::size_t ClimateNet::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->numel();
  return n;
}

void ClimateNet::set_training(bool training) {
  for (Sequential* part : {&encoder_, &conf_head_, &cls_head_, &xy_head_,
                           &wh_head_, &decoder_}) {
    part->set_training(training);
  }
}

void ClimateNet::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

std::uint64_t ClimateNet::forward_flops(const Shape& in) const {
  const Shape feat{in.n(), cfg_.widths.back(), cfg_.grid(), cfg_.grid()};
  return encoder_.forward_flops(in) + conf_head_.forward_flops(feat) +
         cls_head_.forward_flops(feat) + xy_head_.forward_flops(feat) +
         wh_head_.forward_flops(feat) + decoder_.forward_flops(feat);
}

std::uint64_t ClimateNet::backward_flops(const Shape& in) const {
  const Shape feat{in.n(), cfg_.widths.back(), cfg_.grid(), cfg_.grid()};
  return encoder_.backward_flops(in) + conf_head_.backward_flops(feat) +
         cls_head_.backward_flops(feat) + xy_head_.backward_flops(feat) +
         wh_head_.backward_flops(feat) + decoder_.backward_flops(feat);
}

std::vector<LayerProfile> ClimateNet::profiles() const {
  std::vector<LayerProfile> all;
  for (const Sequential* part : {&encoder_, &conf_head_, &cls_head_,
                                 &xy_head_, &wh_head_, &decoder_}) {
    for (const auto& p : part->profiles()) all.push_back(p);
  }
  return all;
}

void ClimateNet::save_params(std::ostream& os) {
  save_named_tensors(os, params_and_state());
}

void ClimateNet::load_params(std::istream& is) {
  load_named_tensors(is, params_and_state());
}

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

ClimateLoss::Parts ClimateLoss::compute(
    const ClimateNet::Outputs& out, const Tensor& input,
    const std::vector<ClimateTarget>& targets,
    ClimateNet::OutputGrads& grads) const {
  const Shape& cs = out.conf.shape();
  const std::size_t batch = cs.n();
  const std::size_t grid = cs.h();
  PF15_CHECK(cs.w() == grid && cs.c() == 1);
  PF15_CHECK_MSG(targets.size() == batch, "targets/batch mismatch");
  const std::size_t classes = out.cls.shape().c();

  ensure_shape(grads.conf, out.conf.shape());
  ensure_shape(grads.cls, out.cls.shape());
  ensure_shape(grads.xy, out.xy.shape());
  ensure_shape(grads.wh, out.wh.shape());
  grads.conf.zero();
  grads.cls.zero();
  grads.xy.zero();
  grads.wh.zero();

  Parts parts;
  const std::size_t cells = grid * grid;
  const float inv_batch_cells = 1.0f / static_cast<float>(batch * cells);

  std::size_t total_boxes = 0;
  for (const auto& t : targets) {
    if (t.labeled) total_boxes += t.boxes.size();
  }
  const float inv_boxes =
      total_boxes > 0 ? 1.0f / static_cast<float>(total_boxes) : 0.0f;

  // Per-image cell assignment: the cell containing the box's bottom-left
  // corner is responsible for it (first box wins on collision).
  std::vector<int> cell_box(cells);
  for (std::size_t b = 0; b < batch; ++b) {
    if (!targets[b].labeled) continue;  // unlabeled: reconstruction only
    const auto& boxes = targets[b].boxes;
    std::fill(cell_box.begin(), cell_box.end(), -1);
    for (std::size_t k = 0; k < boxes.size(); ++k) {
      const auto gx = static_cast<std::size_t>(std::min(
          static_cast<float>(grid) - 1.0f,
          std::max(0.0f, boxes[k].x * static_cast<float>(grid))));
      const auto gy = static_cast<std::size_t>(std::min(
          static_cast<float>(grid) - 1.0f,
          std::max(0.0f, boxes[k].y * static_cast<float>(grid))));
      if (cell_box[gy * grid + gx] < 0) {
        cell_box[gy * grid + gx] = static_cast<int>(k);
      }
    }

    const float* conf_map = out.conf.data() + b * cells;
    float* dconf = grads.conf.data() + b * cells;
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const float p = sigmoidf(conf_map[cell]);
      const int k = cell_box[cell];
      if (k < 0) {
        // No object: push confidence down.
        parts.noobj += cfg_.lambda_noobj * p * p * inv_batch_cells;
        dconf[cell] = 2.0f * cfg_.lambda_noobj * p * p * (1.0f - p) *
                      inv_batch_cells;
        continue;
      }
      // Object cell: confidence toward 1.
      const float e = p - 1.0f;
      parts.obj += cfg_.lambda_obj * e * e * inv_batch_cells;
      dconf[cell] =
          2.0f * cfg_.lambda_obj * e * p * (1.0f - p) * inv_batch_cells;

      const Box& gt = boxes[static_cast<std::size_t>(k)];
      const std::size_t gy = cell / grid;
      const std::size_t gx = cell % grid;

      // Class: softmax cross-entropy at this cell.
      {
        const float* cls_base = out.cls.data() + (b * classes) * cells;
        float m = cls_base[cell];
        for (std::size_t c = 1; c < classes; ++c) {
          m = std::max(m, cls_base[c * cells + cell]);
        }
        double denom = 0.0;
        for (std::size_t c = 0; c < classes; ++c) {
          denom += std::exp(cls_base[c * cells + cell] - m);
        }
        float* dcls_base = grads.cls.data() + (b * classes) * cells;
        for (std::size_t c = 0; c < classes; ++c) {
          const float prob = static_cast<float>(
              std::exp(cls_base[c * cells + cell] - m) / denom);
          const float target =
              (static_cast<int>(c) == gt.cls) ? 1.0f : 0.0f;
          dcls_base[c * cells + cell] =
              cfg_.lambda_class * (prob - target) * inv_boxes;
          if (target > 0.0f) {
            parts.cls -= cfg_.lambda_class *
                         std::log(std::max(1e-12, (double)prob)) * inv_boxes;
          }
        }
      }

      // Geometry: corner offset within the cell (sigmoid), sqrt-scaled
      // width/height (sigmoid), all MSE — the "minimize the scale and
      // location offset" term.
      {
        const float ox = gt.x * static_cast<float>(grid) -
                         static_cast<float>(gx);
        const float oy = gt.y * static_cast<float>(grid) -
                         static_cast<float>(gy);
        const float sw = std::sqrt(std::max(0.0f, gt.w));
        const float sh = std::sqrt(std::max(0.0f, gt.h));
        const float targets4[4] = {ox, oy, sw, sh};
        const Tensor* maps[2] = {&out.xy, &out.wh};
        Tensor* gmaps[2] = {&grads.xy, &grads.wh};
        for (int m2 = 0; m2 < 2; ++m2) {
          for (int c = 0; c < 2; ++c) {
            const std::size_t off = ((b * 2) + c) * cells + cell;
            const float pred = sigmoidf(maps[m2]->data()[off]);
            const float tgt = targets4[m2 * 2 + c];
            const float err = pred - tgt;
            parts.geom += cfg_.lambda_geom * err * err * inv_boxes;
            gmaps[m2]->data()[off] = 2.0f * cfg_.lambda_geom * err * pred *
                                     (1.0f - pred) * inv_boxes;
          }
        }
      }
    }
  }

  // Reconstruction applies to every image, labeled or not (§III-B: the
  // unlabeled stream trains the autoencoder branch).
  parts.recon = mse_loss(out.recon, input, cfg_.lambda_recon, grads.recon);
  return parts;
}

std::vector<std::vector<Box>> decode_boxes(const ClimateNet::Outputs& out,
                                           float threshold) {
  const Shape& cs = out.conf.shape();
  const std::size_t batch = cs.n();
  const std::size_t grid = cs.h();
  const std::size_t cells = grid * grid;
  const std::size_t classes = out.cls.shape().c();
  std::vector<std::vector<Box>> result(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* conf_map = out.conf.data() + b * cells;
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const float p = sigmoidf(conf_map[cell]);
      if (p <= threshold) continue;
      const std::size_t gy = cell / grid;
      const std::size_t gx = cell % grid;
      Box box;
      box.confidence = p;
      box.x = (static_cast<float>(gx) +
               sigmoidf(out.xy.data()[((b * 2) + 0) * cells + cell])) /
              static_cast<float>(grid);
      box.y = (static_cast<float>(gy) +
               sigmoidf(out.xy.data()[((b * 2) + 1) * cells + cell])) /
              static_cast<float>(grid);
      const float sw = sigmoidf(out.wh.data()[((b * 2) + 0) * cells + cell]);
      const float sh = sigmoidf(out.wh.data()[((b * 2) + 1) * cells + cell]);
      box.w = sw * sw;
      box.h = sh * sh;
      int best_cls = 0;
      float best_val = out.cls.data()[(b * classes) * cells + cell];
      for (std::size_t c = 1; c < classes; ++c) {
        const float v = out.cls.data()[((b * classes) + c) * cells + cell];
        if (v > best_val) {
          best_val = v;
          best_cls = static_cast<int>(c);
        }
      }
      box.cls = best_cls;
      result[b].push_back(box);
    }
  }
  return result;
}

}  // namespace pf15::nn
