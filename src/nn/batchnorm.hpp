// Spatial batch normalization.
//
// The paper *deliberately excludes* batch normalization from its models
// ("to not use layers with large dense weights such as batch normalization
// or fully connected units", §I) because its batch statistics couple every
// sample in the minibatch and interact badly with data-parallel scale-out:
// per-group statistics diverge across compute groups, and the extra
// all-reduce of means/variances adds a latency-bound collective per layer.
// We implement it anyway so the ablation bench can *measure* that design
// choice instead of taking it on faith (bench_ablations, "BN scale-out
// tax"), and so the ResNet extension of §IX has its standard ingredient.
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace pf15::nn {

struct BatchNormConfig {
  std::size_t channels = 0;
  float epsilon = 1e-5f;
  /// Running-stat update rate: running = (1-m)*running + m*batch.
  float momentum = 0.1f;
};

/// Per-channel normalization over (N, H, W) with learnable affine
/// (gamma, beta). Training mode normalizes by batch statistics and
/// maintains running estimates; inference mode uses the running estimates
/// (a per-channel linear map).
class BatchNorm2d final : public Layer {
 public:
  BatchNorm2d(std::string name, const BatchNormConfig& cfg);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "bnorm"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::vector<Param> state() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  void set_training(bool training) override { training_ = training; }
  bool training() const override { return training_; }

  const BatchNormConfig& config() const { return cfg_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }

 private:
  void check_input(const Shape& in) const;

  std::string name_;
  BatchNormConfig cfg_;
  bool training_ = true;

  Tensor gamma_;  // (C)
  Tensor beta_;   // (C)
  Tensor gamma_grad_;
  Tensor beta_grad_;

  Tensor running_mean_;  // (C)
  Tensor running_var_;   // (C), biased (population) estimate

  // Forward caches consumed by backward (training mode).
  Tensor batch_mean_;     // (C)
  Tensor batch_inv_std_;  // (C): 1/sqrt(var + eps)
  Tensor xhat_;           // normalized input, same shape as in
};

}  // namespace pf15::nn
