// Sequential network container.
//
// Owns the layers and the inter-layer activations, runs forward/backward
// end to end, and keeps per-layer wall-clock so the Fig-5-style profiles
// come straight out of training runs. Parameter access is flattened into a
// contiguous ordering that the communication layer (all-reduce, PS) relies
// on being identical on every rank.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace pf15::nn {

/// Per-layer profile record (accumulated across iterations).
struct LayerProfile {
  std::string name;
  std::string kind;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  std::uint64_t forward_flops = 0;
  std::uint64_t backward_flops = 0;
};

class Sequential {
 public:
  Sequential() = default;

  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;

  /// Appends a layer; returns a reference to it for further wiring.
  Layer& add(LayerPtr layer);

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Output shape of the whole stack for a given input shape.
  Shape output_shape(const Shape& in) const;

  /// Runs all layers; returns the final activation (owned by the network,
  /// valid until the next forward). When `profile` is true, per-layer
  /// timings/FLOPs accumulate into profiles().
  const Tensor& forward(const Tensor& input, bool profile = false);

  /// Backpropagates `dout` (gradient w.r.t. the last forward's output).
  /// Parameter gradients accumulate. Returns gradient w.r.t. the input.
  const Tensor& backward(const Tensor& input, const Tensor& dout,
                         bool profile = false);

  /// All trainable parameters in deterministic (layer, param) order.
  std::vector<Param> params();
  /// Non-trainable state (BatchNorm running statistics, ...) in the same
  /// deterministic order; null grads.
  std::vector<Param> state();
  /// params() followed by state() — the canonical checkpoint entry order.
  /// Every (de)serialisation path must use this so layouts stay in sync.
  std::vector<Param> params_and_state();
  std::size_t param_count();
  /// Parameter footprint in bytes (Table II's "parameters size").
  std::size_t param_bytes() { return param_count() * sizeof(float); }

  /// Propagates training/inference mode to every layer: inference mode
  /// makes BatchNorm use running estimates and Dropout the identity.
  void set_training(bool training);
  bool training() const { return training_; }

  void zero_grad();

  std::uint64_t forward_flops(const Shape& in) const;
  std::uint64_t backward_flops(const Shape& in) const;

  const std::vector<LayerProfile>& profiles() const { return profiles_; }
  void reset_profiles();

  /// Serialise / restore all parameter values and non-trainable state (not
  /// solver state). The stream is a validated named-tensor stream (see
  /// save_named_tensors); load fails with IoError on any mismatch instead
  /// of silently misreading.
  void save_params(std::ostream& os);
  void load_params(std::istream& is);

 private:
  std::vector<LayerPtr> layers_;
  std::vector<Tensor> activations_;  // activations_[i] = output of layer i
  std::vector<Tensor> grads_;        // grads_[i] = dL/d activations_[i-1]
  std::vector<LayerProfile> profiles_;
  bool training_ = true;
};

/// Writes `entries` as a self-describing stream: magic, format version,
/// entry count, then (name, tensor) records. The symmetric reader below
/// validates every field, so a stream written for one architecture can
/// never be silently loaded into another.
void save_named_tensors(std::ostream& os, const std::vector<Param>& entries);

/// Reads a stream produced by save_named_tensors into `entries` (values
/// are copied into each Param's tensor). Throws pf15::IoError naming the
/// first mismatching entry on bad magic/version/count/name/shape or a
/// short stream.
void load_named_tensors(std::istream& is, const std::vector<Param>& entries);

}  // namespace pf15::nn
