// Fully connected layer. The HEP network projects the 128-d pooled vector
// to 2 class logits (§III-A); the paper deliberately avoids large dense
// layers to keep the model small for communication, and so do we.
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace pf15::nn {

class Dense final : public Layer {
 public:
  /// in_features is the flattened per-sample size of the input tensor.
  Dense(std::string name, std::size_t in_features, std::size_t out_features,
        Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "fc"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::size_t batch_of(const Shape& in) const;

  std::string name_;
  std::size_t in_features_;
  std::size_t out_features_;
  Tensor weight_;  // (out_features, in_features)
  Tensor bias_;    // (out_features)
  Tensor weight_grad_;
  Tensor bias_grad_;
};

}  // namespace pf15::nn
