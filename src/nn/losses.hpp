// Loss heads. These are not Layers: they terminate the graph, consuming
// network outputs plus targets and producing (scalar loss, gradient).
//
// - SoftmaxCrossEntropy: HEP classification objective (§III-A).
// - MseLoss: autoencoder reconstruction term of the climate objective.
// - DetectionLoss (in climate_loss.hpp) composes the full §III-B objective.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace pf15::nn {

/// Numerically stable softmax + cross-entropy over rows of a (batch x
/// classes) logits tensor.
class SoftmaxCrossEntropy {
 public:
  /// Computes mean loss over the batch; fills `probs` (batch x classes)
  /// and `dlogits` (same shape as logits, already divided by batch).
  double forward_backward(const Tensor& logits,
                          const std::vector<std::int32_t>& labels,
                          Tensor& probs, Tensor& dlogits) const;

  /// Loss only (inference / evaluation path).
  double forward(const Tensor& logits,
                 const std::vector<std::int32_t>& labels,
                 Tensor& probs) const;
};

/// Mean squared error: loss = mean((pred - target)^2); gradient w.r.t.
/// pred is 2 (pred - target) / numel, scaled by `weight`.
double mse_loss(const Tensor& pred, const Tensor& target, float weight,
                Tensor& dpred);

/// Row-wise softmax in place over a (rows x cols) tensor.
void softmax_rows(Tensor& t, std::size_t rows, std::size_t cols);

}  // namespace pf15::nn
