// Transposed convolution ("deconvolution") layer for the climate decoder
// (§III-B, §III-C).
//
// The paper notes that MKL had no optimized deconvolution, and that "the
// convolutions in the backward pass can be used to compute the
// deconvolutions of the forward pass and vice-versa". We implement exactly
// that swap *through the shared backend dispatch*: forward is the
// underlying convolution's backward-data phase, backward-data is the
// convolution's forward phase, and the weight gradient is the
// convolution's backward-filter phase — each resolved per (problem,
// phase) by the same gemm::ConvPlanCache the Conv2d layer uses, so the
// decoder inherits every tuned backend win instead of carrying a private
// im2col lowering.
#pragma once

#include <string>

#include "gemm/conv_backend.hpp"
#include "gemm/im2col.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"

namespace pf15::nn {

struct Deconv2dConfig {
  std::size_t in_channels = 0;   // channels of the (coarse) input
  std::size_t out_channels = 0;  // channels of the upsampled output
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;
  bool bias = true;
  /// Backend selection, same semantics as Conv2d: forced kinds that
  /// decline a phase fall back to im2col; kAuto asks the plan cache.
  ConvAlgo algo = ConvAlgo::kIm2col;
};

class Deconv2d final : public Layer {
 public:
  Deconv2d(std::string name, const Deconv2dConfig& cfg, Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "deconv"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  const Deconv2dConfig& config() const { return cfg_; }

  /// The backend one *convolution phase* of this layer dispatches to for
  /// this input shape. Remember the swap: the layer's forward runs
  /// kBackwardData, its backward runs kForward (data) + kBackwardFilter.
  gemm::ConvBackendKind phase_backend(const Shape& in,
                                      gemm::ConvPhase phase) const;

 private:
  /// Geometry of the *underlying convolution*, whose input is this layer's
  /// output: out_h = (in_h - 1) * stride + kernel - 2 * pad.
  gemm::ConvGeom geom(const Shape& in) const;
  gemm::ConvProblem problem(const Shape& in) const;
  gemm::ConvBackendKind resolve_backend(const Shape& in,
                                        gemm::ConvPhase phase,
                                        bool parallel_ok) const;

  std::string name_;
  Deconv2dConfig cfg_;
  Tensor weight_;  // (IC, OC, KH, KW): the underlying conv's OIHW layout
  Tensor bias_;    // (OC)
  Tensor weight_grad_;
  Tensor bias_grad_;
};

}  // namespace pf15::nn
