// Transposed convolution ("deconvolution") layer for the climate decoder
// (§III-B, §III-C).
//
// The paper notes that MKL had no optimized deconvolution, and that "the
// convolutions in the backward pass can be used to compute the
// deconvolutions of the forward pass and vice-versa". We implement exactly
// that swap: forward = convolution's data-gradient path (GEMM + col2im),
// backward-data = convolution's forward path (im2col + GEMM), and the
// weight gradient reuses the same lowered buffers.
#pragma once

#include <string>

#include "gemm/im2col.hpp"
#include "nn/layer.hpp"

namespace pf15::nn {

struct Deconv2dConfig {
  std::size_t in_channels = 0;   // channels of the (coarse) input
  std::size_t out_channels = 0;  // channels of the upsampled output
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;
  bool bias = true;
};

class Deconv2d final : public Layer {
 public:
  Deconv2d(std::string name, const Deconv2dConfig& cfg, Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "deconv"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  const Deconv2dConfig& config() const { return cfg_; }

 private:
  /// Geometry of the *underlying convolution*, whose input is this layer's
  /// output: out_h = (in_h - 1) * stride + kernel - 2 * pad.
  gemm::ConvGeom geom(const Shape& in) const;

  std::string name_;
  Deconv2dConfig cfg_;
  Tensor weight_;  // (IC, OC, KH, KW): IC rows of OC*KH*KW, GEMM-ready
  Tensor bias_;    // (OC)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor col_;  // scratch lowered buffer (OC*KH*KW x in_h*in_w)
};

}  // namespace pf15::nn
