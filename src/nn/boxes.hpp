// Bounding-box utilities for the climate detection task (§III-B, Fig 9).
// Boxes are axis-aligned in normalized image coordinates ([0,1]), anchored
// at the bottom-left corner as the paper specifies.
#pragma once

#include <cstddef>
#include <vector>

namespace pf15::nn {

struct Box {
  float x = 0.0f;  // bottom-left corner, normalized
  float y = 0.0f;
  float w = 0.0f;  // width/height, normalized
  float h = 0.0f;
  int cls = 0;
  float confidence = 1.0f;
};

/// Intersection-over-union of two boxes (0 when disjoint or degenerate).
float iou(const Box& a, const Box& b);

/// Greedy matching of predictions (sorted by confidence) to ground truth at
/// an IoU threshold. Returns {true_positives, false_positives,
/// false_negatives}; a prediction must also match the class to count.
struct MatchResult {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  double precision() const {
    const auto d = true_positives + false_positives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
  double recall() const {
    const auto d = true_positives + false_negatives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
};

MatchResult match_boxes(std::vector<Box> predictions,
                        const std::vector<Box>& ground_truth,
                        float iou_threshold);

/// Standard greedy non-maximum suppression within each class.
std::vector<Box> nms(std::vector<Box> boxes, float iou_threshold);

}  // namespace pf15::nn
