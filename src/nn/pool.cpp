#include "nn/pool.hpp"

#include <limits>

namespace pf15::nn {

MaxPool2d::MaxPool2d(std::string name, std::size_t kernel,
                     std::size_t stride)
    : name_(std::move(name)), kernel_(kernel), stride_(stride) {
  PF15_CHECK(kernel_ > 0 && stride_ > 0);
}

Shape MaxPool2d::output_shape(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4 && in.h() >= kernel_ && in.w() >= kernel_,
                 name_ << ": bad input " << in);
  return Shape{in.n(), in.c(), (in.h() - kernel_) / stride_ + 1,
               (in.w() - kernel_) / stride_ + 1};
}

void MaxPool2d::forward(const Tensor& in, Tensor& out) {
  const Shape os = output_shape(in.shape());
  ensure_shape(out, os);
  argmax_.assign(out.numel(), 0);
  const std::size_t ih = in.shape().h(), iw = in.shape().w();
  const std::size_t oh = os.h(), ow = os.w();
  const std::size_t planes = in.shape().n() * in.shape().c();
  for (std::size_t p = 0; p < planes; ++p) {
    const float* src = in.data() + p * ih * iw;
    float* dst = out.data() + p * oh * ow;
    std::size_t* arg = argmax_.data() + p * oh * ow;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          const std::size_t sy = y * stride_ + ky;
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            const std::size_t sx = x * stride_ + kx;
            const std::size_t idx = sy * iw + sx;
            if (src[idx] > best) {
              best = src[idx];
              best_idx = idx;
            }
          }
        }
        dst[y * ow + x] = best;
        arg[y * ow + x] = p * ih * iw + best_idx;
      }
    }
  }
}

void MaxPool2d::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  PF15_CHECK(dout.shape() == output_shape(in.shape()));
  PF15_CHECK_MSG(argmax_.size() == dout.numel(),
                 name_ << ": backward without matching forward");
  ensure_shape(din, in.shape());
  din.zero();
  for (std::size_t i = 0; i < dout.numel(); ++i) {
    din.data()[argmax_[i]] += dout.data()[i];
  }
}

std::uint64_t MaxPool2d::forward_flops(const Shape& in) const {
  // One comparison per tap; comparisons counted as one FLOP each.
  const Shape os = output_shape(in);
  return os.numel() * kernel_ * kernel_;
}

std::uint64_t MaxPool2d::backward_flops(const Shape& in) const {
  return output_shape(in).numel();
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4, name_ << ": bad input " << in);
  return Shape{in.n(), in.c(), 1, 1};
}

void GlobalAvgPool::forward(const Tensor& in, Tensor& out) {
  ensure_shape(out, output_shape(in.shape()));
  const std::size_t plane = in.shape().h() * in.shape().w();
  const std::size_t planes = in.shape().n() * in.shape().c();
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t p = 0; p < planes; ++p) {
    const float* src = in.data() + p * plane;
    double s = 0.0;
    for (std::size_t i = 0; i < plane; ++i) s += src[i];
    out.data()[p] = static_cast<float>(s) * inv;
  }
}

void GlobalAvgPool::backward(const Tensor& in, const Tensor& dout,
                             Tensor& din) {
  PF15_CHECK(dout.shape() == output_shape(in.shape()));
  ensure_shape(din, in.shape());
  const std::size_t plane = in.shape().h() * in.shape().w();
  const std::size_t planes = in.shape().n() * in.shape().c();
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t p = 0; p < planes; ++p) {
    const float g = dout.data()[p] * inv;
    float* dst = din.data() + p * plane;
    for (std::size_t i = 0; i < plane; ++i) dst[i] = g;
  }
}

std::uint64_t GlobalAvgPool::forward_flops(const Shape& in) const {
  return in.numel();
}

std::uint64_t GlobalAvgPool::backward_flops(const Shape& in) const {
  return in.numel();
}

}  // namespace pf15::nn
