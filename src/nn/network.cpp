#include "nn/network.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/timer.hpp"

namespace pf15::nn {

Layer& Sequential::add(LayerPtr layer) {
  PF15_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  profiles_.push_back(
      {layers_.back()->name(), layers_.back()->kind(), 0, 0, 0, 0});
  activations_.emplace_back();
  grads_.emplace_back();
  return *layers_.back();
}

Shape Sequential::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

const Tensor& Sequential::forward(const Tensor& input, bool profile) {
  PF15_CHECK(!layers_.empty());
  const Tensor* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    WallTimer timer;
    layers_[i]->forward(*cur, activations_[i]);
    if (profile) {
      profiles_[i].forward_seconds += timer.seconds();
      profiles_[i].forward_flops += layers_[i]->forward_flops(cur->shape());
    }
    cur = &activations_[i];
  }
  return *cur;
}

const Tensor& Sequential::backward(const Tensor& input, const Tensor& dout,
                                   bool profile) {
  PF15_CHECK(!layers_.empty());
  const Tensor* cur_grad = &dout;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_in = (i == 0) ? input : activations_[i - 1];
    WallTimer timer;
    layers_[i]->backward(layer_in, *cur_grad, grads_[i]);
    if (profile) {
      profiles_[i].backward_seconds += timer.seconds();
      profiles_[i].backward_flops +=
          layers_[i]->backward_flops(layer_in.shape());
    }
    cur_grad = &grads_[i];
  }
  return *cur_grad;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (auto& l : layers_) {
    for (auto& p : l->params()) all.push_back(p);
  }
  return all;
}

std::vector<Param> Sequential::state() {
  std::vector<Param> all;
  for (auto& l : layers_) {
    for (auto& p : l->state()) all.push_back(p);
  }
  return all;
}

void Sequential::set_training(bool training) {
  training_ = training;
  for (auto& l : layers_) l->set_training(training);
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->numel();
  return n;
}

void Sequential::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

std::uint64_t Sequential::forward_flops(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& l : layers_) {
    total += l->forward_flops(s);
    s = l->output_shape(s);
  }
  return total;
}

std::uint64_t Sequential::backward_flops(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& l : layers_) {
    total += l->backward_flops(s);
    s = l->output_shape(s);
  }
  return total;
}

void Sequential::reset_profiles() {
  for (auto& p : profiles_) {
    p.forward_seconds = p.backward_seconds = 0.0;
    p.forward_flops = p.backward_flops = 0;
  }
}

std::vector<Param> Sequential::params_and_state() {
  std::vector<Param> all = params();
  for (auto& p : state()) all.push_back(p);
  return all;
}

namespace {

// Header of a named-tensor stream. The trailing digit is the format
// version; bump it when the record layout changes.
constexpr char kTensorStreamMagic[8] = {'P', 'F', '1', '5',
                                        'T', 'N', 'S', '1'};

}  // namespace

void save_named_tensors(std::ostream& os,
                        const std::vector<Param>& entries) {
  os.write(kTensorStreamMagic, sizeof(kTensorStreamMagic));
  const std::uint64_t count = entries.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : entries) {
    const std::uint32_t len = static_cast<std::uint32_t>(p.name.size());
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(p.name.data(), static_cast<std::streamsize>(len));
    p.value->save(os);
  }
  if (!os) throw IoError("save_named_tensors: stream write failed");
}

void load_named_tensors(std::istream& is,
                        const std::vector<Param>& entries) {
  char magic[sizeof(kTensorStreamMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kTensorStreamMagic, sizeof(magic)) != 0) {
    throw IoError(
        "load_named_tensors: bad magic — not a pf15 named-tensor stream "
        "(or an incompatible format version)");
  }
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is) throw IoError("load_named_tensors: truncated header");
  if (count != entries.size()) {
    std::ostringstream oss;
    oss << "load_named_tensors: stream has " << count
        << " tensors but the model expects " << entries.size()
        << " — architecture mismatch";
    throw IoError(oss.str());
  }
  for (const auto& p : entries) {
    std::uint32_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!is) throw IoError("load_named_tensors: truncated record header");
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    if (!is) throw IoError("load_named_tensors: truncated tensor name");
    if (name != p.name) {
      throw IoError("load_named_tensors: expected tensor \"" + p.name +
                    "\" but stream holds \"" + name +
                    "\" — architecture mismatch");
    }
    Tensor t = Tensor::load(is);
    if (t.shape() != p.value->shape()) {
      std::ostringstream oss;
      oss << "load_named_tensors: shape mismatch for \"" << p.name
          << "\": model has " << p.value->shape() << ", stream has "
          << t.shape();
      throw IoError(oss.str());
    }
    p.value->copy_from(t);
  }
}

void Sequential::save_params(std::ostream& os) {
  save_named_tensors(os, params_and_state());
}

void Sequential::load_params(std::istream& is) {
  load_named_tensors(is, params_and_state());
}

}  // namespace pf15::nn
