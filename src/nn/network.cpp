#include "nn/network.hpp"

#include <istream>
#include <ostream>

#include "common/timer.hpp"

namespace pf15::nn {

Layer& Sequential::add(LayerPtr layer) {
  PF15_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  profiles_.push_back(
      {layers_.back()->name(), layers_.back()->kind(), 0, 0, 0, 0});
  activations_.emplace_back();
  grads_.emplace_back();
  return *layers_.back();
}

Shape Sequential::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

const Tensor& Sequential::forward(const Tensor& input, bool profile) {
  PF15_CHECK(!layers_.empty());
  const Tensor* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    WallTimer timer;
    layers_[i]->forward(*cur, activations_[i]);
    if (profile) {
      profiles_[i].forward_seconds += timer.seconds();
      profiles_[i].forward_flops += layers_[i]->forward_flops(cur->shape());
    }
    cur = &activations_[i];
  }
  return *cur;
}

const Tensor& Sequential::backward(const Tensor& input, const Tensor& dout,
                                   bool profile) {
  PF15_CHECK(!layers_.empty());
  const Tensor* cur_grad = &dout;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_in = (i == 0) ? input : activations_[i - 1];
    WallTimer timer;
    layers_[i]->backward(layer_in, *cur_grad, grads_[i]);
    if (profile) {
      profiles_[i].backward_seconds += timer.seconds();
      profiles_[i].backward_flops +=
          layers_[i]->backward_flops(layer_in.shape());
    }
    cur_grad = &grads_[i];
  }
  return *cur_grad;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (auto& l : layers_) {
    for (auto& p : l->params()) all.push_back(p);
  }
  return all;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->numel();
  return n;
}

void Sequential::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

std::uint64_t Sequential::forward_flops(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& l : layers_) {
    total += l->forward_flops(s);
    s = l->output_shape(s);
  }
  return total;
}

std::uint64_t Sequential::backward_flops(const Shape& in) const {
  std::uint64_t total = 0;
  Shape s = in;
  for (const auto& l : layers_) {
    total += l->backward_flops(s);
    s = l->output_shape(s);
  }
  return total;
}

void Sequential::reset_profiles() {
  for (auto& p : profiles_) {
    p.forward_seconds = p.backward_seconds = 0.0;
    p.forward_flops = p.backward_flops = 0;
  }
}

void Sequential::save_params(std::ostream& os) {
  for (auto& p : params()) p.value->save(os);
}

void Sequential::load_params(std::istream& is) {
  for (auto& p : params()) {
    Tensor t = Tensor::load(is);
    PF15_CHECK_MSG(t.shape() == p.value->shape(),
                   "checkpoint shape mismatch for " << p.name);
    p.value->copy_from(t);
  }
}

}  // namespace pf15::nn
