// Inverted dropout.
//
// Not used by the paper's two production networks (they are small and
// train on effectively unlimited simulated data), but standard equipment
// for the ResNet/LSTM extensions of §IX and for the regularisation
// ablations. Inverted scaling (kept activations divided by keep-prob)
// makes inference a no-op.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace pf15::nn {

class Dropout final : public Layer {
 public:
  /// `drop_prob` in [0, 1): probability an activation is zeroed.
  Dropout(std::string name, float drop_prob, std::uint64_t seed = 7);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "dropout"; }
  Shape output_shape(const Shape& in) const override { return in; }
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::uint64_t forward_flops(const Shape& in) const override {
    return in.numel();
  }
  std::uint64_t backward_flops(const Shape& in) const override {
    return in.numel();
  }

  void set_training(bool training) override { training_ = training; }
  bool training() const override { return training_; }

  /// When frozen, forward() reuses the current mask instead of drawing a
  /// fresh one — required for finite-difference gradient checks, which
  /// need a deterministic forward.
  void set_mask_frozen(bool frozen) { mask_frozen_ = frozen; }

  float drop_prob() const { return drop_prob_; }

 private:
  std::string name_;
  float drop_prob_;
  bool training_ = true;
  bool mask_frozen_ = false;
  Rng rng_;
  Tensor mask_;  // 0 or 1/keep per element, shaped like the last input
};

}  // namespace pf15::nn
