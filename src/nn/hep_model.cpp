#include "nn/hep_model.hpp"

#include <memory>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace pf15::nn {

Sequential build_hep_network(const HepConfig& cfg) {
  PF15_CHECK(cfg.conv_units >= 1);
  // The spatial size must survive (conv_units - 1) halvings.
  PF15_CHECK_MSG(cfg.image >= (1ull << cfg.conv_units),
                 "image " << cfg.image << " too small for "
                          << cfg.conv_units << " conv+pool units");
  Rng rng(cfg.seed);
  Sequential net;
  std::size_t in_c = cfg.channels;
  for (std::size_t u = 0; u < cfg.conv_units; ++u) {
    Conv2dConfig conv;
    conv.in_channels = in_c;
    conv.out_channels = cfg.filters;
    conv.kernel = 3;
    conv.stride = 1;
    conv.pad = 1;  // "same" padding keeps halving exact
    conv.algo = cfg.algo;
    const std::string idx = std::to_string(u + 1);
    net.add(std::make_unique<Conv2d>("conv" + idx, conv, rng));
    net.add(std::make_unique<ReLU>("relu" + idx));
    if (u + 1 < cfg.conv_units) {
      net.add(std::make_unique<MaxPool2d>("pool" + idx, 2, 2));
    } else {
      net.add(std::make_unique<GlobalAvgPool>("gap"));
    }
    in_c = cfg.filters;
  }
  net.add(std::make_unique<Dense>("fc", cfg.filters, cfg.classes, rng));
  return net;
}

}  // namespace pf15::nn
