#include "nn/boxes.hpp"

#include <algorithm>

namespace pf15::nn {

float iou(const Box& a, const Box& b) {
  const float ix0 = std::max(a.x, b.x);
  const float iy0 = std::max(a.y, b.y);
  const float ix1 = std::min(a.x + a.w, b.x + b.w);
  const float iy1 = std::min(a.y + a.h, b.y + b.h);
  const float iw = ix1 - ix0;
  const float ih = iy1 - iy0;
  if (iw <= 0.0f || ih <= 0.0f) return 0.0f;
  const float inter = iw * ih;
  const float uni = a.w * a.h + b.w * b.h - inter;
  return uni <= 0.0f ? 0.0f : inter / uni;
}

MatchResult match_boxes(std::vector<Box> predictions,
                        const std::vector<Box>& ground_truth,
                        float iou_threshold) {
  std::sort(predictions.begin(), predictions.end(),
            [](const Box& a, const Box& b) {
              return a.confidence > b.confidence;
            });
  std::vector<bool> used(ground_truth.size(), false);
  MatchResult r;
  for (const Box& p : predictions) {
    float best = 0.0f;
    std::size_t best_idx = ground_truth.size();
    for (std::size_t i = 0; i < ground_truth.size(); ++i) {
      if (used[i] || ground_truth[i].cls != p.cls) continue;
      const float v = iou(p, ground_truth[i]);
      if (v > best) {
        best = v;
        best_idx = i;
      }
    }
    if (best >= iou_threshold && best_idx < ground_truth.size()) {
      used[best_idx] = true;
      ++r.true_positives;
    } else {
      ++r.false_positives;
    }
  }
  for (bool u : used) {
    if (!u) ++r.false_negatives;
  }
  return r;
}

std::vector<Box> nms(std::vector<Box> boxes, float iou_threshold) {
  std::sort(boxes.begin(), boxes.end(), [](const Box& a, const Box& b) {
    return a.confidence > b.confidence;
  });
  std::vector<Box> kept;
  for (const Box& candidate : boxes) {
    bool suppressed = false;
    for (const Box& k : kept) {
      if (k.cls == candidate.cls && iou(k, candidate) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(candidate);
  }
  return kept;
}

}  // namespace pf15::nn
