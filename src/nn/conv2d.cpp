#include "nn/conv2d.hpp"

#include "common/thread_pool.hpp"
#include "gemm/gemm.hpp"
#include "gemm/winograd.hpp"

namespace pf15::nn {

using gemm::ConvPhase;

gemm::ConvBackendKind resolve_conv_backend(ConvAlgo algo,
                                           const gemm::ConvProblem& p,
                                           ConvPhase phase,
                                           bool parallel_ok,
                                           std::size_t batch) {
  gemm::ConvBackendKind forced = gemm::ConvBackendKind::kIm2col;
  switch (algo) {
    case ConvAlgo::kIm2col:
      return gemm::ConvBackendKind::kIm2col;
    case ConvAlgo::kWinograd:
      forced = gemm::ConvBackendKind::kWinograd;
      break;
    case ConvAlgo::kFft:
      forced = gemm::ConvBackendKind::kFft;
      break;
    case ConvAlgo::kDirect:
      forced = gemm::ConvBackendKind::kDirect;
      break;
    case ConvAlgo::kAuto:
      // kAuto: every applicable backend races once per (problem, phase,
      // execution mode, batch bucket) and the measured winner is
      // remembered — across processes, through the persisted plan cache.
      return gemm::ConvPlanCache::global()
          .plan(p, phase, parallel_ok, batch)
          .kind;
  }
  // A forced backend that declines this phase (FFT backward) falls back
  // to the always-applicable im2col adjoint; the layers' backend query
  // methods report the fallback, so it is explicit, never silent.
  if (!gemm::backend(forced).applicable(p, phase)) {
    return gemm::ConvBackendKind::kIm2col;
  }
  return forced;
}

gemm::ConvBackendKind planned_conv_backend(ConvAlgo algo,
                                           const gemm::ConvProblem& p,
                                           ConvPhase phase,
                                           bool parallel_ok,
                                           std::size_t batch) {
  if (algo != ConvAlgo::kAuto) {
    return resolve_conv_backend(algo, p, phase, parallel_ok, batch);
  }
  const auto cached =
      gemm::ConvPlanCache::global().lookup(p, phase, parallel_ok, batch);
  return cached.has_value() ? cached->kind : gemm::ConvBackendKind::kIm2col;
}

Conv2d::Conv2d(std::string name, const Conv2dConfig& cfg, Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(Shape{cfg.out_channels, cfg.in_channels, cfg.kernel,
                    cfg.kernel}),
      bias_(Shape{cfg.out_channels}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  PF15_CHECK(cfg.in_channels > 0 && cfg.out_channels > 0 && cfg.kernel > 0 &&
             cfg.stride > 0);
  if (cfg.algo == ConvAlgo::kWinograd) {
    PF15_CHECK_MSG(gemm::winograd_applicable(cfg.kernel, cfg.stride),
                   name_ << ": Winograd requires 3x3 stride-1");
  }
  weight_.fill_he(rng, cfg.in_channels * cfg.kernel * cfg.kernel);
  bias_.zero();
}

gemm::ConvGeom Conv2d::geom(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4 && in.c() == cfg_.in_channels,
                 name_ << ": bad input shape " << in);
  gemm::ConvGeom g;
  g.in_c = cfg_.in_channels;
  g.in_h = in.h();
  g.in_w = in.w();
  g.kernel_h = g.kernel_w = cfg_.kernel;
  g.stride_h = g.stride_w = cfg_.stride;
  g.pad_h = g.pad_w = cfg_.pad;
  PF15_CHECK_MSG(in.h() + 2 * cfg_.pad >= cfg_.kernel &&
                     in.w() + 2 * cfg_.pad >= cfg_.kernel,
                 name_ << ": kernel larger than padded input " << in);
  return g;
}

gemm::ConvProblem Conv2d::problem(const Shape& in) const {
  gemm::ConvProblem p;
  p.geom = geom(in);
  p.out_c = cfg_.out_channels;
  return p;
}

gemm::ConvBackendKind Conv2d::resolve_backend(const Shape& in,
                                              ConvPhase phase,
                                              bool parallel_ok) const {
  return resolve_conv_backend(cfg_.algo, problem(in), phase, parallel_ok,
                              in.n());
}

gemm::ConvBackendKind Conv2d::forward_backend(const Shape& in) const {
  // Nested waits are legal on the task scheduler, so backends may fan
  // out internally even under the batch-parallel loop: one execution
  // mode, parallel_ok=true everywhere on the hot path.
  return resolve_backend(in, ConvPhase::kForward, /*parallel_ok=*/true);
}

gemm::ConvBackendKind Conv2d::backward_backend(const Shape& in,
                                               ConvPhase phase) const {
  PF15_CHECK(phase != ConvPhase::kForward);
  return resolve_backend(in, phase, /*parallel_ok=*/true);
}

Shape Conv2d::output_shape(const Shape& in) const {
  const auto g = geom(in);
  return Shape{in.n(), cfg_.out_channels, g.out_h(), g.out_w()};
}

void Conv2d::forward(const Tensor& in, Tensor& out) {
  const gemm::ConvProblem p = problem(in.shape());
  ensure_shape(out, output_shape(in.shape()));
  const gemm::ConvBackendKind kind = forward_backend(in.shape());
  const gemm::ConvBackend& be = gemm::backend(kind);
  PF15_CHECK_MSG(be.applicable(p),
                 name_ << ": backend " << be.name()
                       << " not applicable to input " << in.shape());
  last_forward_backend_ = kind;

  const std::size_t n_img = in.shape().n();
  const std::size_t in_img = p.geom.in_c * p.geom.in_h * p.geom.in_w;
  const std::size_t out_img = p.out_c * p.geom.lowered_cols();
  const float* bias = cfg_.bias ? bias_.data() : nullptr;
  // Weight-only work (Winograd's filter transform) hoists out of the
  // batch loop: computed once here, shared read-only by every image.
  const std::unique_ptr<gemm::ConvPrep> prep =
      be.prepare_forward(p, weight_.data());
  // Per-image work (lowering, transforms, per-image GEMM) spreads across
  // the scheduler; each image's backend may fan out further beneath it
  // (nested waits are legal — the outer chunks' wait helps).
  ThreadPool::global().parallel_for(0, n_img, [&](std::size_t img) {
    be.forward_prepared(p, prep.get(), in.data() + img * in_img,
                        weight_.data(), bias, out.data() + img * out_img,
                        /*parallel_ok=*/true);
  });
}

void Conv2d::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  const gemm::ConvProblem p = problem(in.shape());
  PF15_CHECK(dout.shape() == output_shape(in.shape()));
  ensure_shape(din, in.shape());

  const std::size_t n_img = in.shape().n();
  const std::size_t in_img = p.geom.in_c * p.geom.in_h * p.geom.in_w;
  const std::size_t out_img = p.out_c * p.geom.lowered_cols();

  // Data gradient: independent per image, so it fans across the pool
  // exactly like forward. The backend overwrites each din image.
  // Weight-only work (Winograd's rotated/transformed filter bank) hoists
  // out of the batch loop, mirroring the prepare_forward hoist.
  const gemm::ConvBackendKind dkind =
      backward_backend(in.shape(), ConvPhase::kBackwardData);
  const gemm::ConvBackend& dbe = gemm::backend(dkind);
  last_backward_data_backend_ = dkind;
  const std::unique_ptr<gemm::ConvPrep> dprep =
      dbe.prepare_backward_data(p, weight_.data());
  ThreadPool::global().parallel_for(0, n_img, [&](std::size_t img) {
    dbe.backward_data_prepared(p, dprep.get(),
                               dout.data() + img * out_img,
                               weight_.data(), din.data() + img * in_img,
                               /*parallel_ok=*/true);
  });

  // Filter gradient: accumulates into shared weight_grad_, so the image
  // loop stays serial and the backend parallelizes internally instead.
  const gemm::ConvBackendKind fkind =
      backward_backend(in.shape(), ConvPhase::kBackwardFilter);
  const gemm::ConvBackend& fbe = gemm::backend(fkind);
  last_backward_filter_backend_ = fkind;
  const std::size_t plane = p.geom.lowered_cols();
  for (std::size_t img = 0; img < n_img; ++img) {
    const float* dout_img = dout.data() + img * out_img;
    fbe.backward_filter(p, in.data() + img * in_img, dout_img,
                        weight_grad_.data(), /*parallel_ok=*/true);
    if (cfg_.bias) {
      for (std::size_t oc = 0; oc < p.out_c; ++oc) {
        double s = 0.0;
        const float* row = dout_img + oc * plane;
        for (std::size_t i = 0; i < plane; ++i) s += row[i];
        bias_grad_.data()[oc] += static_cast<float>(s);
      }
    }
  }
}

std::vector<Param> Conv2d::params() {
  std::vector<Param> out;
  out.push_back({name_ + ".weight", &weight_, &weight_grad_});
  if (cfg_.bias) out.push_back({name_ + ".bias", &bias_, &bias_grad_});
  return out;
}

std::uint64_t Conv2d::forward_flops(const Shape& in) const {
  const gemm::ConvProblem p = problem(in);
  const gemm::ConvBackendKind kind = planned_conv_backend(
      cfg_.algo, p, ConvPhase::kForward, /*parallel_ok=*/true, in.n());
  const gemm::ConvBackend& be = gemm::backend(kind);
  return in.n() * (be.flops(p) +
                   (cfg_.bias ? p.geom.lowered_cols() * cfg_.out_channels
                              : 0));
}

std::uint64_t Conv2d::backward_flops(const Shape& in) const {
  const gemm::ConvProblem p = problem(in);
  const gemm::ConvBackendKind dkind = planned_conv_backend(
      cfg_.algo, p, ConvPhase::kBackwardData, /*parallel_ok=*/true,
      in.n());
  const gemm::ConvBackendKind fkind = planned_conv_backend(
      cfg_.algo, p, ConvPhase::kBackwardFilter, /*parallel_ok=*/true,
      in.n());
  const std::uint64_t per_img =
      gemm::backend(dkind).flops(p, ConvPhase::kBackwardData) +
      gemm::backend(fkind).flops(p, ConvPhase::kBackwardFilter) +
      (cfg_.bias ? p.geom.lowered_cols() * cfg_.out_channels : 0);
  return per_img * in.n();
}

}  // namespace pf15::nn
