#include "nn/conv2d.hpp"

#include "common/thread_pool.hpp"
#include "gemm/gemm.hpp"
#include "gemm/winograd.hpp"

namespace pf15::nn {

Conv2d::Conv2d(std::string name, const Conv2dConfig& cfg, Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(Shape{cfg.out_channels, cfg.in_channels, cfg.kernel,
                    cfg.kernel}),
      bias_(Shape{cfg.out_channels}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  PF15_CHECK(cfg.in_channels > 0 && cfg.out_channels > 0 && cfg.kernel > 0 &&
             cfg.stride > 0);
  if (cfg.algo == ConvAlgo::kWinograd) {
    PF15_CHECK_MSG(gemm::winograd_applicable(cfg.kernel, cfg.stride),
                   name_ << ": Winograd requires 3x3 stride-1");
  }
  weight_.fill_he(rng, cfg.in_channels * cfg.kernel * cfg.kernel);
  bias_.zero();
}

gemm::ConvGeom Conv2d::geom(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4 && in.c() == cfg_.in_channels,
                 name_ << ": bad input shape " << in);
  gemm::ConvGeom g;
  g.in_c = cfg_.in_channels;
  g.in_h = in.h();
  g.in_w = in.w();
  g.kernel_h = g.kernel_w = cfg_.kernel;
  g.stride_h = g.stride_w = cfg_.stride;
  g.pad_h = g.pad_w = cfg_.pad;
  PF15_CHECK_MSG(in.h() + 2 * cfg_.pad >= cfg_.kernel &&
                     in.w() + 2 * cfg_.pad >= cfg_.kernel,
                 name_ << ": kernel larger than padded input " << in);
  return g;
}

gemm::ConvProblem Conv2d::problem(const Shape& in) const {
  gemm::ConvProblem p;
  p.geom = geom(in);
  p.out_c = cfg_.out_channels;
  return p;
}

gemm::ConvBackendKind Conv2d::forward_backend(const Shape& in) const {
  switch (cfg_.algo) {
    case ConvAlgo::kIm2col:
      return gemm::ConvBackendKind::kIm2col;
    case ConvAlgo::kWinograd:
      return gemm::ConvBackendKind::kWinograd;
    case ConvAlgo::kFft:
      return gemm::ConvBackendKind::kFft;
    case ConvAlgo::kDirect:
      return gemm::ConvBackendKind::kDirect;
    case ConvAlgo::kAuto:
      break;
  }
  const gemm::ConvProblem p = problem(in);
  // kAuto: every applicable backend races once per (geometry, execution
  // mode) and the measured winner is remembered. Batched inputs run the
  // per-image-serial plan inside the batch-parallel loop; single images
  // run the plan tuned with pool access, so a parallel im2col can beat a
  // serial-only fast path there.
  return gemm::ConvPlanCache::global().plan(p, /*parallel_ok=*/in.n() <= 1)
      .kind;
}

Shape Conv2d::output_shape(const Shape& in) const {
  const auto g = geom(in);
  return Shape{in.n(), cfg_.out_channels, g.out_h(), g.out_w()};
}

void Conv2d::forward(const Tensor& in, Tensor& out) {
  const gemm::ConvProblem p = problem(in.shape());
  ensure_shape(out, output_shape(in.shape()));
  const gemm::ConvBackendKind kind = forward_backend(in.shape());
  const gemm::ConvBackend& be = gemm::backend(kind);
  PF15_CHECK_MSG(be.applicable(p),
                 name_ << ": backend " << be.name()
                       << " not applicable to input " << in.shape());
  last_forward_backend_ = kind;

  const std::size_t n_img = in.shape().n();
  const std::size_t in_img = p.geom.in_c * p.geom.in_h * p.geom.in_w;
  const std::size_t out_img = p.out_c * p.geom.lowered_cols();
  const float* bias = cfg_.bias ? bias_.data() : nullptr;
  if (n_img <= 1) {
    // A single image cannot parallelize across the batch; let the backend
    // use the pool internally instead (im2col's parallel GEMM).
    for (std::size_t img = 0; img < n_img; ++img) {
      be.forward(p, in.data() + img * in_img, weight_.data(), bias,
                 out.data() + img * out_img, /*parallel_ok=*/true);
    }
    return;
  }
  // Per-image work (lowering, transforms, per-image GEMM) spreads across
  // the pool. Inside a pool task the backend must stay serial: the pool
  // does not support nested parallel_for waits.
  ThreadPool::global().parallel_for(0, n_img, [&](std::size_t img) {
    be.forward(p, in.data() + img * in_img, weight_.data(), bias,
               out.data() + img * out_img, /*parallel_ok=*/false);
  });
}

void Conv2d::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  // Backward always takes the im2col adjoint, whatever backend forward
  // dispatched to (see backward_backend()): Winograd/FFT/direct share the
  // same linear map, so the gradient is identical — only the forward's
  // floating-point rounding differs. col_/dcol_ belong exclusively to this
  // path and are (re)sized here, never by forward().
  const auto g = geom(in.shape());
  PF15_CHECK(dout.shape() == output_shape(in.shape()));
  ensure_shape(din, in.shape());
  din.zero();
  ensure_shape(col_, Shape{g.lowered_rows(), g.lowered_cols()});
  ensure_shape(dcol_, Shape{g.lowered_rows(), g.lowered_cols()});
  const std::size_t m = cfg_.out_channels;
  const std::size_t k = g.lowered_rows();
  const std::size_t n = g.lowered_cols();
  const std::size_t in_img = in.shape().c() * in.shape().h() * in.shape().w();
  const std::size_t out_img = m * n;
  for (std::size_t img = 0; img < in.shape().n(); ++img) {
    const float* dout_img = dout.data() + img * out_img;
    // dW += dout_img (m x n) * col^T (n x k); recompute col from the input
    // rather than caching it across the whole batch.
    gemm::im2col(g, in.data() + img * in_img, col_.data());
    gemm::sgemm_parallel(false, true, m, k, n, 1.0f, dout_img, n,
                         col_.data(), n, 1.0f, weight_grad_.data(), k);
    if (cfg_.bias) {
      for (std::size_t oc = 0; oc < m; ++oc) {
        double s = 0.0;
        const float* plane = dout_img + oc * n;
        for (std::size_t i = 0; i < n; ++i) s += plane[i];
        bias_grad_.data()[oc] += static_cast<float>(s);
      }
    }
    // dcol = W^T (k x m) * dout_img (m x n); din += col2im(dcol).
    gemm::sgemm_parallel(true, false, k, n, m, 1.0f, weight_.data(), k,
                         dout_img, n, 0.0f, dcol_.data(), n);
    gemm::col2im(g, dcol_.data(), din.data() + img * in_img);
  }
}

std::vector<Param> Conv2d::params() {
  std::vector<Param> out;
  out.push_back({name_ + ".weight", &weight_, &weight_grad_});
  if (cfg_.bias) out.push_back({name_ + ".bias", &bias_, &bias_grad_});
  return out;
}

std::uint64_t Conv2d::forward_flops(const Shape& in) const {
  const gemm::ConvProblem p = problem(in);
  gemm::ConvBackendKind kind;
  if (cfg_.algo == ConvAlgo::kAuto) {
    // FLOP accounting must stay a pure arithmetic query: consult the
    // cache without tuning (forward_backend() would micro-benchmark on a
    // miss) and assume the im2col reference for shapes not yet planned.
    const auto cached = gemm::ConvPlanCache::global().lookup(
        p, /*parallel_ok=*/in.n() <= 1);
    kind = cached.has_value() ? cached->kind
                              : gemm::ConvBackendKind::kIm2col;
  } else {
    kind = forward_backend(in);
  }
  const gemm::ConvBackend& be = gemm::backend(kind);
  return in.n() * (be.flops(p) +
                   (cfg_.bias ? p.geom.lowered_cols() * cfg_.out_channels
                              : 0));
}

std::uint64_t Conv2d::backward_flops(const Shape& in) const {
  const auto g = geom(in);
  // dW GEMM + dX GEMM + bias reduction (im2col adjoint, always).
  const std::uint64_t per_img =
      gemm::flops(cfg_.out_channels, g.lowered_rows(), g.lowered_cols()) +
      gemm::flops(g.lowered_rows(), g.lowered_cols(), cfg_.out_channels) +
      (cfg_.bias ? g.lowered_cols() * cfg_.out_channels : 0);
  return per_img * in.n();
}

}  // namespace pf15::nn
