#include "nn/conv2d.hpp"

#include "gemm/gemm.hpp"
#include "gemm/winograd.hpp"

namespace pf15::nn {

bool Conv2d::uses_winograd() const {
  if (cfg_.algo == ConvAlgo::kIm2col) return false;
  const bool ok = gemm::winograd_applicable(cfg_.kernel, cfg_.stride);
  if (cfg_.algo == ConvAlgo::kWinograd) {
    PF15_CHECK_MSG(ok, name_ << ": Winograd requires 3x3 stride-1");
  }
  return ok;
}

Conv2d::Conv2d(std::string name, const Conv2dConfig& cfg, Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(Shape{cfg.out_channels, cfg.in_channels, cfg.kernel,
                    cfg.kernel}),
      bias_(Shape{cfg.out_channels}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  PF15_CHECK(cfg.in_channels > 0 && cfg.out_channels > 0 && cfg.kernel > 0 &&
             cfg.stride > 0);
  weight_.fill_he(rng, cfg.in_channels * cfg.kernel * cfg.kernel);
  bias_.zero();
}

gemm::ConvGeom Conv2d::geom(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4 && in.c() == cfg_.in_channels,
                 name_ << ": bad input shape " << in);
  gemm::ConvGeom g;
  g.in_c = cfg_.in_channels;
  g.in_h = in.h();
  g.in_w = in.w();
  g.kernel_h = g.kernel_w = cfg_.kernel;
  g.stride_h = g.stride_w = cfg_.stride;
  g.pad_h = g.pad_w = cfg_.pad;
  PF15_CHECK_MSG(in.h() + 2 * cfg_.pad >= cfg_.kernel &&
                     in.w() + 2 * cfg_.pad >= cfg_.kernel,
                 name_ << ": kernel larger than padded input " << in);
  return g;
}

Shape Conv2d::output_shape(const Shape& in) const {
  const auto g = geom(in);
  return Shape{in.n(), cfg_.out_channels, g.out_h(), g.out_w()};
}

void Conv2d::forward(const Tensor& in, Tensor& out) {
  const auto g = geom(in.shape());
  ensure_shape(out, output_shape(in.shape()));
  const std::size_t m = cfg_.out_channels;
  const std::size_t n = g.lowered_cols();
  const std::size_t in_img = in.shape().c() * in.shape().h() * in.shape().w();
  const std::size_t out_img = m * n;
  if (uses_winograd()) {
    for (std::size_t img = 0; img < in.shape().n(); ++img) {
      gemm::winograd_conv3x3(in.data() + img * in_img, cfg_.in_channels,
                             in.shape().h(), in.shape().w(),
                             weight_.data(), m, cfg_.pad,
                             cfg_.bias ? bias_.data() : nullptr,
                             out.data() + img * out_img);
    }
    return;
  }
  ensure_shape(col_, Shape{g.lowered_rows(), g.lowered_cols()});
  const std::size_t k = g.lowered_rows();
  for (std::size_t img = 0; img < in.shape().n(); ++img) {
    gemm::im2col(g, in.data() + img * in_img, col_.data());
    gemm::sgemm_parallel(false, false, m, n, k, 1.0f, weight_.data(), k,
                         col_.data(), n, 0.0f, out.data() + img * out_img,
                         n);
    if (cfg_.bias) {
      float* dst = out.data() + img * out_img;
      for (std::size_t oc = 0; oc < m; ++oc) {
        const float b = bias_.data()[oc];
        float* plane = dst + oc * n;
        for (std::size_t i = 0; i < n; ++i) plane[i] += b;
      }
    }
  }
}

void Conv2d::backward(const Tensor& in, const Tensor& dout, Tensor& din) {
  const auto g = geom(in.shape());
  PF15_CHECK(dout.shape() == output_shape(in.shape()));
  ensure_shape(din, in.shape());
  din.zero();
  ensure_shape(col_, Shape{g.lowered_rows(), g.lowered_cols()});
  ensure_shape(dcol_, Shape{g.lowered_rows(), g.lowered_cols()});
  const std::size_t m = cfg_.out_channels;
  const std::size_t k = g.lowered_rows();
  const std::size_t n = g.lowered_cols();
  const std::size_t in_img = in.shape().c() * in.shape().h() * in.shape().w();
  const std::size_t out_img = m * n;
  for (std::size_t img = 0; img < in.shape().n(); ++img) {
    const float* dout_img = dout.data() + img * out_img;
    // dW += dout_img (m x n) * col^T (n x k); recompute col from the input
    // rather than caching it across the whole batch.
    gemm::im2col(g, in.data() + img * in_img, col_.data());
    gemm::sgemm_parallel(false, true, m, k, n, 1.0f, dout_img, n,
                         col_.data(), n, 1.0f, weight_grad_.data(), k);
    if (cfg_.bias) {
      for (std::size_t oc = 0; oc < m; ++oc) {
        double s = 0.0;
        const float* plane = dout_img + oc * n;
        for (std::size_t i = 0; i < n; ++i) s += plane[i];
        bias_grad_.data()[oc] += static_cast<float>(s);
      }
    }
    // dcol = W^T (k x m) * dout_img (m x n); din += col2im(dcol).
    gemm::sgemm_parallel(true, false, k, n, m, 1.0f, weight_.data(), k,
                         dout_img, n, 0.0f, dcol_.data(), n);
    gemm::col2im(g, dcol_.data(), din.data() + img * in_img);
  }
}

std::vector<Param> Conv2d::params() {
  std::vector<Param> out;
  out.push_back({name_ + ".weight", &weight_, &weight_grad_});
  if (cfg_.bias) out.push_back({name_ + ".bias", &bias_, &bias_grad_});
  return out;
}

std::uint64_t Conv2d::forward_flops(const Shape& in) const {
  const auto g = geom(in);
  if (uses_winograd()) {
    return in.n() * (gemm::winograd_flops(cfg_.in_channels,
                                          cfg_.out_channels, g.in_h,
                                          g.in_w, cfg_.pad) +
                     (cfg_.bias ? g.lowered_cols() * cfg_.out_channels
                                : 0));
  }
  const std::uint64_t per_img =
      gemm::flops(cfg_.out_channels, g.lowered_cols(), g.lowered_rows()) +
      (cfg_.bias ? g.lowered_cols() * cfg_.out_channels : 0);
  return per_img * in.n();
}

std::uint64_t Conv2d::backward_flops(const Shape& in) const {
  const auto g = geom(in);
  // dW GEMM + dX GEMM + bias reduction.
  const std::uint64_t per_img =
      gemm::flops(cfg_.out_channels, g.lowered_rows(), g.lowered_cols()) +
      gemm::flops(g.lowered_rows(), g.lowered_cols(), cfg_.out_channels) +
      (cfg_.bias ? g.lowered_cols() * cfg_.out_channels : 0);
  return per_img * in.n();
}

}  // namespace pf15::nn
