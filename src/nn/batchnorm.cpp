#include "nn/batchnorm.hpp"

#include <cmath>

namespace pf15::nn {

BatchNorm2d::BatchNorm2d(std::string name, const BatchNormConfig& cfg)
    : name_(std::move(name)),
      cfg_(cfg),
      gamma_(Shape{cfg.channels}),
      beta_(Shape{cfg.channels}),
      gamma_grad_(gamma_.shape()),
      beta_grad_(beta_.shape()),
      running_mean_(Shape{cfg.channels}),
      running_var_(Shape{cfg.channels}),
      batch_mean_(Shape{cfg.channels}),
      batch_inv_std_(Shape{cfg.channels}) {
  PF15_CHECK(cfg.channels > 0);
  PF15_CHECK(cfg.epsilon > 0.0f);
  gamma_.fill(1.0f);
  beta_.zero();
  running_mean_.zero();
  running_var_.fill(1.0f);
}

void BatchNorm2d::check_input(const Shape& in) const {
  PF15_CHECK_MSG(in.rank() == 4 && in.c() == cfg_.channels,
                 name_ << ": expected (N, " << cfg_.channels
                       << ", H, W), got " << in);
}

Shape BatchNorm2d::output_shape(const Shape& in) const {
  check_input(in);
  return in;
}

void BatchNorm2d::forward(const Tensor& in, Tensor& out) {
  check_input(in.shape());
  ensure_shape(out, in.shape());
  const std::size_t n = in.shape().n();
  const std::size_t c = cfg_.channels;
  const std::size_t hw = in.shape().h() * in.shape().w();
  const double count = static_cast<double>(n * hw);

  if (training_) {
    ensure_shape(xhat_, in.shape());
    for (std::size_t ch = 0; ch < c; ++ch) {
      double sum = 0.0, sumsq = 0.0;
      for (std::size_t b = 0; b < n; ++b) {
        const float* x = in.data() + (b * c + ch) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          sum += x[i];
          sumsq += static_cast<double>(x[i]) * x[i];
        }
      }
      const double mean = sum / count;
      const double var = std::max(0.0, sumsq / count - mean * mean);
      const float inv_std =
          static_cast<float>(1.0 / std::sqrt(var + cfg_.epsilon));
      batch_mean_.data()[ch] = static_cast<float>(mean);
      batch_inv_std_.data()[ch] = inv_std;
      running_mean_.data()[ch] =
          (1.0f - cfg_.momentum) * running_mean_.data()[ch] +
          cfg_.momentum * static_cast<float>(mean);
      running_var_.data()[ch] =
          (1.0f - cfg_.momentum) * running_var_.data()[ch] +
          cfg_.momentum * static_cast<float>(var);

      const float g = gamma_.data()[ch];
      const float bta = beta_.data()[ch];
      const float m = static_cast<float>(mean);
      for (std::size_t b = 0; b < n; ++b) {
        const float* x = in.data() + (b * c + ch) * hw;
        float* xh = xhat_.data() + (b * c + ch) * hw;
        float* y = out.data() + (b * c + ch) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          xh[i] = (x[i] - m) * inv_std;
          y[i] = g * xh[i] + bta;
        }
      }
    }
  } else {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float inv_std = 1.0f / std::sqrt(running_var_.data()[ch] +
                                             cfg_.epsilon);
      const float m = running_mean_.data()[ch];
      const float g = gamma_.data()[ch];
      const float bta = beta_.data()[ch];
      for (std::size_t b = 0; b < n; ++b) {
        const float* x = in.data() + (b * c + ch) * hw;
        float* y = out.data() + (b * c + ch) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          y[i] = g * (x[i] - m) * inv_std + bta;
        }
      }
    }
  }
}

void BatchNorm2d::backward(const Tensor& in, const Tensor& dout,
                           Tensor& din) {
  check_input(in.shape());
  PF15_CHECK(dout.shape() == in.shape());
  ensure_shape(din, in.shape());
  const std::size_t n = in.shape().n();
  const std::size_t c = cfg_.channels;
  const std::size_t hw = in.shape().h() * in.shape().w();
  const double count = static_cast<double>(n * hw);

  if (!training_) {
    // Inference is a per-channel linear map: dx = dout * gamma * inv_std.
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float inv_std = 1.0f / std::sqrt(running_var_.data()[ch] +
                                             cfg_.epsilon);
      const float m = running_mean_.data()[ch];
      const float scale = gamma_.data()[ch] * inv_std;
      double dg = 0.0, db = 0.0;
      for (std::size_t b = 0; b < n; ++b) {
        const float* x = in.data() + (b * c + ch) * hw;
        const float* dy = dout.data() + (b * c + ch) * hw;
        float* dx = din.data() + (b * c + ch) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          dg += static_cast<double>(dy[i]) * (x[i] - m) * inv_std;
          db += dy[i];
          dx[i] = dy[i] * scale;
        }
      }
      gamma_grad_.data()[ch] += static_cast<float>(dg);
      beta_grad_.data()[ch] += static_cast<float>(db);
    }
    return;
  }

  PF15_CHECK_MSG(xhat_.defined() && xhat_.shape() == in.shape(),
                 name_ << ": backward without a matching training forward");
  // Standard batch-norm backward through the batch statistics:
  //   dx = gamma * inv_std * (dy - mean(dy) - xhat * mean(dy * xhat)).
  for (std::size_t ch = 0; ch < c; ++ch) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const float* dy = dout.data() + (b * c + ch) * hw;
      const float* xh = xhat_.data() + (b * c + ch) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_grad_.data()[ch] += static_cast<float>(sum_dy_xhat);
    beta_grad_.data()[ch] += static_cast<float>(sum_dy);

    const float mean_dy = static_cast<float>(sum_dy / count);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
    const float scale = gamma_.data()[ch] * batch_inv_std_.data()[ch];
    for (std::size_t b = 0; b < n; ++b) {
      const float* dy = dout.data() + (b * c + ch) * hw;
      const float* xh = xhat_.data() + (b * c + ch) * hw;
      float* dx = din.data() + (b * c + ch) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        dx[i] = scale * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
      }
    }
  }
}

std::vector<Param> BatchNorm2d::params() {
  return {{name_ + ".gamma", &gamma_, &gamma_grad_},
          {name_ + ".beta", &beta_, &beta_grad_}};
}

std::vector<Param> BatchNorm2d::state() {
  return {{name_ + ".running_mean", &running_mean_, nullptr},
          {name_ + ".running_var", &running_var_, nullptr}};
}

std::uint64_t BatchNorm2d::forward_flops(const Shape& in) const {
  check_input(in);
  // Two reduction passes plus the normalize+affine pass.
  return 5 * static_cast<std::uint64_t>(in.numel());
}

std::uint64_t BatchNorm2d::backward_flops(const Shape& in) const {
  check_input(in);
  return 8 * static_cast<std::uint64_t>(in.numel());
}

}  // namespace pf15::nn
