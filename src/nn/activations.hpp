// Elementwise activation layers. The paper's networks use ReLU throughout
// (§III-A); we also provide Sigmoid and Tanh for the climate heads
// (confidence in [0,1]) and the autoencoder output.
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace pf15::nn {

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::string kind() const override { return "relu"; }
  Shape output_shape(const Shape& in) const override { return in; }
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::uint64_t forward_flops(const Shape& in) const override {
    return in.numel();
  }
  std::uint64_t backward_flops(const Shape& in) const override {
    return in.numel();
  }

 private:
  std::string name_;
};

class Sigmoid final : public Layer {
 public:
  explicit Sigmoid(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::string kind() const override { return "sigmoid"; }
  Shape output_shape(const Shape& in) const override { return in; }
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::uint64_t forward_flops(const Shape& in) const override {
    return 4 * in.numel();
  }
  std::uint64_t backward_flops(const Shape& in) const override {
    return 3 * in.numel();
  }

 private:
  std::string name_;
  Tensor out_cache_;  // sigmoid(x), reused by backward
};

class Tanh final : public Layer {
 public:
  explicit Tanh(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::string kind() const override { return "tanh"; }
  Shape output_shape(const Shape& in) const override { return in; }
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::uint64_t forward_flops(const Shape& in) const override {
    return 4 * in.numel();
  }
  std::uint64_t backward_flops(const Shape& in) const override {
    return 3 * in.numel();
  }

 private:
  std::string name_;
  Tensor out_cache_;
};

}  // namespace pf15::nn
