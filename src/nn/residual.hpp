// Residual block and ResNet builder — the §IX extension ("Our results
// ... extend to other kinds of models such as ResNets"), kept in the same
// Layer vocabulary so a ResNet drops into the hybrid trainer, the FLOP
// accounting, and the Cori simulator unchanged.
//
// Block structure (pre-activation omitted; classic form):
//   main:     conv3x3(stride) -> [BN] -> ReLU -> conv3x3(1) -> [BN]
//   shortcut: identity, or conv1x1(stride) when the shape changes
//   output:   ReLU(main + shortcut)
// BatchNorm is *off* by default, matching the paper's design rule of
// avoiding batch statistics in scale-out models (§I); the ablation bench
// turns it on to measure the cost.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"

namespace pf15::nn {

struct ResidualConfig {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t stride = 1;  // applied by the first conv and the shortcut
  bool batchnorm = false;
  ConvAlgo algo = ConvAlgo::kIm2col;
};

class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::string name, const ResidualConfig& cfg, Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "res"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::vector<Param> state() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  /// Propagates training mode to every layer of the residual branch.
  void set_training(bool training) override;
  /// True when any branch/shortcut layer still runs training behaviour.
  bool training() const override;

  bool has_projection() const { return projection_ != nullptr; }

  // ---- graph-compiler capture surface ----
  // The compiler lowers the block into a real split/add sub-graph, so it
  // needs the branch layers and the projection by reference (it clones
  // their weights; the live layers stay untouched).
  std::size_t branch_layer_count() const { return main_.size(); }
  Layer& branch_layer(std::size_t i) { return *main_[i]; }
  /// Null when the shortcut is the identity.
  Conv2d* projection() { return projection_.get(); }

 private:
  std::string name_;
  ResidualConfig cfg_;
  std::vector<LayerPtr> main_;          // the residual branch
  std::unique_ptr<Conv2d> projection_;  // null = identity shortcut

  std::vector<Tensor> acts_;   // main branch activations
  std::vector<Tensor> grads_;  // main branch gradients (backward scratch)
  Tensor shortcut_out_;        // projection output (unused when identity)
  Tensor sum_;                 // main + shortcut, pre-ReLU
  Tensor dsum_;                // gradient at the addition
  Tensor dshortcut_;           // shortcut-path input gradient
};

struct ResNetConfig {
  std::size_t in_channels = 3;
  std::size_t num_classes = 2;
  /// Channels of each stage; stage i > 0 downsamples by stride 2.
  std::vector<std::size_t> stage_channels = {16, 32, 64};
  std::size_t blocks_per_stage = 2;
  bool batchnorm = false;
  std::uint64_t seed = 1;
  /// Convolution dispatch for the stem and every block (branch convs and
  /// projections). kIm2col keeps the bit-stable reference; kAuto inherits
  /// the plan cache's measured winners (see HepConfig::algo).
  ConvAlgo algo = ConvAlgo::kIm2col;
};

/// Stem conv -> residual stages -> global average pool -> dense classifier,
/// the same tail as the paper's HEP network (§III-A).
Sequential build_resnet(const ResNetConfig& cfg);

}  // namespace pf15::nn
