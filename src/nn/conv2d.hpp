// 2-D convolution layer, the workhorse of both networks (§III-A, §III-B).
// Weight layout is OIHW; bias is per output channel.
//
// Forward *and* backward dispatch through the gemm::ConvBackend registry:
// im2col+GEMM, Winograd F(2x2/4x4,3x3), FFT, or direct loops. kAuto
// consults the process-wide gemm::ConvPlanCache, which micro-benchmarks
// applicable backends the first time a (problem, phase) is seen and
// remembers the winner — forward, backward-data and backward-filter tune
// independently (the cuDNN per-op-phase model), so training inherits the
// measured backend wins, not just inference. The batch loops fan across
// the global task scheduler where accumulation allows it, and backends
// may fan out further beneath each image — nested waits are legal on the
// scheduler, so parallel_ok is true throughout the hot path.
#pragma once

#include <string>

#include "gemm/conv_backend.hpp"
#include "gemm/im2col.hpp"
#include "nn/layer.hpp"

namespace pf15::nn {

/// Algorithm selection. kIm2col/kWinograd/kFft/kDirect force one
/// gemm::ConvBackend (construction PF15_CHECKs applicability for
/// Winograd; FFT/direct apply everywhere); kAuto lets the autotune plan
/// cache pick per (geometry, phase). A forced backend that declines a
/// backward phase (FFT) falls back to the im2col adjoint there — the
/// fallback is explicit via backward_backend(), never silent.
enum class ConvAlgo { kIm2col, kWinograd, kAuto, kFft, kDirect };

struct Conv2dConfig {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;
  bool bias = true;
  ConvAlgo algo = ConvAlgo::kIm2col;
};

/// The one algo-to-backend resolution policy, shared by every layer that
/// dispatches convolution phases (Conv2d, Deconv2d): a forced algo wins
/// when it supports the phase, falls back to the im2col adjoint when it
/// declines it (FFT backward), and kAuto asks the global plan cache —
/// tuning on first sight in the given execution mode and batch bucket
/// (gemm::conv_batch_bucket of the layer's batch dimension).
gemm::ConvBackendKind resolve_conv_backend(ConvAlgo algo,
                                           const gemm::ConvProblem& p,
                                           gemm::ConvPhase phase,
                                           bool parallel_ok,
                                           std::size_t batch = 1);

/// Like resolve_conv_backend but guaranteed never to tune: kAuto
/// consults the plan cache and assumes the im2col reference for shapes
/// not yet planned. FLOP accounting goes through this so it stays a pure
/// arithmetic query.
gemm::ConvBackendKind planned_conv_backend(ConvAlgo algo,
                                           const gemm::ConvProblem& p,
                                           gemm::ConvPhase phase,
                                           bool parallel_ok,
                                           std::size_t batch = 1);

class Conv2d final : public Layer {
 public:
  Conv2d(std::string name, const Conv2dConfig& cfg, Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "conv"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  const Conv2dConfig& config() const { return cfg_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

  /// The backend the forward pass will dispatch to for this input shape
  /// (resolving kAuto through the global plan cache, tuning on first
  /// sight).
  gemm::ConvBackendKind forward_backend(const Shape& in) const;
  /// The backend `phase` will dispatch to for this input shape: the
  /// forced algo when it supports the phase, the im2col adjoint when it
  /// declines it (FFT backward), or the plan-cache winner under kAuto.
  gemm::ConvBackendKind backward_backend(const Shape& in,
                                         gemm::ConvPhase phase) const;
  /// The backends the latest forward()/backward() actually dispatched to.
  gemm::ConvBackendKind last_forward_backend() const {
    return last_forward_backend_;
  }
  gemm::ConvBackendKind last_backward_data_backend() const {
    return last_backward_data_backend_;
  }
  gemm::ConvBackendKind last_backward_filter_backend() const {
    return last_backward_filter_backend_;
  }

 private:
  gemm::ConvGeom geom(const Shape& in) const;
  gemm::ConvProblem problem(const Shape& in) const;
  /// Resolves cfg_.algo / the plan cache for one phase. `parallel_ok`
  /// selects the execution mode the plan must be tuned in.
  gemm::ConvBackendKind resolve_backend(const Shape& in,
                                        gemm::ConvPhase phase,
                                        bool parallel_ok) const;

  std::string name_;
  Conv2dConfig cfg_;
  Tensor weight_;       // (OC, IC, KH, KW)
  Tensor bias_;         // (OC)
  Tensor weight_grad_;  // same shapes as values
  Tensor bias_grad_;
  gemm::ConvBackendKind last_forward_backend_ =
      gemm::ConvBackendKind::kIm2col;
  gemm::ConvBackendKind last_backward_data_backend_ =
      gemm::ConvBackendKind::kIm2col;
  gemm::ConvBackendKind last_backward_filter_backend_ =
      gemm::ConvBackendKind::kIm2col;
};

}  // namespace pf15::nn
