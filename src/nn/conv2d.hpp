// 2-D convolution layer (im2col + GEMM), the workhorse of both networks
// (§III-A, §III-B). Weight layout is OIHW; bias is per output channel.
#pragma once

#include <string>

#include "gemm/im2col.hpp"
#include "nn/layer.hpp"

namespace pf15::nn {

/// Forward-pass algorithm selection. Winograd F(2x2,3x3) applies only to
/// 3x3 stride-1 kernels (§VIII-A future work — see gemm/winograd.hpp);
/// kAuto picks it when applicable, kIm2col forces the lowering path.
enum class ConvAlgo { kIm2col, kWinograd, kAuto };

struct Conv2dConfig {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;
  bool bias = true;
  ConvAlgo algo = ConvAlgo::kIm2col;
};

class Conv2d final : public Layer {
 public:
  Conv2d(std::string name, const Conv2dConfig& cfg, Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "conv"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  const Conv2dConfig& config() const { return cfg_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  /// True if the forward pass will take the Winograd fast path.
  bool uses_winograd() const;

 private:
  gemm::ConvGeom geom(const Shape& in) const;

  std::string name_;
  Conv2dConfig cfg_;
  Tensor weight_;       // (OC, IC, KH, KW)
  Tensor bias_;         // (OC)
  Tensor weight_grad_;  // same shapes as values
  Tensor bias_grad_;
  Tensor col_;   // scratch: lowered input, one image at a time
  Tensor dcol_;  // scratch: lowered gradient
};

}  // namespace pf15::nn
