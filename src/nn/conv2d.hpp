// 2-D convolution layer, the workhorse of both networks (§III-A, §III-B).
// Weight layout is OIHW; bias is per output channel.
//
// The forward pass dispatches through the gemm::ConvBackend registry:
// im2col+GEMM, Winograd F(2x2,3x3), FFT, or direct loops. kAuto consults
// the process-wide gemm::ConvPlanCache, which micro-benchmarks applicable
// backends the first time a (geometry, channels) problem is seen and
// remembers the winner. The batch loop runs on the global thread pool, so
// per-image lowering/transform work parallelizes across the batch.
#pragma once

#include <string>

#include "gemm/conv_backend.hpp"
#include "gemm/im2col.hpp"
#include "nn/layer.hpp"

namespace pf15::nn {

/// Forward-pass algorithm selection. kIm2col/kWinograd/kFft/kDirect force
/// one gemm::ConvBackend (construction PF15_CHECKs applicability for
/// Winograd; FFT/direct apply everywhere); kAuto lets the autotune plan
/// cache pick per geometry.
enum class ConvAlgo { kIm2col, kWinograd, kAuto, kFft, kDirect };

struct Conv2dConfig {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;
  bool bias = true;
  ConvAlgo algo = ConvAlgo::kIm2col;
};

class Conv2d final : public Layer {
 public:
  Conv2d(std::string name, const Conv2dConfig& cfg, Rng& rng);

  const std::string& name() const override { return name_; }
  std::string kind() const override { return "conv"; }
  Shape output_shape(const Shape& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& dout, Tensor& din) override;
  std::vector<Param> params() override;
  std::uint64_t forward_flops(const Shape& in) const override;
  std::uint64_t backward_flops(const Shape& in) const override;

  const Conv2dConfig& config() const { return cfg_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

  /// The backend the forward pass will dispatch to for this input shape
  /// (resolving kAuto through the global plan cache, tuning on first
  /// sight).
  gemm::ConvBackendKind forward_backend(const Shape& in) const;
  /// The backend the latest forward() actually dispatched to.
  gemm::ConvBackendKind last_forward_backend() const {
    return last_forward_backend_;
  }
  /// Backward is always computed by the im2col adjoint (see backward()):
  /// the fast forward backends have no gradient formulation here, so the
  /// fallback is explicit, not silent.
  gemm::ConvBackendKind backward_backend() const {
    return gemm::ConvBackendKind::kIm2col;
  }

 private:
  gemm::ConvGeom geom(const Shape& in) const;
  gemm::ConvProblem problem(const Shape& in) const;

  std::string name_;
  Conv2dConfig cfg_;
  Tensor weight_;       // (OC, IC, KH, KW)
  Tensor bias_;         // (OC)
  Tensor weight_grad_;  // same shapes as values
  Tensor bias_grad_;
  // Backward-only scratch. The forward path keeps its lowering scratch in
  // backend-owned thread-local buffers (the batch loop is parallel), so
  // these are sized for exactly one consumer: the im2col adjoint below.
  Tensor col_;   // scratch: lowered input, one image at a time
  Tensor dcol_;  // scratch: lowered gradient
  gemm::ConvBackendKind last_forward_backend_ =
      gemm::ConvBackendKind::kIm2col;
};

}  // namespace pf15::nn
