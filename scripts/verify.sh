#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Single entry point shared by developers and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
cmake -B build -S .
cmake --build build -j"$jobs"
cd build && ctest --output-on-failure -j"$jobs"
