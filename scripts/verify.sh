#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Single entry point shared by developers and CI.
#
# The build turns warnings into errors for the kernel (src/gemm), layer
# (src/nn), tuning (src/tune), graph-compiler (src/graph), serving
# (src/serve) and observability (src/obs) subsystems. The
# convolution backend sweep records the perf trajectory of the hottest
# path — forward AND backward, per-image and batched — into
# BENCH_conv_backends.json at the repo root (diff it PR over PR), then a
# second run proves the persisted plan cache warm-starts: zero first-sight
# tunes, enforced by the bench's exit code.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
cmake -B build -S . -DPF15_WERROR=ON
cmake --build build -j"$jobs"
(cd build && ctest --output-on-failure -j"$jobs")

# Perf record, not a gate: exit 1 means the timing-dependent acceptance
# check (autotune beat im2col somewhere) didn't hold on this machine —
# warn, keep the record. Any other failure (crash, bad usage) still fails.
plan_cache="build/conv_plans.json"
rm -f "$plan_cache"
rc=0
./build/bench_conv_backends --json BENCH_conv_backends.json --batch 8 \
    --cache "$plan_cache" || rc=$?
if [ "$rc" -eq 1 ]; then
  echo "WARNING: bench_conv_backends perf acceptance not met on this machine (timing noise?)" >&2
elif [ "$rc" -ne 0 ]; then
  exit "$rc"
fi

# Warm-start acceptance: a fresh process with the saved plan cache must
# answer every plan request without tuning (exit 3 if anything re-tuned;
# exit 1 is the same timing-noise warning as above and stays non-fatal).
rc=0
./build/bench_conv_backends --json /dev/null --no-sweep --require-warm \
    --cache "$plan_cache" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
  echo "FAIL: plan cache did not warm-start a fresh process" >&2
  exit "$rc"
fi
echo "plan cache warm start verified: zero first-sight tunes"

# Graph compiler acceptance: eager-vs-compiled throughput (incl. the
# ResNet-HEP residual geometry and the climate parallel-executor entry)
# and arena bytes recorded to BENCH_graph_compile.json (exit 1 =
# timing-noise warning), then a second process must build every compiled
# plan warm from the saved cache — zero first-sight tunes, enforced by
# exit code 3. PF15_CONV_PLAN_CACHE=off keeps the runs hermetic: only the
# explicit --cache path feeds the second process.
# The run is traced (--trace): the bench re-parses its own trace and exits
# 5 if the per-level executor spans are missing; the grep below re-asserts
# it from the outside so a silently empty file also fails.
graph_cache="build/graph_plans.json"
graph_trace="build/graph_trace.json"
rm -f "$graph_cache" "$graph_trace"
rc=0
PF15_CONV_PLAN_CACHE=off ./build/bench_graph_compile \
    --json BENCH_graph_compile.json --batch 8 --cache "$graph_cache" \
    --trace "$graph_trace" || rc=$?
if [ "$rc" -eq 1 ]; then
  echo "WARNING: bench_graph_compile perf acceptance not met on this machine (timing noise?)" >&2
elif [ "$rc" -ne 0 ]; then
  exit "$rc"
fi
if ! grep -Eq '"name":"level[0-9]+","cat":"graph"' "$graph_trace"; then
  echo "FAIL: trace $graph_trace is missing per-level executor spans" >&2
  exit 5
fi
echo "span tracer verified: per-level executor spans present in $graph_trace"

# Residual sub-graph capture regression guard: the ResNet-HEP row must
# show BN folds and fusions *inside* residual blocks. A silent fallback
# to opaque capture (where no pass can fire) zeroes these totals — fail
# hard, this is a correctness property of capture, not a timing.
for key in residual_folded_batchnorms_total residual_fused_activations_total \
           fused_joins_total; do
  if ! grep -Eq "\"$key\": *[1-9]" BENCH_graph_compile.json; then
    echo "FAIL: graph compiler fell back to opaque residual capture ($key zero or missing)" >&2
    exit 4
  fi
done
echo "residual sub-graph capture verified: passes fire inside residual blocks"
rc=0
PF15_CONV_PLAN_CACHE=off ./build/bench_graph_compile \
    --json build/graph_warm.json \
    --batch 8 --plans-only --require-warm --cache "$graph_cache" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
  echo "FAIL: compiled plans did not start warm in a fresh process" >&2
  exit "$rc"
fi
echo "compiled-plan warm start verified: zero first-sight tunes"

# The plan-cache hit/miss counters must agree with the warm-start check
# the exit code just enforced: a warm process answers every lookup from
# the loaded cache — zero misses, nonzero hits.
if ! grep -q '"plan_cache_misses": 0' build/graph_warm.json; then
  echo "FAIL: warm run reported plan-cache misses (counters disagree with --require-warm)" >&2
  exit 6
fi
if ! grep -Eq '"plan_cache_hits": [1-9]' build/graph_warm.json; then
  echo "FAIL: warm run reported zero plan-cache hits" >&2
  exit 6
fi
echo "plan-cache counters consistent: warm run all hits, zero misses"
