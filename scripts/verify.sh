#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Single entry point shared by developers and CI.
#
# The build turns warnings into errors for the kernel (src/gemm), layer
# (src/nn), tuning (src/tune), graph-compiler (src/graph), serving
# (src/serve) and observability (src/obs) subsystems. The
# convolution backend sweep records the perf trajectory of the hottest
# path — forward AND backward, per-image and batched — into
# BENCH_conv_backends.json at the repo root (diff it PR over PR), then a
# second run proves the persisted plan cache warm-starts: zero first-sight
# tunes, enforced by the bench's exit code. The graph bench additionally
# runs the static IR verifier over every compiled model (--validate,
# exit 7 = an optimization pass or the arena planner broke an invariant).
#
# Correctness-tooling lanes (each replaces the default run):
#   --sanitize=asan   rebuild with ASan+UBSan, run the full test suite
#   --sanitize=tsan   rebuild with TSan, run the concurrency-heavy suites
#   --wthread-safety  clang -Wthread-safety -Werror over the annotated
#                     concurrency tier (skips loudly if clang is absent)
#   --lint            clang-tidy via scripts/lint.sh (skips loudly if
#                     clang-tidy is absent)
# The multi-rank scaling smoke (bench_fig6_strong --json) runs real
# hybrid-training cases with rank-aware tracing, the flight recorder and
# straggler analytics on, and ships BENCH_scaling.json; the bench's own
# gate (exit 11) asserts nonzero wire bytes on every multi-rank case,
# compression ratio < 1 under the lossy codec, and merged-trace spans
# from at least two rank lanes.
# Exit codes: 1 timing-noise warning (non-fatal), 3 cold warm-start,
# 4 residual capture regression, 5 missing trace spans, 6 counter
# inconsistency, 7 graph validation failure, 8 sanitizer lane failure,
# 10 work-stealing scheduler speedup regression (wide-level models at
# 4 workers below 1.5x over 1 worker on a >=4-core machine),
# 11 scaling observability gate failure (see bench/scaling_common.hpp),
# 12 SIMD kernel gate failure (bench_simd: AVX2 below 1.2x over scalar
# on the 1024-class shapes, PF15_SIMD=off not reaching the scalar tier,
# or the scalar tier drifting from the pre-dispatch GEMM bit pattern;
# self-skips loudly on non-AVX2 machines).
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

sanitize=""
for arg in "$@"; do
  case "$arg" in
    --sanitize=asan|--sanitize=tsan) sanitize="${arg#--sanitize=}" ;;
    --wthread-safety)
      # Tentpole lane: the annotated locking discipline (src/common/
      # thread_annotations.hpp) is only machine-checked by clang's
      # -Wthread-safety analysis; gcc compiles the annotations to
      # nothing. Build the library alone — the analysis is per-TU, the
      # tests add nothing.
      if ! command -v clang++ >/dev/null 2>&1; then
        echo "NOTE: clang++ not installed — the -Wthread-safety lane did NOT run." >&2
        echo "NOTE: the annotations compile to no-ops under gcc; install clang to check them." >&2
        exit 0
      fi
      cmake -B build-wts -S . -DCMAKE_CXX_COMPILER=clang++ \
            -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety"
      cmake --build build-wts -j"$jobs" --target pf15
      echo "clang -Wthread-safety -Werror: clean"
      exit 0
      ;;
    --lint)
      exec scripts/lint.sh
      ;;
    *)
      echo "usage: $0 [--sanitize=asan|tsan] [--wthread-safety] [--lint]" >&2
      exit 2
      ;;
  esac
done

if [ -n "$sanitize" ]; then
  # Sanitizer lanes build into their own trees (the flags poison every
  # object) and gate on a runtime probe first: a container with the
  # compiler but not the sanitizer runtimes skips loudly instead of
  # failing on a missing libasan/libtsan.
  case "$sanitize" in
    asan) san_cfg=address ;;
    tsan) san_cfg=thread ;;
  esac
  probe_dir="$(mktemp -d)"
  trap 'rm -rf "$probe_dir"' EXIT
  echo 'int main() { return 0; }' > "$probe_dir/probe.cpp"
  san_flag="-fsanitize=$([ "$san_cfg" = address ] && echo address,undefined || echo thread)"
  if ! c++ $san_flag "$probe_dir/probe.cpp" -o "$probe_dir/probe" 2>/dev/null \
      || ! "$probe_dir/probe"; then
    echo "NOTE: toolchain cannot build+run $san_flag — the $sanitize lane did NOT run." >&2
    exit 0
  fi
  build_dir="build-$sanitize"
  cmake -B "$build_dir" -S . -DPF15_SANITIZE="$san_cfg" -DPF15_WERROR=ON
  cmake --build "$build_dir" -j"$jobs"
  if [ "$sanitize" = asan ]; then
    # Everything runs under ASan+UBSan; halt_on_error is the ASan
    # default and UBSan is built no-recover, so any finding fails ctest.
    (cd "$build_dir" && \
     ASAN_OPTIONS=detect_leaks=1 ctest --output-on-failure -j"$jobs") \
        || { echo "FAIL: ASan/UBSan lane found problems" >&2; exit 8; }
  else
    # TSan at ~5-15x slowdown: run the concurrency-heavy suites — the
    # serving stack, observability, the work-stealing scheduler, the
    # parallel graph executor, hybrid parallelism, comm, the parameter
    # server — and the dispatched kernel tier (its cpuid probe and
    # kernel tables are lazily-initialized shared state).
    (cd "$build_dir" && \
     TSAN_OPTIONS=halt_on_error=1 ctest --output-on-failure -j"$jobs" -R \
        'test_(serve|obs|obs_distributed|common|task_scheduler|graph|graph_validate|hybrid|comm|ps|conv_backend|simd)$') \
        || { echo "FAIL: TSan lane found problems" >&2; exit 8; }
  fi
  echo "$sanitize lane clean: zero findings"
  exit 0
fi
cmake -B build -S . -DPF15_WERROR=ON
cmake --build build -j"$jobs"
(cd build && ctest --output-on-failure -j"$jobs")

# SIMD kernel gate (exit 12), three assertions in two processes:
#   1. the runtime-dispatched AVX2 tier beats the scalar tier >= 1.2x on
#      the 1024-class GEMM shapes (skips loudly, exit 0, without AVX2);
#   2. PF15_SIMD=off really resolves the dispatch to the scalar tier;
#   3. that scalar tier reproduces the pre-dispatch packed GEMM bit for
#      bit (the --check-bitexact frozen replica inside bench_simd).
# The sweep ships BENCH_simd.json so the GFLOP/s trajectory is diffable.
./build/bench_simd --gate --json BENCH_simd.json \
    || { echo "FAIL: SIMD kernel gate (see bench_simd output above)" >&2; exit 12; }
PF15_SIMD=off ./build/bench_simd --expect-level=scalar --check-bitexact \
    || { echo "FAIL: PF15_SIMD=off compatibility gate" >&2; exit 12; }
echo "SIMD kernel gate passed: dispatch, speedup and scalar bit-exactness verified"

# Perf record, not a gate: exit 1 means the timing-dependent acceptance
# check (autotune beat im2col somewhere) didn't hold on this machine —
# warn, keep the record. Any other failure (crash, bad usage) still fails.
plan_cache="build/conv_plans.json"
rm -f "$plan_cache"
rc=0
./build/bench_conv_backends --json BENCH_conv_backends.json --batch 8 \
    --cache "$plan_cache" || rc=$?
if [ "$rc" -eq 1 ]; then
  echo "WARNING: bench_conv_backends perf acceptance not met on this machine (timing noise?)" >&2
elif [ "$rc" -ne 0 ]; then
  exit "$rc"
fi

# Warm-start acceptance: a fresh process with the saved plan cache must
# answer every plan request without tuning (exit 3 if anything re-tuned;
# exit 1 is the same timing-noise warning as above and stays non-fatal).
rc=0
./build/bench_conv_backends --json /dev/null --no-sweep --require-warm \
    --cache "$plan_cache" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
  echo "FAIL: plan cache did not warm-start a fresh process" >&2
  exit "$rc"
fi
echo "plan cache warm start verified: zero first-sight tunes"

# Graph compiler acceptance, in two processes. The first run is a fast
# structural pass (--plans-only) that tunes every conv geometry cold and
# seeds the cache file. The *timed* run — the one whose record ships as
# BENCH_graph_compile.json — then starts from that cache with
# --require-warm: its JSON records warm_start:true and pretune_misses 0
# on every model (the shipped record used to be the cold pass, which
# logged every plan as a first-sight miss). Exit 1 = timing-noise
# warning; exit 10 = the work-stealing threads-sweep gate (wide-level
# speedup at 4 workers regressed below 1.5x on a >=4-core machine).
# PF15_CONV_PLAN_CACHE=off keeps the runs hermetic: only the explicit
# --cache path feeds the later processes.
# The timed run is traced (--trace): the bench re-parses its own trace
# and exits 5 if the per-level executor spans are missing; the grep below
# re-asserts it from the outside so a silently empty file also fails.
graph_cache="build/graph_plans.json"
graph_trace="build/graph_trace.json"
rm -f "$graph_cache" "$graph_trace"
rc=0
PF15_CONV_PLAN_CACHE=off ./build/bench_graph_compile \
    --batch 8 --plans-only --cache "$graph_cache" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
  echo "FAIL: cold plan-seeding pass failed" >&2
  exit "$rc"
fi
echo "conv plans seeded cold into $graph_cache"
rc=0
PF15_CONV_PLAN_CACHE=off ./build/bench_graph_compile \
    --json BENCH_graph_compile.json --batch 8 --cache "$graph_cache" \
    --require-warm --trace "$graph_trace" --validate || rc=$?
if [ "$rc" -eq 1 ]; then
  echo "WARNING: bench_graph_compile perf acceptance not met on this machine (timing noise?)" >&2
elif [ "$rc" -eq 7 ]; then
  echo "FAIL: static graph verifier found broken IR invariants (see diagnostics above)" >&2
  exit 7
elif [ "$rc" -eq 10 ]; then
  echo "FAIL: work-stealing scheduler speedup regressed (threads-sweep gate)" >&2
  exit 10
elif [ "$rc" -ne 0 ]; then
  exit "$rc"
fi
echo "static graph verifier: every compiled model validated clean"
# The shipped record must be the warm pass it claims to be.
if ! grep -q '"warm_start": true' BENCH_graph_compile.json; then
  echo "FAIL: shipped BENCH_graph_compile.json is not a warm-start record" >&2
  exit 6
fi
if grep -Eq '"pretune_misses": *[1-9]' BENCH_graph_compile.json; then
  echo "FAIL: shipped record logged first-sight tunes despite the warm cache" >&2
  exit 6
fi
echo "shipped graph record is warm: warm_start true, zero pretune misses"
if ! grep -Eq '"name":"level[0-9]+","cat":"graph"' "$graph_trace"; then
  echo "FAIL: trace $graph_trace is missing per-level executor spans" >&2
  exit 5
fi
echo "span tracer verified: per-level executor spans present in $graph_trace"

# Residual sub-graph capture regression guard: the ResNet-HEP row must
# show BN folds and fusions *inside* residual blocks. A silent fallback
# to opaque capture (where no pass can fire) zeroes these totals — fail
# hard, this is a correctness property of capture, not a timing.
for key in residual_folded_batchnorms_total residual_fused_activations_total \
           fused_joins_total; do
  if ! grep -Eq "\"$key\": *[1-9]" BENCH_graph_compile.json; then
    echo "FAIL: graph compiler fell back to opaque residual capture ($key zero or missing)" >&2
    exit 4
  fi
done
echo "residual sub-graph capture verified: passes fire inside residual blocks"
rc=0
PF15_CONV_PLAN_CACHE=off ./build/bench_graph_compile \
    --json build/graph_warm.json \
    --batch 8 --plans-only --require-warm --cache "$graph_cache" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
  echo "FAIL: compiled plans did not start warm in a fresh process" >&2
  exit "$rc"
fi
echo "compiled-plan warm start verified: zero first-sight tunes"

# The plan-cache hit/miss counters must agree with the warm-start check
# the exit code just enforced: a warm process answers every lookup from
# the loaded cache — zero misses, nonzero hits.
if ! grep -q '"plan_cache_misses": 0' build/graph_warm.json; then
  echo "FAIL: warm run reported plan-cache misses (counters disagree with --require-warm)" >&2
  exit 6
fi
if ! grep -Eq '"plan_cache_hits": [1-9]' build/graph_warm.json; then
  echo "FAIL: warm run reported zero plan-cache hits" >&2
  exit 6
fi
echo "plan-cache counters consistent: warm run all hits, zero misses"

# Distributed-observability gate: a real multi-rank hybrid run (up to
# 4 workers x 2 groups + the PS tier) with rank-aware tracing, the
# per-iteration flight recorder and straggler analytics on. The bench
# self-checks (exit 11): every multi-rank case moves wire bytes, the
# lossy codec lands compression ratio < 1, and the merged trace carries
# compute and allreduce spans from at least two rank lanes.
scaling_trace_dir="build/scaling_trace"
rm -rf "$scaling_trace_dir"
mkdir -p "$scaling_trace_dir"
rc=0
./build/bench_fig6_strong --json=BENCH_scaling.json \
    --trace-dir="$scaling_trace_dir" --codec=fp16 || rc=$?
if [ "$rc" -eq 11 ]; then
  echo "FAIL: scaling observability gate (wire bytes / compression / trace lanes)" >&2
  exit 11
elif [ "$rc" -ne 0 ]; then
  exit "$rc"
fi
# Re-assert the shipped record from the outside so a silently truncated
# file also fails: the straggler rollup and a sub-1.0 measured
# compression ratio must have made it into BENCH_scaling.json, and the
# merged trace must exist where the record points.
if ! grep -q '"straggler"' BENCH_scaling.json; then
  echo "FAIL: BENCH_scaling.json is missing the straggler rollup" >&2
  exit 11
fi
if ! grep -Eq '"compression_ratio": 0\.[0-9]+' BENCH_scaling.json; then
  echo "FAIL: BENCH_scaling.json shows no sub-1.0 measured compression ratio" >&2
  exit 11
fi
if [ ! -s "$scaling_trace_dir/merged_trace.json" ]; then
  echo "FAIL: merged multi-rank trace was not written" >&2
  exit 11
fi
echo "distributed observability verified: multi-rank flight records, straggler rollup, merged rank-lane trace"
