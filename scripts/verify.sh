#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Single entry point shared by developers and CI.
#
# The build turns warnings into errors for the kernel (src/gemm) and layer
# (src/nn) subsystems, and the convolution backend sweep records the perf
# trajectory of the hottest path into BENCH_conv_backends.json at the repo
# root (diff it PR over PR).
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
cmake -B build -S . -DPF15_WERROR=ON
cmake --build build -j"$jobs"
(cd build && ctest --output-on-failure -j"$jobs")

# Perf record, not a gate: exit 1 means the timing-dependent acceptance
# check (autotune beat im2col somewhere) didn't hold on this machine —
# warn, keep the record. Any other failure (crash, bad usage) still fails.
rc=0
./build/bench_conv_backends --json BENCH_conv_backends.json || rc=$?
if [ "$rc" -eq 1 ]; then
  echo "WARNING: bench_conv_backends perf acceptance not met on this machine (timing noise?)" >&2
elif [ "$rc" -ne 0 ]; then
  exit "$rc"
fi
