#!/usr/bin/env bash
# clang-tidy lane (scripts/verify.sh --lint): runs the checks pinned in
# .clang-tidy over every first-party translation unit via the compile
# database, treating every warning as an error (WarningsAsErrors: '*').
# Skips loudly — exit 0 with a NOTE — when clang-tidy is not installed:
# gcc-only containers still run the tier-1 suite and sanitizer lanes,
# and a missing linter must never masquerade as a clean lint.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "NOTE: clang-tidy not installed — the lint lane did NOT run." >&2
  echo "NOTE: install clang-tidy and re-run scripts/lint.sh to lint." >&2
  exit 0
fi

jobs="$(nproc 2>/dev/null || echo 2)"

# The compile database is exported unconditionally by CMakeLists.txt;
# (re)configure if this tree has never been built.
if [ ! -f build/compile_commands.json ]; then
  cmake -B build -S . >/dev/null
fi

# run-clang-tidy parallelizes across TUs when available; otherwise fall
# back to a serial loop over the first-party sources in the database.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p build -j "$jobs" -quiet \
      "$(pwd)/(src|tests|bench|examples)/.*\.cpp$"
else
  mapfile -t sources < <(grep -o '"file": *"[^"]*"' build/compile_commands.json \
      | sed 's/.*"file": *"//; s/"$//' \
      | grep -E "^$(pwd)/(src|tests|bench|examples)/" | sort -u)
  echo "linting ${#sources[@]} translation units (serial clang-tidy)"
  fail=0
  for f in "${sources[@]}"; do
    clang-tidy -p build -quiet "$f" || fail=1
  done
  [ "$fail" -eq 0 ] || { echo "FAIL: clang-tidy reported problems" >&2; exit 9; }
fi
echo "lint lane clean: zero clang-tidy findings"
