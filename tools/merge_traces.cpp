// pf15_merge_traces — align and merge per-rank chrome://tracing files.
//
// Each input is a per-rank trace document (the shape obs::trace_dump_rank
// writes, or a real one-process-per-rank run's flush plus its "pf15"
// {rank, group, clock_offset_us} block). The output is one timeline:
// spans shifted onto rank 0's clock by the recorded offsets, one pid
// lane per rank, sorted by aligned timestamp — load it straight into
// chrome://tracing or Perfetto.
//
// Usage: pf15_merge_traces OUT.json RANK0.json RANK1.json [...]
#include <cstdio>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "obs/trace_merge.hpp"

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s OUT.json RANK0.json RANK1.json [...]\n",
                 argv[0]);
    return 2;
  }
  const std::string out_path = argv[1];
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) inputs.emplace_back(argv[i]);
  try {
    const pf15::perf::Json merged =
        pf15::obs::merge_trace_files(inputs);
    merged.write_file(out_path, /*indent=*/0);
    const pf15::perf::Json& summary = merged.get("pf15");
    std::printf("%s: %d ranks, %d events\n", out_path.c_str(),
                static_cast<int>(summary.get("ranks").size()),
                static_cast<int>(summary.get("events").as_number()));
  } catch (const pf15::Error& e) {
    std::fprintf(stderr, "pf15_merge_traces: %s\n", e.what());
    return 1;
  }
  return 0;
}
