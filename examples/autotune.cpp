// Hyper-parameter autotuning (§VIII-B): the paper argues scientists should
// not hand-tune learning rates and momenta, citing Spearmint [49] and
// principled momentum tuning [48]. This example shows both levels on the
// real HEP training loop:
//   1. successive-halving search over (learning rate, momentum, batch) —
//      many cheap short runs racing, survivors trained longer;
//   2. YellowFin closing the loop online: no search at all, momentum and
//      learning rate are derived from running gradient statistics.
// Level 0 goes below the training loop: the convolution backend registry
// (im2col / Winograd / FFT / direct) exposed as a tune::Space, searched
// with the same machinery, and compared against the plan cache's pick.
#include <cstdio>
#include <vector>

#include "data/hep_generator.hpp"
#include "data/loader.hpp"
#include "gemm/conv_backend.hpp"
#include "hybrid/trainable.hpp"
#include "solver/solver.hpp"
#include "tune/conv_space.hpp"
#include "tune/search.hpp"
#include "tune/yellowfin.hpp"

using namespace pf15;

namespace {

/// Trains the tiny HEP net for `iters` iterations with the given
/// hyper-parameters and returns the mean loss of the final quarter.
double train_loss(double lr, double momentum, std::size_t batch,
                  std::size_t iters) {
  data::HepGeneratorConfig gen_cfg;
  gen_cfg.image = 32;
  data::HepGenerator gen(gen_cfg, /*stream=*/7);
  hybrid::HepTrainable model(nn::HepConfig::tiny());
  solver::SgdSolver sgd(model.params(), lr, momentum);

  double tail = 0.0;
  std::size_t tail_n = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    std::vector<data::Sample> ss;
    std::vector<const data::Sample*> ptrs;
    for (std::size_t k = 0; k < batch; ++k) {
      const auto ev = gen.generate(k % 2 == 0);
      ss.push_back({ev.image.clone(), ev.label, true, {}});
    }
    for (const auto& s : ss) ptrs.push_back(&s);
    const double loss = model.train_step(data::make_batch(ptrs));
    sgd.step();
    if (i >= (3 * iters) / 4) {
      tail += loss;
      ++tail_n;
    }
  }
  return tail / static_cast<double>(tail_n);
}

}  // namespace

int main() {
  // ---- Level 0: convolution-backend autotuning --------------------------
  // The kernel the training loop spends its time in is itself a tuning
  // problem. grid_search over the backend space IS the plan-cache
  // micro-benchmark, just driven through the generic searcher.
  {
    gemm::ConvProblem p;  // the HEP nets' 3x3/1 conv at pooled resolution
    p.geom.in_c = 128;
    p.geom.in_h = p.geom.in_w = 28;
    p.geom.kernel_h = p.geom.kernel_w = 3;
    p.geom.stride_h = p.geom.stride_w = 1;
    p.geom.pad_h = p.geom.pad_w = 1;
    p.out_c = 128;

    std::printf("tuning convolution backend for 128x128 3x3 @ 28x28...\n");
    gemm::AutotuneOptions opt;
    opt.reps = 2;
    const auto space = tune::conv_backend_space(p, opt);
    const auto result = tune::grid_search(
        space, tune::conv_backend_objective(p, opt), /*per_dim=*/1);
    for (const auto& trial : result.trials) {
      std::printf("  %-8s %10.1f us/img\n",
                  gemm::to_string(tune::decode_backend(trial.config)),
                  trial.loss);
    }
    // Same AutotuneOptions as the grid search, so the two winners differ
    // only if the timings themselves do — not the measurement config.
    gemm::ConvPlanCache cache(opt);
    const auto plan = cache.plan(p);
    std::printf("grid search winner: %s; plan cache winner: %s "
                "(%.2fx vs im2col)\n",
                gemm::to_string(tune::decode_backend(result.best.config)),
                gemm::to_string(plan.kind),
                plan.best_us > 0 ? plan.im2col_us / plan.best_us : 0.0);
    // Training tunes the two backward phases independently — the best
    // forward backend is routinely not the best gradient backend.
    for (const auto phase : {gemm::ConvPhase::kBackwardData,
                             gemm::ConvPhase::kBackwardFilter}) {
      const auto bwd = cache.plan(p, phase);
      std::printf("%-16s winner: %s (%.2fx vs im2col adjoint)\n",
                  gemm::to_string(phase), gemm::to_string(bwd.kind),
                  bwd.best_us > 0 ? bwd.im2col_us / bwd.best_us : 0.0);
    }
    std::printf("\n");
  }

  // ---- Level 1: successive halving over the search space ----------------
  tune::Space space;
  space.add(tune::Dimension::log("lr", 1e-4, 1e-1));
  space.add(tune::Dimension::linear("momentum", 0.0, 0.95));
  space.add(tune::Dimension::discrete("batch", {4, 8, 16}));

  tune::HalvingConfig halving;
  halving.initial_arms = 8;
  halving.initial_budget = 6;  // iterations for the first rung
  halving.seed = 3;

  std::printf("searching %zu-dimensional space with successive halving...\n",
              space.size());
  const auto result = tune::successive_halving(
      space,
      [](const tune::Config& c, std::size_t budget) {
        return train_loss(c.at("lr"), c.at("momentum"),
                          static_cast<std::size_t>(c.at("batch")), budget);
      },
      halving);

  std::printf("evaluated %zu trials, total budget %zu iterations\n",
              result.trials.size(), result.total_budget);
  std::printf("best: lr=%.2e momentum=%.2f batch=%zu -> loss %.4f\n\n",
              result.best.config.at("lr"), result.best.config.at("momentum"),
              static_cast<std::size_t>(result.best.config.at("batch")),
              result.best.loss);

  // ---- Level 2: YellowFin, no search -------------------------------------
  data::HepGeneratorConfig gen_cfg;
  gen_cfg.image = 32;
  data::HepGenerator gen(gen_cfg, 9);
  hybrid::HepTrainable model(nn::HepConfig::tiny());
  std::size_t dim = 0;
  for (auto& p : model.params()) dim += p.value->numel();

  tune::YellowFinOptions yf_opt;
  yf_opt.beta = 0.99;
  yf_opt.learning_rate_init = 1e-3;
  tune::YellowFin yf(dim, yf_opt);
  solver::SgdSolver sgd(model.params(), yf_opt.learning_rate_init, 0.0);

  std::vector<float> flat(dim);
  std::printf("YellowFin online tuning (momentum and lr from gradient "
              "statistics):\n");
  for (int i = 0; i < 48; ++i) {
    std::vector<data::Sample> ss;
    std::vector<const data::Sample*> ptrs;
    for (int k = 0; k < 8; ++k) {
      const auto ev = gen.generate(k % 2 == 0);
      ss.push_back({ev.image.clone(), ev.label, true, {}});
    }
    for (const auto& s : ss) ptrs.push_back(&s);
    const double loss = model.train_step(data::make_batch(ptrs));

    std::size_t off = 0;
    for (auto& p : model.params()) {
      const float* g = p.grad->data();
      std::copy(g, g + p.grad->numel(), flat.begin() + off);
      off += p.grad->numel();
    }
    yf.observe(flat);
    sgd.set_learning_rate(yf.learning_rate());
    sgd.set_momentum(yf.momentum());
    sgd.step();

    if (i % 8 == 7) {
      std::printf("  iter %2d  loss %.4f  lr %.3e  momentum %.3f\n", i + 1,
                  loss, yf.learning_rate(), yf.momentum());
    }
  }
  std::printf("\nThe hybrid trainer composes this with the asynchrony "
              "correction of [31]:\n"
              "explicit momentum = tuned_momentum_for_groups(target, "
              "groups).\n");
  return 0;
}
