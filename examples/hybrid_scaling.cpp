// Hybrid distributed training example (§III-E): spin up an in-process
// cluster, train one model with N compute groups + per-layer parameter
// servers, and report throughput, loss, and staleness — the same machinery
// the paper runs at 9600 nodes, exercised for real at laptop scale.
#include <cstdio>
#include <cstring>
#include <memory>

#include "data/hep_generator.hpp"
#include "data/loader.hpp"
#include "hybrid/hybrid_trainer.hpp"

int main(int argc, char** argv) {
  using namespace pf15;

  int workers = 4;
  int groups = 2;
  std::size_t iterations = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--groups=", 9) == 0) {
      groups = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iterations = std::strtoul(argv[i] + 8, nullptr, 10);
    }
  }

  data::HepGeneratorConfig gen_cfg;
  gen_cfg.image = 32;

  hybrid::HybridConfig cfg;
  cfg.num_workers = workers;
  cfg.num_groups = groups;
  cfg.iterations = iterations;
  cfg.solver = hybrid::SolverKind::kSgd;
  cfg.learning_rate = 5e-3;
  cfg.momentum = 0.9;      // target effective momentum...
  cfg.tune_momentum = true;  // ...re-tuned for the group count ([31])

  hybrid::HybridTrainer trainer(
      cfg,
      [] {
        nn::HepConfig net_cfg = nn::HepConfig::tiny();
        net_cfg.filters = 8;
        return std::make_unique<hybrid::HepTrainable>(net_cfg);
      },
      [gen_cfg](int rank, std::size_t iter) {
        data::HepGenerator gen(
            gen_cfg, static_cast<std::uint64_t>(rank) * 4099 + iter);
        std::vector<data::Sample> ss;
        std::vector<const data::Sample*> ptrs;
        for (int k = 0; k < 4; ++k) {
          const auto ev = gen.generate(k % 2 == 0);
          ss.push_back({ev.image.clone(), ev.label, true, {}});
        }
        for (const auto& s : ss) ptrs.push_back(&s);
        return data::make_batch(ptrs);
      });

  std::printf(
      "hybrid run: %d workers in %d group(s)%s, %d total ranks\n",
      workers, groups,
      groups > 1 ? " + one PS per trainable layer" : " (pure sync)",
      trainer.total_ranks());

  const hybrid::TrainResult result = trainer.run();

  std::printf("\n%-6s %-5s %-9s %-9s %-9s\n", "group", "iter", "wall[s]",
              "loss", "staleness");
  for (const auto& r : result.records) {
    std::printf("%-6d %-5zu %-9.3f %-9.4f %-9llu\n", r.group, r.iteration,
                r.wall_time, r.loss,
                static_cast<unsigned long long>(r.max_staleness));
  }
  if (result.staleness.updates > 0) {
    std::printf(
        "\nPS staleness: %llu updates, mean %.2f, max %llu "
        "(histogram bins: %zu)\n",
        static_cast<unsigned long long>(result.staleness.updates),
        result.staleness.mean(),
        static_cast<unsigned long long>(result.staleness.max_staleness),
        result.staleness.histogram.size());
  } else {
    std::printf("\nsynchronous run: no parameter servers, staleness 0\n");
  }
  return 0;
}
