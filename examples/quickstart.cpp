// Quickstart: build the HEP CNN, train it on synthetic events, evaluate,
// and checkpoint — the five-minute tour of the pf15 public API.
#include <cstdio>
#include <fstream>

#include "data/hep_generator.hpp"
#include "data/loader.hpp"
#include "hybrid/trainable.hpp"
#include "solver/solver.hpp"

int main() {
  using namespace pf15;

  // 1. A synthetic HEP event stream (Pythia+Delphes stand-in).
  data::HepGeneratorConfig gen_cfg;
  gen_cfg.image = 32;  // scaled down from the paper's 224 for speed
  data::HepGenerator generator(gen_cfg);

  // 2. The paper's supervised architecture (§III-A), reduced size.
  nn::HepConfig net_cfg = nn::HepConfig::tiny();
  net_cfg.filters = 8;
  hybrid::HepTrainable model(net_cfg);
  std::printf("HEP network: %zu parameters (%.2f KiB)\n",
              model.net().param_count(),
              static_cast<double>(model.net().param_bytes()) / 1024.0);

  // 3. ADAM solver, as in the paper.
  solver::AdamSolver solver(model.params(), 2e-3);

  // 4. Train for a handful of iterations.
  const std::size_t batch_size = 8;
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<data::Sample> samples;
    std::vector<const data::Sample*> ptrs;
    for (std::size_t k = 0; k < batch_size; ++k) {
      const auto ev = generator.generate(k % 2 == 0);
      samples.push_back({ev.image.clone(), ev.label, true, {}});
    }
    for (const auto& s : samples) ptrs.push_back(&s);
    const double loss = model.train_step(data::make_batch(ptrs));
    solver.step();
    if (iter % 10 == 0) std::printf("iter %3d  loss %.4f\n", iter, loss);
  }

  // 5. Evaluate on held-out events.
  data::HepGenerator test_gen(gen_cfg, /*stream=*/1);
  int correct = 0;
  const int n_test = 64;
  for (int i = 0; i < n_test; ++i) {
    const auto ev = test_gen.generate(i % 2 == 0);
    data::Sample s{ev.image.clone(), ev.label, true, {}};
    const Tensor& logits =
        model.net().forward(data::make_batch({&s}).images);
    const int pred = logits.at(1) > logits.at(0) ? 1 : 0;
    if (pred == ev.label) ++correct;
  }
  std::printf("held-out accuracy: %d/%d = %.1f%%\n", correct, n_test,
              100.0 * correct / n_test);

  // 6. Checkpoint the model.
  std::ofstream ckpt("quickstart_model.bin", std::ios::binary);
  model.net().save_params(ckpt);
  std::printf("saved quickstart_model.bin\n");
  return 0;
}
