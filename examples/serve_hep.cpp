// Train -> checkpoint -> serve, end to end.
//
// Trains the tiny HEP classifier for a few hundred iterations, writes a
// versioned checkpoint carrying the tuned conv plans, reloads it into a
// ServingEngine, and answers 1000+ concurrent single-sample requests
// through the dynamic batcher. Every response is cross-checked against
// unbatched single-sample inference on a reference model restored from
// the same checkpoint — the serving path must not change the math it
// serves (1e-4 relative budget: under kAuto dispatch, batched and
// single-sample inference may legitimately run different tuned backends).
//
// --compiled serves through graph::CompiledPlans (eval no-ops stripped,
// activations fused into conv epilogues, static activation arena,
// pre-tuned plans); --eager (default) uses Sequential::forward.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "data/hep_generator.hpp"
#include "gemm/conv_backend.hpp"
#include "graph/compiled_plan.hpp"
#include "hybrid/trainable.hpp"
#include "obs/metrics.hpp"
#include "perf/report.hpp"
#include "serve/checkpoint.hpp"
#include "serve/engine.hpp"
#include "solver/solver.hpp"

int main(int argc, char** argv) {
  using namespace pf15;

  bool compiled = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compiled") == 0) {
      compiled = true;
    } else if (std::strcmp(argv[i], "--eager") == 0) {
      compiled = false;
    } else {
      std::fprintf(stderr, "usage: %s [--compiled | --eager]\n", argv[0]);
      return 2;
    }
  }

  // --- 1. Train briefly -------------------------------------------------
  nn::HepConfig net_cfg = nn::HepConfig::tiny();
  net_cfg.filters = 8;
  hybrid::HepTrainable model(net_cfg);
  solver::AdamSolver adam(model.params(), 2e-3);

  data::HepGeneratorConfig gen_cfg;
  gen_cfg.image = 32;
  data::HepGenerator train_gen(gen_cfg, 1);
  std::printf("training tiny HEP classifier...\n");
  for (int iter = 0; iter < 150; ++iter) {
    std::vector<data::Sample> ss;
    std::vector<const data::Sample*> ptrs;
    for (int k = 0; k < 16; ++k) {
      const auto ev = train_gen.generate(k % 2 == 0);
      ss.push_back({ev.image.clone(), ev.label, true, {}});
    }
    for (const auto& s : ss) ptrs.push_back(&s);
    const double loss = model.train_step(data::make_batch(ptrs));
    adam.step();
    if (iter % 50 == 0) std::printf("  iter %3d  loss %.4f\n", iter, loss);
  }

  // --- 2. Checkpoint (weights + every conv plan tuned so far) -----------
  const std::string ckpt = "serve_hep_ckpt.bin";
  serve::checkpoint_model_file_with_plans(ckpt, model.net(), "hep",
                                          gemm::ConvPlanCache::global());
  const auto meta = serve::read_checkpoint_meta_file(ckpt);
  std::printf("checkpoint written: %s (kind \"%s\", format v%u)\n",
              ckpt.c_str(), meta.model_kind.c_str(), meta.version);

  // --- 3. Reload into a ServingEngine -----------------------------------
  auto factory = [&] { return nn::build_hep_network(net_cfg); };
  serve::EngineConfig eng_cfg;
  eng_cfg.replicas = 2;
  eng_cfg.sample_shape = Shape{3, 32, 32};
  eng_cfg.batcher.max_batch = 16;
  eng_cfg.batcher.max_wait_us = 500;
  eng_cfg.batcher.queue_capacity = 512;
  eng_cfg.compiled = compiled;
  serve::ServingEngine engine(factory, ckpt, "hep", eng_cfg);
  std::printf("serving mode: %s\n", compiled ? "compiled" : "eager");
  if (const graph::CompileReport* report = engine.compile_report()) {
    std::printf("compiled plan: %zu ops (from %zu), %zu activations "
                "fused, arena %zu B vs eager %zu B, %zu plans pre-tuned "
                "(%zu cold)\n",
                report->compiled_ops, report->captured_ops,
                report->passes.fused_activations,
                report->arena_floats_per_sample * sizeof(float),
                report->eager_floats_per_sample * sizeof(float),
                report->pretuned_plans, report->pretune_misses);
  }

  // Reference for correctness: same checkpoint, unbatched inference.
  nn::Sequential reference = factory();
  serve::restore_model_file(ckpt, reference, "hep");
  reference.set_training(false);

  // --- 4. Synthetic concurrent traffic ----------------------------------
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 128;  // 1024 requests total
  std::printf("serving %d concurrent single-sample requests (%d producers, "
              "%zu replicas)...\n",
              kProducers * kPerProducer, kProducers, engine.replica_count());

  std::mutex mutex;
  std::vector<std::pair<Tensor, std::future<Tensor>>> inflight;
  inflight.reserve(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      data::HepGenerator gen(gen_cfg, 1000 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        Tensor sample = gen.generate(i % 2 == 0).image.clone();
        auto fut = engine.submit(sample);  // blocks under backpressure
        std::lock_guard<std::mutex> lock(mutex);
        inflight.emplace_back(std::move(sample), std::move(fut));
      }
    });
  }
  for (auto& t : producers) t.join();

  // --- 5. Verify batched == unbatched -----------------------------------
  double worst = 0.0;
  std::size_t signal = 0;
  for (auto& [sample, fut] : inflight) {
    Tensor got = fut.get();
    Tensor single = stack_samples({&sample});
    const Tensor& want = reference.forward(single);
    for (std::size_t j = 0; j < got.numel(); ++j) {
      const double rel =
          std::abs(static_cast<double>(got.at(j)) - want.at(j)) /
          (1.0 + std::abs(static_cast<double>(want.at(j))));
      worst = std::max(worst, rel);
    }
    if (got.at(1) > got.at(0)) ++signal;
  }
  const auto stats = engine.stats();
  engine.shutdown();

  std::printf("max rel |batched - unbatched| = %.2e (%s 1e-4 budget)\n",
              worst, worst <= 1e-4 ? "within" : "EXCEEDS");
  std::printf("classified signal: %zu / %zu\n", signal, inflight.size());

  perf::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(stats.requests)});
  table.add_row({"batched forwards", std::to_string(stats.batches)});
  table.add_row({"mean batch size", perf::Table::num(stats.mean_batch_size, 2)});
  table.add_row({"p50 latency (ms)", perf::Table::num(stats.latency.p50 * 1e3, 3)});
  table.add_row({"p90 latency (ms)", perf::Table::num(stats.latency.p90 * 1e3, 3)});
  table.add_row({"p99 latency (ms)", perf::Table::num(stats.latency.p99 * 1e3, 3)});
  table.add_row({"p999 latency (ms)", perf::Table::num(stats.latency.p999 * 1e3, 3)});
  table.add_row({"rejected", std::to_string(stats.rejected)});
  table.add_row({"throughput (req/s)", perf::Table::num(stats.throughput_rps, 1)});
  std::printf("\n%s\n", table.str().c_str());

  // What an operator would scrape: the same run through the registry
  // (serve counters, queue-wait/latency histograms, pool utilization).
  std::printf("metrics registry snapshot (JSON):\n%s\n",
              obs::MetricsRegistry::global().to_json().dump().c_str());

  std::remove(ckpt.c_str());
  return worst <= 1e-4 ? 0 : 1;
}
