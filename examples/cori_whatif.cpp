// What-if explorer for the Cori scaling simulator: evaluate any
// (nodes, groups, batch) configuration of either paper network and report
// iteration time, throughput, PFLOP/s, and speedup — the tool behind
// Figures 6/7 and the §VI-B3 headline numbers.
//
// Usage: cori_whatif [--net=hep|climate] [--nodes=N] [--groups=G]
//                    [--batch-per-node=B | --batch-per-group=B]
//                    [--iters=N] [--fail-node=K --fail-time=T]
#include <cstdio>
#include <cstring>
#include <string>

#include "simnet/scaling_sim.hpp"

int main(int argc, char** argv) {
  using namespace pf15;

  std::string net = "hep";
  simnet::ScalingConfig s;
  s.nodes = 1024;
  s.groups = 4;
  s.batch_per_node = 8;
  s.iterations = 50;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--net=", 6) == 0) net = a + 6;
    if (std::strncmp(a, "--nodes=", 8) == 0) s.nodes = std::atoi(a + 8);
    if (std::strncmp(a, "--groups=", 9) == 0) s.groups = std::atoi(a + 9);
    if (std::strncmp(a, "--batch-per-node=", 17) == 0) {
      s.batch_per_node = std::strtoul(a + 17, nullptr, 10);
      s.batch_per_group = 0;
    }
    if (std::strncmp(a, "--batch-per-group=", 18) == 0) {
      s.batch_per_group = std::strtoul(a + 18, nullptr, 10);
    }
    if (std::strncmp(a, "--iters=", 8) == 0) {
      s.iterations = std::strtoul(a + 8, nullptr, 10);
    }
    if (std::strncmp(a, "--fail-node=", 12) == 0) {
      s.fail_node = std::atoi(a + 12);
    }
    if (std::strncmp(a, "--fail-time=", 12) == 0) {
      s.fail_time = std::atof(a + 12);
    }
  }

  const simnet::WorkloadProfile w =
      net == "hep" ? simnet::hep_workload() : simnet::climate_workload();
  simnet::CoriConfig machine;

  std::printf("workload: %s — %.2f GFLOP/sample fwd+bwd, %.2f MiB model, "
              "%zu shards\n",
              net.c_str(),
              static_cast<double>(w.flops_per_sample) / 1e9,
              static_cast<double>(w.model_bytes()) / (1024.0 * 1024.0),
              w.shard_bytes.size());
  std::printf("config: %d nodes, %d group(s), batch %zu per %s, %zu "
              "iterations\n",
              s.nodes, s.groups,
              s.batch_per_group ? s.batch_per_group : s.batch_per_node,
              s.batch_per_group ? "group" : "node", s.iterations);

  const simnet::SimResult r = simnet::simulate_training(machine, w, s);
  bool any_halted = false;
  for (std::size_t g = 0; g < r.groups.size(); ++g) {
    if (r.groups[g].halted) {
      std::printf("group %zu HALTED by node failure after %zu "
                  "iterations\n",
                  g, r.groups[g].iterations_completed);
      any_halted = true;
    }
  }
  if (r.iteration_times.empty()) {
    std::printf("no iterations completed (all groups halted)\n");
    return 0;
  }
  const double speedup =
      simnet::speedup_vs_single_node(machine, w, s);
  std::printf("\nresults (simulated):\n");
  std::printf("  iteration time: min %.4fs mean %.4fs\n",
              r.min_iteration_time(), r.mean_iteration_time());
  std::printf("  throughput: %.0f images/s\n", r.throughput());
  std::printf("  flop rate: %.3f PFLOP/s\n",
              r.flops_rate(w.flops_per_sample) / 1e15);
  std::printf("  speedup vs 1 node: %.1fx%s\n", speedup,
              any_halted ? " (degraded by failure)" : "");
  std::printf("  events simulated: %llu\n",
              static_cast<unsigned long long>(r.events));
  return 0;
}
