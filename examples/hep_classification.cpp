// HEP pipeline example (§I-A, §VII-A): generate a background-dominated
// event sample, fit the cut-based physics benchmark, train the CNN, and
// compare both at the same false-positive-rate budget.
#include <cstdio>

#include "data/hep_baseline.hpp"
#include "data/hep_generator.hpp"
#include "data/loader.hpp"
#include "hybrid/trainable.hpp"
#include "solver/solver.hpp"

int main() {
  using namespace pf15;

  data::HepGeneratorConfig gen_cfg;
  gen_cfg.image = 32;
  gen_cfg.feature_smear = 0.5;

  // --- Cut-based benchmark on high-level features -----------------------
  data::HepGenerator fit_gen(gen_cfg, 0);
  std::vector<data::HepFeatures> features;
  std::vector<std::int32_t> labels;
  for (int i = 0; i < 3000; ++i) {
    const auto ev = fit_gen.generate(i % 8 == 0);
    features.push_back(ev.features);
    labels.push_back(ev.label);
  }
  const double fpr_budget = 0.005;
  data::CutBaseline baseline;
  baseline.fit(features, labels, fpr_budget);
  std::printf("cut selection: njet >= %d, HT >= %.0f GeV, sum M_J >= %.0f "
              "GeV\n",
              baseline.selection().min_njet, baseline.selection().min_ht,
              baseline.selection().min_mj_sum);

  // --- CNN on raw calorimeter images ------------------------------------
  nn::HepConfig net_cfg = nn::HepConfig::tiny();
  net_cfg.filters = 16;
  net_cfg.conv_units = 3;
  hybrid::HepTrainable model(net_cfg);
  solver::AdamSolver adam(model.params(), 2e-3);
  data::HepGenerator train_gen(gen_cfg, 1);
  for (int iter = 0; iter < 350; ++iter) {
    std::vector<data::Sample> ss;
    std::vector<const data::Sample*> ptrs;
    for (int k = 0; k < 16; ++k) {
      const auto ev = train_gen.generate(k % 2 == 0);
      ss.push_back({ev.image.clone(), ev.label, true, {}});
    }
    for (const auto& s : ss) ptrs.push_back(&s);
    const double loss = model.train_step(data::make_batch(ptrs));
    adam.step();
    if (iter % 70 == 0) std::printf("iter %3d  loss %.4f\n", iter, loss);
  }

  // --- Same-operating-point comparison ----------------------------------
  data::HepGenerator test_gen(gen_cfg, 2);
  std::vector<data::HepFeatures> test_features;
  std::vector<std::int32_t> test_labels;
  std::vector<float> cnn_scores;
  nn::SoftmaxCrossEntropy ce;
  Tensor probs;
  for (int i = 0; i < 2400; ++i) {
    const auto ev = test_gen.generate(i % 8 == 0);
    test_features.push_back(ev.features);
    test_labels.push_back(ev.label);
    data::Sample s{ev.image.clone(), ev.label, true, {}};
    ce.forward(model.net().forward(data::make_batch({&s}).images),
               {ev.label}, probs);
    cnn_scores.push_back(probs.at(1));
  }
  const auto cut = baseline.evaluate(test_features, test_labels);
  const auto cnn = data::tpr_at_fpr(cnn_scores, test_labels, fpr_budget);
  std::printf("\nat FPR budget %.2f%%:\n", 100.0 * fpr_budget);
  std::printf("  cut benchmark : TPR %.1f%% (FPR %.2f%%)\n",
              100.0 * cut.tpr, 100.0 * cut.fpr);
  std::printf("  CNN           : TPR %.1f%% (FPR %.2f%%)  -> %.2fx\n",
              100.0 * cnn.tpr, 100.0 * cnn.fpr,
              cnn.tpr / std::max(1e-9, cut.tpr));
  std::printf("(paper §VII-A: 42%% vs 72%% at FPR 0.02%% = 1.7x)\n");
  return 0;
}
