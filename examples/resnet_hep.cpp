// ResNet on the HEP task (§IX: "our results ... extend to other kinds of
// models such as ResNets"). Builds a small residual network with the
// pf15 layer set, trains it on the synthetic event stream, and compares
// it against the paper's plain CNN at equal parameter budget — then runs
// both through the hybrid trainer to show the distributed stack is
// model-agnostic.
#include <cstdio>
#include <memory>

#include "data/hep_generator.hpp"
#include "data/loader.hpp"
#include "hybrid/hybrid_trainer.hpp"
#include "nn/hep_model.hpp"
#include "nn/losses.hpp"
#include "nn/residual.hpp"
#include "solver/solver.hpp"

using namespace pf15;

namespace {

/// Adapts an arbitrary Sequential classifier to the hybrid trainer.
class SequentialTrainable final : public hybrid::TrainableModel {
 public:
  explicit SequentialTrainable(nn::Sequential net) : net_(std::move(net)) {}

  double train_step(const data::Batch& batch) override {
    const Tensor& logits = net_.forward(batch.images);
    const double loss =
        loss_.forward_backward(logits, batch.labels, probs_, dlogits_);
    net_.backward(batch.images, dlogits_);
    return loss;
  }

  std::vector<nn::Param> params() override { return net_.params(); }
  nn::Sequential& net() { return net_; }

 private:
  nn::Sequential net_;
  nn::SoftmaxCrossEntropy loss_;
  Tensor probs_;
  Tensor dlogits_;
};

data::Batch make_batch(data::HepGenerator& gen, std::size_t bs) {
  std::vector<data::Sample> ss;
  std::vector<const data::Sample*> ptrs;
  for (std::size_t k = 0; k < bs; ++k) {
    const auto ev = gen.generate(k % 2 == 0);
    ss.push_back({ev.image.clone(), ev.label, true, {}});
  }
  std::vector<data::Sample> owned = std::move(ss);
  for (const auto& s : owned) ptrs.push_back(&s);
  return data::make_batch(ptrs);
}

double evaluate_accuracy(nn::Sequential& net, data::HepGenerator& gen,
                         int n) {
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const auto ev = gen.generate(i % 2 == 0);
    data::Sample s{ev.image.clone(), ev.label, true, {}};
    const data::Batch batch = data::make_batch({&s});
    const Tensor& logits = net.forward(batch.images);
    const int pred = logits.at(1) > logits.at(0) ? 1 : 0;
    if (pred == ev.label) ++correct;
  }
  return static_cast<double>(correct) / n;
}

}  // namespace

int main() {
  data::HepGeneratorConfig gen_cfg;
  gen_cfg.image = 32;

  // The two contenders at comparable parameter budgets.
  nn::ResNetConfig res_cfg;
  res_cfg.in_channels = 3;
  res_cfg.stage_channels = {8, 16};
  res_cfg.blocks_per_stage = 1;
  res_cfg.seed = 5;

  nn::HepConfig cnn_cfg = nn::HepConfig::tiny();
  cnn_cfg.filters = 12;

  struct Contender {
    const char* name;
    nn::Sequential net;
  };
  Contender contenders[2] = {
      {"plain CNN (paper §III-A)", nn::build_hep_network(cnn_cfg)},
      {"ResNet (paper §IX)", nn::build_resnet(res_cfg)},
  };

  std::printf("single-process comparison, 120 iterations of ADAM:\n");
  for (auto& c : contenders) {
    data::HepGenerator train_gen(gen_cfg, 0), test_gen(gen_cfg, 1);
    solver::AdamSolver adam(c.net.params(), 2e-3);
    nn::SoftmaxCrossEntropy ce;
    Tensor probs, dlogits;
    double last_loss = 0.0;
    for (int iter = 0; iter < 120; ++iter) {
      const data::Batch batch = make_batch(train_gen, 8);
      const Tensor& logits = c.net.forward(batch.images);
      last_loss = ce.forward_backward(logits, batch.labels, probs, dlogits);
      c.net.backward(batch.images, dlogits);
      adam.step();
    }
    const double acc = evaluate_accuracy(c.net, test_gen, 100);
    std::printf("  %-26s %6zu params  final loss %.3f  held-out acc %.0f%%\n",
                c.name, c.net.param_count(), last_loss, 100.0 * acc);
  }

  // The distributed stack is model-agnostic: run the ResNet under the
  // hybrid trainer with 2 compute groups and per-layer parameter servers.
  std::printf("\nhybrid training of the ResNet (2 groups, per-layer PS):\n");
  hybrid::HybridConfig hy;
  hy.num_workers = 4;
  hy.num_groups = 2;
  hy.iterations = 6;
  hy.solver = hybrid::SolverKind::kAdam;
  hy.learning_rate = 2e-3;

  auto gen = std::make_shared<data::HepGenerator>(gen_cfg, 3);
  auto mutex = std::make_shared<std::mutex>();
  hybrid::HybridTrainer trainer(
      hy,
      [&] {
        return std::make_unique<SequentialTrainable>(
            nn::build_resnet(res_cfg));
      },
      [gen, mutex](int, std::size_t) {
        std::lock_guard<std::mutex> lock(*mutex);
        std::vector<data::Sample> ss;
        std::vector<const data::Sample*> ptrs;
        for (int k = 0; k < 4; ++k) {
          const auto ev = gen->generate(k % 2 == 0);
          ss.push_back({ev.image.clone(), ev.label, true, {}});
        }
        std::vector<data::Sample> owned = std::move(ss);
        for (const auto& s : owned) ptrs.push_back(&s);
        return data::make_batch(ptrs);
      });
  const auto result = trainer.run();
  for (const auto& rec : result.records) {
    std::printf("  group %d iter %zu  loss %.3f  staleness %llu\n",
                rec.group, rec.iteration, rec.loss,
                static_cast<unsigned long long>(rec.max_staleness));
  }
  std::printf("mean PS staleness: %.2f\n", result.staleness.mean());
  return 0;
}
