// Climate pipeline example (§I-B, §III-B): semi-supervised training of the
// detection + autoencoder network on synthetic climate fields, followed by
// box decoding and matching against ground truth.
#include <cstdio>

#include "data/climate_generator.hpp"
#include "data/loader.hpp"
#include "hybrid/trainable.hpp"
#include "solver/solver.hpp"

int main() {
  using namespace pf15;

  data::ClimateGeneratorConfig gen_cfg;
  gen_cfg.image = 48;
  gen_cfg.channels = 8;
  gen_cfg.classes = 2;
  gen_cfg.events_mean = 2.0;
  gen_cfg.labeled_fraction = 0.6;  // 40% of the stream is unlabeled
  data::ClimateGenerator gen(gen_cfg, 0);

  nn::ClimateConfig net_cfg;
  net_cfg.image = 48;
  net_cfg.channels = 8;
  net_cfg.classes = 2;
  net_cfg.widths = {12, 16, 24};
  hybrid::ClimateTrainable model(net_cfg);
  std::printf("climate network: %zu parameters (%.2f MiB), grid %zux%zu\n",
              model.net().param_count(),
              static_cast<double>(model.net().param_bytes()) /
                  (1024.0 * 1024.0),
              net_cfg.grid(), net_cfg.grid());

  // SGD with momentum, as the paper uses for this network (§III-B).
  solver::SgdSolver sgd(model.params(), 5e-3, 0.9);
  for (int iter = 0; iter < 120; ++iter) {
    std::vector<data::Sample> ss;
    std::vector<const data::Sample*> ptrs;
    for (int k = 0; k < 4; ++k) {
      auto s = gen.generate();
      ss.push_back({std::move(s.image), 0, s.labeled, std::move(s.boxes)});
    }
    for (const auto& s : ss) ptrs.push_back(&s);
    const double loss = model.train_step(data::make_batch(ptrs));
    sgd.step();
    if (iter % 30 == 0) {
      const auto& p = model.last_parts();
      std::printf(
          "iter %3d  total %.4f | obj %.4f noobj %.4f cls %.4f geom %.4f "
          "recon %.4f\n",
          iter, loss, p.obj, p.noobj, p.cls, p.geom, p.recon);
    }
  }

  // Inference: keep boxes with confidence > 0.8 (§III-B).
  data::ClimateGenerator test_gen(gen_cfg, 1);
  nn::MatchResult total;
  for (int i = 0; i < 16; ++i) {
    const auto sample = test_gen.generate(true);
    data::Sample s{sample.image.clone(), 0, true, sample.boxes};
    const auto& out = model.net().forward(data::make_batch({&s}).images);
    auto pred = nn::decode_boxes(out, 0.8f)[0];
    pred = nn::nms(std::move(pred), 0.3f);
    const auto m = nn::match_boxes(pred, sample.boxes, 0.3f);
    total.true_positives += m.true_positives;
    total.false_positives += m.false_positives;
    total.false_negatives += m.false_negatives;
  }
  std::printf(
      "\nheld-out detection (IoU 0.3): precision %.2f recall %.2f "
      "(tp %zu fp %zu fn %zu)\n",
      total.precision(), total.recall(), total.true_positives,
      total.false_positives, total.false_negatives);
  return 0;
}
