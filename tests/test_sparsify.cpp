// Top-k sparsification and error feedback (§VIII-B "communicating
// high-order bits of weight updates"): selection semantics, pack/unpack
// round trips, the error-feedback no-loss invariant, and a compressed-SGD
// convergence comparison with and without feedback.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ps/compression.hpp"
#include "ps/sparsify.hpp"

namespace pf15::ps {
namespace {

TEST(TopK, SelectsLargestMagnitudes) {
  const std::vector<float> data{0.1f, -5.0f, 0.3f, 2.0f, -0.2f};
  const SparseUpdate u = topk_select(data, 2);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u.indices[0], 1u);
  EXPECT_EQ(u.indices[1], 3u);
  EXPECT_FLOAT_EQ(u.values[0], -5.0f);
  EXPECT_FLOAT_EQ(u.values[1], 2.0f);
}

TEST(TopK, FullKIsIdentity) {
  const std::vector<float> data{1.0f, -2.0f, 3.0f};
  const SparseUpdate u = topk_select(data, 10);
  const auto dense = topk_densify(u, data.size());
  EXPECT_EQ(dense, data);
}

TEST(TopK, ZeroKIsEmpty) {
  const std::vector<float> data{1.0f, 2.0f};
  const SparseUpdate u = topk_select(data, 0);
  EXPECT_EQ(u.size(), 0u);
  EXPECT_EQ(u.wire_bytes(), 0u);
}

TEST(TopK, IndicesAreSortedAscending) {
  Rng rng(4);
  std::vector<float> data(256);
  for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 1.0));
  const SparseUpdate u = topk_select(data, 32);
  EXPECT_TRUE(std::is_sorted(u.indices.begin(), u.indices.end()));
}

TEST(TopK, DensifyRoundTripPreservesSelected) {
  Rng rng(5);
  std::vector<float> data(100);
  for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 1.0));
  const SparseUpdate u = topk_select(data, 25);
  const auto dense = topk_densify(u, data.size());
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0f) {
      ++nonzero;
      EXPECT_FLOAT_EQ(dense[i], data[i]);
    }
  }
  EXPECT_EQ(nonzero, 25u);
}

TEST(TopK, SelectionThresholdIsCorrect) {
  // Every kept |value| >= every dropped |value|.
  Rng rng(6);
  std::vector<float> data(80);
  for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 2.0));
  const SparseUpdate u = topk_select(data, 20);
  float min_kept = std::numeric_limits<float>::max();
  std::vector<bool> kept(data.size(), false);
  for (std::size_t i = 0; i < u.size(); ++i) {
    kept[u.indices[i]] = true;
    min_kept = std::min(min_kept, std::fabs(u.values[i]));
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!kept[i]) EXPECT_LE(std::fabs(data[i]), min_kept + 1e-7f);
  }
}

TEST(TopK, PackUnpackRoundTrip) {
  const std::vector<float> data{0.0f, 4.0f, -1.0f, 0.5f, 9.0f, -9.5f};
  const SparseUpdate u = topk_select(data, 3);
  const SparseUpdate v = topk_unpack(topk_pack(u));
  EXPECT_EQ(u.indices, v.indices);
  EXPECT_EQ(u.values, v.values);
}

TEST(TopK, UnpackRejectsMalformedPayload) {
  std::vector<float> bad{3.0f, 0.0f, 1.0f};  // claims 3 entries, holds 1
  EXPECT_THROW(topk_unpack(bad), Error);
}

TEST(TopK, WireBytesMatchCompressionRatio) {
  const std::size_t n = 1000, k = 10;
  std::vector<float> data(n, 1.0f);
  const SparseUpdate u = topk_select(data, k);
  // 8 bytes per kept entry vs 4 per dense float: 1% density = 50x saving.
  EXPECT_EQ(u.wire_bytes(), k * 8);
  EXPECT_LT(u.wire_bytes(), n * sizeof(float) / 10);
}

// ------------------------------------------------------------ ErrorFeedback

TEST(ErrorFeedback, NothingLostOverTime) {
  // Invariant: Σ sent + residual == Σ observed, exactly (same-order float
  // addition on each coordinate).
  ErrorFeedback ef(16);
  Rng rng(7);
  std::vector<float> total_observed(16, 0.0f);
  std::vector<float> total_sent(16, 0.0f);
  for (int step = 0; step < 50; ++step) {
    std::vector<float> g(16);
    for (auto& v : g) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (std::size_t i = 0; i < 16; ++i) total_observed[i] += g[i];
    const SparseUpdate sent = ef.compress(g, 4);
    for (std::size_t i = 0; i < sent.size(); ++i) {
      total_sent[sent.indices[i]] += sent.values[i];
    }
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(total_sent[i] + ef.residual()[i], total_observed[i], 1e-4f);
  }
}

TEST(ErrorFeedback, FullKLeavesNoResidual) {
  ErrorFeedback ef(8);
  std::vector<float> g(8, 0.5f);
  ef.compress(g, 8);
  EXPECT_DOUBLE_EQ(ef.residual_norm(), 0.0);
}

TEST(ErrorFeedback, SmallCoordinateEventuallySent) {
  // One coordinate is 100x smaller than the rest; with k=1 it still must
  // be transmitted once its accumulated residual grows past the others.
  ErrorFeedback ef(3);
  bool small_sent = false;
  for (int step = 0; step < 300 && !small_sent; ++step) {
    const std::vector<float> g{1.0f, 1.0f, 0.01f};
    const SparseUpdate sent = ef.compress(g, 1);
    // Large coordinates get drained; the small one accumulates.
    for (std::uint32_t idx : sent.indices) {
      if (idx == 2) small_sent = true;
    }
  }
  EXPECT_TRUE(small_sent)
      << "error feedback must eventually flush small coordinates";
}

TEST(ErrorFeedback, ResetClearsResidual) {
  ErrorFeedback ef(4);
  const std::vector<float> g{1.0f, 2.0f, 3.0f, 4.0f};
  ef.compress(g, 1);
  EXPECT_GT(ef.residual_norm(), 0.0);
  ef.reset();
  EXPECT_DOUBLE_EQ(ef.residual_norm(), 0.0);
}

// Compressed SGD on an ill-conditioned quadratic: error feedback drains
// the residual of the flat coordinates between transmissions, so at a
// fixed horizon it is strictly ahead of plain (biased) top-1, which only
// moves whichever coordinate currently has the largest raw gradient.
TEST(ErrorFeedback, FeedbackBeatsPlainTopKAtFixedHorizon) {
  const std::vector<double> h{10.0, 1.0, 0.1, 0.01};  // ill-conditioned
  auto run = [&](bool feedback) {
    std::vector<double> w{1.0, 1.0, 1.0, 1.0};
    ErrorFeedback ef(4);
    for (int iter = 0; iter < 4000; ++iter) {
      std::vector<float> g(4);
      for (std::size_t i = 0; i < 4; ++i) {
        g[i] = static_cast<float>(h[i] * w[i]);
      }
      const SparseUpdate sent =
          feedback ? ef.compress(g, 1) : topk_select(g, 1);
      const auto dense = topk_densify(sent, 4);
      for (std::size_t i = 0; i < 4; ++i) {
        w[i] -= 0.05 * dense[i];
      }
    }
    double norm = 0.0;
    for (double x : w) norm += x * x;
    return std::sqrt(norm);
  };
  const double with_feedback = run(true);
  const double without = run(false);
  EXPECT_LT(with_feedback, 0.2);
  EXPECT_LT(with_feedback, without);
}

// Under gradient noise larger than the smallest signal, plain top-1
// essentially never transmits the weak coordinate's signal (each step's
// dropped contribution is lost), while error feedback accumulates it
// until it wins the selection — the convergence-critical property.
TEST(ErrorFeedback, RecoversWeakSignalBurriedInNoise) {
  auto final_w = [&](bool feedback) {
    Rng rng(31);
    double w = 1.0;  // the weak coordinate; 7 noisy decoys
    ErrorFeedback ef(8);
    for (int iter = 0; iter < 3000; ++iter) {
      std::vector<float> g(8);
      g[0] = static_cast<float>(0.05 * w);
      for (std::size_t i = 1; i < 8; ++i) {
        g[i] = static_cast<float>(rng.normal(0.0, 1.0));
      }
      const SparseUpdate sent =
          feedback ? ef.compress(g, 1) : topk_select(g, 1);
      for (std::size_t i = 0; i < sent.size(); ++i) {
        if (sent.indices[i] == 0) w -= 0.5 * sent.values[i];
      }
    }
    return w;
  };
  EXPECT_LT(std::fabs(final_w(true)), 0.3)
      << "feedback must flush the weak coordinate";
  EXPECT_GT(std::fabs(final_w(false)), 0.5)
      << "plain top-1 starves the weak coordinate";
}

// -------------------------------------------------- Codec + TopK stacking

TEST(SparsifyWithCodec, TopKValuesSurviveFp16) {
  Rng rng(8);
  std::vector<float> data(64);
  for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 1.0));
  const SparseUpdate u = topk_select(data, 8);
  Rng codec_rng(1);
  const auto encoded = encode(Codec::kFp16, u.values, codec_rng);
  const auto decoded = decode(Codec::kFp16, encoded, u.values.size());
  for (std::size_t i = 0; i < u.values.size(); ++i) {
    EXPECT_NEAR(decoded[i], u.values[i], 2e-3f * std::fabs(u.values[i]));
  }
}

}  // namespace
}  // namespace pf15::ps
