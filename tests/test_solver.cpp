// Solvers: SGD+momentum and ADAM step math against closed forms, clipping,
// state serialization, and the asynchrony-aware momentum correction.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "solver/solver.hpp"

namespace pf15::solver {
namespace {

struct ParamPack {
  Tensor value{Shape{3}};
  Tensor grad{Shape{3}};

  std::vector<nn::Param> params() {
    return {{"w", &value, &grad}};
  }
};

TEST(Sgd, PlainGradientDescentWithoutMomentum) {
  ParamPack p;
  p.value.fill(1.0f);
  p.grad.fill(0.5f);
  SgdSolver solver(p.params(), /*lr=*/0.1, /*momentum=*/0.0);
  solver.step();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(p.value.at(i), 1.0f - 0.1f * 0.5f, 1e-6f);
  }
  // step() zeroes the gradient.
  EXPECT_FLOAT_EQ(p.grad.sum(), 0.0f);
}

TEST(Sgd, HeavyBallAccumulatesVelocity) {
  ParamPack p;
  p.value.fill(0.0f);
  SgdSolver solver(p.params(), 1.0, 0.5);
  // Two steps with unit gradient: v1 = -1, w1 = -1; v2 = -1.5, w2 = -2.5.
  p.grad.fill(1.0f);
  solver.step();
  EXPECT_NEAR(p.value.at(0), -1.0f, 1e-6f);
  p.grad.fill(1.0f);
  solver.step();
  EXPECT_NEAR(p.value.at(0), -2.5f, 1e-6f);
}

TEST(Sgd, IterationCountAdvances) {
  ParamPack p;
  SgdSolver solver(p.params(), 0.1, 0.9);
  EXPECT_EQ(solver.iteration(), 0u);
  p.grad.fill(1.0f);
  solver.step();
  EXPECT_EQ(solver.iteration(), 1u);
}

TEST(Sgd, ClippingBoundsGlobalNorm) {
  ParamPack p;
  p.value.fill(0.0f);
  SgdSolver solver(p.params(), 1.0, 0.0);
  solver.set_clip_norm(1.0);
  p.grad.fill(10.0f);  // norm = 10 * sqrt(3)
  solver.step();
  // Effective gradient has norm 1: each element 1/sqrt(3).
  EXPECT_NEAR(p.value.at(0), -1.0f / std::sqrt(3.0f), 1e-5f);
}

TEST(Sgd, StateRoundTrip) {
  ParamPack p1, p2;
  p1.value.fill(1.0f);
  p2.value.fill(1.0f);
  SgdSolver a(p1.params(), 0.1, 0.9);
  SgdSolver b(p2.params(), 0.1, 0.9);
  p1.grad.fill(1.0f);
  a.step();
  std::stringstream ss;
  a.save_state(ss);
  b.load_state(ss);
  EXPECT_EQ(b.iteration(), 1u);
  // Same subsequent behavior: the velocity carried over.
  p1.grad.fill(0.0f);
  p2.grad.fill(0.0f);
  p2.value.copy_from(p1.value);
  a.step();
  b.step();
  EXPECT_FLOAT_EQ(max_abs_diff(p1.value, p2.value), 0.0f);
}

TEST(Adam, FirstStepIsSignedLearningRate) {
  // With bias correction, the very first ADAM step is ~ -lr * sign(g).
  ParamPack p;
  p.value.fill(0.0f);
  AdamSolver solver(p.params(), 0.01);
  p.grad.at(0) = 3.0f;
  p.grad.at(1) = -0.2f;
  p.grad.at(2) = 0.0f;
  solver.step();
  EXPECT_NEAR(p.value.at(0), -0.01f, 1e-5f);
  EXPECT_NEAR(p.value.at(1), 0.01f, 1e-5f);
  EXPECT_NEAR(p.value.at(2), 0.0f, 1e-6f);
}

TEST(Adam, MatchesReferenceImplementation) {
  // Hand-rolled reference over 5 steps on a single scalar.
  ParamPack p;
  p.value.fill(1.0f);
  AdamSolver solver(p.params(), 0.1, 0.9, 0.999, 1e-8);
  double w = 1.0, m = 0.0, v = 0.0;
  for (int t = 1; t <= 5; ++t) {
    const double g = 0.3 * t;  // deterministic gradient schedule
    p.grad.fill(static_cast<float>(g));
    solver.step();
    m = 0.9 * m + 0.1 * g;
    v = 0.999 * v + 0.001 * g * g;
    const double mhat = m / (1.0 - std::pow(0.9, t));
    const double vhat = v / (1.0 - std::pow(0.999, t));
    w -= 0.1 * mhat / (std::sqrt(vhat) + 1e-8);
    EXPECT_NEAR(p.value.at(0), w, 5e-4) << "step " << t;
  }
}

TEST(Adam, StateRoundTrip) {
  ParamPack p1, p2;
  AdamSolver a(p1.params(), 0.01);
  AdamSolver b(p2.params(), 0.01);
  for (int i = 0; i < 3; ++i) {
    p1.grad.fill(1.0f + static_cast<float>(i));
    a.step();
  }
  std::stringstream ss;
  a.save_state(ss);
  b.load_state(ss);
  p2.value.copy_from(p1.value);
  p1.grad.fill(0.7f);
  p2.grad.fill(0.7f);
  a.step();
  b.step();
  EXPECT_FLOAT_EQ(max_abs_diff(p1.value, p2.value), 0.0f);
}

TEST(Solver, ApplyUsesExternalGradients) {
  // The PS path: apply() consumes a wire gradient, not the local one.
  ParamPack p;
  p.value.fill(0.0f);
  p.grad.fill(100.0f);  // must be ignored
  SgdSolver solver(p.params(), 1.0, 0.0);
  Tensor wire(Shape{3});
  wire.fill(1.0f);
  solver.apply({&wire});
  EXPECT_NEAR(p.value.at(0), -1.0f, 1e-6f);
}

TEST(StepSchedule, PiecewiseDecay) {
  StepSchedule sched(1.0, {10, 20}, 0.1);
  EXPECT_DOUBLE_EQ(sched.lr_at(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.lr_at(9), 1.0);
  EXPECT_NEAR(sched.lr_at(10), 0.1, 1e-12);
  EXPECT_NEAR(sched.lr_at(25), 0.01, 1e-12);
}

TEST(MomentumTuning, OneGroupKeepsTarget) {
  EXPECT_DOUBLE_EQ(tuned_momentum_for_groups(0.9, 1), 0.9);
}

TEST(MomentumTuning, MoreGroupsMeansLessExplicitMomentum) {
  const double m1 = tuned_momentum_for_groups(0.9, 1);
  const double m2 = tuned_momentum_for_groups(0.9, 2);
  const double m4 = tuned_momentum_for_groups(0.9, 4);
  const double m8 = tuned_momentum_for_groups(0.9, 8);
  EXPECT_GT(m1, m2);
  EXPECT_GE(m2, m4);
  EXPECT_GE(m4, m8);
  EXPECT_GE(m8, 0.0);
}

TEST(MomentumTuning, NeverNegative) {
  for (std::size_t g = 1; g <= 64; g *= 2) {
    EXPECT_GE(tuned_momentum_for_groups(0.4, g), 0.0);
    EXPECT_LE(tuned_momentum_for_groups(0.4, g), 0.4 + 1e-12);
  }
}

}  // namespace
}  // namespace pf15::solver
