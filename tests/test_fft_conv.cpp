// FFT-based convolution (§VIII-A's second named future-work algorithm):
// transform invariants, exact agreement with the im2col convolution across
// a geometry sweep, and the arithmetic crossover against direct cost.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <tuple>

#include "check_failure.hpp"
#include "common/rng.hpp"
#include "gemm/conv_backend.hpp"
#include "gemm/fft_conv.hpp"
#include "gemm/gemm.hpp"
#include "gemm/im2col.hpp"
#include "nn/conv2d.hpp"

namespace pf15::gemm {
namespace {

TEST(Fft1d, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  PF15_EXPECT_CHECK_FAIL(fft1d(data, false), "power of two");
}

TEST(Fft1d, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<double>> data(64);
  for (auto& z : data) z = {rng.normal(), rng.normal()};
  const auto original = data;
  fft1d(data, false);
  fft1d(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft1d, DeltaTransformsToAllOnes) {
  std::vector<std::complex<double>> data(16, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft1d(data, false);
  for (const auto& z : data) {
    EXPECT_NEAR(z.real(), 1.0, 1e-12);
    EXPECT_NEAR(z.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, ParsevalHolds) {
  Rng rng(2);
  std::vector<std::complex<double>> data(128);
  double time_energy = 0.0;
  for (auto& z : data) {
    z = {rng.normal(), rng.normal()};
    time_energy += std::norm(z);
  }
  fft1d(data, false);
  double freq_energy = 0.0;
  for (const auto& z : data) freq_energy += std::norm(z);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-6 * freq_energy);
}

TEST(Fft2d, RoundTrip) {
  Rng rng(3);
  const std::size_t n = 16;
  std::vector<std::complex<double>> grid(n * n);
  for (auto& z : grid) z = {rng.normal(), 0.0};
  const auto original = grid;
  fft2d(grid, n, false);
  fft2d(grid, n, true);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i].real(), original[i].real(), 1e-10);
  }
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(64), 64u);
}

// FFT conv must agree with the im2col + GEMM reference across geometries.
class FftConvSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                     std::size_t, std::size_t>> {};

TEST_P(FftConvSweep, MatchesIm2colConvolution) {
  const auto [in_c, out_c, hw, kernel, stride, pad] = GetParam();
  if (hw + 2 * pad < kernel) GTEST_SKIP();

  Rng rng(7);
  std::vector<float> image(in_c * hw * hw);
  for (auto& v : image) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> weight(out_c * in_c * kernel * kernel);
  for (auto& v : weight) v = rng.uniform(-0.5f, 0.5f);
  std::vector<float> bias(out_c);
  for (auto& v : bias) v = rng.uniform(-0.2f, 0.2f);

  ConvGeom g;
  g.in_c = in_c;
  g.in_h = g.in_w = hw;
  g.kernel_h = g.kernel_w = kernel;
  g.stride_h = g.stride_w = stride;
  g.pad_h = g.pad_w = pad;
  const std::size_t out_n = g.out_h() * g.out_w();

  // Reference: im2col + GEMM.
  std::vector<float> col(g.lowered_rows() * g.lowered_cols());
  im2col(g, image.data(), col.data());
  std::vector<float> ref(out_c * out_n, 0.0f);
  sgemm(false, false, out_c, g.lowered_cols(), g.lowered_rows(), 1.0f,
        weight.data(), g.lowered_rows(), col.data(), g.lowered_cols(), 0.0f,
        ref.data(), g.lowered_cols());
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t i = 0; i < out_n; ++i) ref[oc * out_n + i] += bias[oc];
  }

  std::vector<float> fft_out(out_c * out_n, -99.0f);
  fft_conv2d(image.data(), in_c, hw, hw, weight.data(), out_c, kernel,
             stride, pad, bias.data(), fft_out.data());

  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(fft_out[i], ref[i], 2e-4f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FftConvSweep,
    ::testing::Values(
        std::make_tuple(1u, 1u, 8u, 3u, 1u, 0u),
        std::make_tuple(1u, 1u, 8u, 3u, 1u, 1u),
        std::make_tuple(3u, 4u, 12u, 3u, 1u, 1u),
        std::make_tuple(2u, 2u, 9u, 5u, 1u, 2u),
        std::make_tuple(2u, 3u, 16u, 7u, 1u, 3u),
        std::make_tuple(3u, 2u, 12u, 3u, 2u, 1u),
        std::make_tuple(1u, 2u, 15u, 5u, 3u, 2u),
        std::make_tuple(4u, 4u, 6u, 1u, 1u, 0u),
        std::make_tuple(2u, 2u, 10u, 9u, 1u, 4u)));

// Stride-1 kernels across odd/even spatial sizes and every padding the
// kernel admits: the geometry class the dispatch path (Conv2d -> backend
// registry) exposes to FFT.
INSTANTIATE_TEST_SUITE_P(
    Stride1OddEvenPadding, FftConvSweep,
    ::testing::Combine(::testing::Values(1u, 3u),         // in_c
                       ::testing::Values(2u),             // out_c
                       ::testing::Values(7u, 8u, 13u, 16u),  // odd + even hw
                       ::testing::Values(1u, 3u, 5u),     // stride-1 kernels
                       ::testing::Values(1u),             // stride
                       ::testing::Values(0u, 1u, 2u)));   // padding

// ---- spectral backward phases ----------------------------------------------

struct BackwardOperands {
  ConvGeom g;
  std::vector<float> image, weight, dout;
};

BackwardOperands backward_operands(std::size_t in_c, std::size_t out_c,
                                   std::size_t hw, std::size_t kernel,
                                   std::size_t stride, std::size_t pad,
                                   std::uint64_t seed) {
  BackwardOperands ops;
  ops.g.in_c = in_c;
  ops.g.in_h = ops.g.in_w = hw;
  ops.g.kernel_h = ops.g.kernel_w = kernel;
  ops.g.stride_h = ops.g.stride_w = stride;
  ops.g.pad_h = ops.g.pad_w = pad;
  Rng rng(seed);
  ops.image.resize(in_c * hw * hw);
  for (auto& v : ops.image) v = rng.uniform(-1.0f, 1.0f);
  ops.weight.resize(out_c * in_c * kernel * kernel);
  for (auto& v : ops.weight) v = rng.uniform(-0.5f, 0.5f);
  ops.dout.resize(out_c * ops.g.out_h() * ops.g.out_w());
  for (auto& v : ops.dout) v = rng.uniform(-1.0f, 1.0f);
  return ops;
}

TEST_P(FftConvSweep, BackwardDataMatchesIm2colAdjoint) {
  const auto [in_c, out_c, hw, kernel, stride, pad] = GetParam();
  if (hw + 2 * pad < kernel) GTEST_SKIP();
  const BackwardOperands ops =
      backward_operands(in_c, out_c, hw, kernel, stride, pad, 21);
  const ConvGeom& g = ops.g;

  // Reference adjoint: col-gradient = W^T dout, scattered by col2im.
  std::vector<float> colg(g.lowered_rows() * g.lowered_cols());
  sgemm_naive(true, false, g.lowered_rows(), g.lowered_cols(), out_c, 1.0f,
              ops.weight.data(), g.lowered_rows(), ops.dout.data(),
              g.lowered_cols(), 0.0f, colg.data(), g.lowered_cols());
  std::vector<float> ref(in_c * hw * hw, 0.0f);
  col2im(g, colg.data(), ref.data());

  std::vector<float> din(ref.size(), -99.0f);
  fft_conv2d_backward_data(ops.dout.data(), in_c, hw, hw, ops.weight.data(),
                           out_c, kernel, stride, pad, din.data());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(din[i], ref[i], 2e-4f) << "element " << i;
  }
}

TEST_P(FftConvSweep, BackwardFilterMatchesIm2colAdjoint) {
  const auto [in_c, out_c, hw, kernel, stride, pad] = GetParam();
  if (hw + 2 * pad < kernel) GTEST_SKIP();
  const BackwardOperands ops =
      backward_operands(in_c, out_c, hw, kernel, stride, pad, 22);
  const ConvGeom& g = ops.g;

  // Reference adjoint: dW = dout · col^T, accumulated onto a non-zero
  // prefill — the backend contract is +=, and the spectral path must
  // honour it too.
  std::vector<float> col(g.lowered_rows() * g.lowered_cols());
  im2col(g, ops.image.data(), col.data());
  Rng prefill_rng(23);
  std::vector<float> ref(out_c * g.lowered_rows());
  for (auto& v : ref) v = prefill_rng.uniform(-1.0f, 1.0f);
  std::vector<float> dw = ref;
  sgemm_naive(false, true, out_c, g.lowered_rows(), g.lowered_cols(), 1.0f,
              ops.dout.data(), g.lowered_cols(), col.data(),
              g.lowered_cols(), 1.0f, ref.data(), g.lowered_rows());

  fft_conv2d_backward_filter(ops.image.data(), in_c, hw, hw,
                             ops.dout.data(), out_c, kernel, stride, pad,
                             dw.data());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(dw[i], ref[i], 2e-4f) << "element " << i;
  }
}

/// Central-difference gradient check of the spectral adjoints against the
/// fft_conv2d primal itself (not another backend): loss = <out, dout>.
double fft_loss(const BackwardOperands& ops, std::size_t out_c,
                const std::vector<float>& image,
                const std::vector<float>& weight) {
  const ConvGeom& g = ops.g;
  std::vector<float> out(out_c * g.out_h() * g.out_w(), 0.0f);
  fft_conv2d(image.data(), g.in_c, g.in_h, g.in_w, weight.data(), out_c,
             g.kernel_h, g.stride_h, g.pad_h, nullptr, out.data());
  double loss = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    loss += static_cast<double>(out[i]) * static_cast<double>(ops.dout[i]);
  }
  return loss;
}

TEST(FftConvBackward, GradientChecksAgainstPrimal) {
  const struct {
    std::size_t in_c, out_c, hw, kernel, stride, pad;
  } cases[] = {
      {2, 2, 5, 3, 1, 1},  // the paper's workhorse geometry class
      {1, 2, 6, 3, 2, 1},  // strided: exercises the upsampling adjoint
      {2, 1, 7, 5, 1, 0},  // larger kernel, no pad
  };
  const float eps = 1e-2f;
  for (const auto& c : cases) {
    const BackwardOperands ops = backward_operands(
        c.in_c, c.out_c, c.hw, c.kernel, c.stride, c.pad, 31 + c.hw);

    std::vector<float> din(ops.image.size(), 0.0f);
    fft_conv2d_backward_data(ops.dout.data(), c.in_c, c.hw, c.hw,
                             ops.weight.data(), c.out_c, c.kernel, c.stride,
                             c.pad, din.data());
    std::vector<float> dw(ops.weight.size(), 0.0f);
    fft_conv2d_backward_filter(ops.image.data(), c.in_c, c.hw, c.hw,
                               ops.dout.data(), c.out_c, c.kernel, c.stride,
                               c.pad, dw.data());

    for (std::size_t i = 0; i < ops.image.size(); i += 7) {
      std::vector<float> bumped = ops.image;
      bumped[i] += eps;
      const double up = fft_loss(ops, c.out_c, bumped, ops.weight);
      bumped[i] = ops.image[i] - eps;
      const double down = fft_loss(ops, c.out_c, bumped, ops.weight);
      ASSERT_NEAR(din[i], (up - down) / (2.0 * eps), 5e-3)
          << "din " << i << " hw " << c.hw;
    }
    for (std::size_t i = 0; i < ops.weight.size(); i += 5) {
      std::vector<float> bumped = ops.weight;
      bumped[i] += eps;
      const double up = fft_loss(ops, c.out_c, ops.image, bumped);
      bumped[i] = ops.weight[i] - eps;
      const double down = fft_loss(ops, c.out_c, ops.image, bumped);
      ASSERT_NEAR(dw[i], (up - down) / (2.0 * eps), 5e-3)
          << "dw " << i << " hw " << c.hw;
    }
  }
}

TEST(FftConvFlops, CrossoverFavorsLargeKernels) {
  // Direct cost ~ K² per output; FFT cost ~ log terms independent of K.
  // At 3x3 the direct path must win; at large kernels FFT must win.
  const std::size_t c = 64, hw = 56;
  const std::uint64_t direct_3x3 =
      2ull * c * c * hw * hw * 3 * 3;
  const std::uint64_t fft_3x3 = fft_conv_flops(c, c, hw, hw, 3, 1);
  EXPECT_LT(direct_3x3, fft_3x3)
      << "the paper's 3x3 nets should keep the direct path";

  const std::size_t big_k = 25;
  const std::uint64_t direct_big =
      2ull * c * c * hw * hw * big_k * big_k;
  const std::uint64_t fft_big = fft_conv_flops(c, c, hw, hw, big_k, 12);
  EXPECT_GT(direct_big, fft_big) << "large kernels favour FFT";
}

// Dispatch-path coverage: the same FFT kernel reached through the layer
// (Conv2d with ConvAlgo::kFft inside the backend registry) must agree
// with the layer's im2col path, odd and even spatial sizes alike.
TEST(FftConv, DispatchThroughConv2dMatchesIm2col) {
  for (std::size_t hw : {9u, 12u}) {
    nn::Conv2dConfig cfg;
    cfg.in_channels = 3;
    cfg.out_channels = 4;
    cfg.kernel = 3;
    cfg.stride = 1;
    cfg.pad = 1;
    cfg.bias = true;

    Rng rng_ref(17);
    cfg.algo = nn::ConvAlgo::kIm2col;
    nn::Conv2d reference("ref", cfg, rng_ref);
    Rng rng_fft(17);  // identical weights
    cfg.algo = nn::ConvAlgo::kFft;
    nn::Conv2d fft_conv("fft", cfg, rng_fft);
    ASSERT_EQ(fft_conv.forward_backend(Shape{2, 3, hw, hw}),
              ConvBackendKind::kFft);

    Rng data(23);
    Tensor in(Shape{2, 3, hw, hw});
    in.fill_uniform(data, -1.0f, 1.0f);
    Tensor ref_out, fft_out;
    reference.forward(in, ref_out);
    fft_conv.forward(in, fft_out);
    ASSERT_EQ(fft_out.shape(), ref_out.shape());
    for (std::size_t i = 0; i < ref_out.numel(); ++i) {
      ASSERT_NEAR(fft_out.data()[i], ref_out.data()[i], 1e-4f)
          << "hw " << hw << " element " << i;
    }
  }
}

TEST(FftConv, RejectsKernelLargerThanInput) {
  std::vector<float> image(4), weight(25), out(1);
  PF15_EXPECT_CHECK_FAIL(
      fft_conv2d(image.data(), 1, 2, 2, weight.data(), 1, 5, 1, 0, nullptr,
                 out.data()),
      "kernel larger");
}

}  // namespace
}  // namespace pf15::gemm
