// Discrete-event engine and the Cori scaling simulator: causality,
// determinism, and the qualitative scaling laws the paper reports.
#include <gtest/gtest.h>

#include "check_failure.hpp"

#include "simnet/event_engine.hpp"
#include "simnet/scaling_sim.hpp"

namespace pf15::simnet {
namespace {

TEST(EventEngine, FiresInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(EventEngine, TiesFireInScheduleOrder) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, CallbacksCanSchedule) {
  EventEngine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) e.schedule_in(0.5, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(e.now(), 4.5);
}

TEST(EventEngine, RefusesPastScheduling) {
  EventEngine e;
  e.schedule_at(5.0, [&] {
    PF15_EXPECT_CHECK_FAIL(e.schedule_at(1.0, [] {}), "cannot schedule in the past");
  });
  e.run();
}

TEST(EventEngine, RunUntilStopsEarly) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  e.run(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(EfficiencyCurve, SaturatesTowardEffMax) {
  EfficiencyCurve c;  // eff_max 0.8, floor 0.17, b_half 28
  EXPECT_LT(c.at(4.0), 0.3);
  EXPECT_GT(c.at(2048.0), 0.75);
  EXPECT_LT(c.at(2048.0), 0.8);
}

TEST(EfficiencyCurve, MatchesPaperCalibrationPoints) {
  // The three §II-A / Fig 5a / §VI-B3 anchors the defaults encode.
  EfficiencyCurve c;
  EXPECT_NEAR(c.at(8.0), 0.31, 0.01);    // 1.90 of 6.09 TFLOP/s at batch 8
  EXPECT_NEAR(c.at(1.0), 0.19, 0.015);   // full-system HEP per-node rate
  EXPECT_NEAR(c.eff_max, 0.80, 1e-12);   // DeepBench large-batch plateau
}

TEST(NodeModel, ComputeScalesInverselyWithEfficiency) {
  NodeModel node;
  node.jitter_sigma = 0.0;
  node.straggler_prob = 0.0;
  Rng rng(1);
  const double t_small = node.compute_seconds(1e12, 2.0, rng);
  const double t_large = node.compute_seconds(1e12, 2048.0, rng);
  // eff(2) ~ 0.21 vs eff(min(2048, micro_batch=8)) ~ 0.31: small batches
  // are inefficient, bounded below by the curve's calibrated floor.
  EXPECT_GT(t_small, 1.3 * t_large);
}

TEST(NodeModel, MicroBatchCapsEfficiencyGain) {
  // Above micro_batch, larger local batches give no further kernel
  // efficiency: time per sample is flat.
  NodeModel node;
  node.jitter_sigma = 0.0;
  node.straggler_prob = 0.0;
  Rng rng(1);
  const double t8 = node.compute_seconds(8e9, 8.0, rng);
  const double t64 = node.compute_seconds(64e9, 64.0, rng);
  EXPECT_NEAR(t64, 8.0 * t8, 1e-9);
}

TEST(NetworkModel, AllReduceGrowsWithSizeAndBytes) {
  NetworkModel net;
  net.comm_jitter_sigma = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(1, 1 << 20, rng), 0.0);
  const double t2 = net.allreduce_seconds(2, 1 << 20, rng);
  const double t1024 = net.allreduce_seconds(1024, 1 << 20, rng);
  EXPECT_GT(t1024, t2);
  const double small = net.allreduce_seconds(64, 1 << 10, rng);
  const double big = net.allreduce_seconds(64, 1 << 24, rng);
  EXPECT_GT(big, small);
}

WorkloadProfile tiny_workload() {
  WorkloadProfile w;
  w.shard_bytes = {600 << 10, 600 << 10, 600 << 10, 256};
  w.flops_per_sample = 16ull << 30;  // ~16 GFLOP fwd+bwd
  w.update_seconds = 5e-3;
  w.io_seconds_per_sample = 1e-4;
  return w;
}

CoriConfig quiet_machine() {
  CoriConfig m;
  m.node.jitter_sigma = 0.0;
  m.node.straggler_prob = 0.0;
  m.network.comm_jitter_sigma = 0.0;
  return m;
}

TEST(ScalingSim, Deterministic) {
  CoriConfig m;
  m.seed = 77;
  ScalingConfig s;
  s.nodes = 64;
  s.groups = 4;
  s.batch_per_node = 8;
  s.iterations = 20;
  const SimResult a = simulate_training(m, tiny_workload(), s);
  const SimResult b = simulate_training(m, tiny_workload(), s);
  EXPECT_EQ(a.images_processed, b.images_processed);
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
  ASSERT_EQ(a.iteration_times.size(), b.iteration_times.size());
  for (std::size_t i = 0; i < a.iteration_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iteration_times[i], b.iteration_times[i]);
  }
}

TEST(ScalingSim, CompletesRequestedIterations) {
  ScalingConfig s;
  s.nodes = 8;
  s.groups = 2;
  s.batch_per_node = 8;
  s.iterations = 15;
  const SimResult r =
      simulate_training(quiet_machine(), tiny_workload(), s);
  ASSERT_EQ(r.groups.size(), 2u);
  for (const auto& g : r.groups) {
    EXPECT_EQ(g.iterations_completed, 15u);
    EXPECT_FALSE(g.halted);
  }
  EXPECT_EQ(r.iteration_times.size(), 30u);
  EXPECT_EQ(r.images_processed, 15u * 2u * 8u * 4u);
}

TEST(ScalingSim, WeakScalingIsNearLinearWhenQuiet) {
  // No jitter, no stragglers, cheap communication: throughput ~ nodes.
  const auto w = tiny_workload();
  ScalingConfig s;
  s.batch_per_node = 8;
  s.iterations = 10;
  s.nodes = 1;
  s.groups = 1;
  const double t1 =
      simulate_training(quiet_machine(), w, s).throughput();
  s.nodes = 64;
  const double t64 =
      simulate_training(quiet_machine(), w, s).throughput();
  EXPECT_NEAR(t64 / t1, 64.0, 64.0 * 0.1);
}

TEST(ScalingSim, StragglersHurtLargeSyncGroupsMore) {
  CoriConfig noisy;
  noisy.node.jitter_sigma = 0.10;
  noisy.node.straggler_prob = 0.05;
  noisy.network.comm_jitter_sigma = 0.0;
  const auto w = tiny_workload();
  ScalingConfig s;
  s.batch_per_node = 8;
  s.iterations = 40;

  s.nodes = 4;
  s.groups = 1;
  const double eff4 =
      speedup_vs_single_node(noisy, w, s) / 4.0;
  s.nodes = 256;
  const double eff256 =
      speedup_vs_single_node(noisy, w, s) / 256.0;
  EXPECT_LT(eff256, eff4);  // scaling efficiency decays with group size
}

TEST(ScalingSim, HybridBeatsSyncUnderStragglersAtScale) {
  CoriConfig noisy;
  noisy.seed = 5;
  noisy.node.straggler_prob = 0.01;
  const auto w = tiny_workload();
  ScalingConfig s;
  s.batch_per_group = 2048;
  s.iterations = 30;
  s.nodes = 512;
  s.groups = 1;
  const double sync = speedup_vs_single_node(noisy, w, s);
  s.groups = 4;
  const double hybrid = speedup_vs_single_node(noisy, w, s);
  EXPECT_GT(hybrid, sync);
}

TEST(ScalingSim, StrongScalingSyncSaturates) {
  // Fixed total batch: beyond batch/micro_batch nodes the per-node batch
  // drops below the efficient micro-batch and scaling flattens.
  const auto w = tiny_workload();
  CoriConfig m = quiet_machine();
  ScalingConfig s;
  s.batch_per_group = 512;
  s.iterations = 10;
  s.groups = 1;
  s.nodes = 64;  // 8 per node: efficient
  const double s64 = speedup_vs_single_node(m, w, s);
  s.nodes = 512;  // 1 per node: inefficient
  const double s512 = speedup_vs_single_node(m, w, s);
  EXPECT_GT(s64 / 64.0, s512 / 512.0);
}

TEST(ScalingSim, NodeFailureHaltsSyncRun) {
  const auto w = tiny_workload();
  ScalingConfig s;
  s.nodes = 8;
  s.groups = 1;
  s.batch_per_node = 8;
  s.iterations = 50;
  s.fail_node = 3;
  s.fail_time = 0.0;  // dies immediately
  const SimResult r =
      simulate_training(quiet_machine(), w, s);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.groups[0].halted);
  EXPECT_EQ(r.groups[0].iterations_completed, 0u);
}

TEST(ScalingSim, NodeFailureOnlyStallsOneHybridGroup) {
  const auto w = tiny_workload();
  ScalingConfig s;
  s.nodes = 8;
  s.groups = 4;  // groups of 2
  s.batch_per_node = 8;
  s.iterations = 20;
  s.fail_node = 0;  // group 0 dies
  s.fail_time = 0.0;
  const SimResult r =
      simulate_training(quiet_machine(), w, s);
  ASSERT_EQ(r.groups.size(), 4u);
  EXPECT_TRUE(r.groups[0].halted);
  for (std::size_t g = 1; g < 4; ++g) {
    EXPECT_FALSE(r.groups[g].halted);
    EXPECT_EQ(r.groups[g].iterations_completed, 20u);
  }
}

TEST(ScalingSim, CheckpointOverheadShowsUpInIterationTimes) {
  auto m = quiet_machine();
  const auto w = tiny_workload();
  ScalingConfig s;
  s.nodes = 4;
  s.groups = 1;
  s.batch_per_node = 8;
  s.iterations = 20;
  const SimResult no_ckpt = simulate_training(m, w, s);
  m.checkpoint_every = 10;
  m.checkpoint_seconds = 3.0;
  const SimResult ckpt = simulate_training(m, w, s);
  EXPECT_NEAR(ckpt.duration - no_ckpt.duration, 6.0, 1e-6);
}

TEST(ScalingSim, SinglePsIsBottleneckVsPerLayerPs) {
  // Many groups hammering one monolithic PS queue must be slower than
  // per-layer PSs (the Fig-4 design rationale).
  CoriConfig m = quiet_machine();
  // Make PS service expensive enough to matter.
  m.ps.service_per_byte = 1.0 / 2.0e8;
  WorkloadProfile w = tiny_workload();
  ScalingConfig s;
  s.nodes = 64;
  s.groups = 16;
  s.batch_per_node = 8;
  s.iterations = 10;
  s.single_ps = false;
  const double per_layer =
      simulate_training(m, w, s).throughput();
  s.single_ps = true;
  const double monolithic =
      simulate_training(m, w, s).throughput();
  EXPECT_GT(per_layer, 1.05 * monolithic);
}

TEST(Workloads, HepProfileMatchesPaperScale) {
  const WorkloadProfile w = hep_workload();
  // Table II: ~2.3 MiB of parameters.
  EXPECT_NEAR(static_cast<double>(w.model_bytes()) / (1024.0 * 1024.0),
              2.27, 0.05);
  // Forward+backward cost: O(15) GFLOP per sample at 224x224.
  EXPECT_GT(w.flops_per_sample, 10ull << 30);
  EXPECT_LT(w.flops_per_sample, 25ull << 30);
  // 11 shards: 5 conv (w+b) + fc (w+b) = 12... conv biases included.
  EXPECT_EQ(w.shard_bytes.size(), 12u);
}

TEST(Workloads, SimulatedSingleNodeRateNearPaper) {
  // The paper measures 1.90 TFLOP/s for HEP at batch 8 on one node; our
  // calibrated model should land in that neighborhood.
  const WorkloadProfile w = hep_workload();
  CoriConfig m = quiet_machine();
  ScalingConfig s;
  s.nodes = 1;
  s.groups = 1;
  s.batch_per_node = 8;
  s.iterations = 10;
  const SimResult r = simulate_training(m, w, s);
  const double tflops = r.flops_rate(w.flops_per_sample) / 1e12;
  EXPECT_GT(tflops, 1.2);
  EXPECT_LT(tflops, 2.6);
}

}  // namespace
}  // namespace pf15::simnet
