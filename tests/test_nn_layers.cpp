// Per-layer unit tests: shape inference, forward semantics on hand-built
// inputs, and central-difference gradient checks for every layer type.
#include <gtest/gtest.h>

#include "check_failure.hpp"

#include <memory>

#include "gemm/gemm.hpp"
#include "gradient_check.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/deconv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace pf15::nn {
namespace {

using testing::check_layer_gradients;

Tensor random_input(const Shape& s, std::uint64_t seed = 77) {
  Rng rng(seed);
  Tensor t(s);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

// ---------------------------------------------------------------- Conv2d
TEST(Conv2d, OutputShapeSamePadding) {
  Rng rng(1);
  Conv2d conv("c", {3, 8, 3, 1, 1, true}, rng);
  EXPECT_EQ(conv.output_shape(Shape{2, 3, 16, 16}), (Shape{2, 8, 16, 16}));
}

TEST(Conv2d, OutputShapeStride2) {
  Rng rng(1);
  Conv2d conv("c", {16, 32, 5, 2, 2, true}, rng);
  EXPECT_EQ(conv.output_shape(Shape{1, 16, 64, 64}), (Shape{1, 32, 32, 32}));
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(1);
  Conv2d conv("c", {3, 8, 3, 1, 1, true}, rng);
  PF15_EXPECT_CHECK_FAIL(conv.output_shape(Shape{1, 4, 8, 8}), "bad input");
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(1);
  Conv2dConfig cfg{1, 1, 1, 1, 0, false};
  Conv2d conv("c", cfg, rng);
  conv.weight().fill(1.0f);
  Tensor in = random_input(Shape{1, 1, 4, 4});
  Tensor out;
  conv.forward(in, out);
  EXPECT_FLOAT_EQ(max_abs_diff(in, out), 0.0f);
}

TEST(Conv2d, BiasIsAdded) {
  Rng rng(1);
  Conv2dConfig cfg{1, 2, 1, 1, 0, true};
  Conv2d conv("c", cfg, rng);
  conv.weight().zero();
  conv.bias().at(0) = 1.5f;
  conv.bias().at(1) = -2.5f;
  Tensor in = random_input(Shape{1, 1, 3, 3});
  Tensor out;
  conv.forward(in, out);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(out.at(i), 1.5f);
    EXPECT_FLOAT_EQ(out.at(9 + i), -2.5f);
  }
}

TEST(Conv2d, GradientCheck) {
  Rng rng(2);
  Conv2d conv("c", {2, 3, 3, 1, 1, true}, rng);
  Tensor in = random_input(Shape{2, 2, 5, 5});
  check_layer_gradients(conv, in);
}

TEST(Conv2d, GradientCheckStridedNoBias) {
  Rng rng(2);
  Conv2d conv("c", {3, 4, 3, 2, 1, false}, rng);
  Tensor in = random_input(Shape{1, 3, 7, 7});
  check_layer_gradients(conv, in);
}

TEST(Conv2d, GradientsAccumulateAcrossCalls) {
  Rng rng(2);
  Conv2d conv("c", {1, 1, 3, 1, 1, true}, rng);
  Tensor in = random_input(Shape{1, 1, 4, 4});
  Tensor out, dout(conv.output_shape(in.shape())), din;
  dout.fill(1.0f);
  conv.forward(in, out);
  conv.backward(in, dout, din);
  const Tensor g1 = conv.params()[0].grad->clone();
  conv.backward(in, dout, din);
  const Tensor g2 = conv.params()[0].grad->clone();
  for (std::size_t i = 0; i < g1.numel(); ++i) {
    EXPECT_NEAR(g2.at(i), 2.0f * g1.at(i), 1e-4f);
  }
}

TEST(Conv2d, FlopCountMatchesInstrumentedGemm) {
  Rng rng(2);
  Conv2d conv("c", {4, 8, 3, 1, 1, false}, rng);
  Tensor in = random_input(Shape{2, 4, 10, 10});
  Tensor out;
  gemm::reset_executed_flops();
  conv.forward(in, out);
  // Analytic forward FLOPs (bias off => pure GEMM work).
  EXPECT_EQ(gemm::executed_flops(), conv.forward_flops(in.shape()));
}

// -------------------------------------------------------------- Deconv2d
TEST(Deconv2d, OutputShapeDoubles) {
  Rng rng(3);
  Deconv2d dc("d", {8, 4, 6, 2, 2, true}, rng);
  EXPECT_EQ(dc.output_shape(Shape{1, 8, 12, 12}), (Shape{1, 4, 24, 24}));
}

TEST(Deconv2d, InvertsConvGeometry) {
  // A stride-2 conv halves 32 -> 16; the mirror deconv must map 16 -> 32.
  Rng rng(3);
  Conv2d conv("c", {4, 8, 5, 2, 2, true}, rng);
  Deconv2d deconv("d", {8, 4, 6, 2, 2, true}, rng);
  const Shape conv_out = conv.output_shape(Shape{1, 4, 32, 32});
  EXPECT_EQ(deconv.output_shape(conv_out), (Shape{1, 4, 32, 32}));
}

TEST(Deconv2d, GradientCheck) {
  Rng rng(4);
  Deconv2d dc("d", {3, 2, 4, 2, 1, true}, rng);
  Tensor in = random_input(Shape{2, 3, 4, 4});
  check_layer_gradients(dc, in);
}

TEST(Deconv2d, GradientCheckStride1) {
  Rng rng(4);
  Deconv2d dc("d", {2, 3, 3, 1, 1, false}, rng);
  Tensor in = random_input(Shape{1, 2, 5, 5});
  check_layer_gradients(dc, in);
}

TEST(Deconv2d, MatchesConvTransposeByBruteForce) {
  // Deconv forward must equal the adjoint of conv forward with the same
  // (transposed) kernel: <conv(x), y> == <x, deconv(y)> when deconv's
  // weight (IC,OC,KH,KW) mirrors conv's (OC,IC,KH,KW).
  Rng rng(5);
  const std::size_t ic = 2, oc = 3, k = 3, s = 2, p = 1;
  Conv2d conv("c", {ic, oc, k, s, p, false}, rng);
  Deconv2d deconv("d", {oc, ic, k, s, p, false}, rng);
  // Copy conv weight (oc, ic, kh, kw) into deconv weight (oc, ic, kh, kw):
  // deconv stores (in=oc, out=ic, kh, kw) — identical layout here.
  for (std::size_t i = 0; i < conv.weight().numel(); ++i) {
    deconv.params()[0].value->data()[i] = conv.weight().data()[i];
  }
  Tensor x = random_input(Shape{1, ic, 9, 9}, 8);
  Tensor conv_out;
  conv.forward(x, conv_out);
  Tensor y = random_input(conv_out.shape(), 9);
  Tensor deconv_out;
  deconv.forward(y, deconv_out);
  ASSERT_EQ(deconv_out.shape(), x.shape());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < conv_out.numel(); ++i) {
    lhs += static_cast<double>(conv_out.at(i)) * y.at(i);
  }
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.at(i)) * deconv_out.at(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

// ------------------------------------------------------------------ Pool
TEST(MaxPool2d, SelectsMaxima) {
  MaxPool2d pool("p", 2, 2);
  Tensor in(Shape{1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) in.at(i) = static_cast<float>(i);
  Tensor out;
  pool.forward(in, out);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1), 7.0f);
  EXPECT_FLOAT_EQ(out.at(2), 13.0f);
  EXPECT_FLOAT_EQ(out.at(3), 15.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool("p", 2, 2);
  Tensor in(Shape{1, 1, 2, 2});
  in.at(3) = 5.0f;  // max at the last position
  Tensor out, din;
  pool.forward(in, out);
  Tensor dout(out.shape());
  dout.fill(2.0f);
  pool.backward(in, dout, din);
  EXPECT_FLOAT_EQ(din.at(0), 0.0f);
  EXPECT_FLOAT_EQ(din.at(3), 2.0f);
}

TEST(MaxPool2d, GradientCheck) {
  // Use distinct input values so argmax is stable under the probe eps.
  MaxPool2d pool("p", 2, 2);
  Tensor in(Shape{1, 2, 4, 4});
  Rng rng(10);
  for (std::size_t i = 0; i < in.numel(); ++i) {
    in.at(i) = static_cast<float>(i) * 0.37f +
               static_cast<float>(rng.uniform()) * 0.01f;
  }
  check_layer_gradients(pool, in);
}

TEST(GlobalAvgPool, AveragesPlanes) {
  GlobalAvgPool gap("g");
  Tensor in(Shape{1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) in.at(i) = 4.0f;  // channel 0
  for (std::size_t i = 4; i < 8; ++i) {
    in.at(i) = static_cast<float>(i - 4);  // channel 1: 0..3
  }
  Tensor out;
  gap.forward(in, out);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1), 1.5f);
}

TEST(GlobalAvgPool, GradientCheck) {
  GlobalAvgPool gap("g");
  Tensor in = random_input(Shape{2, 3, 4, 4});
  check_layer_gradients(gap, in);
}

// ----------------------------------------------------------- Activations
TEST(ReLU, ClampsNegatives) {
  ReLU relu("r");
  Tensor in(Shape{4});
  in.at(0) = -1.0f;
  in.at(1) = 2.0f;
  in.at(2) = 0.0f;
  in.at(3) = -0.5f;
  Tensor out;
  relu.forward(in, out);
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 2.0f);
  EXPECT_FLOAT_EQ(out.at(2), 0.0f);
  EXPECT_FLOAT_EQ(out.at(3), 0.0f);
}

TEST(ReLU, GradientCheck) {
  ReLU relu("r");
  // Keep values away from the kink at 0.
  Tensor in(Shape{3, 7});
  Rng rng(12);
  for (std::size_t i = 0; i < in.numel(); ++i) {
    float v = rng.uniform(0.2f, 1.0f);
    if (rng.bernoulli(0.5)) v = -v;
    in.at(i) = v;
  }
  check_layer_gradients(relu, in);
}

TEST(Sigmoid, KnownValues) {
  Sigmoid s("s");
  Tensor in(Shape{2});
  in.at(0) = 0.0f;
  in.at(1) = 100.0f;
  Tensor out;
  s.forward(in, out);
  EXPECT_FLOAT_EQ(out.at(0), 0.5f);
  EXPECT_NEAR(out.at(1), 1.0f, 1e-6f);
}

TEST(Sigmoid, GradientCheck) {
  Sigmoid s("s");
  Tensor in = random_input(Shape{4, 5});
  check_layer_gradients(s, in);
}

TEST(Tanh, GradientCheck) {
  Tanh t("t");
  Tensor in = random_input(Shape{4, 5});
  check_layer_gradients(t, in);
}

// ----------------------------------------------------------------- Dense
TEST(Dense, OutputShapeFlattens4d) {
  Rng rng(13);
  Dense fc("f", 2 * 3 * 3, 5, rng);
  EXPECT_EQ(fc.output_shape(Shape{4, 2, 3, 3}), (Shape{4, 5}));
}

TEST(Dense, RejectsWrongFeatureCount) {
  Rng rng(13);
  Dense fc("f", 10, 5, rng);
  PF15_EXPECT_CHECK_FAIL(fc.output_shape(Shape{2, 11}), "not flattenable");
}

TEST(Dense, LinearityInInput) {
  Rng rng(13);
  Dense fc("f", 6, 4, rng);
  Tensor a = random_input(Shape{2, 6}, 1);
  Tensor a2 = a.clone();
  a2.scale(2.0f);
  Tensor out1, out2;
  fc.forward(a, out1);
  fc.forward(a2, out2);
  // out2 - bias = 2 * (out1 - bias)  =>  out2 = 2*out1 - bias.
  std::vector<float> bias(4);
  for (std::size_t j = 0; j < 4; ++j) {
    bias[j] = fc.params()[1].value->at(j);
  }
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(out2.at(b * 4 + j), 2.0f * out1.at(b * 4 + j) - bias[j],
                  1e-4f);
    }
  }
}

TEST(Dense, GradientCheck) {
  Rng rng(14);
  Dense fc("f", 8, 3, rng);
  Tensor in = random_input(Shape{4, 8});
  check_layer_gradients(fc, in);
}

TEST(Dense, GradientCheck4dInput) {
  Rng rng(14);
  Dense fc("f", 12, 2, rng);
  Tensor in = random_input(Shape{3, 3, 2, 2});
  check_layer_gradients(fc, in);
}

// ------------------------------------------------------------ FLOP counts
TEST(LayerFlops, ConvFormula) {
  Rng rng(15);
  Conv2d conv("c", {3, 128, 3, 1, 1, false}, rng);
  const Shape in{1, 3, 224, 224};
  // 2 * OC * OHOW * IC*KH*KW = 2 * 128 * 50176 * 27.
  EXPECT_EQ(conv.forward_flops(in), 2ull * 128 * 50176 * 27);
  // Backward: two GEMMs of the same volume.
  EXPECT_EQ(conv.backward_flops(in), 2ull * conv.forward_flops(in));
}

TEST(LayerFlops, DenseFormula) {
  Rng rng(15);
  Dense fc("f", 128, 2, rng);
  const Shape in{8, 128};
  EXPECT_EQ(fc.forward_flops(in), 2ull * 8 * 2 * 128 + 8 * 2);
}

TEST(LayerFlops, BatchScalesLinearly) {
  Rng rng(15);
  Conv2d conv("c", {4, 8, 3, 1, 1, true}, rng);
  const auto f1 = conv.forward_flops(Shape{1, 4, 16, 16});
  const auto f4 = conv.forward_flops(Shape{4, 4, 16, 16});
  EXPECT_EQ(f4, 4 * f1);
}

}  // namespace
}  // namespace pf15::nn
